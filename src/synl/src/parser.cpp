#include "synat/synl/parser.h"

#include "synat/synl/inline.h"
#include "synat/synl/lexer.h"
#include "synat/synl/sema.h"

namespace synat::synl {

namespace {

/// Binding power for binary operators; higher binds tighter.
int precedence(Tok t) {
  switch (t) {
    case Tok::OrOr: return 1;
    case Tok::AndAnd: return 2;
    case Tok::EqEq:
    case Tok::NotEq: return 3;
    case Tok::Lt:
    case Tok::Le:
    case Tok::Gt:
    case Tok::Ge: return 4;
    case Tok::Plus:
    case Tok::Minus: return 5;
    case Tok::Star:
    case Tok::Slash:
    case Tok::Percent: return 6;
    default: return 0;
  }
}

BinOp to_binop(Tok t) {
  switch (t) {
    case Tok::OrOr: return BinOp::Or;
    case Tok::AndAnd: return BinOp::And;
    case Tok::EqEq: return BinOp::Eq;
    case Tok::NotEq: return BinOp::Ne;
    case Tok::Lt: return BinOp::Lt;
    case Tok::Le: return BinOp::Le;
    case Tok::Gt: return BinOp::Gt;
    case Tok::Ge: return BinOp::Ge;
    case Tok::Plus: return BinOp::Add;
    case Tok::Minus: return BinOp::Sub;
    case Tok::Star: return BinOp::Mul;
    case Tok::Slash: return BinOp::Div;
    case Tok::Percent: return BinOp::Mod;
    default: SYNAT_ASSERT(false, "not a binary operator token");
  }
}

}  // namespace

Parser::Parser(std::string_view source, DiagEngine& diags) : diags_(diags) {
  // Lexer errors land between base_errors_ and the first procedure, so they
  // always count as top-level (uncontainable).
  base_errors_ = diags.num_errors();
  toks_ = Lexer::tokenize(source, diags);
}

/// RAII nesting counter for the recursive-descent entry points.
class Parser::DepthScope {
 public:
  explicit DepthScope(Parser& p) : p_(p) { ++p_.depth_; }
  ~DepthScope() { --p_.depth_; }
  bool exceeded() const { return p_.depth_ > kMaxDepth; }

 private:
  Parser& p_;
};

void Parser::report_deep_nesting() {
  if (depth_reported_) return;  // once per procedure is enough
  depth_reported_ = true;
  diags_.error(peek().loc, "nesting exceeds the parser depth limit (" +
                               std::to_string(kMaxDepth) + ")");
}

StmtId Parser::deep_nesting_stmt() {
  report_deep_nesting();
  Stmt s;
  s.kind = StmtKind::Skip;
  s.loc = advance().loc;  // always consume: callers must make progress
  return prog_.add_stmt(std::move(s));
}

const Token& Parser::peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= toks_.size()) i = toks_.size() - 1;  // End token
  return toks_[i];
}

const Token& Parser::advance() {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok kind, std::string_view what) {
  if (check(kind)) return advance();
  diags_.error(peek().loc, "expected " + std::string(to_string(kind)) + " " +
                               std::string(what) + ", found '" +
                               std::string(peek().text) + "'");
  return peek();  // do not consume; caller recovers
}

void Parser::sync_to_decl() {
  while (!check(Tok::End) && !check(Tok::KwProc) && !check(Tok::KwClass) &&
         !check(Tok::KwGlobal) && !check(Tok::KwThreadLocal)) {
    advance();
  }
}

void Parser::sync_to_stmt() {
  while (!check(Tok::End) && !check(Tok::Semi) && !check(Tok::RBrace) &&
         !check(Tok::KwProc) && !check(Tok::KwClass) && !check(Tok::KwGlobal) &&
         !check(Tok::KwThreadLocal)) {
    advance();
  }
  match(Tok::Semi);
}

// ---------------------------------------------------------------------------
// Declarations

Program Parser::parse_program() {
  while (!check(Tok::End)) {
    if (check(Tok::KwClass)) {
      parse_class();
    } else if (check(Tok::KwGlobal)) {
      parse_global(VarKind::Global);
    } else if (check(Tok::KwThreadLocal)) {
      parse_global(VarKind::ThreadLocal);
    } else if (check(Tok::KwProc)) {
      parse_proc();
    } else {
      diags_.error(peek().loc, "expected declaration, found '" +
                                   std::string(peek().text) + "'");
      advance();
      sync_to_decl();
    }
  }
  return std::move(prog_);
}

void Parser::parse_class() {
  SourceLoc loc = peek().loc;
  advance();  // class
  const Token& name = expect(Tok::Ident, "after 'class'");
  Symbol cname = intern(name);

  // Fields may reference this class (or ones declared later), which creates
  // forward-reference stubs; register (or claim) the entry up front.
  ClassId id = prog_.find_class(cname);
  if (id.valid() && prog_.cls(id).defined) {
    diags_.error(loc, "duplicate class '" + std::string(name.text) + "'");
  }
  if (!id.valid()) {
    ClassInfo stub;
    stub.name = cname;
    id = prog_.add_class(std::move(stub));
  }
  prog_.cls(id).loc = loc;
  prog_.cls(id).defined = true;

  expect(Tok::LBrace, "to open class body");
  while (!check(Tok::RBrace) && !check(Tok::End)) {
    TypeId ty = parse_type();
    const Token& field = expect(Tok::Ident, "field name");
    if (field.kind != Tok::Ident) {
      sync_to_decl();
      break;
    }
    Symbol fsym = intern(field);
    if (prog_.cls(id).field_index(fsym) >= 0) {
      diags_.error(field.loc, "duplicate field '" + std::string(field.text) + "'");
    }
    prog_.cls(id).fields.push_back({fsym, ty});
    expect(Tok::Semi, "after field");
  }
  expect(Tok::RBrace, "to close class body");
}

void Parser::parse_global(VarKind kind) {
  SourceLoc loc = peek().loc;
  advance();  // global / threadlocal
  TypeId ty = parse_type();
  const Token& name = expect(Tok::Ident, "variable name");
  VarInfo v;
  v.name = intern(name);
  v.kind = kind;
  v.type = ty;
  v.loc = loc;
  VarId id = prog_.add_var(v);
  if (kind == VarKind::Global) {
    prog_.globals().push_back(id);
  } else {
    prog_.threadlocals().push_back(id);
  }
  expect(Tok::Semi, "after declaration");
}

bool Parser::looks_like_type() const {
  if (check(Tok::KwInt) || check(Tok::KwBool)) return true;
  // `Ident Ident` starts a typed parameter/field; a lone Ident does not.
  return check(Tok::Ident) && peek(1).kind == Tok::Ident;
}

TypeId Parser::parse_type() {
  TypeId base;
  if (match(Tok::KwInt)) {
    base = prog_.int_type();
  } else if (match(Tok::KwBool)) {
    base = prog_.bool_type();
  } else if (check(Tok::Ident)) {
    const Token& name = advance();
    Symbol sym = intern(name);
    ClassId cls = prog_.find_class(sym);
    if (!cls.valid()) {
      // Forward references to classes are allowed; create a stub now.
      ClassInfo stub;
      stub.name = sym;
      stub.loc = name.loc;
      cls = prog_.add_class(std::move(stub));
    }
    base = prog_.ref_type(cls);
  } else {
    diags_.error(peek().loc, "expected type, found '" + std::string(peek().text) + "'");
    return prog_.unknown_type();
  }
  while (check(Tok::LBracket) && peek(1).kind == Tok::RBracket) {
    advance();
    advance();
    base = prog_.array_type(base);
  }
  return base;
}

void Parser::parse_proc() {
  SourceLoc loc = peek().loc;
  advance();  // proc
  // Optional return type: `proc int Deq()` or `proc Deq()`.
  TypeId ret = prog_.unknown_type();
  if ((check(Tok::KwInt) || check(Tok::KwBool) ||
       (check(Tok::Ident) && peek(1).kind == Tok::Ident)) &&
      peek(1).kind != Tok::LParen) {
    ret = parse_type();
  }
  const Token& name = expect(Tok::Ident, "procedure name");
  if (name.kind != Tok::Ident) {
    // No name to attach a stub procedure to; count as a top-level error.
    sync_to_decl();
    return;
  }
  ProcInfo info;
  info.name = intern(name);
  info.loc = loc;
  info.ret_type = ret;
  ProcId id = prog_.add_proc(std::move(info));

  // From here on every error is contained: the procedure is stubbed out and
  // marked broken, and parsing resumes at the next declaration.
  depth_reported_ = false;
  size_t errors_before = diags_.num_errors();

  expect(Tok::LParen, "to open parameter list");
  std::vector<VarId> params;
  if (!check(Tok::RParen)) {
    do {
      TypeId ty = looks_like_type() ? parse_type() : prog_.unknown_type();
      const Token& pname = expect(Tok::Ident, "parameter name");
      VarInfo v;
      v.name = intern(pname);
      v.kind = VarKind::Param;
      v.type = ty;
      v.proc = id;
      v.loc = pname.loc;
      params.push_back(prog_.add_var(v));
    } while (match(Tok::Comma));
  }
  expect(Tok::RParen, "to close parameter list");
  prog_.proc(id).params = std::move(params);
  prog_.proc(id).body = parse_block();

  size_t grew = diags_.num_errors() - errors_before;
  if (grew != 0) {
    contained_errors_ += grew;
    mark_proc_broken(prog_, id);
    sync_to_decl();
  }
}

// ---------------------------------------------------------------------------
// Statements

StmtId Parser::parse_block() {
  SourceLoc loc = peek().loc;
  expect(Tok::LBrace, "to open block");
  std::vector<StmtId> stmts = parse_stmt_list();
  expect(Tok::RBrace, "to close block");
  Stmt s;
  s.kind = StmtKind::Block;
  s.loc = loc;
  s.stmts = std::move(stmts);
  return prog_.add_stmt(std::move(s));
}

std::vector<StmtId> Parser::parse_stmt_list() {
  std::vector<StmtId> stmts;
  while (!check(Tok::RBrace) && !check(Tok::End)) {
    if (check(Tok::KwLocal)) {
      bool consumed_rest = false;
      StmtId local = parse_local(consumed_rest, &stmts);
      stmts.push_back(local);
      if (consumed_rest) break;  // the rest of the block was folded in
    } else {
      size_t before = diags_.num_errors();
      stmts.push_back(parse_stmt());
      // After a malformed statement, resynchronize at a statement boundary
      // so one bad token does not cascade through the rest of the block.
      if (diags_.num_errors() != before) sync_to_stmt();
    }
  }
  return stmts;
}

StmtId Parser::parse_local(bool& consumed_rest, std::vector<StmtId>* rest_sink) {
  DepthScope depth(*this);  // the `;` form recurses via parse_stmt_list
  if (depth.exceeded()) {
    consumed_rest = false;
    return deep_nesting_stmt();
  }
  SourceLoc loc = peek().loc;
  advance();  // local
  const Token& name = expect(Tok::Ident, "local variable name");
  TypeId ty = prog_.unknown_type();
  if (match(Tok::Colon)) ty = parse_type();
  expect(Tok::Assign, "in local declaration");
  ExprId init = parse_expr();

  Stmt s;
  s.kind = StmtKind::Local;
  s.loc = loc;
  s.name = intern(name);
  s.declared_type = ty;
  s.e1 = init;

  if (match(Tok::KwIn)) {
    consumed_rest = false;
    s.s1 = parse_stmt();
  } else {
    // `local x := e;` — scope is the remainder of the enclosing block.
    expect(Tok::Semi, "after local declaration");
    if (rest_sink == nullptr) {
      // Statement position (`if (c) local x := 1;`): there is no enclosing
      // block to scope over, so this form is malformed input, not an
      // internal invariant violation.
      diags_.error(loc,
                   "'local x := e;' is only allowed directly inside a block; "
                   "use 'local x := e in stmt'");
      consumed_rest = false;
      Stmt body;
      body.kind = StmtKind::Block;
      body.loc = loc;
      s.s1 = prog_.add_stmt(std::move(body));
    } else {
      consumed_rest = true;
      std::vector<StmtId> rest = parse_stmt_list();
      Stmt body;
      body.kind = StmtKind::Block;
      body.loc = loc;
      body.stmts = std::move(rest);
      s.s1 = prog_.add_stmt(std::move(body));
    }
  }
  return prog_.add_stmt(std::move(s));
}

StmtId Parser::parse_if() {
  SourceLoc loc = peek().loc;
  advance();  // if
  expect(Tok::LParen, "after 'if'");
  ExprId cond = parse_expr();
  expect(Tok::RParen, "after condition");
  StmtId then_s = parse_stmt();
  StmtId else_s;
  if (match(Tok::KwElse)) else_s = parse_stmt();
  Stmt s;
  s.kind = StmtKind::If;
  s.loc = loc;
  s.e1 = cond;
  s.s1 = then_s;
  s.s2 = else_s;
  return prog_.add_stmt(std::move(s));
}

StmtId Parser::parse_loop(Symbol label) {
  SourceLoc loc = peek().loc;
  advance();  // loop
  Stmt s;
  s.kind = StmtKind::Loop;
  s.loc = loc;
  s.label = label;
  s.s1 = parse_stmt();
  return prog_.add_stmt(std::move(s));
}

StmtId Parser::parse_while(Symbol label) {
  // while (e) s   ==>   loop { if (e) s else break; }
  SourceLoc loc = peek().loc;
  advance();  // while
  expect(Tok::LParen, "after 'while'");
  ExprId cond = parse_expr();
  expect(Tok::RParen, "after condition");
  StmtId body = parse_stmt();

  Stmt brk;
  brk.kind = StmtKind::Break;
  brk.loc = loc;
  StmtId brk_id = prog_.add_stmt(std::move(brk));

  Stmt iff;
  iff.kind = StmtKind::If;
  iff.loc = loc;
  iff.e1 = cond;
  iff.s1 = body;
  iff.s2 = brk_id;
  StmtId iff_id = prog_.add_stmt(std::move(iff));

  Stmt loop;
  loop.kind = StmtKind::Loop;
  loop.loc = loc;
  loop.label = label;
  loop.s1 = iff_id;
  return prog_.add_stmt(std::move(loop));
}

StmtId Parser::parse_stmt() {
  DepthScope depth(*this);
  if (depth.exceeded()) return deep_nesting_stmt();

  // Loop labels: `Ident : loop ...` / `Ident : while ...`.
  if (check(Tok::Ident) && peek(1).kind == Tok::Colon &&
      (peek(2).kind == Tok::KwLoop || peek(2).kind == Tok::KwWhile)) {
    Symbol label = intern(peek());
    advance();
    advance();
    return check(Tok::KwLoop) ? parse_loop(label) : parse_while(label);
  }

  switch (peek().kind) {
    case Tok::LBrace:
      return parse_block();
    case Tok::KwIf:
      return parse_if();
    case Tok::KwLoop:
      return parse_loop(Symbol());
    case Tok::KwWhile:
      return parse_while(Symbol());
    case Tok::KwLocal: {
      // `local ... in s` used in statement position (not directly in a
      // block); the `;` form is only meaningful inside a block.
      bool consumed_rest = false;
      StmtId s = parse_local(consumed_rest, nullptr);
      return s;
    }
    case Tok::KwReturn: {
      Stmt s;
      s.kind = StmtKind::Return;
      s.loc = advance().loc;
      if (!check(Tok::Semi)) s.e1 = parse_expr();
      expect(Tok::Semi, "after return");
      return prog_.add_stmt(std::move(s));
    }
    case Tok::KwBreak: {
      Stmt s;
      s.kind = StmtKind::Break;
      s.loc = advance().loc;
      if (check(Tok::Ident)) s.label = intern(advance());
      expect(Tok::Semi, "after break");
      return prog_.add_stmt(std::move(s));
    }
    case Tok::KwContinue: {
      Stmt s;
      s.kind = StmtKind::Continue;
      s.loc = advance().loc;
      if (check(Tok::Ident)) s.label = intern(advance());
      expect(Tok::Semi, "after continue");
      return prog_.add_stmt(std::move(s));
    }
    case Tok::KwSkip: {
      Stmt s;
      s.kind = StmtKind::Skip;
      s.loc = advance().loc;
      expect(Tok::Semi, "after skip");
      return prog_.add_stmt(std::move(s));
    }
    case Tok::KwSynchronized: {
      Stmt s;
      s.kind = StmtKind::Synchronized;
      s.loc = advance().loc;
      expect(Tok::LParen, "after 'synchronized'");
      s.e1 = parse_expr();
      expect(Tok::RParen, "after lock expression");
      s.s1 = parse_stmt();
      return prog_.add_stmt(std::move(s));
    }
    case Tok::KwAssume: {
      Stmt s;
      s.kind = StmtKind::Assume;
      s.loc = advance().loc;
      expect(Tok::LParen, "after 'TRUE'");
      s.e1 = parse_expr();
      expect(Tok::RParen, "after assumption");
      expect(Tok::Semi, "after TRUE(...)");
      return prog_.add_stmt(std::move(s));
    }
    case Tok::KwAssert: {
      Stmt s;
      s.kind = StmtKind::Assert;
      s.loc = advance().loc;
      expect(Tok::LParen, "after 'assert'");
      s.e1 = parse_expr();
      expect(Tok::RParen, "after assertion");
      expect(Tok::Semi, "after assert(...)");
      return prog_.add_stmt(std::move(s));
    }
    default:
      break;
  }

  // Assignment or expression statement.
  SourceLoc loc = peek().loc;
  ExprId e = parse_expr();
  if (check(Tok::Assign)) {
    advance();
    ExprId lhs = require_location(e, "assignment target");
    ExprId rhs = parse_expr();
    expect(Tok::Semi, "after assignment");
    Stmt s;
    s.kind = StmtKind::Assign;
    s.loc = loc;
    s.e1 = lhs;
    s.e2 = rhs;
    return prog_.add_stmt(std::move(s));
  }
  if (check(Tok::PlusPlus) || check(Tok::MinusMinus)) {
    // x++ / x--  ==>  x := x + 1 / x := x - 1
    BinOp op = check(Tok::PlusPlus) ? BinOp::Add : BinOp::Sub;
    advance();
    expect(Tok::Semi, "after increment");
    ExprId lhs = require_location(e, "increment target");
    Expr one;
    one.kind = ExprKind::IntLit;
    one.loc = loc;
    one.int_value = 1;
    ExprId one_id = prog_.add_expr(std::move(one));
    Expr add;
    add.kind = ExprKind::Binary;
    add.loc = loc;
    add.bin_op = op;
    add.a = e;
    add.b = one_id;
    ExprId add_id = prog_.add_expr(std::move(add));
    Stmt s;
    s.kind = StmtKind::Assign;
    s.loc = loc;
    s.e1 = lhs;
    s.e2 = add_id;
    return prog_.add_stmt(std::move(s));
  }
  expect(Tok::Semi, "after expression statement");
  Stmt s;
  s.kind = StmtKind::ExprStmt;
  s.loc = loc;
  s.e1 = e;
  return prog_.add_stmt(std::move(s));
}

ExprId Parser::require_location(ExprId e, std::string_view what) {
  if (!is_location_kind(prog_.expr(e).kind)) {
    diags_.error(prog_.expr(e).loc,
                 "expected a location (x, x.fd, x[e]) as " + std::string(what));
  }
  return e;
}

// ---------------------------------------------------------------------------
// Expressions

ExprId Parser::parse_expr() { return parse_binary(1); }

ExprId Parser::parse_binary(int min_prec) {
  ExprId lhs = parse_unary();
  while (true) {
    Tok op = peek().kind;
    int prec = precedence(op);
    if (prec < min_prec || prec == 0) return lhs;
    SourceLoc loc = advance().loc;
    ExprId rhs = parse_binary(prec + 1);  // left-associative
    Expr e;
    e.kind = ExprKind::Binary;
    e.loc = loc;
    e.bin_op = to_binop(op);
    e.a = lhs;
    e.b = rhs;
    lhs = prog_.add_expr(std::move(e));
  }
}

ExprId Parser::parse_unary() {
  // Every expression recursion cycle (unary chains, parenthesized and call
  // arguments via parse_primary) passes through here, so one guard bounds
  // expression depth.
  DepthScope depth(*this);
  if (depth.exceeded()) {
    report_deep_nesting();
    Expr e;
    e.kind = ExprKind::IntLit;
    e.loc = advance().loc;  // consume to guarantee progress
    return prog_.add_expr(std::move(e));
  }
  if (check(Tok::Not) || check(Tok::Minus)) {
    UnOp op = check(Tok::Not) ? UnOp::Not : UnOp::Neg;
    SourceLoc loc = advance().loc;
    ExprId operand = parse_unary();
    Expr e;
    e.kind = ExprKind::Unary;
    e.loc = loc;
    e.un_op = op;
    e.a = operand;
    return prog_.add_expr(std::move(e));
  }
  return parse_postfix();
}

ExprId Parser::parse_postfix() {
  ExprId base = parse_primary();
  while (true) {
    if (match(Tok::Dot)) {
      const Token& field = expect(Tok::Ident, "field name");
      Expr e;
      e.kind = ExprKind::Field;
      e.loc = field.loc;
      e.a = base;
      e.name = intern(field);
      base = prog_.add_expr(std::move(e));
    } else if (check(Tok::LBracket)) {
      SourceLoc loc = advance().loc;
      ExprId index = parse_expr();
      expect(Tok::RBracket, "after array index");
      Expr e;
      e.kind = ExprKind::Index;
      e.loc = loc;
      e.a = base;
      e.b = index;
      base = prog_.add_expr(std::move(e));
    } else {
      return base;
    }
  }
}

ExprId Parser::parse_primary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case Tok::IntLit: {
      advance();
      Expr e;
      e.kind = ExprKind::IntLit;
      e.loc = tok.loc;
      e.int_value = tok.int_value;
      return prog_.add_expr(std::move(e));
    }
    case Tok::KwTrue:
    case Tok::KwFalse: {
      advance();
      Expr e;
      e.kind = ExprKind::BoolLit;
      e.loc = tok.loc;
      e.bool_value = tok.kind == Tok::KwTrue;
      return prog_.add_expr(std::move(e));
    }
    case Tok::KwNull: {
      advance();
      Expr e;
      e.kind = ExprKind::NullLit;
      e.loc = tok.loc;
      return prog_.add_expr(std::move(e));
    }
    case Tok::Ident: {
      advance();
      if (check(Tok::LParen)) {
        // Procedure call: name(args...). Eliminated by the inliner.
        advance();
        Expr e;
        e.kind = ExprKind::Call;
        e.loc = tok.loc;
        e.name = intern(tok);
        if (!check(Tok::RParen)) {
          do {
            e.args.push_back(parse_expr());
          } while (match(Tok::Comma));
        }
        expect(Tok::RParen, "to close call arguments");
        return prog_.add_expr(std::move(e));
      }
      Expr e;
      e.kind = ExprKind::VarRef;
      e.loc = tok.loc;
      e.name = intern(tok);
      return prog_.add_expr(std::move(e));
    }
    case Tok::KwNew: {
      advance();
      const Token& cname = expect(Tok::Ident, "class name after 'new'");
      // Optional `()`.
      if (match(Tok::LParen)) expect(Tok::RParen, "after 'new C('");
      Expr e;
      e.kind = ExprKind::New;
      e.loc = tok.loc;
      e.name = intern(cname);
      return prog_.add_expr(std::move(e));
    }
    case Tok::KwLL:
    case Tok::KwVL: {
      advance();
      expect(Tok::LParen, "after LL/VL");
      ExprId loc_e = require_location(parse_expr(), "LL/VL operand");
      expect(Tok::RParen, "after LL/VL operand");
      Expr e;
      e.kind = tok.kind == Tok::KwLL ? ExprKind::LL : ExprKind::VL;
      e.loc = tok.loc;
      e.a = loc_e;
      return prog_.add_expr(std::move(e));
    }
    case Tok::KwSC: {
      advance();
      expect(Tok::LParen, "after SC");
      ExprId loc_e = require_location(parse_expr(), "SC target");
      expect(Tok::Comma, "between SC operands");
      ExprId val = parse_expr();
      expect(Tok::RParen, "after SC operands");
      Expr e;
      e.kind = ExprKind::SC;
      e.loc = tok.loc;
      e.a = loc_e;
      e.b = val;
      return prog_.add_expr(std::move(e));
    }
    case Tok::KwCAS: {
      advance();
      expect(Tok::LParen, "after CAS");
      ExprId loc_e = require_location(parse_expr(), "CAS target");
      expect(Tok::Comma, "between CAS operands");
      ExprId expected = parse_expr();
      expect(Tok::Comma, "between CAS operands");
      ExprId desired = parse_expr();
      expect(Tok::RParen, "after CAS operands");
      Expr e;
      e.kind = ExprKind::CAS;
      e.loc = tok.loc;
      e.a = loc_e;
      e.b = expected;
      e.c = desired;
      return prog_.add_expr(std::move(e));
    }
    case Tok::LParen: {
      advance();
      ExprId inner = parse_expr();
      expect(Tok::RParen, "to close parenthesized expression");
      return inner;
    }
    default: {
      diags_.error(tok.loc,
                   "expected expression, found '" + std::string(tok.text) + "'");
      advance();
      Expr e;
      e.kind = ExprKind::IntLit;
      e.loc = tok.loc;
      return prog_.add_expr(std::move(e));
    }
  }
}

Program parse_and_check(std::string_view source, DiagEngine& diags) {
  Parser parser(source, diags);
  Program prog = parser.parse_program();
  if (!diags.has_errors()) inline_calls(prog, diags);
  if (!diags.has_errors()) run_sema(prog, diags);
  return prog;
}

FrontEnd parse_and_recover(std::string_view source, DiagEngine& diags) {
  FrontEnd fe;
  Parser parser(source, diags);
  fe.prog = parser.parse_program();
  fe.contained = !parser.had_toplevel_errors();
  if (!fe.contained) return fe;
  if (!inline_calls(fe.prog, diags, /*contain=*/true)) fe.contained = false;
  if (fe.contained && !run_sema(fe.prog, diags, /*contain=*/true))
    fe.contained = false;
  return fe;
}

}  // namespace synat::synl
