#include "synat/synl/inline.h"

#include <string>
#include <vector>

namespace synat::synl {

// ---------------------------------------------------------------------------
// Deep cloning (shared with the variant generator's private copy; kept here
// so the inliner owns its own arena discipline).

namespace {

ExprId clone_expr_deep(Program& prog, ExprId id) {
  if (!id.valid()) return id;
  Expr e = prog.expr(id);
  e.a = clone_expr_deep(prog, e.a);
  e.b = clone_expr_deep(prog, e.b);
  e.c = clone_expr_deep(prog, e.c);
  for (ExprId& arg : e.args) arg = clone_expr_deep(prog, arg);
  return prog.add_expr(std::move(e));
}

StmtId clone_stmt_deep(Program& prog, StmtId id) {
  if (!id.valid()) return id;
  Stmt s = prog.stmt(id);
  s.e1 = clone_expr_deep(prog, s.e1);
  s.e2 = clone_expr_deep(prog, s.e2);
  s.s1 = clone_stmt_deep(prog, s.s1);
  s.s2 = clone_stmt_deep(prog, s.s2);
  for (StmtId& child : s.stmts) child = clone_stmt_deep(prog, child);
  return prog.add_stmt(std::move(s));
}

class Inliner {
 public:
  Inliner(Program& prog, DiagEngine& diags, bool contain)
      : prog_(prog), diags_(diags), contain_(contain) {}

  bool run() {
    size_t num_procs = prog_.num_procs();  // expansions add no procedures
    for (size_t i = 0; i < num_procs; ++i) {
      ProcId pid(static_cast<uint32_t>(i));
      if (prog_.proc(pid).broken) continue;
      size_t before = diags_.num_errors();
      std::vector<ProcId> stack{pid};
      rewrite_stmt(prog_.proc(pid).body, stack);
      if (contain_ && diags_.num_errors() != before) mark_proc_broken(prog_, pid);
    }
    // Any surviving call is in an unsupported position.
    for (size_t i = 0; i < num_procs; ++i) {
      ProcId pid(static_cast<uint32_t>(i));
      if (prog_.proc(pid).broken) continue;
      size_t before = diags_.num_errors();
      for_each_expr_in_stmt(prog_, prog_.proc(pid).body, [&](ExprId e) {
        if (prog_.expr(e).kind == ExprKind::Call) {
          error(prog_.expr(e).loc,
                "procedure calls are only supported as statements or as the "
                "entire right-hand side of an assignment/initializer");
        }
      });
      if (contain_ && diags_.num_errors() != before) mark_proc_broken(prog_, pid);
    }
    return contain_ || ok_;
  }

 private:
  void error(SourceLoc loc, const std::string& msg) {
    diags_.error(loc, msg);
    ok_ = false;
  }

  Symbol fresh(const std::string& base) {
    return prog_.syms().intern("__" + base + std::to_string(counter_));
  }

  ExprId make_var(Symbol name, SourceLoc loc) {
    Expr e;
    e.kind = ExprKind::VarRef;
    e.name = name;
    e.loc = loc;
    return prog_.add_expr(std::move(e));
  }

  ExprId default_for(TypeId ret, SourceLoc loc) {
    Expr e;
    e.loc = loc;
    if (ret.valid() && (prog_.type(ret).kind == TypeKind::Ref ||
                        prog_.type(ret).kind == TypeKind::Null ||
                        prog_.type(ret).kind == TypeKind::Array)) {
      e.kind = ExprKind::NullLit;
    } else if (ret.valid() && prog_.type(ret).kind == TypeKind::Bool) {
      e.kind = ExprKind::BoolLit;
      e.bool_value = false;
    } else {
      e.kind = ExprKind::IntLit;
      e.int_value = 0;
    }
    return prog_.add_expr(std::move(e));
  }

  StmtId make_stmt(Stmt s) { return prog_.add_stmt(std::move(s)); }

  /// Replaces every `return [e]` in the cloned callee body with
  /// `{ __ret := e; break __inl; }` (the assignment only when a value is
  /// returned and wanted).
  void lower_returns(StmtId id, Symbol ret_name, Symbol label) {
    if (!id.valid()) return;
    Stmt& s = prog_.stmt(id);
    if (s.kind == StmtKind::Return) {
      ExprId value = s.e1;
      SourceLoc loc = s.loc;
      std::vector<StmtId> seq;
      if (value.valid() && ret_name.valid()) {
        Stmt assign;
        assign.kind = StmtKind::Assign;
        assign.loc = loc;
        assign.e1 = make_var(ret_name, loc);
        assign.e2 = value;
        seq.push_back(make_stmt(std::move(assign)));
      }
      Stmt brk;
      brk.kind = StmtKind::Break;
      brk.loc = loc;
      brk.label = label;
      seq.push_back(make_stmt(std::move(brk)));
      Stmt& self = prog_.stmt(id);  // re-fetch: arena may have grown
      self.kind = StmtKind::Block;
      self.e1 = ExprId();
      self.stmts = std::move(seq);
      return;
    }
    StmtId s1 = s.s1, s2 = s.s2;
    std::vector<StmtId> children = s.stmts;
    lower_returns(s1, ret_name, label);
    lower_returns(s2, ret_name, label);
    for (StmtId c : children) lower_returns(c, ret_name, label);
  }

  /// Builds the expansion statement for `dst := callee(args)`.
  /// `dst` is a location expression (invalid for statement calls).
  // `args` by value: the expansion grows the expression arena, which would
  // invalidate a reference into an Expr node's argument list.
  StmtId expand(ProcId callee, std::vector<ExprId> args, ExprId dst,
                SourceLoc loc, std::vector<ProcId>& stack) {
    const ProcInfo& info = prog_.proc(callee);
    if (args.size() != info.params.size()) {
      error(loc, "call to '" + std::string(prog_.syms().name(info.name)) +
                     "' with " + std::to_string(args.size()) +
                     " argument(s); expected " +
                     std::to_string(info.params.size()));
      return make_stmt(Stmt{});  // skip
    }
    for (ProcId p : stack) {
      if (p == callee) {
        error(loc, "recursive call to '" +
                       std::string(prog_.syms().name(info.name)) +
                       "' (SYNL does not support recursion)");
        return make_stmt(Stmt{});
      }
    }

    ++counter_;
    Symbol label = fresh("inl");
    Symbol ret_name = dst.valid() ? fresh("ret") : Symbol();
    std::vector<Symbol> arg_names;
    for (size_t i = 0; i < args.size(); ++i)
      arg_names.push_back(fresh("arg" + std::to_string(i) + "_"));

    // Callee body with returns lowered.
    StmtId body = clone_stmt_deep(prog_, info.body);
    lower_returns(body, ret_name, label);

    // Bind the callee's parameters to the argument temporaries.
    StmtId inner = body;
    for (size_t i = args.size(); i-- > 0;) {
      Stmt bind;
      bind.kind = StmtKind::Local;
      bind.loc = loc;
      bind.name = prog_.var(info.params[i]).name;
      bind.declared_type = prog_.var(info.params[i]).type;
      bind.e1 = make_var(arg_names[i], loc);
      bind.s1 = inner;
      inner = make_stmt(std::move(bind));
    }

    // The single-iteration labeled loop `return` breaks out of.
    Stmt trailing_break;
    trailing_break.kind = StmtKind::Break;
    trailing_break.loc = loc;
    trailing_break.label = label;
    Stmt loop_body;
    loop_body.kind = StmtKind::Block;
    loop_body.loc = loc;
    loop_body.stmts = {inner, make_stmt(std::move(trailing_break))};
    Stmt loop;
    loop.kind = StmtKind::Loop;
    loop.loc = loc;
    loop.label = label;
    loop.s1 = make_stmt(std::move(loop_body));
    StmtId loop_id = make_stmt(std::move(loop));

    // loop; dst := __ret
    std::vector<StmtId> core{loop_id};
    if (dst.valid()) {
      Stmt assign;
      assign.kind = StmtKind::Assign;
      assign.loc = loc;
      assign.e1 = dst;
      assign.e2 = make_var(ret_name, loc);
      core.push_back(make_stmt(std::move(assign)));
    }
    Stmt core_block;
    core_block.kind = StmtKind::Block;
    core_block.loc = loc;
    core_block.stmts = std::move(core);
    StmtId result = make_stmt(std::move(core_block));

    // Wrap in __ret and argument temporaries (arguments evaluate first, in
    // the caller's scope, so no callee name can capture them).
    if (dst.valid()) {
      Stmt ret_local;
      ret_local.kind = StmtKind::Local;
      ret_local.loc = loc;
      ret_local.name = ret_name;
      ret_local.declared_type = info.ret_type;
      ret_local.e1 = default_for(info.ret_type, loc);
      ret_local.s1 = result;
      result = make_stmt(std::move(ret_local));
    }
    for (size_t i = args.size(); i-- > 0;) {
      Stmt arg_local;
      arg_local.kind = StmtKind::Local;
      arg_local.loc = loc;
      arg_local.name = arg_names[i];
      arg_local.declared_type = prog_.var(info.params[i]).type;
      arg_local.e1 = args[i];
      arg_local.s1 = result;
      result = make_stmt(std::move(arg_local));
    }

    // The callee body itself may contain calls.
    stack.push_back(callee);
    rewrite_stmt(result, stack);
    stack.pop_back();
    return result;
  }

  /// If `e` is a Call, resolves its callee; returns true when handled.
  bool callee_of(ExprId e, ProcId& out) {
    const Expr& expr = prog_.expr(e);
    if (expr.kind != ExprKind::Call) return false;
    for (size_t i = 0; i < prog_.num_procs(); ++i) {
      ProcId pid(static_cast<uint32_t>(i));
      if (prog_.proc(pid).name == expr.name) {
        if (prog_.proc(pid).broken) {
          // Only reachable in contain mode; the error propagates brokenness
          // to the caller, so no half-parsed body is ever inlined.
          error(expr.loc, "call to procedure '" +
                              std::string(prog_.syms().name(expr.name)) +
                              "', which failed to parse");
          out = ProcId();
          return true;
        }
        out = pid;
        return true;
      }
    }
    error(expr.loc, "call to unknown procedure '" +
                        std::string(prog_.syms().name(expr.name)) + "'");
    out = ProcId();
    return true;
  }

  /// Overwrites statement `id` with `replacement`'s contents (keeping the
  /// original StmtId valid for the parent).
  void replace_with(StmtId id, StmtId replacement) {
    prog_.stmt(id) = prog_.stmt(replacement);
  }

  void rewrite_stmt(StmtId id, std::vector<ProcId>& stack) {
    if (!id.valid()) return;
    const Stmt snapshot = prog_.stmt(id);
    switch (snapshot.kind) {
      case StmtKind::ExprStmt: {
        ProcId callee;
        if (callee_of(snapshot.e1, callee)) {
          if (!callee.valid()) return;
          StmtId exp = expand(callee, prog_.expr(snapshot.e1).args, ExprId(),
                              snapshot.loc, stack);
          replace_with(id, exp);
        }
        return;
      }
      case StmtKind::Assign: {
        ProcId callee;
        if (callee_of(snapshot.e2, callee)) {
          if (!callee.valid()) return;
          StmtId exp = expand(callee, prog_.expr(snapshot.e2).args,
                              snapshot.e1, snapshot.loc, stack);
          replace_with(id, exp);
        }
        return;
      }
      case StmtKind::Local: {
        ProcId callee;
        if (callee_of(snapshot.e1, callee)) {
          if (!callee.valid()) return;
          // Guard against the initializer's arguments referring to an
          // outer variable this local is about to shadow.
          for (ExprId arg : prog_.expr(snapshot.e1).args) {
            bool shadows = false;
            for_each_subexpr(prog_, arg, [&](ExprId sub) {
              if (prog_.expr(sub).kind == ExprKind::VarRef &&
                  prog_.expr(sub).name == snapshot.name)
                shadows = true;
            });
            if (shadows) {
              error(snapshot.loc,
                    "call argument refers to the variable the initializer "
                    "declares; rename one of them");
              return;
            }
          }
          TypeId ret = prog_.proc(callee).ret_type;
          ExprId dst = make_var(snapshot.name, snapshot.loc);
          StmtId exp = expand(callee, prog_.expr(snapshot.e1).args, dst,
                              snapshot.loc, stack);
          Stmt seq;
          seq.kind = StmtKind::Block;
          seq.loc = snapshot.loc;
          seq.stmts = {exp, snapshot.s1};
          // Materialize all new nodes BEFORE taking a reference into the
          // arena (make_stmt/default_for may reallocate it).
          ExprId def = default_for(ret, snapshot.loc);
          StmtId seq_id = make_stmt(std::move(seq));
          Stmt& self = prog_.stmt(id);
          self.e1 = def;
          self.declared_type = ret;
          self.s1 = seq_id;
          rewrite_stmt(snapshot.s1, stack);
          return;
        }
        rewrite_stmt(snapshot.s1, stack);
        return;
      }
      case StmtKind::Block:
        for (StmtId child : snapshot.stmts) rewrite_stmt(child, stack);
        return;
      case StmtKind::If:
        rewrite_stmt(snapshot.s1, stack);
        rewrite_stmt(snapshot.s2, stack);
        return;
      case StmtKind::Loop:
      case StmtKind::Synchronized:
        rewrite_stmt(snapshot.s1, stack);
        return;
      default:
        return;
    }
  }

  Program& prog_;
  DiagEngine& diags_;
  bool contain_;
  int counter_ = 0;
  bool ok_ = true;
};

}  // namespace

bool inline_calls(Program& prog, DiagEngine& diags, bool contain) {
  return Inliner(prog, diags, contain).run();
}

}  // namespace synat::synl
