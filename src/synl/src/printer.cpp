#include "synat/synl/printer.h"

#include <string>

namespace synat::synl {

namespace {

int binop_prec(BinOp op) {
  switch (op) {
    case BinOp::Or: return 1;
    case BinOp::And: return 2;
    case BinOp::Eq:
    case BinOp::Ne: return 3;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: return 4;
    case BinOp::Add:
    case BinOp::Sub: return 5;
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Mod: return 6;
  }
  return 0;
}

void print_expr_prec(const Program& prog, ExprId id, int parent_prec,
                     std::string& out) {
  const Expr& e = prog.expr(id);
  switch (e.kind) {
    case ExprKind::IntLit:
      out += std::to_string(e.int_value);
      break;
    case ExprKind::BoolLit:
      out += e.bool_value ? "true" : "false";
      break;
    case ExprKind::NullLit:
      out += "null";
      break;
    case ExprKind::VarRef:
      out += prog.syms().name(e.name);
      break;
    case ExprKind::Field:
      print_expr_prec(prog, e.a, 100, out);
      out += '.';
      out += prog.syms().name(e.name);
      break;
    case ExprKind::Index:
      print_expr_prec(prog, e.a, 100, out);
      out += '[';
      print_expr_prec(prog, e.b, 0, out);
      out += ']';
      break;
    case ExprKind::Unary:
      out += to_string(e.un_op);
      print_expr_prec(prog, e.a, 99, out);
      break;
    case ExprKind::Binary: {
      int prec = binop_prec(e.bin_op);
      bool parens = prec < parent_prec;
      if (parens) out += '(';
      print_expr_prec(prog, e.a, prec, out);
      out += ' ';
      out += to_string(e.bin_op);
      out += ' ';
      print_expr_prec(prog, e.b, prec + 1, out);
      if (parens) out += ')';
      break;
    }
    case ExprKind::LL:
      out += "LL(";
      print_expr_prec(prog, e.a, 0, out);
      out += ')';
      break;
    case ExprKind::VL:
      out += "VL(";
      print_expr_prec(prog, e.a, 0, out);
      out += ')';
      break;
    case ExprKind::SC:
      out += "SC(";
      print_expr_prec(prog, e.a, 0, out);
      out += ", ";
      print_expr_prec(prog, e.b, 0, out);
      out += ')';
      break;
    case ExprKind::CAS:
      out += "CAS(";
      print_expr_prec(prog, e.a, 0, out);
      out += ", ";
      print_expr_prec(prog, e.b, 0, out);
      out += ", ";
      print_expr_prec(prog, e.c, 0, out);
      out += ')';
      break;
    case ExprKind::New:
      out += "new ";
      out += prog.syms().name(e.name);
      break;
    case ExprKind::Call:
      out += prog.syms().name(e.name);
      out += '(';
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ", ";
        print_expr_prec(prog, e.args[i], 0, out);
      }
      out += ')';
      break;
  }
}

struct StmtPrinter {
  const Program& prog;
  const PrintOptions& opts;
  std::string out;

  void pad(int indent) { out.append(static_cast<size_t>(indent), ' '); }

  void print(StmtId id, int indent) {
    const Stmt& s = prog.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign:
        pad(indent);
        out += print_expr(prog, s.e1);
        out += " := ";
        out += print_expr(prog, s.e2);
        out += ";\n";
        break;
      case StmtKind::ExprStmt:
        pad(indent);
        out += print_expr(prog, s.e1);
        out += ";\n";
        break;
      case StmtKind::Block:
        pad(indent);
        out += "{\n";
        for (StmtId child : s.stmts) print(child, indent + opts.indent_width);
        pad(indent);
        out += "}\n";
        break;
      case StmtKind::If:
        pad(indent);
        out += "if (";
        out += print_expr(prog, s.e1);
        out += ")\n";
        print_indented(s.s1, indent);
        if (s.s2.valid()) {
          pad(indent);
          out += "else\n";
          print_indented(s.s2, indent);
        }
        break;
      case StmtKind::Local:
        pad(indent);
        out += "local ";
        out += prog.syms().name(s.name);
        if (opts.show_types && s.var.valid()) {
          out += " : ";
          out += prog.type_str(prog.var(s.var).type);
        }
        out += " := ";
        out += print_expr(prog, s.e1);
        out += " in\n";
        print_indented(s.s1, indent);
        break;
      case StmtKind::Loop:
        pad(indent);
        if (s.label.valid()) {
          out += prog.syms().name(s.label);
          out += ": ";
        }
        out += "loop\n";
        print_indented(s.s1, indent);
        break;
      case StmtKind::Return:
        pad(indent);
        out += "return";
        if (s.e1.valid()) {
          out += ' ';
          out += print_expr(prog, s.e1);
        }
        out += ";\n";
        break;
      case StmtKind::Break:
        pad(indent);
        out += "break";
        if (s.label.valid()) {
          out += ' ';
          out += prog.syms().name(s.label);
        }
        out += ";\n";
        break;
      case StmtKind::Continue:
        pad(indent);
        out += "continue";
        if (s.label.valid()) {
          out += ' ';
          out += prog.syms().name(s.label);
        }
        out += ";\n";
        break;
      case StmtKind::Skip:
        pad(indent);
        out += "skip;\n";
        break;
      case StmtKind::Synchronized:
        pad(indent);
        out += "synchronized (";
        out += print_expr(prog, s.e1);
        out += ")\n";
        print_indented(s.s1, indent);
        break;
      case StmtKind::Assume:
        pad(indent);
        out += "TRUE(";
        out += print_expr(prog, s.e1);
        out += ");\n";
        break;
      case StmtKind::Assert:
        pad(indent);
        out += "assert(";
        out += print_expr(prog, s.e1);
        out += ");\n";
        break;
    }
  }

  /// Child statements always print as indented sub-lines; blocks keep their
  /// own braces at the parent's indent so re-parsing is unambiguous.
  void print_indented(StmtId id, int indent) {
    if (prog.stmt(id).kind == StmtKind::Block) {
      print(id, indent);
    } else {
      print(id, indent + opts.indent_width);
    }
  }
};

}  // namespace

std::string print_expr(const Program& prog, ExprId id) {
  if (!id.valid()) return "<none>";
  std::string out;
  print_expr_prec(prog, id, 0, out);
  return out;
}

std::string print_stmt(const Program& prog, StmtId id, const PrintOptions& opts,
                       int indent) {
  if (!id.valid()) return "";
  StmtPrinter p{prog, opts, {}};
  p.print(id, indent);
  return std::move(p.out);
}

std::string print_proc(const Program& prog, ProcId id, const PrintOptions& opts) {
  const ProcInfo& p = prog.proc(id);
  std::string out = "proc ";
  if (p.ret_type.valid()) {
    std::string rt = prog.type_str(p.ret_type);
    if (rt != "?") {
      out += rt;
      out += ' ';
    }
  }
  out += prog.syms().name(p.name);
  out += '(';
  for (size_t i = 0; i < p.params.size(); ++i) {
    if (i) out += ", ";
    const VarInfo& v = prog.var(p.params[i]);
    std::string ty = prog.type_str(v.type);
    if (ty != "?") {
      out += ty;
      out += ' ';
    }
    out += prog.syms().name(v.name);
  }
  out += ")\n";
  out += print_stmt(prog, p.body, opts, 0);
  return out;
}

std::string print_program(const Program& prog, const PrintOptions& opts) {
  std::string out;
  for (size_t i = 0; i < prog.num_classes(); ++i) {
    const ClassInfo& c = prog.cls(ClassId(static_cast<uint32_t>(i)));
    if (!c.defined) continue;  // forward-reference stub
    out += "class ";
    out += prog.syms().name(c.name);
    out += " {\n";
    for (const FieldInfo& f : c.fields) {
      out += "  ";
      out += prog.type_str(f.type);
      out += ' ';
      out += prog.syms().name(f.name);
      out += ";\n";
    }
    out += "}\n";
  }
  for (VarId v : prog.globals()) {
    out += "global ";
    out += prog.type_str(prog.var(v).type);
    out += ' ';
    out += prog.syms().name(prog.var(v).name);
    out += ";\n";
  }
  for (VarId v : prog.threadlocals()) {
    out += "threadlocal ";
    out += prog.type_str(prog.var(v).type);
    out += ' ';
    out += prog.syms().name(prog.var(v).name);
    out += ";\n";
  }
  for (size_t i = 0; i < prog.num_procs(); ++i) {
    out += '\n';
    out += print_proc(prog, ProcId(static_cast<uint32_t>(i)), opts);
  }
  return out;
}

std::string stmt_head(const Program& prog, StmtId id) {
  const Stmt& s = prog.stmt(id);
  switch (s.kind) {
    case StmtKind::Assign:
      return print_expr(prog, s.e1) + " := " + print_expr(prog, s.e2);
    case StmtKind::ExprStmt:
      return print_expr(prog, s.e1);
    case StmtKind::Block:
      return "{...}";
    case StmtKind::If:
      return "if (" + print_expr(prog, s.e1) + ")";
    case StmtKind::Local:
      return "local " + std::string(prog.syms().name(s.name)) + " := " +
             print_expr(prog, s.e1) + " in";
    case StmtKind::Loop:
      return "loop";
    case StmtKind::Return:
      return s.e1.valid() ? "return " + print_expr(prog, s.e1) : "return";
    case StmtKind::Break:
      return "break";
    case StmtKind::Continue:
      return "continue";
    case StmtKind::Skip:
      return "skip";
    case StmtKind::Synchronized:
      return "synchronized (" + print_expr(prog, s.e1) + ")";
    case StmtKind::Assume:
      return "TRUE(" + print_expr(prog, s.e1) + ")";
    case StmtKind::Assert:
      return "assert(" + print_expr(prog, s.e1) + ")";
  }
  return "?";
}

}  // namespace synat::synl
