#include "synat/synl/sema.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace synat::synl {

namespace {

class Resolver {
 public:
  Resolver(Program& prog, ProcId proc, DiagEngine& diags)
      : prog_(prog), proc_(proc), diags_(diags) {}

  void run() {
    // Program-scope names: globals and threadlocals.
    for (VarId v : prog_.globals()) scope_global_[prog_.var(v).name] = v;
    for (VarId v : prog_.threadlocals()) scope_global_[prog_.var(v).name] = v;

    ProcInfo& p = prog_.proc(proc_);
    p.locals.clear();
    push_scope();
    for (VarId v : p.params) declare(v);
    resolve_stmt(p.body);
    pop_scope();
  }

 private:
  struct LoopCtx {
    StmtId stmt;
    Symbol label;
  };

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(VarId v) {
    Symbol name = prog_.var(v).name;
    auto& top = scopes_.back();
    if (top.contains(name)) {
      diags_.error(prog_.var(v).loc,
                   "redeclaration of '" + std::string(prog_.syms().name(name)) +
                       "' in the same scope");
    }
    top[name] = v;
  }

  VarId lookup(Symbol name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (auto f = it->find(name); f != it->end()) return f->second;
    }
    if (auto f = scope_global_.find(name); f != scope_global_.end())
      return f->second;
    return VarId();
  }

  TypeId location_type(ExprId id) { return prog_.expr(id).type; }

  void require_ref(ExprId id, std::string_view what) {
    const Expr& e = prog_.expr(id);
    if (!e.type.valid()) return;
    TypeKind k = prog_.type(e.type).kind;
    if (k != TypeKind::Ref && k != TypeKind::Unknown && k != TypeKind::Null) {
      diags_.error(e.loc, std::string(what) + " requires a reference, got " +
                              prog_.type_str(e.type));
    }
  }

  /// Loose compatibility: Unknown matches anything, Null matches refs.
  bool compatible(TypeId a, TypeId b) const {
    if (!a.valid() || !b.valid()) return true;
    const TypeNode& ta = prog_.type(a);
    const TypeNode& tb = prog_.type(b);
    if (ta.kind == TypeKind::Unknown || tb.kind == TypeKind::Unknown) return true;
    if (ta.kind == TypeKind::Null) return tb.kind == TypeKind::Ref || tb.kind == TypeKind::Null;
    if (tb.kind == TypeKind::Null) return ta.kind == TypeKind::Ref;
    if (ta.kind != tb.kind) return false;
    if (ta.kind == TypeKind::Ref) return ta.cls == tb.cls;
    if (ta.kind == TypeKind::Array) return compatible(ta.elem, tb.elem);
    return true;
  }

  void resolve_expr(ExprId id) {
    if (!id.valid()) return;
    Expr& e = prog_.expr(id);
    switch (e.kind) {
      case ExprKind::IntLit:
        e.type = prog_.int_type();
        break;
      case ExprKind::BoolLit:
        e.type = prog_.bool_type();
        break;
      case ExprKind::NullLit:
        e.type = prog_.null_type();
        break;
      case ExprKind::VarRef: {
        e.var = lookup(e.name);
        if (!e.var.valid()) {
          diags_.error(e.loc, "undeclared variable '" +
                                  std::string(prog_.syms().name(e.name)) + "'");
          e.type = prog_.unknown_type();
        } else {
          e.type = prog_.var(e.var).type;
        }
        break;
      }
      case ExprKind::Field: {
        resolve_expr(e.a);
        require_ref(e.a, "field access");
        e.type = prog_.unknown_type();
        const Expr& base = prog_.expr(e.a);
        if (base.type.valid() && prog_.type(base.type).kind == TypeKind::Ref) {
          const ClassInfo& c = prog_.cls(prog_.type(base.type).cls);
          int idx = c.field_index(e.name);
          if (idx < 0) {
            diags_.error(e.loc, "class '" +
                                    std::string(prog_.syms().name(c.name)) +
                                    "' has no field '" +
                                    std::string(prog_.syms().name(e.name)) + "'");
          } else {
            e.type = c.fields[static_cast<size_t>(idx)].type;
          }
        }
        break;
      }
      case ExprKind::Index: {
        resolve_expr(e.a);
        resolve_expr(e.b);
        const Expr& base = prog_.expr(e.a);
        e.type = prog_.unknown_type();
        if (base.type.valid() && prog_.type(base.type).kind == TypeKind::Array) {
          e.type = prog_.type(base.type).elem;
        }
        if (prog_.expr(e.b).type.valid() &&
            prog_.type(prog_.expr(e.b).type).kind == TypeKind::Bool) {
          diags_.error(prog_.expr(e.b).loc, "array index must be an int");
        }
        break;
      }
      case ExprKind::Unary: {
        resolve_expr(e.a);
        e.type = e.un_op == UnOp::Not ? prog_.bool_type() : prog_.int_type();
        break;
      }
      case ExprKind::Binary: {
        resolve_expr(e.a);
        resolve_expr(e.b);
        switch (e.bin_op) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::Mul:
          case BinOp::Div:
          case BinOp::Mod:
            e.type = prog_.int_type();
            break;
          case BinOp::Eq:
          case BinOp::Ne:
            if (!compatible(prog_.expr(e.a).type, prog_.expr(e.b).type)) {
              diags_.error(e.loc, "comparison between incompatible types " +
                                      prog_.type_str(prog_.expr(e.a).type) +
                                      " and " +
                                      prog_.type_str(prog_.expr(e.b).type));
            }
            e.type = prog_.bool_type();
            break;
          default:
            e.type = prog_.bool_type();
            break;
        }
        break;
      }
      case ExprKind::LL: {
        resolve_expr(e.a);
        e.type = location_type(e.a);
        break;
      }
      case ExprKind::VL: {
        resolve_expr(e.a);
        e.type = prog_.bool_type();
        break;
      }
      case ExprKind::SC: {
        resolve_expr(e.a);
        resolve_expr(e.b);
        if (!compatible(location_type(e.a), prog_.expr(e.b).type)) {
          diags_.error(e.loc, "SC value type " +
                                  prog_.type_str(prog_.expr(e.b).type) +
                                  " does not match target type " +
                                  prog_.type_str(location_type(e.a)));
        }
        e.type = prog_.bool_type();
        break;
      }
      case ExprKind::CAS: {
        resolve_expr(e.a);
        resolve_expr(e.b);
        resolve_expr(e.c);
        if (!compatible(location_type(e.a), prog_.expr(e.b).type) ||
            !compatible(location_type(e.a), prog_.expr(e.c).type)) {
          diags_.error(e.loc, "CAS operand types do not match target type " +
                                  prog_.type_str(location_type(e.a)));
        }
        e.type = prog_.bool_type();
        break;
      }
      case ExprKind::New: {
        e.new_class = prog_.find_class(e.name);
        if (!e.new_class.valid()) {
          diags_.error(e.loc, "unknown class '" +
                                  std::string(prog_.syms().name(e.name)) + "'");
          e.type = prog_.unknown_type();
        } else {
          e.type = prog_.ref_type(e.new_class);
        }
        break;
      }
      case ExprKind::Call: {
        // Calls must have been eliminated by inline_calls before sema
        // (SYNL itself has no procedure calls).
        diags_.error(e.loc,
                     "procedure call survived to semantic analysis; run "
                     "inline_calls first (or the call site is not an "
                     "inlinable position)");
        // Copy the list: resolving arguments cannot invalidate `e` (sema
        // adds no expressions), but stay defensive.
        std::vector<ExprId> args = e.args;
        for (ExprId arg : args) resolve_expr(arg);
        prog_.expr(id).type = prog_.unknown_type();
        break;
      }
    }
  }

  void resolve_stmt(StmtId id) {
    if (!id.valid()) return;
    Stmt& s = prog_.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign: {
        resolve_expr(s.e1);
        resolve_expr(s.e2);
        if (!compatible(prog_.expr(s.e1).type, prog_.expr(s.e2).type)) {
          diags_.error(s.loc, "assignment of " +
                                  prog_.type_str(prog_.expr(s.e2).type) +
                                  " to location of type " +
                                  prog_.type_str(prog_.expr(s.e1).type));
        }
        break;
      }
      case StmtKind::ExprStmt:
      case StmtKind::Assume:
      case StmtKind::Assert:
        resolve_expr(s.e1);
        break;
      case StmtKind::Block: {
        push_scope();
        // Copy the child list: resolving children may grow the arena and
        // invalidate `s`.
        std::vector<StmtId> children = s.stmts;
        for (StmtId child : children) resolve_stmt(child);
        pop_scope();
        break;
      }
      case StmtKind::If: {
        resolve_expr(s.e1);
        StmtId s1 = s.s1, s2 = s.s2;
        resolve_stmt(s1);
        resolve_stmt(s2);
        break;
      }
      case StmtKind::Local: {
        resolve_expr(s.e1);
        // Infer the local's type from the annotation or the initializer.
        TypeId ty = s.declared_type;
        if ((!ty.valid() || prog_.type(ty).kind == TypeKind::Unknown) &&
            s.e1.valid()) {
          ty = prog_.expr(s.e1).type;
        }
        VarInfo v;
        v.name = s.name;
        v.kind = VarKind::Local;
        v.type = ty;
        v.proc = proc_;
        v.loc = s.loc;
        v.decl_stmt = id;
        VarId var = prog_.add_var(v);
        prog_.stmt(id).var = var;
        prog_.proc(proc_).locals.push_back(var);

        push_scope();
        declare(var);
        StmtId body = prog_.stmt(id).s1;
        resolve_stmt(body);
        pop_scope();
        break;
      }
      case StmtKind::Loop: {
        loops_.push_back({id, s.label});
        StmtId body = s.s1;
        resolve_stmt(body);
        loops_.pop_back();
        break;
      }
      case StmtKind::Return:
        resolve_expr(s.e1);
        break;
      case StmtKind::Break:
      case StmtKind::Continue: {
        StmtId target;
        if (s.label.valid()) {
          for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
            if (it->label == s.label) {
              target = it->stmt;
              break;
            }
          }
          if (!target.valid()) {
            diags_.error(s.loc, "no enclosing loop labeled '" +
                                    std::string(prog_.syms().name(s.label)) + "'");
          }
        } else if (!loops_.empty()) {
          target = loops_.back().stmt;
        } else {
          diags_.error(s.loc, std::string(to_string(s.kind)) +
                                  " outside of a loop");
        }
        s.jump_target = target;
        break;
      }
      case StmtKind::Skip:
        break;
      case StmtKind::Synchronized: {
        resolve_expr(s.e1);
        StmtId body = s.s1;
        resolve_stmt(body);
        break;
      }
    }
  }

  Program& prog_;
  ProcId proc_;
  DiagEngine& diags_;
  std::unordered_map<Symbol, VarId> scope_global_;
  std::vector<std::unordered_map<Symbol, VarId>> scopes_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

void resolve_proc(Program& prog, ProcId proc, DiagEngine& diags) {
  Resolver(prog, proc, diags).run();
}

bool run_sema(Program& prog, DiagEngine& diags, bool contain) {
  size_t toplevel_before = diags.num_errors();
  // Duplicate procedure names.
  for (size_t i = 0; i < prog.num_procs(); ++i) {
    for (size_t j = i + 1; j < prog.num_procs(); ++j) {
      if (prog.proc(ProcId(static_cast<uint32_t>(i))).name ==
          prog.proc(ProcId(static_cast<uint32_t>(j))).name) {
        diags.error(prog.proc(ProcId(static_cast<uint32_t>(j))).loc,
                    "duplicate procedure '" +
                        std::string(prog.syms().name(
                            prog.proc(ProcId(static_cast<uint32_t>(j))).name)) +
                        "'");
      }
    }
  }
  // Duplicate globals/threadlocals.
  std::unordered_map<Symbol, SourceLoc> seen;
  for (VarId v : prog.globals()) {
    auto [it, fresh] = seen.emplace(prog.var(v).name, prog.var(v).loc);
    if (!fresh)
      diags.error(prog.var(v).loc,
                  "duplicate global '" +
                      std::string(prog.syms().name(prog.var(v).name)) + "'");
  }
  for (VarId v : prog.threadlocals()) {
    auto [it, fresh] = seen.emplace(prog.var(v).name, prog.var(v).loc);
    if (!fresh)
      diags.error(prog.var(v).loc,
                  "duplicate thread-local '" +
                      std::string(prog.syms().name(prog.var(v).name)) + "'");
  }

  bool toplevel_ok = diags.num_errors() == toplevel_before;

  for (size_t i = 0; i < prog.num_procs(); ++i) {
    ProcId pid(static_cast<uint32_t>(i));
    size_t before = diags.num_errors();
    resolve_proc(prog, pid, diags);
    if (contain && !prog.proc(pid).broken && diags.num_errors() != before) {
      // Contain the failure: stub the body and re-resolve so downstream
      // passes see a well-formed (empty) procedure.
      mark_proc_broken(prog, pid);
      resolve_proc(prog, pid, diags);
    }
  }
  return contain ? toplevel_ok : !diags.has_errors();
}

}  // namespace synat::synl
