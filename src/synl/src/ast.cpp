#include "synat/synl/ast.h"

namespace synat::synl {

std::string_view to_string(UnOp op) {
  switch (op) {
    case UnOp::Not: return "!";
    case UnOp::Neg: return "-";
  }
  return "?";
}

std::string_view to_string(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

std::string_view to_string(StmtKind k) {
  switch (k) {
    case StmtKind::Assign: return "assign";
    case StmtKind::ExprStmt: return "expr";
    case StmtKind::Block: return "block";
    case StmtKind::If: return "if";
    case StmtKind::Local: return "local";
    case StmtKind::Loop: return "loop";
    case StmtKind::Return: return "return";
    case StmtKind::Break: return "break";
    case StmtKind::Continue: return "continue";
    case StmtKind::Skip: return "skip";
    case StmtKind::Synchronized: return "synchronized";
    case StmtKind::Assume: return "assume";
    case StmtKind::Assert: return "assert";
  }
  return "?";
}

std::string_view to_string(VarKind k) {
  switch (k) {
    case VarKind::Global: return "global";
    case VarKind::ThreadLocal: return "threadlocal";
    case VarKind::Param: return "param";
    case VarKind::Local: return "local";
  }
  return "?";
}

TypeId Program::ref_type(ClassId c) {
  for (size_t i = 0; i < types_.size(); ++i)
    if (types_[i].kind == TypeKind::Ref && types_[i].cls == c)
      return TypeId(static_cast<uint32_t>(i));
  return add_type({TypeKind::Ref, c, {}});
}

TypeId Program::array_type(TypeId elem) {
  for (size_t i = 0; i < types_.size(); ++i)
    if (types_[i].kind == TypeKind::Array && types_[i].elem == elem)
      return TypeId(static_cast<uint32_t>(i));
  return add_type({TypeKind::Array, {}, elem});
}

std::string Program::type_str(TypeId t) const {
  if (!t.valid()) return "<none>";
  const TypeNode& n = type(t);
  switch (n.kind) {
    case TypeKind::Unknown: return "?";
    case TypeKind::Int: return "int";
    case TypeKind::Bool: return "bool";
    case TypeKind::Null: return "null";
    case TypeKind::Ref: return std::string(syms_.name(cls(n.cls).name));
    case TypeKind::Array: return type_str(n.elem) + "[]";
  }
  return "?";
}

void mark_proc_broken(Program& prog, ProcId proc) {
  prog.proc(proc).broken = true;
  Stmt stub;
  stub.kind = StmtKind::Block;
  stub.loc = prog.proc(proc).loc;
  StmtId sid = prog.add_stmt(std::move(stub));
  prog.proc(proc).body = sid;
  prog.proc(proc).locals.clear();
}

}  // namespace synat::synl
