#include "synat/synl/lexer.h"

#include <cctype>
#include <unordered_map>

namespace synat::synl {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw = {
      {"global", Tok::KwGlobal},
      {"threadlocal", Tok::KwThreadLocal},
      {"thread_local", Tok::KwThreadLocal},
      {"class", Tok::KwClass},
      {"proc", Tok::KwProc},
      {"local", Tok::KwLocal},
      {"in", Tok::KwIn},
      {"loop", Tok::KwLoop},
      {"while", Tok::KwWhile},
      {"if", Tok::KwIf},
      {"else", Tok::KwElse},
      {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},
      {"continue", Tok::KwContinue},
      {"skip", Tok::KwSkip},
      {"synchronized", Tok::KwSynchronized},
      {"new", Tok::KwNew},
      {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},
      {"null", Tok::KwNull},
      {"LL", Tok::KwLL},
      {"SC", Tok::KwSC},
      {"VL", Tok::KwVL},
      {"CAS", Tok::KwCAS},
      {"TRUE", Tok::KwAssume},  // the paper's TRUE(e) assumption statement
      {"assume", Tok::KwAssume},
      {"assert", Tok::KwAssert},
      {"int", Tok::KwInt},
      {"bool", Tok::KwBool},
  };
  return kw;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace

std::string_view to_string(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer";
    case Tok::KwGlobal: return "global";
    case Tok::KwThreadLocal: return "threadlocal";
    case Tok::KwClass: return "class";
    case Tok::KwProc: return "proc";
    case Tok::KwLocal: return "local";
    case Tok::KwIn: return "in";
    case Tok::KwLoop: return "loop";
    case Tok::KwWhile: return "while";
    case Tok::KwIf: return "if";
    case Tok::KwElse: return "else";
    case Tok::KwReturn: return "return";
    case Tok::KwBreak: return "break";
    case Tok::KwContinue: return "continue";
    case Tok::KwSkip: return "skip";
    case Tok::KwSynchronized: return "synchronized";
    case Tok::KwNew: return "new";
    case Tok::KwTrue: return "true";
    case Tok::KwFalse: return "false";
    case Tok::KwNull: return "null";
    case Tok::KwLL: return "LL";
    case Tok::KwSC: return "SC";
    case Tok::KwVL: return "VL";
    case Tok::KwCAS: return "CAS";
    case Tok::KwAssume: return "TRUE";
    case Tok::KwAssert: return "assert";
    case Tok::KwInt: return "int";
    case Tok::KwBool: return "bool";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Semi: return ";";
    case Tok::Comma: return ",";
    case Tok::Dot: return ".";
    case Tok::Colon: return ":";
    case Tok::Assign: return ":=";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::EqEq: return "==";
    case Tok::NotEq: return "!=";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    case Tok::AndAnd: return "&&";
    case Tok::OrOr: return "||";
    case Tok::Not: return "!";
    case Tok::PlusPlus: return "++";
    case Tok::MinusMinus: return "--";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, DiagEngine& diags)
    : src_(source), diags_(diags) {}

char Lexer::peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_trivia() {
  while (pos_ < src_.size()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (pos_ < src_.size() && peek() != '\n') advance();
    } else {
      break;
    }
  }
}

Token Lexer::make(Tok kind, size_t begin, SourceLoc loc) {
  return Token{kind, loc, src_.substr(begin, pos_ - begin), 0};
}

Token Lexer::lex_ident(SourceLoc loc) {
  size_t begin = pos_;
  while (pos_ < src_.size() && is_ident_char(peek())) advance();
  std::string_view text = src_.substr(begin, pos_ - begin);
  if (auto it = keywords().find(text); it != keywords().end()) {
    return Token{it->second, loc, text, 0};
  }
  return Token{Tok::Ident, loc, text, 0};
}

Token Lexer::lex_number(SourceLoc loc) {
  size_t begin = pos_;
  int64_t value = 0;
  while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(peek()))) {
    value = value * 10 + (peek() - '0');
    advance();
  }
  Token t = make(Tok::IntLit, begin, loc);
  t.int_value = value;
  return t;
}

Token Lexer::next() {
  skip_trivia();
  SourceLoc loc = here();
  if (pos_ >= src_.size()) return Token{Tok::End, loc, {}, 0};

  char c = peek();
  if (is_ident_start(c)) return lex_ident(loc);
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(loc);

  size_t begin = pos_;
  advance();
  switch (c) {
    case '(': return make(Tok::LParen, begin, loc);
    case ')': return make(Tok::RParen, begin, loc);
    case '{': return make(Tok::LBrace, begin, loc);
    case '}': return make(Tok::RBrace, begin, loc);
    case '[': return make(Tok::LBracket, begin, loc);
    case ']': return make(Tok::RBracket, begin, loc);
    case ';': return make(Tok::Semi, begin, loc);
    case ',': return make(Tok::Comma, begin, loc);
    case '.': return make(Tok::Dot, begin, loc);
    case ':':
      if (match('=')) return make(Tok::Assign, begin, loc);
      return make(Tok::Colon, begin, loc);
    case '+':
      if (match('+')) return make(Tok::PlusPlus, begin, loc);
      return make(Tok::Plus, begin, loc);
    case '-':
      if (match('-')) return make(Tok::MinusMinus, begin, loc);
      return make(Tok::Minus, begin, loc);
    case '*': return make(Tok::Star, begin, loc);
    case '/': return make(Tok::Slash, begin, loc);
    case '%': return make(Tok::Percent, begin, loc);
    case '=':
      if (match('=')) return make(Tok::EqEq, begin, loc);
      return make(Tok::Assign, begin, loc);  // accept '=' for ':='
    case '!':
      if (match('=')) return make(Tok::NotEq, begin, loc);
      return make(Tok::Not, begin, loc);
    case '<':
      if (match('=')) return make(Tok::Le, begin, loc);
      return make(Tok::Lt, begin, loc);
    case '>':
      if (match('=')) return make(Tok::Ge, begin, loc);
      return make(Tok::Gt, begin, loc);
    case '&':
      if (match('&')) return make(Tok::AndAnd, begin, loc);
      break;
    case '|':
      if (match('|')) return make(Tok::OrOr, begin, loc);
      break;
    default:
      break;
  }
  diags_.error(loc, "unexpected character '" + std::string(1, c) + "'");
  return next();
}

std::vector<Token> Lexer::tokenize(std::string_view source, DiagEngine& diags) {
  Lexer lexer(source, diags);
  std::vector<Token> out;
  while (true) {
    out.push_back(lexer.next());
    if (out.back().kind == Tok::End) return out;
  }
}

}  // namespace synat::synl
