// Recursive-descent parser for SYNL.
//
// Produces an unresolved AST; run sema (sema.h) afterwards to resolve names
// and types. `parse_program` is the usual entry point; it never throws on
// malformed input, it reports to the DiagEngine and recovers.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "synat/support/diag.h"
#include "synat/synl/ast.h"
#include "synat/synl/token.h"

namespace synat::synl {

class Parser {
 public:
  Parser(std::string_view source, DiagEngine& diags);

  /// Parses a whole program (classes, globals, threadlocals, procedures).
  /// Errors inside a procedure's parameter list or body are contained: the
  /// procedure is kept with an empty stub body and ProcInfo::broken set, and
  /// parsing resumes at the next declaration.
  Program parse_program();

  /// True when any error could not be attributed to a single (now broken)
  /// procedure: lexer errors, malformed top-level declarations, or a `proc`
  /// with no name. Such a program is unusable even for degraded analysis.
  bool had_toplevel_errors() const {
    return diags_.num_errors() - base_errors_ > contained_errors_;
  }

 private:
  class DepthScope;

  const Token& peek(size_t ahead = 0) const;
  const Token& advance();
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind);
  const Token& expect(Tok kind, std::string_view what);
  void sync_to_decl();
  void sync_to_stmt();
  void report_deep_nesting();
  StmtId deep_nesting_stmt();

  Symbol intern(const Token& tok) { return prog_.syms().intern(tok.text); }

  void parse_class();
  void parse_global(VarKind kind);
  void parse_proc();
  TypeId parse_type();
  bool looks_like_type() const;

  StmtId parse_stmt();
  StmtId parse_block();
  /// Parses statements until RBrace, handling `local x := e;` whose scope
  /// extends to the rest of the block.
  std::vector<StmtId> parse_stmt_list();
  StmtId parse_local(bool& consumed_rest, std::vector<StmtId>* rest_sink);
  StmtId parse_if();
  StmtId parse_loop(Symbol label);
  StmtId parse_while(Symbol label);

  ExprId parse_expr();
  ExprId parse_binary(int min_prec);
  ExprId parse_unary();
  ExprId parse_postfix();
  ExprId parse_primary();
  ExprId require_location(ExprId e, std::string_view what);

  /// AST nesting bound; statements/expressions deeper than this are stubbed
  /// out with an error so pathological inputs cannot blow the C++ stack in
  /// the parser or any recursive pass downstream.
  static constexpr int kMaxDepth = 200;

  Program prog_;
  DiagEngine& diags_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool depth_reported_ = false;     ///< reset per procedure
  size_t base_errors_ = 0;          ///< diags_.num_errors() at construction
  size_t contained_errors_ = 0;     ///< errors attributed to broken procs
};

/// Convenience: lex + parse + sema in one call. Returns the program even on
/// error (check diags.has_errors()).
Program parse_and_check(std::string_view source, DiagEngine& diags);

/// Result of the fault-tolerant front end (parse_and_recover).
struct FrontEnd {
  Program prog;
  /// True when every reported error was confined to procedures now marked
  /// ProcInfo::broken (their bodies are empty stubs). False means the file
  /// is unusable: lexer/top-level errors or duplicate declarations.
  bool contained = true;
};

/// Like parse_and_check, but failures inside one procedure (parse, inline,
/// or sema) do not poison the rest of the file: the procedure is stubbed
/// out and marked broken, and every other procedure is fully resolved. The
/// batch driver reports broken procedures as degraded instead of failing
/// the whole program.
FrontEnd parse_and_recover(std::string_view source, DiagEngine& diags);

}  // namespace synat::synl
