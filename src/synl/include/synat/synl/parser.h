// Recursive-descent parser for SYNL.
//
// Produces an unresolved AST; run sema (sema.h) afterwards to resolve names
// and types. `parse_program` is the usual entry point; it never throws on
// malformed input, it reports to the DiagEngine and recovers.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "synat/support/diag.h"
#include "synat/synl/ast.h"
#include "synat/synl/token.h"

namespace synat::synl {

class Parser {
 public:
  Parser(std::string_view source, DiagEngine& diags);

  /// Parses a whole program (classes, globals, threadlocals, procedures).
  Program parse_program();

 private:
  const Token& peek(size_t ahead = 0) const;
  const Token& advance();
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind);
  const Token& expect(Tok kind, std::string_view what);
  void sync_to_decl();

  Symbol intern(const Token& tok) { return prog_.syms().intern(tok.text); }

  void parse_class();
  void parse_global(VarKind kind);
  void parse_proc();
  TypeId parse_type();
  bool looks_like_type() const;

  StmtId parse_stmt();
  StmtId parse_block();
  /// Parses statements until RBrace, handling `local x := e;` whose scope
  /// extends to the rest of the block.
  std::vector<StmtId> parse_stmt_list();
  StmtId parse_local(bool& consumed_rest, std::vector<StmtId>* rest_sink);
  StmtId parse_if();
  StmtId parse_loop(Symbol label);
  StmtId parse_while(Symbol label);

  ExprId parse_expr();
  ExprId parse_binary(int min_prec);
  ExprId parse_unary();
  ExprId parse_postfix();
  ExprId parse_primary();
  ExprId require_location(ExprId e, std::string_view what);

  Program prog_;
  DiagEngine& diags_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

/// Convenience: lex + parse + sema in one call. Returns the program even on
/// error (check diags.has_errors()).
Program parse_and_check(std::string_view source, DiagEngine& diags);

}  // namespace synat::synl
