// Pretty-printer: renders the AST back to parseable SYNL concrete syntax.
//
// print(parse(print(p))) == print(p) is a tested invariant (the printer is a
// fixpoint under re-parsing). Also provides single-expression/statement
// rendering used by annotated listings and diagnostics.
#pragma once

#include <string>

#include "synat/synl/ast.h"

namespace synat::synl {

struct PrintOptions {
  int indent_width = 2;
  /// Annotate each Local with its inferred type (`local x : T := e in`).
  bool show_types = false;
};

std::string print_expr(const Program& prog, ExprId id);
std::string print_stmt(const Program& prog, StmtId id,
                       const PrintOptions& opts = {}, int indent = 0);
std::string print_proc(const Program& prog, ProcId id,
                       const PrintOptions& opts = {});
std::string print_program(const Program& prog, const PrintOptions& opts = {});

/// One-line rendering of a statement header (no nested bodies); used by the
/// annotated atomicity listings, e.g. `local t := LL(Tail) in`.
std::string stmt_head(const Program& prog, StmtId id);

}  // namespace synat::synl
