// Procedure-call inlining (paper Section 1: "internal procedures are
// inlined, and we do not handle recursion").
//
// SYNL's abstract language has no calls, but writing corpora without them
// is painful, so the concrete syntax accepts `pn(args)` in two positions —
// as an expression statement and as the entire right-hand side of an
// assignment or local initializer — and this pass rewrites them away
// before sema:
//
//   x := F(a);                        local __argN := a in
//                               =>    local __retN := <default> in {
//                                       __inlN: loop {
//                                         local <param> := __argN in
//                                           <body with `return e` replaced
//                                            by { __retN := e; break __inlN; }>
//                                         break __inlN;
//                                       }
//                                       x := __retN;
//                                     }
//
// The single-iteration labeled loop gives `return` a structured jump
// target; it has no back edges, so downstream analyses treat it as the
// straight-line region it is. Fresh `__` names avoid capturing caller
// variables. Recursion (direct or mutual) is rejected.
#pragma once

#include "synat/support/diag.h"
#include "synat/synl/ast.h"

namespace synat::synl {

/// Rewrites every call site in-place. Returns false (with diagnostics) on
/// unknown callees, argument-count mismatches, calls in unsupported
/// positions, or recursion. Run after parsing and before sema;
/// parse_and_check does this automatically.
///
/// With `contain` set (the parse_and_recover pipeline), a procedure whose
/// rewrite reports errors — including calls into procedures already marked
/// broken — is itself stubbed out and marked ProcInfo::broken instead of
/// failing the whole program; the return value is then always true.
bool inline_calls(Program& prog, DiagEngine& diags, bool contain = false);

}  // namespace synat::synl
