// SYNL abstract syntax (paper Table 1), arena-allocated.
//
// A Program owns flat vectors of Expr and Stmt nodes; ExprId / StmtId are
// indices into those vectors. Ids double as stable analysis keys (liveness
// sets, mover maps, CFG node payloads), and the arena makes the exceptional-
// variant generator's statement cloning cheap.
//
// Differences from the paper's abstract grammar, all syntax-level only:
//  - `while (e) s` is desugared by the parser into `loop { if (e) s else break; }`
//    so analyses only ever see unconditional loops, as the paper assumes.
//  - Loops may carry labels and `continue`/`break` may target them (the
//    paper's Section 6.3 pseudo-code uses `continue a2`).
//  - `TRUE(e)` (Assume) is a first-class statement; the paper introduces it
//    for exceptional variants and we also accept it in source.
//  - `assert(e)` exists for the model checker's property language.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "synat/support/diag.h"
#include "synat/support/source_loc.h"
#include "synat/support/symbol.h"

namespace synat::synl {

namespace detail {
template <class Tag>
struct Id {
  uint32_t idx = std::numeric_limits<uint32_t>::max();

  constexpr Id() = default;
  constexpr explicit Id(uint32_t i) : idx(i) {}
  constexpr bool valid() const { return idx != std::numeric_limits<uint32_t>::max(); }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};
}  // namespace detail

using ExprId = detail::Id<struct ExprTag>;
using StmtId = detail::Id<struct StmtTag>;
using VarId = detail::Id<struct VarTag>;
using ProcId = detail::Id<struct ProcTag>;
using ClassId = detail::Id<struct ClassTag>;
using TypeId = detail::Id<struct TypeTag>;

// ---------------------------------------------------------------------------
// Types

enum class TypeKind : uint8_t {
  Unknown,  ///< not yet inferred / error recovery
  Int,
  Bool,
  Null,   ///< type of the `null` literal; compatible with any Ref
  Ref,    ///< reference to a class instance
  Array,  ///< array; element type in TypeNode::elem
};

struct TypeNode {
  TypeKind kind = TypeKind::Unknown;
  ClassId cls;   ///< valid iff kind == Ref
  TypeId elem;   ///< valid iff kind == Array
};

// ---------------------------------------------------------------------------
// Expressions

enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  NullLit,
  VarRef,  ///< x
  Field,   ///< a.name
  Index,   ///< a[b]
  Unary,   ///< op a
  Binary,  ///< a op b
  LL,      ///< LL(a)
  VL,      ///< VL(a)
  SC,      ///< SC(a, b)
  CAS,     ///< CAS(a, b, c)
  New,     ///< new C
  Call,    ///< name(args...) — eliminated by the inliner before analysis
           ///< (the paper's language has no explicit calls; Section 1 says
           ///< internal procedures are inlined, which inline_calls does)
};

enum class UnOp : uint8_t { Not, Neg };
enum class BinOp : uint8_t { Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge, And, Or };

std::string_view to_string(UnOp op);
std::string_view to_string(BinOp op);

struct Expr {
  ExprKind kind = ExprKind::IntLit;
  SourceLoc loc;
  ExprId a, b, c;      ///< operands; see ExprKind comments
  std::vector<ExprId> args;  ///< Call arguments
  Symbol name;         ///< VarRef: variable; Field: field; New: class;
                       ///< Call: callee
  int64_t int_value = 0;
  bool bool_value = false;
  UnOp un_op = UnOp::Not;
  BinOp bin_op = BinOp::Add;

  // Filled by sema:
  VarId var;          ///< resolved declaration for VarRef
  TypeId type;        ///< static type of this expression
  ClassId new_class;  ///< resolved class for New
};

/// True for the `Location` production of Table 1 (x | x.fd | x[e]).
constexpr bool is_location_kind(ExprKind k) {
  return k == ExprKind::VarRef || k == ExprKind::Field || k == ExprKind::Index;
}

// ---------------------------------------------------------------------------
// Statements

enum class StmtKind : uint8_t {
  Assign,        ///< e1 := e2
  ExprStmt,      ///< e1;   (sugar for `local dummy := e1 in skip`)
  Block,         ///< { stmts... }
  If,            ///< if (e1) s1 else s2   (s2 may be invalid)
  Local,         ///< local name := e1 in s1
  Loop,          ///< [label:] loop s1
  Return,        ///< return [e1]
  Break,         ///< break [label]
  Continue,      ///< continue [label]
  Skip,          ///< skip
  Synchronized,  ///< synchronized (e1) s1
  Assume,        ///< TRUE(e1)
  Assert,        ///< assert(e1)
};

std::string_view to_string(StmtKind k);

struct Stmt {
  StmtKind kind = StmtKind::Skip;
  SourceLoc loc;
  ExprId e1, e2;
  StmtId s1, s2;
  std::vector<StmtId> stmts;  ///< Block children
  Symbol label;               ///< Loop: own label; Break/Continue: target label
  Symbol name;                ///< Local: declared variable name
  TypeId declared_type;       ///< Local: optional annotation

  // Filled by sema:
  VarId var;           ///< Local: resolved variable
  StmtId jump_target;  ///< Break/Continue: enclosing (or labeled) Loop
};

// ---------------------------------------------------------------------------
// Declarations

struct FieldInfo {
  Symbol name;
  TypeId type;
};

struct ClassInfo {
  Symbol name;
  SourceLoc loc;
  bool defined = false;  ///< false for forward-reference stubs
  std::vector<FieldInfo> fields;

  /// Index into `fields`, or -1 if absent.
  int field_index(Symbol field) const {
    for (size_t i = 0; i < fields.size(); ++i)
      if (fields[i].name == field) return static_cast<int>(i);
    return -1;
  }
};

enum class VarKind : uint8_t {
  Global,       ///< shared between all threads
  ThreadLocal,  ///< one instance per thread, persists across procedure calls
  Param,        ///< procedure parameter
  Local,        ///< `local x := e in s`
};

std::string_view to_string(VarKind k);

struct VarInfo {
  Symbol name;
  VarKind kind = VarKind::Local;
  TypeId type;
  ProcId proc;      ///< owning procedure for Param/Local
  SourceLoc loc;
  StmtId decl_stmt; ///< the Local statement for VarKind::Local
};

struct ProcInfo {
  Symbol name;
  SourceLoc loc;
  std::vector<VarId> params;
  std::vector<VarId> locals;  ///< all Local declarations in the body
  StmtId body;
  TypeId ret_type;            ///< declared return type (may be invalid)

  /// Set by the exceptional-variant generator: the original procedure this
  /// variant specializes, and a human-readable variant tag ("Deq'2").
  ProcId variant_of;
  std::string variant_tag;

  /// Set by the error-recovering front end (parse_and_recover) when this
  /// procedure's declaration could not be processed; its body is an empty
  /// stub and no analysis result should be reported for it.
  bool broken = false;
};

// ---------------------------------------------------------------------------
// Program

class Program {
 public:
  Program() {
    // Pre-intern the canonical primitive types so they are shared.
    type_unknown_ = add_type({TypeKind::Unknown, {}, {}});
    type_int_ = add_type({TypeKind::Int, {}, {}});
    type_bool_ = add_type({TypeKind::Bool, {}, {}});
    type_null_ = add_type({TypeKind::Null, {}, {}});
  }
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  SymbolTable& syms() { return syms_; }
  const SymbolTable& syms() const { return syms_; }

  // -- node arenas ---------------------------------------------------------
  ExprId add_expr(Expr e) {
    exprs_.push_back(std::move(e));
    return ExprId(static_cast<uint32_t>(exprs_.size() - 1));
  }
  StmtId add_stmt(Stmt s) {
    stmts_.push_back(std::move(s));
    return StmtId(static_cast<uint32_t>(stmts_.size() - 1));
  }
  Expr& expr(ExprId id) {
    SYNAT_ASSERT(id.idx < exprs_.size(), "bad ExprId");
    return exprs_[id.idx];
  }
  const Expr& expr(ExprId id) const {
    SYNAT_ASSERT(id.idx < exprs_.size(), "bad ExprId");
    return exprs_[id.idx];
  }
  Stmt& stmt(StmtId id) {
    SYNAT_ASSERT(id.idx < stmts_.size(), "bad StmtId");
    return stmts_[id.idx];
  }
  const Stmt& stmt(StmtId id) const {
    SYNAT_ASSERT(id.idx < stmts_.size(), "bad StmtId");
    return stmts_[id.idx];
  }
  size_t num_exprs() const { return exprs_.size(); }
  size_t num_stmts() const { return stmts_.size(); }

  // -- types ---------------------------------------------------------------
  TypeId add_type(TypeNode t) {
    types_.push_back(t);
    return TypeId(static_cast<uint32_t>(types_.size() - 1));
  }
  const TypeNode& type(TypeId id) const {
    SYNAT_ASSERT(id.valid() && id.idx < types_.size(), "bad TypeId");
    return types_[id.idx];
  }
  TypeId unknown_type() const { return type_unknown_; }
  TypeId int_type() const { return type_int_; }
  TypeId bool_type() const { return type_bool_; }
  TypeId null_type() const { return type_null_; }
  TypeId ref_type(ClassId cls);
  TypeId array_type(TypeId elem);

  // -- declarations --------------------------------------------------------
  ClassId add_class(ClassInfo c) {
    classes_.push_back(std::move(c));
    return ClassId(static_cast<uint32_t>(classes_.size() - 1));
  }
  ClassId find_class(Symbol name) const {
    for (size_t i = 0; i < classes_.size(); ++i)
      if (classes_[i].name == name) return ClassId(static_cast<uint32_t>(i));
    return ClassId();
  }
  ClassInfo& cls(ClassId id) {
    SYNAT_ASSERT(id.valid() && id.idx < classes_.size(), "bad ClassId");
    return classes_[id.idx];
  }
  const ClassInfo& cls(ClassId id) const {
    SYNAT_ASSERT(id.valid() && id.idx < classes_.size(), "bad ClassId");
    return classes_[id.idx];
  }
  size_t num_classes() const { return classes_.size(); }

  VarId add_var(VarInfo v) {
    vars_.push_back(std::move(v));
    return VarId(static_cast<uint32_t>(vars_.size() - 1));
  }
  VarInfo& var(VarId id) {
    SYNAT_ASSERT(id.valid() && id.idx < vars_.size(), "bad VarId");
    return vars_[id.idx];
  }
  const VarInfo& var(VarId id) const {
    SYNAT_ASSERT(id.valid() && id.idx < vars_.size(), "bad VarId");
    return vars_[id.idx];
  }
  size_t num_vars() const { return vars_.size(); }

  ProcId add_proc(ProcInfo p) {
    procs_.push_back(std::move(p));
    return ProcId(static_cast<uint32_t>(procs_.size() - 1));
  }
  ProcId find_proc(std::string_view name) const {
    Symbol s = syms_.lookup(name);
    for (size_t i = 0; i < procs_.size(); ++i)
      if (procs_[i].name == s) return ProcId(static_cast<uint32_t>(i));
    return ProcId();
  }
  ProcInfo& proc(ProcId id) {
    SYNAT_ASSERT(id.valid() && id.idx < procs_.size(), "bad ProcId");
    return procs_[id.idx];
  }
  const ProcInfo& proc(ProcId id) const {
    SYNAT_ASSERT(id.valid() && id.idx < procs_.size(), "bad ProcId");
    return procs_[id.idx];
  }
  size_t num_procs() const { return procs_.size(); }

  std::vector<VarId>& globals() { return globals_; }
  const std::vector<VarId>& globals() const { return globals_; }
  std::vector<VarId>& threadlocals() { return threadlocals_; }
  const std::vector<VarId>& threadlocals() const { return threadlocals_; }

  /// True if `t` can hold a reference (Ref, Null or Unknown).
  bool is_ref_like(TypeId t) const {
    TypeKind k = type(t).kind;
    return k == TypeKind::Ref || k == TypeKind::Null || k == TypeKind::Unknown;
  }

  std::string type_str(TypeId t) const;

 private:
  SymbolTable syms_;
  std::vector<Expr> exprs_;
  std::vector<Stmt> stmts_;
  std::vector<TypeNode> types_;
  std::vector<ClassInfo> classes_;
  std::vector<VarInfo> vars_;
  std::vector<ProcInfo> procs_;
  std::vector<VarId> globals_;
  std::vector<VarId> threadlocals_;
  TypeId type_unknown_, type_int_, type_bool_, type_null_;
};

/// Marks `proc` broken and replaces its body with an empty block. The
/// error-recovering front end calls this to contain a failure to one
/// procedure while keeping the Program well-formed for downstream passes.
void mark_proc_broken(Program& prog, ProcId proc);

// ---------------------------------------------------------------------------
// Traversal helpers

/// Calls `fn(ExprId)` for `root` and every transitive sub-expression.
template <class Fn>
void for_each_subexpr(const Program& prog, ExprId root, Fn&& fn) {
  if (!root.valid()) return;
  fn(root);
  const Expr& e = prog.expr(root);
  for_each_subexpr(prog, e.a, fn);
  for_each_subexpr(prog, e.b, fn);
  for_each_subexpr(prog, e.c, fn);
  for (ExprId arg : e.args) for_each_subexpr(prog, arg, fn);
}

/// Calls `fn(StmtId)` for `root` and every statement nested inside it
/// (pre-order).
template <class Fn>
void for_each_stmt(const Program& prog, StmtId root, Fn&& fn) {
  if (!root.valid()) return;
  fn(root);
  const Stmt& s = prog.stmt(root);
  for_each_stmt(prog, s.s1, fn);
  for_each_stmt(prog, s.s2, fn);
  for (StmtId child : s.stmts) for_each_stmt(prog, child, fn);
}

/// Calls `fn(ExprId)` for every expression appearing directly in `root`
/// or any nested statement.
template <class Fn>
void for_each_expr_in_stmt(const Program& prog, StmtId root, Fn&& fn) {
  for_each_stmt(prog, root, [&](StmtId sid) {
    const Stmt& s = prog.stmt(sid);
    for_each_subexpr(prog, s.e1, fn);
    for_each_subexpr(prog, s.e2, fn);
  });
}

}  // namespace synat::synl

template <class Tag>
struct std::hash<synat::synl::detail::Id<Tag>> {
  size_t operator()(synat::synl::detail::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.idx);
  }
};
