// Token stream for the SYNL concrete syntax.
//
// The concrete syntax is a C-flavoured rendering of the paper's Table 1:
// braces for blocks, `:=` (or `=`) for assignment, `local x := e in s` for
// scoped locals, `loop`/`while`/`break`/`continue` with optional labels,
// `synchronized (e) s` for lock blocks, and the non-blocking primitives
// LL / SC / VL / CAS as builtin calls.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "synat/support/source_loc.h"

namespace synat::synl {

enum class Tok : uint8_t {
  End,
  Ident,
  IntLit,
  // Keywords.
  KwGlobal, KwThreadLocal, KwClass, KwProc,
  KwLocal, KwIn, KwLoop, KwWhile, KwIf, KwElse,
  KwReturn, KwBreak, KwContinue, KwSkip,
  KwSynchronized, KwNew, KwTrue, KwFalse, KwNull,
  KwLL, KwSC, KwVL, KwCAS, KwAssume, KwAssert,
  KwInt, KwBool,
  // Punctuation / operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Dot, Colon,
  Assign,        // := or =
  Plus, Minus, Star, Slash, Percent,
  EqEq, NotEq, Lt, Le, Gt, Ge,
  AndAnd, OrOr, Not,
  PlusPlus, MinusMinus,  // sugar: x++ => x := x + 1
};

std::string_view to_string(Tok t);

struct Token {
  Tok kind = Tok::End;
  SourceLoc loc;
  std::string_view text;  // view into the source buffer
  int64_t int_value = 0;  // valid when kind == IntLit
};

}  // namespace synat::synl
