// Semantic analysis for SYNL: name resolution, loose type inference, and
// control-flow sanity (break/continue target resolution).
//
// After run_sema succeeds:
//  - every VarRef expression has `var` set to its declaration,
//  - every Local statement has `var` set to a fresh VarId,
//  - every Break/Continue has `jump_target` set to its enclosing Loop,
//  - every expression has `type` set (TypeKind::Unknown only where the
//    source had no annotation to propagate),
//  - ProcInfo::locals lists every Local declaration in body order.
//
// Sema is deliberately forgiving: type disagreements are errors but the
// fields are still filled in so downstream code can run on partially typed
// programs in tests.
#pragma once

#include "synat/support/diag.h"
#include "synat/synl/ast.h"

namespace synat::synl {

/// Resolves one procedure. Exposed for the variant generator, which creates
/// new procedures after initial sema.
void resolve_proc(Program& prog, ProcId proc, DiagEngine& diags);

/// Resolves the whole program. Returns false if errors were reported.
///
/// With `contain` set (the parse_and_recover pipeline), a procedure whose
/// resolution reports errors is stubbed out and marked ProcInfo::broken
/// instead of failing the program; the return value is then false only for
/// uncontainable program-level errors (duplicate procedures/globals).
bool run_sema(Program& prog, DiagEngine& diags, bool contain = false);

}  // namespace synat::synl
