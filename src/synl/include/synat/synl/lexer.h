// Hand-written lexer for SYNL. Comments are `//` to end of line.
#pragma once

#include <string_view>
#include <vector>

#include "synat/support/diag.h"
#include "synat/synl/token.h"

namespace synat::synl {

class Lexer {
 public:
  /// `source` must outlive the token stream (tokens hold views into it).
  Lexer(std::string_view source, DiagEngine& diags);

  Token next();

  /// Lexes the whole buffer; the last token is Tok::End.
  static std::vector<Token> tokenize(std::string_view source, DiagEngine& diags);

 private:
  char peek(size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_trivia();
  SourceLoc here() const { return {line_, col_}; }

  Token make(Tok kind, size_t begin, SourceLoc loc);
  Token lex_ident(SourceLoc loc);
  Token lex_number(SourceLoc loc);

  std::string_view src_;
  DiagEngine& diags_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
};

}  // namespace synat::synl
