#include "synat/atomicity/blocks.h"

#include "synat/obs/trace.h"

namespace synat::atomicity {

using synl::Stmt;
using synl::StmtId;
using synl::StmtKind;

namespace {

Atomicity stmt_atom_of(const VariantResult& v, StmtId id) {
  auto it = v.stmt_atom.find(id.idx);
  return it == v.stmt_atom.end() ? Atomicity::B : it->second;
}

/// Atomicity of the statement's own events (the Local initializer).
Atomicity head_atom_of(const VariantResult& v, StmtId id) {
  Atomicity acc = Atomicity::B;
  const cfg::Cfg& cfg = v.pa->cfg();
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    const cfg::Event& ev = cfg.node(cfg::EventId(i));
    if (ev.stmt != id || !ev.is_action()) continue;
    auto it = v.event_atom.find(i);
    if (it != v.event_atom.end()) acc = seq(acc, it->second);
  }
  return acc;
}

void flatten(const synl::Program& prog, const VariantResult& v, StmtId id,
             std::vector<BlockUnit>& out) {
  if (!id.valid()) return;
  const Stmt& s = prog.stmt(id);
  switch (s.kind) {
    case StmtKind::Block:
      for (StmtId child : s.stmts) flatten(prog, v, child, out);
      break;
    case StmtKind::Local:
      out.push_back({id, head_atom_of(v, id)});
      flatten(prog, v, s.s1, out);
      break;
    case StmtKind::Skip:
      break;
    default:
      out.push_back({id, stmt_atom_of(v, id)});
      break;
  }
}

}  // namespace

BlockPartition partition_blocks(const synl::Program& prog,
                                const VariantResult& v) {
  obs::SpanScope span(obs::StageId::Blocks);
  BlockPartition out;
  out.variant = v.variant;

  std::vector<BlockUnit> units;
  flatten(prog, v, prog.proc(v.variant).body, units);

  AtomicBlock cur;
  for (const BlockUnit& u : units) {
    Atomicity trial = seq(cur.atom, u.atom);
    if (trial == Atomicity::N && !cur.units.empty()) {
      out.blocks.push_back(std::move(cur));
      cur = AtomicBlock{};
      trial = u.atom;
    }
    cur.units.push_back(u);
    cur.atom = trial;
  }
  if (!cur.units.empty()) out.blocks.push_back(std::move(cur));
  return out;
}

BlockSummary summarize_blocks(const synl::Program& prog,
                              const AtomicityResult& result) {
  BlockSummary sum;
  for (const ProcResult& pr : result.procs()) {
    ++sum.total_procs;
    size_t blocks = 1;
    if (pr.atomic) {
      ++sum.atomic_procs;
    } else {
      for (const VariantResult& v : pr.variants) {
        blocks = std::max(blocks, partition_blocks(prog, v).blocks.size());
      }
    }
    sum.total_blocks += blocks;
    sum.per_proc.emplace_back(pr.proc, blocks);
  }
  return sum;
}

}  // namespace synat::atomicity
