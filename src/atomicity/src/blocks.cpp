#include "synat/atomicity/blocks.h"

#include "synat/obs/trace.h"

namespace synat::atomicity {

using synl::Stmt;
using synl::StmtId;
using synl::StmtKind;

namespace {

Atomicity stmt_atom_of(const VariantResult& v, StmtId id) {
  auto it = v.stmt_atom.find(id.idx);
  return it == v.stmt_atom.end() ? Atomicity::B : it->second;
}

/// Atomicity of the statement's own events (the Local initializer).
Atomicity head_atom_of(const VariantResult& v, StmtId id) {
  Atomicity acc = Atomicity::B;
  const cfg::Cfg& cfg = v.pa->cfg();
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    const cfg::Event& ev = cfg.node(cfg::EventId(i));
    if (ev.stmt != id || !ev.is_action()) continue;
    auto it = v.event_atom.find(i);
    if (it != v.event_atom.end()) acc = seq(acc, it->second);
  }
  return acc;
}

void flatten(const synl::Program& prog, const VariantResult& v, StmtId id,
             std::vector<BlockUnit>& out) {
  if (!id.valid()) return;
  const Stmt& s = prog.stmt(id);
  switch (s.kind) {
    case StmtKind::Block:
      for (StmtId child : s.stmts) flatten(prog, v, child, out);
      break;
    case StmtKind::Local:
      out.push_back({id, head_atom_of(v, id)});
      flatten(prog, v, s.s1, out);
      break;
    case StmtKind::Skip:
      break;
    default:
      out.push_back({id, stmt_atom_of(v, id)});
      break;
  }
}

}  // namespace

BlockPartition partition_blocks(const synl::Program& prog,
                                const VariantResult& v) {
  obs::SpanScope span(obs::StageId::Blocks);
  BlockPartition out;
  out.variant = v.variant;

  std::vector<BlockUnit> units;
  flatten(prog, v, prog.proc(v.variant).body, units);

  AtomicBlock cur;
  for (const BlockUnit& u : units) {
    Atomicity trial = seq(cur.atom, u.atom);
    if (trial == Atomicity::N && !cur.units.empty()) {
      out.blocks.push_back(std::move(cur));
      cur = AtomicBlock{};
      trial = u.atom;
    }
    cur.units.push_back(u);
    cur.atom = trial;
  }
  if (!cur.units.empty()) out.blocks.push_back(std::move(cur));
  return out;
}

std::vector<obs::ProvenanceRecord> block_provenance(
    const synl::Program& prog, const VariantResult& v,
    const BlockPartition& part) {
  std::vector<obs::ProvenanceRecord> out;
  const std::string vname =
      prog.proc(v.variant).variant_tag.empty()
          ? std::string(prog.syms().name(prog.proc(v.variant).name))
          : prog.proc(v.variant).variant_tag;
  for (size_t b = 0; b < part.blocks.size(); ++b) {
    const AtomicBlock& blk = part.blocks[b];
    obs::ProvenanceRecord r;
    r.step = 6;
    r.rule = "atomic-block";
    r.subject = vname + " block " + std::to_string(b + 1);
    uint32_t end_line = 0;
    if (!blk.units.empty()) {
      StmtId first = blk.units.front().stmt;
      StmtId last = blk.units.back().stmt;
      if (first.valid()) {
        r.line = prog.stmt(first).loc.line;
        r.column = prog.stmt(first).loc.column;
      }
      if (last.valid()) end_line = prog.stmt(last).loc.line;
    }
    r.atom = std::string(to_string(blk.atom));
    r.detail = std::to_string(blk.units.size()) +
               " unit(s) compose to " + r.atom;
    if (end_line != 0 && end_line != r.line)
      r.detail += " (through line " + std::to_string(end_line) + ")";
    if (b + 1 < part.blocks.size())
      r.detail += "; extending past the cut would reach N";
    out.push_back(std::move(r));
  }
  return out;
}

BlockSummary summarize_blocks(const synl::Program& prog,
                              const AtomicityResult& result) {
  BlockSummary sum;
  for (const ProcResult& pr : result.procs()) {
    ++sum.total_procs;
    size_t blocks = 1;
    if (pr.atomic) {
      ++sum.atomic_procs;
    } else {
      for (const VariantResult& v : pr.variants) {
        blocks = std::max(blocks, partition_blocks(prog, v).blocks.size());
      }
    }
    sum.total_blocks += blocks;
    sum.per_proc.emplace_back(pr.proc, blocks);
  }
  return sum;
}

}  // namespace synat::atomicity
