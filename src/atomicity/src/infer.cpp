#include "synat/atomicity/infer.h"

#include <algorithm>
#include <optional>
#include <string>

#include "synat/analysis/expr_util.h"
#include "synat/obs/trace.h"
#include "synat/support/hash.h"
#include "synat/synl/parser.h"
#include "synat/synl/printer.h"

namespace synat::atomicity {

using analysis::may_alias;
using analysis::Pred;
using analysis::ProcAnalysis;
using cfg::AccessPath;
using cfg::Edge;
using cfg::Event;
using cfg::EventKind;
using synl::ProcId;
using synl::Program;
using synl::Stmt;
using synl::StmtKind;

namespace {

/// Printable key for counted-CAS matching: "Var" for globals, "Class.field"
/// for heap locations.
std::string counted_key(const Program& prog, const AccessPath& path) {
  if (!path.root.valid()) return {};
  if (path.is_plain_var())
    return std::string(prog.syms().name(prog.var(path.root).name));
  synat::Symbol field = path.last_field();
  synl::TypeId holder = analysis::path_prefix_type(prog, path);
  std::string cls = "?";
  if (holder.valid() && prog.type(holder).kind == synl::TypeKind::Ref)
    cls = std::string(prog.syms().name(prog.cls(prog.type(holder).cls).name));
  std::string f = field.valid() ? std::string(prog.syms().name(field)) : "[]";
  return cls + "." + f;
}

/// "SC Ready" / "Write Node.val" — stable event rendering for provenance
/// subjects and conflict witnesses.
std::string event_text(const Program& prog, const Event& ev) {
  std::string out{to_string(ev.kind)};
  if (ev.path.root.valid()) {
    out += ' ';
    out += ev.path.str(prog);
  }
  return out;
}

SourceLoc event_loc(const Program& prog, const Event& ev) {
  if (ev.expr.valid()) return prog.expr(ev.expr).loc;
  if (ev.stmt.valid()) return prog.stmt(ev.stmt).loc;
  return {};
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine

class InferEngine {
 public:
  InferEngine(Program& prog, DiagEngine& diags, const InferOptions& opts)
      : prog_(prog), diags_(diags), opts_(opts) {}

  AtomicityResult run();

  /// Hash of every procedure's interference signature — the cross-context
  /// observables steps 2/4 read (see ProgramFingerprint). Runs step 0 and
  /// context building only; throws BudgetExceeded under a tripped budget.
  uint64_t interference_universe();

 private:
  /// A mutual-exclusion region inside one variant (Theorems 5.4/5.5).
  struct Region {
    enum Kind : uint8_t { Window, LLSCBlock, PlainBlock } kind = Window;
    AccessPath svar;
    Pred cond = Pred::True;
    std::vector<bool> members;  ///< closed region (anchor..terminal)
    std::vector<bool> in_s;     ///< anchor + strictly-after-anchor part
    std::vector<bool> prot;     ///< strictly after the anchor
  };

  struct VariantCtx {
    ProcId id;
    std::shared_ptr<ProcAnalysis> pa;
    std::vector<Region> regions;
    /// Lock paths held on entry to each event.
    std::vector<std::vector<AccessPath>> held;
  };

  void build_variant_ctx(ProcId variant);
  void build_regions(VariantCtx& ctx);
  void build_lock_sets(VariantCtx& ctx);

  bool is_global_action(const VariantCtx& ctx, EventId e) const {
    const Event& ev = ctx.pa->cfg().node(e);
    if (!ev.is_action()) return false;
    switch (ev.kind) {
      case EventKind::Read:
      case EventKind::Write:
      case EventKind::LL:
      case EventKind::VL:
      case EventKind::SC:
      case EventKind::CAS:
        return !ctx.pa->purity().is_local_action(e);
      case EventKind::Acquire:
      case EventKind::Release:
        return true;
      default:
        return false;
    }
  }

  bool write_like(const Event& ev) const {
    return ev.kind == EventKind::Write || ev.kind == EventKind::SC ||
           ev.kind == EventKind::CAS;
  }
  bool read_like(const Event& ev) const {
    return ev.kind == EventKind::Read || ev.kind == EventKind::LL ||
           ev.kind == EventKind::VL || ev.kind == EventKind::SC ||
           ev.kind == EventKind::CAS;
  }

  bool counted_cas(const AccessPath& path) const {
    std::string key = counted_key(prog_, path);
    for (const std::string& s : opts_.counted_cas)
      if (s == "*" || s == key) return true;
    return false;
  }

  /// Step-2 discipline: every global update of any location aliasing `path`
  /// is performed by the given primitive kind.
  bool all_updates_via(const AccessPath& path, EventKind prim) const;

  /// Theorem 5.5 premise for svar's alias class: all LL-SC blocks on it
  /// share one non-trivial condition and all global updates are SCs inside
  /// such blocks. Returns the common condition.
  std::optional<Pred> llsc_premise(const AccessPath& svar) const;

  /// Directional protection of `e` by region `r` (see DESIGN.md):
  /// the slot immediately before/after e is strictly inside the region.
  bool before_protected(const VariantCtx& ctx, const Region& r, EventId e) const;
  bool after_protected(const VariantCtx& ctx, const Region& r, EventId e) const;

  /// Whether a conflicting access `f` (in ctx_f) is excluded from the slot
  /// adjacent to `e` (in ctx_e) in the given direction. When it is, `*why`
  /// (if non-null) names the exclusion theorem: "5.1", "5.4" or "5.5".
  bool excluded(const VariantCtx& ctx_e, EventId e, const VariantCtx& ctx_f,
                EventId f, bool before, const char** why = nullptr) const;

  /// Evidence collected by the step-4 conflict scan in provenance mode.
  struct Step4Info {
    bool had_conflict = false;  ///< some aliasing conflicting access scanned
    uint8_t excl = 0;           ///< exclusion theorems fired: 1=5.1 2=5.4 4=5.5
    const VariantCtx* witness_ctx = nullptr;  ///< first non-excluded conflict
    EventId witness;
    const VariantCtx* excl_ctx = nullptr;  ///< first excluded conflict
    EventId excl_witness;
    const char* excl_theorem = nullptr;    ///< theorem that excluded it
  };

  Atomicity classify_event(const VariantCtx& ctx, EventId e,
                           std::vector<obs::ProvenanceRecord>* prov) const;
  Atomicity step4(const VariantCtx& ctx, EventId e,
                  Step4Info* info = nullptr) const;

  std::string variant_name(const VariantCtx& ctx) const {
    return prog_.proc(ctx.id).variant_tag.empty()
               ? std::string(prog_.syms().name(prog_.proc(ctx.id).name))
               : prog_.proc(ctx.id).variant_tag;
  }
  void set_witness(obs::ProvenanceRecord* r, const VariantCtx* wctx,
                   EventId f) const;

  void mix_variant_signature(Hasher& h, const VariantCtx& ctx) const;

  void propagate(VariantCtx& ctx, VariantResult& out) const;
  Atomicity stmt_atom(const VariantCtx& ctx, const VariantResult& res,
                      synl::StmtId id,
                      std::unordered_map<uint32_t, Atomicity>& memo) const;
  Atomicity seq_events_of(const VariantCtx& ctx, const VariantResult& res,
                          synl::StmtId id, bool pre_release_only,
                          bool release_only) const;

  Program& prog_;
  DiagEngine& diags_;
  const InferOptions& opts_;
  std::vector<VariantCtx> vctx_;
};

// ---------------------------------------------------------------------------

void InferEngine::build_variant_ctx(ProcId variant) {
  VariantCtx ctx;
  ctx.id = variant;
  ctx.pa = std::make_shared<ProcAnalysis>(prog_, variant);
  build_regions(ctx);
  build_lock_sets(ctx);
  vctx_.push_back(std::move(ctx));
}

void InferEngine::build_regions(VariantCtx& ctx) {
  const cfg::Cfg& cfg = ctx.pa->cfg();
  const size_t n = cfg.num_nodes();
  auto all = [](EventId) { return true; };

  // Successful-SC windows (Theorem 5.4) and, for counted targets, CAS
  // windows from the matching read to the CAS.
  for (uint32_t i = 0; i < n; ++i) {
    EventId sc(i);
    const Event& ev = cfg.node(sc);
    bool is_sc_window = ev.kind == EventKind::SC && ev.must_succeed;
    bool is_cas_window = ev.kind == EventKind::CAS && ev.must_succeed &&
                         counted_cas(ev.path);
    if (!is_sc_window && !is_cas_window) continue;
    const analysis::MatchInfo* mi = ctx.pa->matching().info(sc);
    if (!mi || mi->matches.empty()) continue;

    Region r;
    r.kind = Region::Window;
    r.svar = ev.path;
    r.members.assign(n, false);
    r.in_s.assign(n, false);
    r.prot.assign(n, false);
    auto back = cfg.reachable_back(sc, all);
    for (EventId anchor : mi->matches) {
      auto fwd = cfg.reachable(anchor, all);
      for (EventId m : fwd) {
        if (!back.count(m)) continue;
        r.members[m.idx] = true;
        r.in_s[m.idx] = true;
        if (m != anchor) r.prot[m.idx] = true;
      }
    }
    // Anchors of one window are never "protected" even if another anchor
    // reaches them.
    for (EventId anchor : mi->matches) r.prot[anchor.idx] = false;
    ctx.regions.push_back(std::move(r));
  }

  // Local blocks (Theorem 5.5): LL-SC blocks and plain local blocks.
  for (const analysis::LocalBlock& b : ctx.pa->localcond().blocks()) {
    if (!b.reads_svar || b.lvar_updated) continue;
    Region r;
    r.kind = b.is_llsc_block() ? Region::LLSCBlock : Region::PlainBlock;
    r.svar = b.svar;
    r.cond = b.cond;
    r.members.assign(n, false);
    r.in_s.assign(n, false);
    r.prot.assign(n, false);
    for (EventId e : b.events) r.members[e.idx] = true;

    // Anchor: the initializer's read/LL of svar.
    EventId anchor;
    for (EventId e : b.events) {
      const Event& ev = cfg.node(e);
      if (ev.stmt == b.stmt &&
          (ev.kind == EventKind::LL || ev.kind == EventKind::Read) &&
          ev.path == b.svar) {
        anchor = e;
        break;
      }
    }
    if (!anchor.valid()) continue;
    auto fwd = cfg.reachable(anchor, all);
    for (EventId m : fwd) {
      if (!r.members[m.idx]) continue;
      r.in_s[m.idx] = true;
      if (m != anchor) r.prot[m.idx] = true;
    }
    ctx.regions.push_back(std::move(r));
  }
}

void InferEngine::build_lock_sets(VariantCtx& ctx) {
  const cfg::Cfg& cfg = ctx.pa->cfg();
  const size_t n = cfg.num_nodes();
  // Forward dataflow: set of lock paths held on entry to each node; meet is
  // intersection. Initialized to "unknown" (bottom = everything) except the
  // entry.
  std::vector<std::vector<AccessPath>> in(n);
  std::vector<bool> defined(n, false);
  defined[cfg.entry().idx] = true;

  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t i = 0; i < n; ++i) {
      EventId id(i);
      if (!defined[i]) continue;
      // Transfer.
      std::vector<AccessPath> out = in[i];
      const Event& ev = cfg.node(id);
      if (ev.kind == EventKind::Acquire && ev.path.root.valid()) {
        out.push_back(ev.path);
      } else if (ev.kind == EventKind::Release && ev.path.root.valid()) {
        for (size_t k = 0; k < out.size(); ++k) {
          if (out[k] == ev.path) {
            out.erase(out.begin() + static_cast<long>(k));
            break;
          }
        }
      }
      for (const Edge& e : cfg.succs(id)) {
        if (!defined[e.to.idx]) {
          defined[e.to.idx] = true;
          in[e.to.idx] = out;
          changed = true;
        } else {
          // Intersect.
          std::vector<AccessPath> merged;
          for (const AccessPath& p : in[e.to.idx]) {
            for (const AccessPath& q : out) {
              if (p == q) {
                merged.push_back(p);
                break;
              }
            }
          }
          if (merged.size() != in[e.to.idx].size()) {
            in[e.to.idx] = std::move(merged);
            changed = true;
          }
        }
      }
    }
  }
  ctx.held = std::move(in);
}

bool InferEngine::all_updates_via(const AccessPath& path, EventKind prim) const {
  for (const VariantCtx& w : vctx_) {
    const cfg::Cfg& cfg = w.pa->cfg();
    for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
      EventId f(i);
      const Event& fe = cfg.node(f);
      if (!write_like(fe)) continue;
      if (fe.kind == prim) continue;
      if (!is_global_action(w, f)) continue;  // local updates do not count
      if (may_alias(prog_, fe.path, path)) return false;
    }
  }
  return true;
}

std::optional<Pred> InferEngine::llsc_premise(const AccessPath& svar) const {
  std::optional<Pred> common;
  for (const VariantCtx& w : vctx_) {
    for (const Region& r : w.regions) {
      if (r.kind != Region::LLSCBlock) continue;
      if (!may_alias(prog_, r.svar, svar)) continue;
      if (r.cond == Pred::True) return std::nullopt;
      if (common && *common != r.cond) return std::nullopt;
      common = r.cond;
    }
  }
  if (!common) return std::nullopt;

  // Every global update of ~svar must be an SC inside an LL-SC block on it.
  for (const VariantCtx& w : vctx_) {
    const cfg::Cfg& cfg = w.pa->cfg();
    for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
      EventId f(i);
      const Event& fe = cfg.node(f);
      if (!write_like(fe) || !is_global_action(w, f)) continue;
      if (!may_alias(prog_, fe.path, svar)) continue;
      if (fe.kind != EventKind::SC) return std::nullopt;
      bool inside = false;
      for (const Region& r : w.regions) {
        if (r.kind == Region::LLSCBlock && may_alias(prog_, r.svar, svar) &&
            r.members[f.idx]) {
          inside = true;
          break;
        }
      }
      if (!inside) return std::nullopt;
    }
  }
  return common;
}

bool InferEngine::before_protected(const VariantCtx& ctx, const Region& r,
                                   EventId e) const {
  if (!r.prot[e.idx]) return false;
  for (const Edge& p : ctx.pa->cfg().preds(e)) {
    if (!r.in_s[p.to.idx]) return false;
  }
  return true;
}

bool InferEngine::after_protected(const VariantCtx& ctx, const Region& r,
                                  EventId e) const {
  if (!r.in_s[e.idx]) return false;
  for (const Edge& s : ctx.pa->cfg().succs(e)) {
    if (!r.prot[s.to.idx]) return false;
  }
  return true;
}

bool InferEngine::excluded(const VariantCtx& ctx_e, EventId e,
                           const VariantCtx& ctx_f, EventId f,
                           bool before, const char** why) const {
  // (a) Theorem 5.1: both hold a common lock.
  for (const AccessPath& le : ctx_e.held[e.idx]) {
    for (const AccessPath& lf : ctx_f.held[f.idx]) {
      if (may_alias(prog_, le, lf)) {
        if (why != nullptr) *why = "5.1";
        return true;
      }
    }
  }

  for (const Region& re : ctx_e.regions) {
    if (!re.members[e.idx]) continue;
    bool dir_ok = before ? before_protected(ctx_e, re, e)
                         : after_protected(ctx_e, re, e);
    if (!dir_ok) continue;

    // (b) Theorem 5.4: both inside successful-SC windows on aliasing vars.
    if (opts_.use_window_rule && re.kind == Region::Window) {
      for (const Region& rf : ctx_f.regions) {
        if (rf.kind == Region::Window && rf.members[f.idx] &&
            may_alias(prog_, re.svar, rf.svar)) {
          if (why != nullptr) *why = "5.4";
          return true;
        }
      }
    }

    // (c) Theorem 5.5: condition-disjoint LL-SC / local block pair.
    if (opts_.use_local_conditions && re.cond != Pred::True &&
        (re.kind == Region::LLSCBlock || re.kind == Region::PlainBlock)) {
      std::optional<Pred> p = llsc_premise(re.svar);
      if (!p) continue;
      // e's own block condition must be p (LL-SC side) or !p (local side).
      bool e_is_llsc = re.kind == Region::LLSCBlock;
      if (e_is_llsc && re.cond != *p) continue;
      if (!e_is_llsc && re.cond != analysis::negate(*p)) continue;
      Region::Kind want = e_is_llsc ? Region::PlainBlock : Region::LLSCBlock;
      Pred want_cond = e_is_llsc ? analysis::negate(*p) : *p;
      for (const Region& rf : ctx_f.regions) {
        if (rf.kind == want && rf.cond == want_cond && rf.members[f.idx] &&
            may_alias(prog_, re.svar, rf.svar)) {
          if (why != nullptr) *why = "5.5";
          return true;
        }
      }
    }
  }
  return false;
}

Atomicity InferEngine::step4(const VariantCtx& ctx, EventId e,
                             Step4Info* info) const {
  // The O(n^2) conflict scan dominates runtime on large programs; poll the
  // budget once per classified event so deadlines trip promptly.
  if (opts_.variant_opts.budget != nullptr)
    opts_.variant_opts.budget->check("mover classification");
  const Event& ev = ctx.pa->cfg().node(e);
  bool conflict_before = false, conflict_after = false;

  auto note_conflict = [&](const VariantCtx& w, EventId f) {
    if (info != nullptr && info->witness_ctx == nullptr) {
      info->witness_ctx = &w;
      info->witness = f;
    }
  };
  auto note_exclusion = [&](const char* why, const VariantCtx& w, EventId f) {
    if (info == nullptr || why == nullptr) return;
    if (why[2] == '1') info->excl |= 1;
    else if (why[2] == '4') info->excl |= 2;
    else info->excl |= 4;
    if (info->excl_ctx == nullptr) {
      info->excl_ctx = &w;
      info->excl_witness = f;
      info->excl_theorem = why;
    }
  };

  for (const VariantCtx& w : vctx_) {
    const cfg::Cfg& wcfg = w.pa->cfg();
    for (uint32_t i = 0; i < wcfg.num_nodes(); ++i) {
      EventId f(i);
      const Event& fe = wcfg.node(f);
      if (!fe.is_action() || !is_global_action(w, f)) continue;
      // A read conflicts with writes; a write conflicts with reads+writes.
      bool is_conflict = write_like(fe) || (write_like(ev) && read_like(fe));
      if (!is_conflict) continue;
      if (fe.kind == EventKind::Acquire || fe.kind == EventKind::Release)
        continue;
      if (!may_alias(prog_, ev.path, fe.path)) continue;
      if (info != nullptr) info->had_conflict = true;
      if (!conflict_before) {
        const char* why = nullptr;
        if (!excluded(ctx, e, w, f, /*before=*/true, &why)) {
          conflict_before = true;
          note_conflict(w, f);
        } else {
          note_exclusion(why, w, f);
        }
      }
      if (!conflict_after) {
        const char* why = nullptr;
        if (!excluded(ctx, e, w, f, /*before=*/false, &why)) {
          conflict_after = true;
          note_conflict(w, f);
        } else {
          note_exclusion(why, w, f);
        }
      }
      if (conflict_before && conflict_after) return Atomicity::A;
    }
  }
  if (!conflict_before && !conflict_after) return Atomicity::B;
  if (!conflict_before) return Atomicity::L;  // nothing can be right before it
  return Atomicity::R;                        // nothing can be right after it
}

void InferEngine::set_witness(obs::ProvenanceRecord* r, const VariantCtx* wctx,
                              EventId f) const {
  if (r == nullptr || wctx == nullptr || !f.valid()) return;
  const Event& fe = wctx->pa->cfg().node(f);
  r->witness = event_text(prog_, fe) + " in " + variant_name(*wctx);
  SourceLoc loc = event_loc(prog_, fe);
  r->witness_line = loc.line;
  r->witness_column = loc.column;
}

namespace {

/// "5.1+5.5" for the exclusion bitset of Step4Info::excl.
std::string excl_theorems(uint8_t excl) {
  std::string out;
  if (excl & 1) out += "5.1";
  if (excl & 2) out += out.empty() ? "5.4" : "+5.4";
  if (excl & 4) out += out.empty() ? "5.5" : "+5.5";
  return out;
}

}  // namespace

Atomicity InferEngine::classify_event(
    const VariantCtx& ctx, EventId e,
    std::vector<obs::ProvenanceRecord>* prov) const {
  const Event& ev = ctx.pa->cfg().node(e);
  auto emit = [&](uint32_t step, std::string theorem, const char* rule,
                  Atomicity atom,
                  std::string detail) -> obs::ProvenanceRecord* {
    if (prov == nullptr) return nullptr;
    obs::ProvenanceRecord r;
    r.step = step;
    r.theorem = std::move(theorem);
    r.rule = rule;
    r.subject = event_text(prog_, ev);
    SourceLoc loc = event_loc(prog_, ev);
    r.line = loc.line;
    r.column = loc.column;
    r.atom = std::string(to_string(atom));
    r.detail = std::move(detail);
    prov->push_back(std::move(r));
    return &prov->back();
  };

  switch (ev.kind) {
    case EventKind::New:
      emit(1, "", "allocation", Atomicity::B,
           "fresh allocation performs no shared access");
      return Atomicity::B;
    case EventKind::Assume:
      emit(1, "", "assumption", Atomicity::B,
           "assumption performs no shared access");
      return Atomicity::B;
    case EventKind::Acquire:
      emit(1, "3.2", "acquire", Atomicity::R,
           "lock acquire is a right-mover (Theorem 3.2)");
      return Atomicity::R;
    case EventKind::Release:
      emit(1, "3.2", "release", Atomicity::L,
           "lock release is a left-mover (Theorem 3.2)");
      return Atomicity::L;
    default:
      break;
  }

  // Step 1: local actions (Theorem 3.1).
  if (ctx.pa->purity().is_local_action(e)) {
    emit(1, "3.1", "local-action", Atomicity::B,
         "access to an unshared or unescaped location is a both-mover "
         "(Theorem 3.1)");
    return Atomicity::B;
  }

  Atomicity result = Atomicity::A;  // step-5 default

  // Step 2: Theorem 5.3 (and the counted-CAS analogue). The firing rule is
  // remembered so the binding justification can be cited below.
  const char* s2_rule = nullptr;
  const char* s2_theorem = "5.3";
  const char* s2_detail = nullptr;
  Atomicity s2_atom = Atomicity::A;
  switch (ev.kind) {
    case EventKind::SC:
      if (ev.must_succeed && all_updates_via(ev.path, EventKind::SC)) {
        result = meet(result, Atomicity::L);
        s2_rule = "sc-discipline";
        s2_atom = Atomicity::L;
        s2_detail =
            "successful SC under the SC-only update discipline is a "
            "left-mover (Theorem 5.3)";
      }
      break;
    case EventKind::VL:
      if (ev.must_succeed && all_updates_via(ev.path, EventKind::SC)) {
        result = meet(result, Atomicity::L);
        s2_rule = "vl-discipline";
        s2_atom = Atomicity::L;
        s2_detail =
            "successful VL under the SC-only update discipline is a "
            "left-mover (Theorem 5.3)";
      }
      break;
    case EventKind::CAS:
      if (ev.must_succeed && counted_cas(ev.path) &&
          all_updates_via(ev.path, EventKind::CAS)) {
        result = meet(result, Atomicity::L);
        s2_rule = "counted-cas-discipline";
        s2_atom = Atomicity::L;
        s2_detail =
            "successful CAS on a counted (ABA-protected) target is a "
            "left-mover (Theorem 5.3 analogue)";
      }
      break;
    case EventKind::LL: {
      // Matching LL of a successful SC/VL under the SC-only discipline.
      for (uint32_t i = 0; i < ctx.pa->cfg().num_nodes(); ++i) {
        EventId prim(i);
        const Event& pe = ctx.pa->cfg().node(prim);
        if ((pe.kind != EventKind::SC && pe.kind != EventKind::VL) ||
            !pe.must_succeed)
          continue;
        if (ctx.pa->matching().is_match(prim, e) &&
            all_updates_via(pe.path, EventKind::SC)) {
          result = meet(result, Atomicity::R);
          s2_rule = "matching-ll";
          s2_atom = Atomicity::R;
          s2_detail =
              "LL matched by a successful SC/VL under the SC-only update "
              "discipline is a right-mover (Theorem 5.3)";
          break;
        }
      }
      break;
    }
    case EventKind::Read: {
      // Matching read of a successful counted CAS.
      for (uint32_t i = 0; i < ctx.pa->cfg().num_nodes(); ++i) {
        EventId prim(i);
        const Event& pe = ctx.pa->cfg().node(prim);
        if (pe.kind != EventKind::CAS || !pe.must_succeed) continue;
        if (counted_cas(pe.path) && ctx.pa->matching().is_match(prim, e) &&
            all_updates_via(pe.path, EventKind::CAS)) {
          result = meet(result, Atomicity::R);
          s2_rule = "matching-read";
          s2_atom = Atomicity::R;
          s2_detail =
              "read matched by a successful counted CAS is a right-mover "
              "(Theorem 5.3 analogue)";
          break;
        }
      }
      break;
    }
    default:
      break;
  }

  // Step 4: Theorem 3.3 with the exclusion theorems. May-fail SC/CAS stay
  // at their step-2/step-5 value: their outcome does not commute past other
  // threads' successful SCs, so Theorem 3.3 does not apply to them.
  bool may_fail_primitive =
      (ev.kind == EventKind::SC || ev.kind == EventKind::CAS) &&
      !ev.must_succeed;
  if (may_fail_primitive) {
    emit(5, "", "may-fail-primitive", result,
         "SC/CAS that may fail does not commute past other threads' "
         "successful updates; Theorem 3.3 does not apply, so it defaults "
         "to atomic");
    return result;
  }

  Step4Info info;
  Atomicity s4 = step4(ctx, e, prov != nullptr ? &info : nullptr);
  Atomicity final_atom = meet(result, s4);

  if (prov != nullptr) {
    auto emit_step4 = [&]() {
      obs::ProvenanceRecord* r = nullptr;
      switch (s4) {
        case Atomicity::A:
          r = emit(4, "3.3", "conflict", Atomicity::A,
                   "a conflicting access from another thread can be "
                   "scheduled adjacent on both sides");
          set_witness(r, info.witness_ctx, info.witness);
          break;
        case Atomicity::B:
          if (!info.had_conflict) {
            emit(4, "3.3", "no-conflicts", Atomicity::B,
                 "no conflicting global access exists in any thread");
          } else {
            std::string thms = excl_theorems(info.excl);
            r = emit(4, thms, "all-excluded", Atomicity::B,
                     "every conflicting access is excluded from the "
                     "adjacent slots (Theorem " +
                         thms + ")");
            set_witness(r, info.excl_ctx, info.excl_witness);
          }
          break;
        case Atomicity::L: {
          std::string thms = excl_theorems(info.excl);
          std::string detail =
              "no conflicting access can be scheduled immediately before "
              "it";
          if (!thms.empty()) detail += " (exclusions: Theorem " + thms + ")";
          detail += "; one can follow";
          r = emit(4, thms.empty() ? "3.3" : thms, "no-conflict-before",
                   Atomicity::L, std::move(detail));
          set_witness(r, info.witness_ctx, info.witness);
          break;
        }
        case Atomicity::R: {
          std::string thms = excl_theorems(info.excl);
          std::string detail =
              "no conflicting access can be scheduled immediately after it";
          if (!thms.empty()) detail += " (exclusions: Theorem " + thms + ")";
          detail += "; one can precede";
          r = emit(4, thms.empty() ? "3.3" : thms, "no-conflict-after",
                   Atomicity::R, std::move(detail));
          set_witness(r, info.witness_ctx, info.witness);
          break;
        }
        case Atomicity::N:
          break;  // step4 never returns N
      }
    };
    if (s2_rule == nullptr) {
      emit_step4();
    } else if (final_atom == s2_atom) {
      emit(2, s2_theorem, s2_rule, s2_atom, s2_detail);
    } else if (final_atom == s4) {
      emit_step4();
    } else {
      // Incomparable L/R: the final class is the meet of both citations.
      emit(2, s2_theorem, s2_rule, s2_atom, s2_detail);
      emit_step4();
    }
  }

  return final_atom;
}

// ---------------------------------------------------------------------------
// Step 6: AST propagation

Atomicity InferEngine::seq_events_of(const VariantCtx& ctx,
                                     const VariantResult& res, synl::StmtId id,
                                     bool pre_release_only,
                                     bool release_only) const {
  const cfg::Cfg& cfg = ctx.pa->cfg();
  Atomicity acc = Atomicity::B;
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    const Event& ev = cfg.node(EventId(i));
    if (ev.stmt != id || !ev.is_action()) continue;
    bool is_release = ev.kind == EventKind::Release;
    if (pre_release_only && is_release) continue;
    if (release_only && !is_release) continue;
    auto it = res.event_atom.find(i);
    if (it == res.event_atom.end()) continue;
    acc = seq(acc, it->second);
  }
  return acc;
}

Atomicity InferEngine::stmt_atom(
    const VariantCtx& ctx, const VariantResult& res, synl::StmtId id,
    std::unordered_map<uint32_t, Atomicity>& memo) const {
  if (!id.valid()) return Atomicity::B;
  if (auto it = memo.find(id.idx); it != memo.end()) return it->second;
  const Stmt& s = prog_.stmt(id);
  Atomicity a = Atomicity::B;
  switch (s.kind) {
    case StmtKind::Assign:
    case StmtKind::ExprStmt:
    case StmtKind::Assume:
    case StmtKind::Assert:
    case StmtKind::Return:
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Skip:
      a = seq_events_of(ctx, res, id, false, false);
      break;
    case StmtKind::Block:
      for (synl::StmtId child : s.stmts)
        a = seq(a, stmt_atom(ctx, res, child, memo));
      break;
    case StmtKind::If: {
      Atomicity cond = seq_events_of(ctx, res, id, false, false);
      Atomicity branches = join(stmt_atom(ctx, res, s.s1, memo),
                                stmt_atom(ctx, res, s.s2, memo));
      a = seq(cond, branches);
      break;
    }
    case StmtKind::Local:
      a = seq(seq_events_of(ctx, res, id, false, false),
              stmt_atom(ctx, res, s.s1, memo));
      break;
    case StmtKind::Loop:
      a = iter(stmt_atom(ctx, res, s.s1, memo));
      break;
    case StmtKind::Synchronized: {
      Atomicity pre = seq_events_of(ctx, res, id, /*pre_release_only=*/true,
                                    /*release_only=*/false);
      Atomicity post = seq_events_of(ctx, res, id, false,
                                     /*release_only=*/true);
      a = seq(seq(pre, stmt_atom(ctx, res, s.s1, memo)), post);
      break;
    }
  }
  memo[id.idx] = a;
  return a;
}

void InferEngine::propagate(VariantCtx& ctx, VariantResult& out) const {
  obs::SpanScope span(obs::StageId::Movers);
  const cfg::Cfg& cfg = ctx.pa->cfg();
  std::vector<obs::ProvenanceRecord>* prov =
      opts_.provenance ? &out.prov : nullptr;
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    if (opts_.variant_opts.budget != nullptr)
      opts_.variant_opts.budget->check("mover classification");
    EventId e(i);
    if (!cfg.node(e).is_action()) continue;
    out.event_atom[i] = classify_event(ctx, e, prov);
  }
  std::unordered_map<uint32_t, Atomicity> memo;
  out.atomicity =
      stmt_atom(ctx, out, prog_.proc(ctx.id).body, memo);
  for (auto [idx, a] : memo) out.stmt_atom[idx] = a;

  if (prov != nullptr) {
    // Step 6: the variant body's composition, and — when it breaks — the
    // first action whose non-mover class blocks the reduction.
    obs::ProvenanceRecord r;
    r.step = 6;
    r.rule = "body";
    r.subject = variant_name(ctx);
    r.line = prog_.proc(ctx.id).loc.line;
    r.column = prog_.proc(ctx.id).loc.column;
    r.atom = std::string(to_string(out.atomicity));
    r.detail = "variant body composes to " + r.atom + " under seq/join/iter";
    prov->push_back(std::move(r));
    if (!leq(out.atomicity, Atomicity::A)) {
      for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
        auto it = out.event_atom.find(i);
        if (it == out.event_atom.end() || it->second != Atomicity::A) continue;
        const Event& ev = cfg.node(EventId(i));
        obs::ProvenanceRecord b;
        b.step = 6;
        b.rule = "blocking-action";
        b.subject = event_text(prog_, ev);
        SourceLoc loc = event_loc(prog_, ev);
        b.line = loc.line;
        b.column = loc.column;
        b.atom = "A";
        b.detail =
            "first atomic non-mover action; the sequential composition "
            "around it exceeds A";
        prov->push_back(std::move(b));
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------

AtomicityResult InferEngine::run() {
  obs::SpanScope span(obs::StageId::Infer);
  AtomicityResult result;
  const size_t num_original = prog_.num_procs();
  ExecBudget* budget = opts_.variant_opts.budget;

  // Classification restriction (InferOptions::only_procs): every variant
  // below still enters the conflict universe, so restricted results match
  // the whole-program run exactly.
  auto selected = [&](ProcId p) {
    if (opts_.only_procs.empty()) return true;
    std::string_view n = prog_.syms().name(prog_.proc(p).name);
    for (const std::string& s : opts_.only_procs)
      if (s == n) return true;
    return false;
  };

  // Step 0: analyses of the originals + exceptional variants.
  std::vector<VariantSet> sets;
  std::unordered_map<uint32_t, std::vector<obs::ProvenanceRecord>> step0;
  for (size_t i = 0; i < num_original; ++i) {
    ProcId pid(static_cast<uint32_t>(i));
    if (budget != nullptr) budget->check("variant expansion");
    ProcAnalysis pa(prog_, pid);
    VariantSet vs =
        generate_variants(prog_, pid, pa, diags_, opts_.variant_opts);
    if (opts_.provenance && selected(pid)) {
      std::vector<obs::ProvenanceRecord>& recs = step0[pid.idx];
      for (const cfg::LoopInfo& li : pa.cfg().loops()) {
        const analysis::LoopPurity* lp = pa.purity().result(li.stmt);
        if (lp == nullptr) continue;
        uint32_t line = prog_.stmt(li.stmt).loc.line;
        uint32_t col = prog_.stmt(li.stmt).loc.column;
        if (lp->pure) {
          obs::ProvenanceRecord r;
          r.step = 0;
          r.theorem = "4.1";
          r.rule = "pure-loop";
          r.subject = "loop";
          r.line = line;
          r.column = col;
          r.detail =
              "pure loop: normally terminating iterations are deletable; "
              "exceptional paths become variant slices";
          recs.push_back(std::move(r));
        } else {
          for (const analysis::ImpureReason& ir : lp->reasons) {
            obs::ProvenanceRecord r;
            r.step = 0;
            r.rule = "impure-" + ir.condition;
            r.subject = "loop";
            r.line = line;
            r.column = col;
            r.detail =
                "purity condition (" + ir.condition + ") violated: " +
                ir.message + "; the loop is kept whole";
            r.witness_line = ir.line;
            recs.push_back(std::move(r));
          }
        }
      }
      if (vs.bailed_out) {
        obs::ProvenanceRecord r;
        r.step = 0;
        r.rule = "path-budget";
        r.subject =
            std::string(prog_.syms().name(prog_.proc(pid).name));
        r.line = prog_.proc(pid).loc.line;
        r.column = prog_.proc(pid).loc.column;
        r.detail =
            "path enumeration exceeded the cap; using a single "
            "unspecialized clone";
        recs.push_back(std::move(r));
      }
      obs::ProvenanceRecord r;
      r.step = 0;
      r.rule = "variants";
      r.subject = std::string(prog_.syms().name(prog_.proc(pid).name));
      r.line = prog_.proc(pid).loc.line;
      r.column = prog_.proc(pid).loc.column;
      r.detail = std::to_string(vs.variants.size()) +
                 " exceptional variant(s) enter the conflict universe";
      recs.push_back(std::move(r));
    }
    if (vs.budget_tripped && selected(pid)) {
      // A non-selected proc over budget stays in the universe as its
      // conservative clone; only the proc being classified degrades.
      throw BudgetExceeded(
          "max-variants",
          "procedure '" +
              std::string(prog_.syms().name(prog_.proc(pid).name)) +
              "' exceeded the exceptional-variant budget (max " +
              std::to_string(opts_.variant_opts.max_variants) + ")");
    }
    sets.push_back(std::move(vs));
  }

  // Build contexts for every variant (cross-variant conflict universe).
  for (const VariantSet& vs : sets)
    for (ProcId v : vs.variants) {
      if (budget != nullptr) budget->check("variant expansion");
      build_variant_ctx(v);
    }

  // Steps 1-6 per variant; step 7 per original procedure.
  std::unordered_map<uint32_t, VariantResult*> by_variant;
  for (const VariantSet& vs : sets) {
    if (!selected(vs.original)) continue;
    ProcResult pr;
    pr.proc = vs.original;
    pr.bailed_out = vs.bailed_out;
    pr.no_variants = vs.variants.empty();
    if (opts_.provenance) {
      if (auto it = step0.find(vs.original.idx); it != step0.end())
        pr.prov = std::move(it->second);
    }
    Atomicity overall = Atomicity::B;
    for (ProcId v : vs.variants) {
      VariantCtx* ctx = nullptr;
      for (VariantCtx& c : vctx_)
        if (c.id == v) ctx = &c;
      SYNAT_ASSERT(ctx != nullptr, "missing variant context");
      VariantResult vr;
      vr.variant = v;
      vr.pa = ctx->pa;
      propagate(*ctx, vr);
      overall = join(overall, vr.atomicity);
      pr.variants.push_back(std::move(vr));
    }
    pr.atomicity = overall;
    pr.atomic = leq(overall, Atomicity::A);
    if (opts_.provenance) {
      if (pr.no_variants) {
        obs::ProvenanceRecord r;
        r.step = 0;
        r.theorem = "4.1";
        r.rule = "no-variants";
        r.subject =
            std::string(prog_.syms().name(prog_.proc(pr.proc).name));
        r.line = prog_.proc(pr.proc).loc.line;
        r.column = prog_.proc(pr.proc).loc.column;
        r.detail =
            "no exceptional variants: the procedure never completes "
            "normally, so it is trivially atomic";
        pr.prov.push_back(std::move(r));
      }
      obs::ProvenanceRecord r;
      r.step = 7;
      r.rule = "verdict";
      r.subject = std::string(prog_.syms().name(prog_.proc(pr.proc).name));
      r.line = prog_.proc(pr.proc).loc.line;
      r.column = prog_.proc(pr.proc).loc.column;
      r.atom = std::string(to_string(overall));
      if (pr.atomic) {
        r.detail = "every variant body is atomic (<= A)";
      } else {
        for (const VariantResult& vr : pr.variants) {
          if (leq(vr.atomicity, Atomicity::A)) continue;
          r.detail = "variant " + prog_.proc(vr.variant).variant_tag +
                     " composes to " +
                     std::string(to_string(vr.atomicity));
          break;
        }
      }
      pr.prov.push_back(std::move(r));
      // The records are now part of a reported result: account for them.
      // Done here (not at creation) so Procedure-granularity totals equal
      // a whole-program run's.
      obs::count_provenance(pr.prov);
      for (const VariantResult& vr : pr.variants)
        obs::count_provenance(vr.prov);
    }
    result.procs_.push_back(std::move(pr));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Listings (Figure 3 style)

namespace {

struct Lister {
  const Program& prog;
  const VariantResult& v;
  std::string out;
  char prefix;
  int line = 1;

  Atomicity head_atom(synl::StmtId id) const {
    // The atomicity of the statement's own actions (for structured
    // statements) or of the whole statement (for leaves).
    const Stmt& s = prog.stmt(id);
    bool structured = s.kind == StmtKind::Local || s.kind == StmtKind::If ||
                      s.kind == StmtKind::Loop ||
                      s.kind == StmtKind::Synchronized ||
                      s.kind == StmtKind::Block;
    if (!structured) {
      auto it = v.stmt_atom.find(id.idx);
      return it == v.stmt_atom.end() ? Atomicity::B : it->second;
    }
    // Fold this statement's own events.
    Atomicity acc = Atomicity::B;
    const cfg::Cfg& cfg = v.pa->cfg();
    for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
      const Event& ev = cfg.node(EventId(i));
      if (ev.stmt != id || !ev.is_action()) continue;
      auto it = v.event_atom.find(i);
      if (it != v.event_atom.end()) acc = seq(acc, it->second);
    }
    return acc;
  }

  void emit(synl::StmtId id, int indent) {
    const Stmt& s = prog.stmt(id);
    if (s.kind == StmtKind::Block) {
      for (synl::StmtId c : s.stmts) emit(c, indent);
      return;
    }
    if (s.kind == StmtKind::Skip) return;
    out += prefix + std::to_string(line++) + ":";
    out += to_string(head_atom(id));
    out += ' ';
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += synl::stmt_head(prog, id);
    out += '\n';
    switch (s.kind) {
      case StmtKind::Local:
      case StmtKind::Loop:
      case StmtKind::Synchronized:
        emit(s.s1, indent + 1);
        break;
      case StmtKind::If:
        emit(s.s1, indent + 1);
        if (s.s2.valid()) {
          out += "     ";
          out.append(static_cast<size_t>(indent) * 2, ' ');
          out += "else\n";
          emit(s.s2, indent + 1);
        }
        break;
      default:
        break;
    }
  }
};

}  // namespace

std::string AtomicityResult::listing(const Program& prog,
                                     const VariantResult& v) const {
  Lister lister{prog, v, {}, 'a', 1};
  std::string head = "// variant ";
  head += prog.proc(v.variant).variant_tag.empty()
              ? std::string(prog.syms().name(prog.proc(v.variant).name))
              : prog.proc(v.variant).variant_tag;
  head += " : ";
  head += to_string(v.atomicity);
  head += '\n';
  lister.emit(prog.proc(v.variant).body, 0);
  return head + lister.out;
}

std::string AtomicityResult::full_listing(const Program& prog) const {
  std::string out;
  for (const ProcResult& pr : procs_) {
    out += "proc ";
    out += prog.syms().name(prog.proc(pr.proc).name);
    out += " : ";
    out += pr.atomic ? "atomic" : "NOT atomic";
    out += " (";
    out += to_string(pr.atomicity);
    out += ")\n";
    for (const VariantResult& v : pr.variants) {
      out += listing(prog, v);
    }
    out += '\n';
  }
  return out;
}

AtomicityResult infer_atomicity(Program& prog, DiagEngine& diags,
                                const InferOptions& opts) {
  return InferEngine(prog, diags, opts).run();
}

// ---------------------------------------------------------------------------
// Content/interference fingerprints

namespace {

/// Encodes exactly what `may_alias` (expr_util.cpp) can observe about an
/// access path: an invalid root aliases everything; plain variables alias
/// only the same declaration (program-level vars are identified by
/// kind+name; proc-level vars never alias across procedures, so kind+name
/// is faithful for cross-context queries); selector paths compare the final
/// selector only — field symbol plus holder type for fields, element type
/// for indices. `type_str` is injective on type structure, so hashing it
/// preserves `types_definitely_differ`.
void mix_path_sig(Hasher& h, const Program& prog, const AccessPath& path) {
  if (!path.root.valid()) {
    h.mix("p?");
    return;
  }
  if (path.is_plain_var()) {
    const synl::VarInfo& v = prog.var(path.root);
    h.mix("pv");
    h.mix(static_cast<uint64_t>(v.kind));
    h.mix(prog.syms().name(v.name));
    return;
  }
  const cfg::Selector& sel = path.sels.back();
  if (sel.kind == cfg::Selector::Field) {
    h.mix("pf");
    h.mix(sel.field.valid() ? prog.syms().name(sel.field)
                            : std::string_view("?"));
    h.mix(prog.type_str(analysis::path_prefix_type(prog, path)));
  } else {
    h.mix("pi");
    h.mix(prog.type_str(analysis::path_type(prog, path)));
  }
}

/// Declarations the alias analysis can consult: classes with their typed
/// fields, program-level variables with their kinds and types.
void mix_decls(Hasher& h, const Program& prog) {
  h.mix(static_cast<uint64_t>(prog.num_classes()));
  for (size_t i = 0; i < prog.num_classes(); ++i) {
    const synl::ClassInfo& c = prog.cls(synl::ClassId(static_cast<uint32_t>(i)));
    h.mix(prog.syms().name(c.name));
    h.mix(static_cast<uint64_t>(c.defined));
    h.mix(static_cast<uint64_t>(c.fields.size()));
    for (const synl::FieldInfo& f : c.fields) {
      h.mix(prog.syms().name(f.name));
      h.mix(prog.type_str(f.type));
    }
  }
  auto mix_vars = [&](const std::vector<synl::VarId>& ids) {
    h.mix(static_cast<uint64_t>(ids.size()));
    for (synl::VarId id : ids) {
      const synl::VarInfo& v = prog.var(id);
      h.mix(prog.syms().name(v.name));
      h.mix(static_cast<uint64_t>(v.kind));
      h.mix(prog.type_str(v.type));
    }
  };
  mix_vars(prog.globals());
  mix_vars(prog.threadlocals());
}

/// Statement source layout, pre-order. Reports render statement line
/// numbers (proc headers, per-line listings, variant assumptions inherit
/// statement locs), so layout is part of a result's identity. Expression
/// locations are only rendered by provenance records, and provenance runs
/// never use content keys.
void mix_stmt_locs(Hasher& h, const Program& prog, synl::StmtId id) {
  if (!id.valid()) return;
  const Stmt& s = prog.stmt(id);
  h.mix(static_cast<uint64_t>(s.loc.line));
  h.mix(static_cast<uint64_t>(s.loc.column));
  if (s.s1.valid()) mix_stmt_locs(h, prog, s.s1);
  if (s.s2.valid()) mix_stmt_locs(h, prog, s.s2);
  for (synl::StmtId c : s.stmts) mix_stmt_locs(h, prog, c);
}

}  // namespace

void InferEngine::mix_variant_signature(Hasher& h, const VariantCtx& ctx) const {
  h.mix("variant");
  h.mix(static_cast<uint64_t>(ctx.regions.size()));
  for (const Region& r : ctx.regions) {
    h.mix("region");
    h.mix(static_cast<uint64_t>(r.kind));
    mix_path_sig(h, prog_, r.svar);
    h.mix(static_cast<uint64_t>(r.cond));
  }
  // Global-action events in EventId order: everything the step-4 conflict
  // scan, all_updates_via and llsc_premise read from this context — event
  // kind, path alias class, held lock set, region membership. Local
  // actions are invisible across contexts and stay out of the signature.
  const cfg::Cfg& cfg = ctx.pa->cfg();
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    EventId e(i);
    if (!is_global_action(ctx, e)) continue;
    const Event& ev = cfg.node(e);
    h.mix("event");
    h.mix(static_cast<uint64_t>(ev.kind));
    mix_path_sig(h, prog_, ev.path);
    h.mix(static_cast<uint64_t>(ctx.held[i].size()));
    for (const AccessPath& l : ctx.held[i]) mix_path_sig(h, prog_, l);
    for (size_t ri = 0; ri < ctx.regions.size(); ++ri)
      if (ctx.regions[ri].members[i]) h.mix(static_cast<uint64_t>(ri));
    h.mix("end");
  }
}

uint64_t InferEngine::interference_universe() {
  const size_t num_original = prog_.num_procs();
  ExecBudget* budget = opts_.variant_opts.budget;

  // Mirror run()'s universe construction: step 0 for every procedure (a
  // budget-tripped procedure contributes its conservative clone, exactly as
  // it does to a real run's universe), then contexts for every variant.
  std::vector<VariantSet> sets;
  sets.reserve(num_original);
  for (size_t i = 0; i < num_original; ++i) {
    ProcId pid(static_cast<uint32_t>(i));
    if (budget != nullptr) budget->check("fingerprint");
    ProcAnalysis pa(prog_, pid);
    sets.push_back(generate_variants(prog_, pid, pa, diags_, opts_.variant_opts));
  }
  for (const VariantSet& vs : sets)
    for (ProcId v : vs.variants) {
      if (budget != nullptr) budget->check("fingerprint");
      build_variant_ctx(v);
    }

  Hasher h;
  size_t next = 0;
  for (const VariantSet& vs : sets) {
    h.mix("proc");
    h.mix(prog_.syms().name(prog_.proc(vs.original).name));
    h.mix(static_cast<uint64_t>(vs.variants.size()));
    for (ProcId v : vs.variants) {
      const VariantCtx& ctx = vctx_[next++];
      SYNAT_ASSERT(ctx.id == v, "variant context order mismatch");
      mix_variant_signature(h, ctx);
    }
  }
  return h.value();
}

ProgramFingerprint fingerprint_program(const Program& prog,
                                       const InferOptions& opts) {
  ProgramFingerprint fp;
  const size_t n = prog.num_procs();

  // Per-procedure content: printed body + statement layout, from the
  // caller's program so original source locations are captured.
  fp.content.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ProcId pid(static_cast<uint32_t>(i));
    const synl::ProcInfo& pi = prog.proc(pid);
    if (pi.broken || pi.variant_of.valid()) return fp;  // incomplete
    Hasher h;
    h.mix(synl::print_proc(prog, pid));
    h.mix(static_cast<uint64_t>(pi.loc.line));
    h.mix(static_cast<uint64_t>(pi.loc.column));
    mix_stmt_locs(h, prog, pi.body);
    fp.content.push_back(h.value());
  }

  // Interference universe, built on a private reparse: variant generation
  // appends procedures to (and re-runs sema over) its Program, and the
  // caller's must stay untouched. Printing is a fixpoint, so the reparse
  // is semantically identical to `prog` up to source locations — which the
  // signature never reads.
  DiagEngine diags;
  synl::FrontEnd fe = synl::parse_and_recover(synl::print_program(prog), diags);
  if (diags.has_errors() || !fe.contained || fe.prog.num_procs() != n)
    return fp;
  InferOptions fopts = opts;
  fopts.only_procs.clear();
  fopts.provenance = false;
  uint64_t universe = 0;
  try {
    InferEngine eng(fe.prog, diags, fopts);
    universe = eng.interference_universe();
  } catch (const BudgetExceeded&) {
    return fp;  // incomplete: caller falls back to whole-program keys
  }
  Hasher h;
  mix_decls(h, fe.prog);
  h.mix(universe);
  fp.universe = h.value();
  fp.complete = true;
  return fp;
}

}  // namespace synat::atomicity
