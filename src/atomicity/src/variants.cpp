#include "synat/atomicity/variants.h"

#include <string>

#include "synat/obs/metrics.h"
#include "synat/obs/trace.h"
#include "synat/synl/sema.h"

namespace synat::atomicity {

using synl::Expr;
using synl::ExprId;
using synl::ExprKind;
using synl::Stmt;
using synl::StmtId;
using synl::StmtKind;

namespace {

/// How a path through a statement leaves it.
struct Exit {
  enum Kind : uint8_t {
    Normal,   ///< falls through to the next statement
    Return,   ///< leaves the procedure (or never completes)
    Break,    ///< `break` targeting `target`
    Continue, ///< `continue` targeting `target`
  } kind = Normal;
  StmtId target;  ///< original Loop id for Break/Continue
};

struct Path {
  StmtId stmt;  ///< specialized clone (invalid = empty path)
  Exit exit;
};

class VariantGen {
 public:
  VariantGen(Program& prog, const analysis::ProcAnalysis& pa,
             DiagEngine& diags, const VariantOptions& opts)
      : prog_(prog), pa_(pa), diags_(diags), opts_(opts) {}

  std::vector<StmtId> run(StmtId body, bool& bailed) {
    std::vector<Path> paths = enumerate(body);
    bailed = bailed_;
    std::vector<StmtId> out;
    for (const Path& p : paths) out.push_back(ensure_stmt(p.stmt));
    return out;
  }

  /// Unspecialized whole-procedure clone, for budget fallbacks.
  StmtId clone_whole(StmtId body) { return clone_stmt(body); }

 private:
  // -- cloning -------------------------------------------------------------

  ExprId clone_expr(ExprId id) {
    if (!id.valid()) return id;
    Expr e = prog_.expr(id);  // copy
    e.a = clone_expr(e.a);
    e.b = clone_expr(e.b);
    e.c = clone_expr(e.c);
    for (ExprId& arg : e.args) arg = clone_expr(arg);
    return prog_.add_expr(std::move(e));
  }

  StmtId clone_stmt(StmtId id) {
    if (!id.valid()) return id;
    Stmt s = prog_.stmt(id);  // copy
    s.e1 = clone_expr(s.e1);
    s.e2 = clone_expr(s.e2);
    s.s1 = clone_stmt(s.s1);
    s.s2 = clone_stmt(s.s2);
    for (StmtId& child : s.stmts) child = clone_stmt(child);
    // jump_target / var are stale after cloning; re-sema fixes them.
    return prog_.add_stmt(std::move(s));
  }

  StmtId make_skip() {
    Stmt s;
    s.kind = StmtKind::Skip;
    return prog_.add_stmt(std::move(s));
  }

  /// Builds TRUE(cond) / TRUE(!cond), simplifying `!!e`, `!(a == b)` and
  /// `!(a != b)` so the emitted variants read like the paper's figures.
  StmtId make_assume(ExprId cond, bool negated, SourceLoc loc) {
    // Fold negation into the expression where cheap.
    ExprId src = cond;
    while (negated && src.valid() &&
           prog_.expr(src).kind == ExprKind::Unary &&
           prog_.expr(src).un_op == synl::UnOp::Not) {
      src = prog_.expr(src).a;
      negated = false;
    }
    ExprId e = clone_expr(src);
    if (negated && prog_.expr(e).kind == ExprKind::Binary) {
      Expr& b = prog_.expr(e);
      if (b.bin_op == synl::BinOp::Eq) {
        b.bin_op = synl::BinOp::Ne;
        negated = false;
      } else if (b.bin_op == synl::BinOp::Ne) {
        b.bin_op = synl::BinOp::Eq;
        negated = false;
      }
    }
    if (negated) {
      Expr n;
      n.kind = ExprKind::Unary;
      n.un_op = synl::UnOp::Not;
      n.loc = loc;
      n.a = e;
      e = prog_.add_expr(std::move(n));
    }
    Stmt s;
    s.kind = StmtKind::Assume;
    s.loc = loc;
    s.e1 = e;
    return prog_.add_stmt(std::move(s));
  }

  /// Jumps targeting the sliced loop that survive inside kept inner loops
  /// lie on branches that never execute in the exceptional iteration;
  /// replace them with the dead-end statement TRUE(false).
  void kill_jumps_to(StmtId id, StmtId loop) {
    if (!id.valid()) return;
    Stmt& s = prog_.stmt(id);
    if ((s.kind == StmtKind::Break || s.kind == StmtKind::Continue) &&
        s.jump_target == loop) {
      Expr f;
      f.kind = ExprKind::BoolLit;
      f.bool_value = false;
      f.loc = s.loc;
      ExprId fe = prog_.add_expr(std::move(f));
      Stmt& s2 = prog_.stmt(id);  // re-fetch: add_expr may move the arena
      s2.kind = StmtKind::Assume;
      s2.e1 = fe;
      s2.label = synat::Symbol();
      return;
    }
    StmtId s1 = s.s1, s2 = s.s2;
    std::vector<StmtId> children = s.stmts;
    kill_jumps_to(s1, loop);
    kill_jumps_to(s2, loop);
    for (StmtId c : children) kill_jumps_to(c, loop);
  }

  StmtId make_block(std::vector<StmtId> stmts, SourceLoc loc) {
    Stmt s;
    s.kind = StmtKind::Block;
    s.loc = loc;
    s.stmts = std::move(stmts);
    return prog_.add_stmt(std::move(s));
  }

  StmtId ensure_stmt(StmtId maybe) { return maybe.valid() ? maybe : make_skip(); }

  /// Sequences two path fragments.
  StmtId seq2(StmtId a, StmtId b, SourceLoc loc) {
    if (!a.valid()) return b;
    if (!b.valid()) return a;
    return make_block({a, b}, loc);
  }

  // -- path enumeration -----------------------------------------------------

  void note_explosion() {
    if (!bailed_) {
      bailed_ = true;
      diags_.warning(prog_.proc(pa_.proc()).loc,
                     "exceptional-variant generation exceeded " +
                         std::to_string(opts_.max_paths) +
                         " paths; falling back to an unspecialized clone");
    }
  }

  /// Exits a kept (unsliced) statement can take, by scanning its subtree.
  std::vector<Exit> kept_exits(StmtId id, StmtId this_loop) {
    bool has_break_self = false, has_return = false;
    std::vector<Exit> outer;
    synl::for_each_stmt(prog_, id, [&](StmtId sid) {
      const Stmt& s = prog_.stmt(sid);
      if (s.kind == StmtKind::Return) has_return = true;
      if (s.kind == StmtKind::Break || s.kind == StmtKind::Continue) {
        if (s.jump_target == this_loop) {
          if (s.kind == StmtKind::Break) has_break_self = true;
          // continue-to-self stays inside the loop
        } else if (s.jump_target.valid()) {
          // Jump past this loop to an enclosing one — only if the target is
          // NOT nested inside `id` itself.
          bool internal = false;
          synl::for_each_stmt(prog_, id, [&](StmtId t) {
            if (t == s.jump_target) internal = true;
          });
          if (!internal) {
            Exit e;
            e.kind = s.kind == StmtKind::Break ? Exit::Break : Exit::Continue;
            e.target = s.jump_target;
            outer.push_back(e);
          }
        }
      }
    });
    std::vector<Exit> exits;
    if (has_break_self) exits.push_back({Exit::Normal, {}});
    if (has_return) exits.push_back({Exit::Return, {}});
    for (const Exit& e : outer) exits.push_back(e);
    if (exits.empty()) exits.push_back({Exit::Return, {}});  // never completes
    return exits;
  }

  std::vector<Path> enumerate(StmtId id) {
    if (opts_.budget != nullptr) opts_.budget->check("variant enumeration");
    if (!id.valid()) return {{StmtId(), {Exit::Normal, {}}}};
    const Stmt s = prog_.stmt(id);  // copy: the arena may grow below
    switch (s.kind) {
      case StmtKind::ExprStmt: {
        // A discarded-result SC/CAS that fails is a no-op transition, so
        // executions split into "it succeeded" (keep, as an assumption —
        // this is how the paper's Figure 3 renders UpdateTail's SC) and
        // "it was a no-op" (deletable like a pure iteration).
        synl::ExprKind k = prog_.expr(s.e1).kind;
        if (k == ExprKind::SC || k == ExprKind::CAS) {
          Stmt assume;
          assume.kind = StmtKind::Assume;
          assume.loc = s.loc;
          assume.e1 = clone_expr(s.e1);
          return {{prog_.add_stmt(std::move(assume)), {Exit::Normal, {}}}};
        }
        return {{clone_stmt(id), {Exit::Normal, {}}}};
      }
      case StmtKind::Assign:
      case StmtKind::Skip:
      case StmtKind::Assume:
      case StmtKind::Assert:
        return {{clone_stmt(id), {Exit::Normal, {}}}};
      case StmtKind::Return:
        return {{clone_stmt(id), {Exit::Return, {}}}};
      // Jump statements perform no action; the exit annotation carries all
      // the information, so the slice omits the statement itself.
      case StmtKind::Break:
        return {{StmtId(), {Exit::Break, s.jump_target}}};
      case StmtKind::Continue:
        return {{StmtId(), {Exit::Continue, s.jump_target}}};
      case StmtKind::Block: {
        std::vector<Path> acc{{StmtId(), {Exit::Normal, {}}}};
        for (StmtId child : s.stmts) {
          std::vector<Path> next;
          for (const Path& prefix : acc) {
            if (prefix.exit.kind != Exit::Normal) {
              next.push_back(prefix);
              continue;
            }
            bool first_extension = true;
            for (const Path& cp : enumerate(child)) {
              if (next.size() >= opts_.max_paths) break;
              // Each path needs its own copy of the shared prefix: variants
              // are re-resolved independently, so no statement tree may be
              // shared between two of them.
              StmtId prefix_stmt = first_extension
                                       ? prefix.stmt
                                       : clone_stmt(prefix.stmt);
              first_extension = false;
              next.push_back({seq2(prefix_stmt, cp.stmt, s.loc), cp.exit});
            }
          }
          if (next.size() >= opts_.max_paths) {
            note_explosion();
            std::vector<Path> bail;
            StmtId whole = clone_stmt(id);
            bail.push_back({whole, {Exit::Normal, {}}});
            return bail;
          }
          acc = std::move(next);
        }
        return acc;
      }
      case StmtKind::If: {
        std::vector<Path> out;
        for (const Path& p : enumerate(s.s1)) {
          StmtId guard = make_assume(s.e1, /*negated=*/false, s.loc);
          out.push_back({seq2(guard, p.stmt, s.loc), p.exit});
        }
        // An absent else branch is an empty normal path.
        std::vector<Path> else_paths =
            s.s2.valid() ? enumerate(s.s2)
                         : std::vector<Path>{{StmtId(), {Exit::Normal, {}}}};
        for (const Path& p : else_paths) {
          StmtId guard = make_assume(s.e1, /*negated=*/true, s.loc);
          out.push_back({seq2(guard, p.stmt, s.loc), p.exit});
        }
        return out;
      }
      case StmtKind::Local: {
        std::vector<Path> out;
        for (const Path& p : enumerate(s.s1)) {
          Stmt local;
          local.kind = StmtKind::Local;
          local.loc = s.loc;
          local.name = s.name;
          local.declared_type = s.declared_type;
          local.e1 = clone_expr(s.e1);
          local.s1 = ensure_stmt(p.stmt);
          out.push_back({prog_.add_stmt(std::move(local)), p.exit});
        }
        return out;
      }
      case StmtKind::Synchronized: {
        std::vector<Path> out;
        for (const Path& p : enumerate(s.s1)) {
          Stmt sync;
          sync.kind = StmtKind::Synchronized;
          sync.loc = s.loc;
          sync.e1 = clone_expr(s.e1);
          sync.s1 = ensure_stmt(p.stmt);
          out.push_back({prog_.add_stmt(std::move(sync)), p.exit});
        }
        return out;
      }
      case StmtKind::Loop: {
        bool pure = !opts_.disable && pa_.purity().is_pure(id);
        if (!pure) {
          // Kept whole; one clone per possible exit so block sequencing can
          // continue after a break or stop at a return.
          std::vector<Path> out;
          for (const Exit& e : kept_exits(id, id)) {
            out.push_back({clone_stmt(id), e});
          }
          return out;
        }
        std::vector<Path> out;
        for (const Path& p : enumerate(s.s1)) {
          switch (p.exit.kind) {
            case Exit::Normal:
              break;  // normal termination: deleted (Theorem 4.1)
            case Exit::Continue:
              if (p.exit.target == id) break;  // normal termination
              out.push_back(p);                // leaves this loop outward
              break;
            case Exit::Break:
              if (p.exit.target == id) {
                out.push_back({p.stmt, {Exit::Normal, {}}});
              } else {
                out.push_back(p);
              }
              break;
            case Exit::Return:
              out.push_back(p);
              break;
          }
        }
        // Jumps to this (now removed) loop surviving inside kept inner
        // loops can never fire in an exceptional iteration.
        for (Path& p : out) kill_jumps_to(p.stmt, id);
        return out;
      }
    }
    return {};
  }

  Program& prog_;
  const analysis::ProcAnalysis& pa_;
  DiagEngine& diags_;
  const VariantOptions& opts_;
  bool bailed_ = false;
};

}  // namespace

VariantSet generate_variants(Program& prog, ProcId proc,
                             const analysis::ProcAnalysis& pa,
                             DiagEngine& diags, const VariantOptions& opts) {
  obs::SpanScope span(obs::StageId::Variants);
  VariantSet out;
  out.original = proc;

  VariantGen gen(prog, pa, diags, opts);
  bool bailed = false;
  std::vector<StmtId> bodies = gen.run(prog.proc(proc).body, bailed);
  out.bailed_out = bailed;

  if (opts.max_variants != 0 && bodies.size() > opts.max_variants) {
    // Over budget: fall back to a single unspecialized clone, like the
    // max_paths bail above. The clone over-approximates every variant, so
    // other procedures still see a sound conflict universe.
    out.budget_tripped = true;
    diags.warning(prog.proc(proc).loc,
                  "procedure has " + std::to_string(bodies.size()) +
                      " exceptional variants, exceeding the budget of " +
                      std::to_string(opts.max_variants) +
                      "; falling back to an unspecialized clone");
    bodies.clear();
    bodies.push_back(gen.clone_whole(prog.proc(proc).body));
  }

  const std::string base(prog.syms().name(prog.proc(proc).name));
  for (size_t i = 0; i < bodies.size(); ++i) {
    synl::ProcInfo info;
    std::string vname = base + "'" + std::to_string(i + 1);
    info.name = prog.syms().intern(vname);
    info.loc = prog.proc(proc).loc;
    info.body = bodies[i];
    info.variant_of = proc;
    info.variant_tag = vname;
    // Fresh parameter variables for the clone (sharing VarIds across
    // procedures would confuse per-procedure analyses).
    ProcId vid = prog.add_proc(std::move(info));
    std::vector<synl::VarId> params;
    for (synl::VarId p : prog.proc(proc).params) {
      synl::VarInfo v = prog.var(p);
      v.proc = vid;
      params.push_back(prog.add_var(v));
    }
    prog.proc(vid).params = std::move(params);
    resolve_proc(prog, vid, diags);
    out.variants.push_back(vid);
  }
  static obs::Counter& variants_total =
      obs::registry().counter("synat_variants_generated_total");
  variants_total.inc(out.variants.size());
  return out;
}

}  // namespace synat::atomicity
