// Umbrella header for the synat core library.
//
// Quickstart:
//
//   #include "synat/synat.h"
//
//   synat::DiagEngine diags;
//   synat::synl::Program prog = synat::synl::parse_and_check(source, diags);
//   synat::atomicity::AtomicityResult result =
//       synat::atomicity::infer_atomicity(prog, diags);
//   std::cout << result.full_listing(prog);
//
// The substrates (SYNL interpreter, model checker, runtime non-blocking
// library, corpus) have their own headers under synat/interp, synat/mc,
// synat/runtime and synat/corpus.
#pragma once

#include "synat/analysis/proc_analysis.h"
#include "synat/atomicity/blocks.h"
#include "synat/atomicity/infer.h"
#include "synat/atomicity/types.h"
#include "synat/atomicity/variants.h"
#include "synat/cfg/cfg.h"
#include "synat/cfg/liveness.h"
#include "synat/support/diag.h"
#include "synat/synl/ast.h"
#include "synat/synl/parser.h"
#include "synat/synl/printer.h"
#include "synat/synl/sema.h"
