// Atomic-block partitioning (paper Section 6.4).
//
// When a whole procedure is not atomic, the analysis still benefits later
// verification by splitting its body into maximal atomic blocks: a greedy
// left-to-right scan merges consecutive units while the running sequential
// composition stays ⊑ A, and cuts a new block when it would become N.
// Each pure loop was already replaced by its exceptional slice in the
// variant, so a CAS-retry loop contributes its slice's units.
#pragma once

#include <vector>

#include "synat/atomicity/infer.h"

namespace synat::atomicity {

/// One unit of the flattened body: a statement plus its atomicity (for
/// Local statements, the initializer's atomicity; the body is flattened
/// into following units).
struct BlockUnit {
  synl::StmtId stmt;
  Atomicity atom = Atomicity::B;
};

struct AtomicBlock {
  std::vector<BlockUnit> units;
  Atomicity atom = Atomicity::B;  ///< composition of the units
};

struct BlockPartition {
  synl::ProcId variant;
  std::vector<AtomicBlock> blocks;
};

/// Partitions one variant's body.
BlockPartition partition_blocks(const synl::Program& prog,
                                const VariantResult& v);

/// Step-6 provenance for a partition: one record per atomic block (cut
/// points are where the greedy composition would become N). Deterministic:
/// records follow block order.
std::vector<obs::ProvenanceRecord> block_provenance(
    const synl::Program& prog, const VariantResult& v,
    const BlockPartition& part);

/// Program-level summary as the paper reports it: an atomic procedure is a
/// single block; a non-atomic one contributes the largest partition among
/// its variants (the worst-case shape later verification must handle).
struct BlockSummary {
  size_t total_blocks = 0;
  size_t total_procs = 0;
  size_t atomic_procs = 0;
  std::vector<std::pair<synl::ProcId, size_t>> per_proc;
};

BlockSummary summarize_blocks(const synl::Program& prog,
                              const AtomicityResult& result);

}  // namespace synat::atomicity
