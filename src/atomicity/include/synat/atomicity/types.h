// Atomicity types and the Flanagan–Qadeer calculus (paper Section 3.3).
//
// The lattice is  B ⊏ L, B ⊏ R, L ⊏ A, R ⊏ A, A ⊏ N  (L and R are
// incomparable). `seq` is the paper's sequential-composition table, `join`
// the least upper bound, and `iter` the iterative closure used for loops.
#pragma once

#include <cstdint>
#include <string_view>

namespace synat::atomicity {

enum class Atomicity : uint8_t {
  B,  ///< both-mover
  R,  ///< right-mover
  L,  ///< left-mover
  A,  ///< atomic
  N,  ///< non-atomic ("compound")
};

constexpr std::string_view to_string(Atomicity a) {
  switch (a) {
    case Atomicity::B: return "B";
    case Atomicity::R: return "R";
    case Atomicity::L: return "L";
    case Atomicity::A: return "A";
    case Atomicity::N: return "N";
  }
  return "?";
}

/// Partial order: true iff a ⊑ b (a gives the stronger guarantee).
constexpr bool leq(Atomicity a, Atomicity b) {
  if (a == b) return true;
  switch (a) {
    case Atomicity::B: return true;
    case Atomicity::R:
    case Atomicity::L:
      return b == Atomicity::A || b == Atomicity::N;
    case Atomicity::A: return b == Atomicity::N;
    case Atomicity::N: return false;
  }
  return false;
}

/// Least upper bound. join(L, R) == A since L and R are incomparable.
constexpr Atomicity join(Atomicity a, Atomicity b) {
  if (leq(a, b)) return b;
  if (leq(b, a)) return a;
  return Atomicity::A;  // only reachable for {L, R}
}

/// Greatest lower bound; meet(L, R) == B.
constexpr Atomicity meet(Atomicity a, Atomicity b) {
  if (leq(a, b)) return a;
  if (leq(b, a)) return b;
  return Atomicity::B;  // only reachable for {L, R}
}

/// Sequential composition `a; b` (table in Section 3.3). One cell needs
/// care: some renderings of the paper show A;A = A, but Lipton reduction
/// only discharges the pattern R*;A;L*, so composing two atomic-but-
/// non-mover pieces is non-atomic; we follow the Flanagan–Qadeer calculus
/// the paper builds on and use A;A = N.
constexpr Atomicity seq(Atomicity a, Atomicity b) {
  using enum Atomicity;
  constexpr Atomicity table[5][5] = {
      //             B  R  L  A  N      (second argument)
      /* B */ {B, R, L, A, N},
      /* R */ {R, R, A, A, N},
      /* L */ {L, N, L, N, N},
      /* A */ {A, N, A, N, N},
      /* N */ {N, N, N, N, N},
  };
  return table[static_cast<int>(a)][static_cast<int>(b)];
}

/// Iterative closure t*: atomicity of repeating a t-typed statement.
constexpr Atomicity iter(Atomicity a) {
  switch (a) {
    case Atomicity::B: return Atomicity::B;
    case Atomicity::R: return Atomicity::R;
    case Atomicity::L: return Atomicity::L;
    case Atomicity::A: return Atomicity::N;
    case Atomicity::N: return Atomicity::N;
  }
  return Atomicity::N;
}

}  // namespace synat::atomicity
