// Atomicity inference: the seven-step algorithm of paper Section 5.4.
//
//  Step 0 (Section 5.2): replace each procedure by its exceptional variants.
//  Step 1: local actions are B; lock acquire R; lock release L.
//  Step 2: when every update of a variable goes through SC, successful
//          SC/VL on it are L and their matching LLs are R (Theorem 5.3);
//          CAS analogue for counted (ABA-protected) targets.
//  Step 3: infer local conditions of local blocks (Section 5.3).
//  Step 4: per global read/write, decide whether a conflicting access from
//          another thread can be adjacent, using locks (Theorem 5.1),
//          successful-SC windows (Theorem 5.4) and condition-disjoint
//          blocks (Theorem 5.5); assign L/R/B accordingly and meet with the
//          earlier classification.
//  Step 5: unclassified actions get A.
//  Step 6: propagate through the AST with join / seq / iterative closure.
//  Step 7: a procedure is atomic iff every variant's body is ⊑ A.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "synat/analysis/proc_analysis.h"
#include "synat/atomicity/types.h"
#include "synat/atomicity/variants.h"
#include "synat/obs/provenance.h"
#include "synat/support/diag.h"

namespace synat::atomicity {

using cfg::EventId;
using synl::StmtId;

struct InferOptions {
  VariantOptions variant_opts;
  /// Theorem 5.4 successful-SC window exclusions (ablation E8-ii).
  bool use_window_rule = true;
  /// Theorem 5.5 local-condition exclusions (ablation E8-iii).
  bool use_local_conditions = true;
  /// Treat CAS targets as ABA-protected (modification counters), enabling
  /// the CAS analogues of Theorems 5.3/5.4. The paper assumes the counter
  /// discipline for the algorithms of Section 6.4; list the protected
  /// locations as "Var" (global) or "Class.field" strings, or "*" for all.
  std::vector<std::string> counted_cas;
  /// When non-empty, only the named procedures are classified and reported
  /// (steps 1-7). Every procedure still contributes its variants to the
  /// cross-thread conflict universe, so the results for the selected
  /// procedures are identical to a whole-program run. Used by the batch
  /// driver to parallelize at procedure granularity.
  std::vector<std::string> only_procs;
  /// Record a structured justification for every classification decision
  /// (DESIGN.md §3f): which step fired, citing which theorem, on which
  /// event, with conflict witnesses. Off by default — collection costs a
  /// record per classified event. Part of the driver's cache fingerprint.
  bool provenance = false;
};

struct VariantResult {
  synl::ProcId variant;
  Atomicity atomicity = Atomicity::N;  ///< of the variant body
  std::unordered_map<uint32_t, Atomicity> event_atom;  ///< EventId.idx -> type
  std::unordered_map<uint32_t, Atomicity> stmt_atom;   ///< StmtId.idx -> type
  std::shared_ptr<analysis::ProcAnalysis> pa;
  /// Per-event and per-variant derivation records, in deterministic
  /// (event-index, then emission) order. Empty unless
  /// InferOptions::provenance.
  std::vector<obs::ProvenanceRecord> prov;
};

struct ProcResult {
  synl::ProcId proc;
  bool atomic = false;
  Atomicity atomicity = Atomicity::N;  ///< join over variant bodies
  bool no_variants = false;  ///< pure non-terminating loop: trivially atomic
  bool bailed_out = false;
  std::vector<VariantResult> variants;
  /// Procedure-level derivation records (step 0 variant/purity facts and
  /// the step 7 verdict). Empty unless InferOptions::provenance.
  std::vector<obs::ProvenanceRecord> prov;
};

class AtomicityResult {
 public:
  const std::vector<ProcResult>& procs() const { return procs_; }
  const ProcResult* result_for(synl::ProcId proc) const {
    for (const ProcResult& r : procs_)
      if (r.proc == proc) return &r;
    return nullptr;
  }
  bool all_atomic() const {
    for (const ProcResult& r : procs_)
      if (!r.atomic) return false;
    return !procs_.empty();
  }

  /// Annotated listing of a variant in the style of the paper's Figure 3:
  /// one line per statement, prefixed with its atomicity type.
  std::string listing(const synl::Program& prog, const VariantResult& v) const;
  /// Listing of every variant of every procedure.
  std::string full_listing(const synl::Program& prog) const;

 private:
  friend class InferEngine;
  std::vector<ProcResult> procs_;
};

/// Runs the complete analysis. Appends exceptional variants to `prog`.
AtomicityResult infer_atomicity(synl::Program& prog, DiagEngine& diags,
                                const InferOptions& opts = {});

/// Content/interference fingerprints for fine-grained result caching.
///
/// A procedure's verdict is a function of (a) its own body and source
/// layout, (b) the program's declarations, and (c) the *interference
/// signature* of every procedure in the program — the projection of each
/// variant context that steps 2/4 read across contexts: region lists
/// (kind, shared-variable alias class, condition), global-action events
/// (kind, path alias class, lock set, region membership). Two programs
/// with equal `content[p]` and equal `universe` therefore give procedure
/// `p` byte-identical reports, even if other procedure bodies differ —
/// this is what lets the driver cache (and `synat serve`) re-analyze only
/// edited procedures instead of the whole program.
struct ProgramFingerprint {
  /// False when the program could not be fingerprinted precisely (broken
  /// procedures, variant budget trip mid-fingerprint, reparse failure);
  /// callers must fall back to whole-program keying.
  bool complete = false;
  /// Declarations + every procedure's interference signature. Shared by
  /// all procedures of the program.
  uint64_t universe = 0;
  /// Per original procedure, in declaration order: the procedure's own
  /// printed body plus its statement source layout (reports render line
  /// numbers, so layout is part of the result's identity).
  std::vector<uint64_t> content;
};

/// Computes the fingerprint without running steps 1-7 (it pays variant
/// generation and per-variant CFG analysis, not the quadratic conflict
/// scan). Never appends to `prog`: the universe is built from a private
/// reparse. Honors `opts.variant_opts.budget`; a trip yields an incomplete
/// fingerprint instead of throwing.
ProgramFingerprint fingerprint_program(const synl::Program& prog,
                                       const InferOptions& opts = {});

}  // namespace synat::atomicity
