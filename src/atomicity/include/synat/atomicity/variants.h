// Exceptional-variant generation (paper Section 5.2).
//
// For each pure loop, every control-flow path of its body that terminates
// exceptionally (break out of the loop, jump past it, or return) is an
// *exceptional slice*. A procedure's exceptional variants are the cartesian
// product, over its pure loops, of their slices: each variant replaces each
// pure loop by one selected slice, with branch decisions along the slice
// turned into TRUE(e) / TRUE(!e) assumptions. Normally terminating paths
// are dropped (Theorem 4.1 lets them be deleted), and non-pure loops are
// kept whole.
//
// Variants are appended to the same Program as new procedures with
// `variant_of` pointing at the original; they are re-run through sema so
// all names, types and jump targets are resolved in the cloned bodies.
#pragma once

#include <vector>

#include "synat/analysis/proc_analysis.h"
#include "synat/support/budget.h"
#include "synat/support/diag.h"
#include "synat/synl/ast.h"

namespace synat::atomicity {

using synl::ProcId;
using synl::Program;

struct VariantSet {
  ProcId original;
  std::vector<ProcId> variants;
  /// True when the path count exceeded the generation cap and the variant
  /// list is a single unspecialized clone of the procedure.
  bool bailed_out = false;
  /// True when the variant count exceeded VariantOptions::max_variants and
  /// the list was replaced by a single unspecialized clone. Sound for the
  /// conflict universe (the clone over-approximates every variant); the
  /// driver degrades the procedure when it is the classification target.
  bool budget_tripped = false;
};

struct VariantOptions {
  /// Maximum number of paths enumerated per statement before bailing out.
  size_t max_paths = 256;
  /// Ablation hook (DESIGN.md E8-i): treat every loop as impure, so each
  /// procedure has exactly one variant, itself.
  bool disable = false;
  /// Hard cap on exceptional variants per procedure; 0 means unlimited.
  /// Exceeding it sets VariantSet::budget_tripped (see above). Part of the
  /// driver's cache fingerprint: it changes generated results.
  size_t max_variants = 0;
  /// Optional cancellation token polled during enumeration. Never part of
  /// the cache fingerprint — a trip aborts the task, it cannot change a
  /// completed result.
  ExecBudget* budget = nullptr;
};

/// Generates the exceptional variants of `proc`. `pa` must be the analysis
/// of the original procedure (purity decides which loops are sliced).
VariantSet generate_variants(Program& prog, ProcId proc,
                             const analysis::ProcAnalysis& pa,
                             DiagEngine& diags,
                             const VariantOptions& opts = {});

}  // namespace synat::atomicity
