// Epoch-based memory reclamation for the non-blocking containers.
//
// Threads enter a read-side critical section (Guard) before touching nodes
// that concurrent operations may retire. Retired nodes are freed once every
// registered thread has left the epoch in which they were retired (two
// global epoch advances). This is the standard 3-epoch scheme; it keeps the
// containers' fast paths lock-free while making node reuse safe (ABA on
// recycled addresses is additionally guarded by the VersionedAtomic
// counters).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace synat::runtime {

class EpochDomain {
 public:
  static constexpr uint64_t kIdle = ~0ull;

  EpochDomain() = default;
  ~EpochDomain() { drain_all_unsafe(); }
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// RAII read-side critical section.
  class Guard {
   public:
    explicit Guard(EpochDomain& dom) : dom_(dom), slot_(dom.my_slot()) {
      uint64_t e = dom_.global_epoch_.load(std::memory_order_acquire);
      dom_.slots_[slot_].epoch.store(e, std::memory_order_release);
    }
    ~Guard() {
      dom_.slots_[slot_].epoch.store(kIdle, std::memory_order_release);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochDomain& dom_;
    size_t slot_;
  };

  /// Defers `deleter` until no thread can still hold a reference obtained
  /// before this call. Must be invoked outside or inside a Guard (both are
  /// safe; the node must already be unlinked).
  void retire(std::function<void()> deleter) {
    size_t slot = my_slot();
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lk(slots_[slot].mu);
      slots_[slot].retired.push_back({std::move(deleter), e});
    }
    if (++slots_[slot].ops % kCollectPeriod == 0) collect(slot);
  }

  /// Attempts an epoch advance + local collection (also called
  /// periodically from retire()).
  void collect(size_t slot) {
    try_advance();
    uint64_t safe = global_epoch_.load(std::memory_order_acquire);
    // Nodes retired at epoch e are free when global >= e + 2.
    std::vector<Retired> free_now;
    {
      std::lock_guard<std::mutex> lk(slots_[slot].mu);
      auto& list = slots_[slot].retired;
      size_t kept = 0;
      for (auto& r : list) {
        if (r.epoch + 2 <= safe) {
          free_now.push_back(std::move(r));
        } else {
          list[kept++] = std::move(r);
        }
      }
      list.resize(kept);
    }
    for (auto& r : free_now) r.deleter();
  }

  /// Number of deferred deletions not yet executed (tests/diagnostics).
  size_t pending() {
    size_t n = 0;
    for (auto& s : slots_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.retired.size();
    }
    return n;
  }

  /// Frees everything regardless of epochs. Only safe when no concurrent
  /// readers exist (destructor / tests).
  void drain_all_unsafe() {
    for (auto& s : slots_) {
      std::vector<Retired> list;
      {
        std::lock_guard<std::mutex> lk(s.mu);
        list.swap(s.retired);
      }
      for (auto& r : list) r.deleter();
    }
  }

  static constexpr size_t kMaxThreads = 128;

 private:
  struct Retired {
    std::function<void()> deleter;
    uint64_t epoch;
  };
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
    std::mutex mu;                 ///< protects retired (slow path only)
    std::vector<Retired> retired;  ///< deferred deletions
    uint64_t ops = 0;
  };

  static constexpr uint64_t kCollectPeriod = 64;

  size_t my_slot() {
    // Per (thread, domain) slot assignment; a plain thread_local would be
    // shared across domains.
    thread_local std::vector<std::pair<const EpochDomain*, size_t>> cache;
    for (auto& [dom, slot] : cache) {
      if (dom == this) return slot;
    }
    size_t slot = slot_counter_.fetch_add(1) % kMaxThreads;
    cache.emplace_back(this, slot);
    return slot;
  }

  void try_advance() {
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    for (const Slot& s : slots_) {
      uint64_t se = s.epoch.load(std::memory_order_acquire);
      if (se != kIdle && se < e) return;  // a reader lags behind
    }
    global_epoch_.compare_exchange_strong(e, e + 1,
                                          std::memory_order_acq_rel);
  }

  std::atomic<uint64_t> global_epoch_{2};
  std::atomic<size_t> slot_counter_{0};
  std::array<Slot, kMaxThreads> slots_;
};

}  // namespace synat::runtime
