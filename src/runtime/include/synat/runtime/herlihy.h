// Herlihy's universal construction for small objects (paper Section 6.2,
// [7]): each thread keeps a private working copy; an operation copies the
// shared object, applies the update to the copy, and publishes it with SC.
// The retired shared copy becomes the thread's next working copy, so the
// construction uses exactly num_threads + 1 blocks and never allocates
// after start-up.
//
// Reads of the shared block can race with the former owner's writes to its
// (stale) working copy — exactly the hazard the paper describes — which the
// VL validation detects, discarding the torn copy. T must therefore be
// trivially copyable (the copy is a memcpy that tolerates byte races).
#pragma once

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <type_traits>
#include <vector>

#include "synat/runtime/llsc.h"

namespace synat::runtime {

template <typename T, size_t MaxThreads = 64>
  requires std::is_trivially_copyable_v<T>
class HerlihyObject {
 public:
  explicit HerlihyObject(T initial) {
    blocks_.resize(MaxThreads + 1);
    blocks_[0].data = initial;
    shared_.store(&blocks_[0]);
    for (size_t i = 1; i < blocks_.size(); ++i) free_.push_back(&blocks_[i]);
  }
  HerlihyObject(const HerlihyObject&) = delete;
  HerlihyObject& operator=(const HerlihyObject&) = delete;

  /// Applies `op` atomically; returns op's result.
  template <typename Op>
  auto apply(Op&& op) {
    Block* prv = my_private();
    typename LLSCCell<Block*>::Link link;
    while (true) {
      Block* m = shared_.ll(link);
      // copy(prv.data, m.data): may observe a torn value if the former
      // owner of m is still writing; VL rejects that case.
      std::memcpy(static_cast<void*>(&prv->data),
                  static_cast<const void*>(&m->data), sizeof(T));
      if (!shared_.vl(link)) continue;
      auto result = op(prv->data);  // computation(prv.data)
      if (shared_.sc(link, prv)) {
        my_private() = m;  // retire the old shared copy
        return result;
      }
    }
  }

  /// Linearizable read.
  T read() {
    return apply([](T& v) { return v; });
  }

 private:
  struct alignas(64) Block {
    T data{};
  };

  Block*& my_private() {
    thread_local std::vector<std::pair<const HerlihyObject*, Block*>> cache;
    for (auto& [obj, blk] : cache) {
      if (obj == this) return blk;
    }
    Block* blk;
    {
      std::lock_guard<std::mutex> lk(init_mu_);
      if (free_.empty()) std::abort();  // more than MaxThreads threads
      blk = free_.back();
      free_.pop_back();
    }
    cache.emplace_back(this, blk);
    return cache.back().second;
  }

  LLSCCell<Block*> shared_{nullptr};
  std::vector<Block> blocks_;
  std::vector<Block*> free_;
  std::mutex init_mu_;  ///< one-time per-thread block assignment only
};

}  // namespace synat::runtime
