// Lock-based FIFO queue: the blocking baseline the paper's introduction
// contrasts non-blocking synchronization against (benchmark E7).
#pragma once

#include <deque>
#include <mutex>
#include <optional>

namespace synat::runtime {

template <typename T>
class MutexQueue {
 public:
  void enqueue(T value) {
    std::lock_guard<std::mutex> lk(mu_);
    items_.push_back(std::move(value));
  }

  /// Counterpart of MSQueue::enqueue_stalled: the stall happens while the
  /// lock is held (a preempted lock holder blocks everyone).
  template <typename Stall>
  void enqueue_stalled(T value, Stall&& stall) {
    std::lock_guard<std::mutex> lk(mu_);
    items_.push_back(std::move(value));
    stall();
  }

  std::optional<T> dequeue() {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  size_t unsafe_size() const { return items_.size(); }

 private:
  std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace synat::runtime
