// Simplified Michael lock-free allocator (paper Section 6.4, [12]).
//
// One size class. Superblocks hold `maxcount` fixed-size blocks whose free
// list is threaded through the blocks themselves as indices; each
// descriptor's Anchor packs (avail index, count, tag) into one 64-bit word
// updated by CAS — the tag is the modification counter the paper's CAS
// theorems rely on. The Active descriptor and the partial list are counted
// CAS pointers.
//
// Simplifications vs. [12], documented in DESIGN.md: a single size class
// and heap; no credits subfield in Active (we CAS the descriptor's anchor
// directly); superblocks are cached forever (no EMPTY-state reclamation).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "synat/runtime/versioned.h"

namespace synat::runtime {

class LockFreeAllocator {
 public:
  /// blocks of `block_size` bytes, `blocks_per_superblock` per superblock.
  explicit LockFreeAllocator(size_t block_size = 64,
                             uint16_t blocks_per_superblock = 64)
      : block_size_(align_up(block_size + sizeof(Header), 16)),
        maxcount_(blocks_per_superblock) {}

  ~LockFreeAllocator() {
    for (Descriptor* d : all_descriptors_snapshot()) {
      std::free(d->superblock);
      delete d;
    }
  }
  LockFreeAllocator(const LockFreeAllocator&) = delete;
  LockFreeAllocator& operator=(const LockFreeAllocator&) = delete;

  void* malloc() {
    while (true) {
      if (void* p = malloc_from_active()) return p;
      if (void* p = malloc_from_partial()) return p;
      if (void* p = malloc_from_new_sb()) return p;
    }
  }

  void free(void* payload) {
    Header* h = reinterpret_cast<Header*>(static_cast<char*>(payload) -
                                          sizeof(Header));
    Descriptor* d = h->desc;
    uint16_t idx = h->index;
    uint64_t old_anchor = d->anchor.load(std::memory_order_acquire);
    while (true) {
      Anchor a = unpack(old_anchor);
      // Thread the block back onto the free list.
      block_next(d, idx) = a.avail;
      Anchor na{idx, static_cast<uint16_t>(a.count + 1),
                static_cast<uint32_t>(a.tag + 1)};
      if (d->anchor.compare_exchange_weak(old_anchor, pack(na),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        if (a.count == 0) make_partial(d);  // it was full: re-expose it
        return;
      }
    }
  }

  size_t superblocks_allocated() const {
    return sb_count_.load(std::memory_order_relaxed);
  }
  size_t block_payload_size() const { return block_size_ - sizeof(Header); }

 private:
  struct Descriptor;

  struct Header {
    Descriptor* desc;
    uint16_t index;
  };

  struct Anchor {
    uint16_t avail;  ///< index of first free block (kNone = empty list)
    uint16_t count;  ///< free blocks
    uint32_t tag;    ///< CAS modification counter
  };
  static constexpr uint16_t kNone = 0xffff;

  struct Descriptor {
    std::atomic<uint64_t> anchor{0};
    char* superblock = nullptr;
    uint16_t maxcount = 0;
    Descriptor* next_partial = nullptr;  ///< link while on the partial list
    Descriptor* next_all = nullptr;      ///< teardown bookkeeping
  };

  static uint64_t pack(Anchor a) {
    return static_cast<uint64_t>(a.avail) | (static_cast<uint64_t>(a.count) << 16) |
           (static_cast<uint64_t>(a.tag) << 32);
  }
  static Anchor unpack(uint64_t bits) {
    return {static_cast<uint16_t>(bits & 0xffff),
            static_cast<uint16_t>((bits >> 16) & 0xffff),
            static_cast<uint32_t>(bits >> 32)};
  }
  static size_t align_up(size_t n, size_t a) { return (n + a - 1) / a * a; }

  char* block_addr(Descriptor* d, uint16_t idx) const {
    return d->superblock + static_cast<size_t>(idx) * block_size_;
  }
  /// The free-list "next" index stored in a free block's payload.
  uint16_t& block_next(Descriptor* d, uint16_t idx) const {
    return *reinterpret_cast<uint16_t*>(block_addr(d, idx) + sizeof(Header));
  }

  void* take(Descriptor* d, uint16_t idx) const {
    Header* h = reinterpret_cast<Header*>(block_addr(d, idx));
    h->desc = d;
    h->index = idx;
    return block_addr(d, idx) + sizeof(Header);
  }

  void* malloc_from_descriptor(Descriptor* d) {
    uint64_t old_anchor = d->anchor.load(std::memory_order_acquire);
    while (true) {
      Anchor a = unpack(old_anchor);
      if (a.count == 0 || a.avail == kNone) return nullptr;
      uint16_t idx = a.avail;
      uint16_t next = block_next(d, idx);
      Anchor na{next, static_cast<uint16_t>(a.count - 1),
                static_cast<uint32_t>(a.tag + 1)};
      if (d->anchor.compare_exchange_weak(old_anchor, pack(na),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        return take(d, idx);
      }
    }
  }

  void* malloc_from_active() {
    auto active = active_.load();
    if (!active.value) return nullptr;
    if (void* p = malloc_from_descriptor(active.value)) return p;
    // Exhausted: retire it from Active (whoever wins; losers just retry).
    active_.cas(active, nullptr);
    return nullptr;
  }

  void* malloc_from_partial() {
    while (true) {
      auto head = partial_.load();
      if (!head.value) return nullptr;
      if (!partial_.cas(head, head.value->next_partial)) continue;
      Descriptor* d = head.value;
      if (void* p = malloc_from_descriptor(d)) {
        // Reinstall as Active so subsequent mallocs hit the fast path.
        auto expected = active_.load();
        if (!expected.value) active_.cas(expected, d);
        return p;
      }
      // Fully drained between push and pop: drop it (frees re-expose it).
    }
  }

  void* malloc_from_new_sb() {
    Descriptor* d = new Descriptor;
    d->superblock = static_cast<char*>(
        std::aligned_alloc(16, block_size_ * maxcount_));
    d->maxcount = maxcount_;
    // Blocks 1..max-1 form the free list; block 0 is returned immediately.
    for (uint16_t i = 1; i < maxcount_; ++i) {
      block_next(d, i) = i + 1 < maxcount_ ? static_cast<uint16_t>(i + 1) : kNone;
    }
    d->anchor.store(pack({1, static_cast<uint16_t>(maxcount_ - 1), 0}),
                    std::memory_order_release);
    register_descriptor(d);
    sb_count_.fetch_add(1, std::memory_order_relaxed);

    auto expected = active_.load();
    if (!expected.value && active_.cas(expected, d)) {
      return take(d, 0);
    }
    // Someone else installed an Active first: expose ours as partial.
    void* p = take(d, 0);
    make_partial(d);
    return p;
  }

  void make_partial(Descriptor* d) {
    auto head = partial_.load();
    while (true) {
      d->next_partial = head.value;
      if (partial_.cas(head, d)) return;
    }
  }

  void register_descriptor(Descriptor* d) {
    Descriptor* head = all_.load(std::memory_order_acquire);
    do {
      d->next_all = head;
    } while (!all_.compare_exchange_weak(head, d, std::memory_order_acq_rel,
                                         std::memory_order_acquire));
  }

  std::vector<Descriptor*> all_descriptors_snapshot() const {
    std::vector<Descriptor*> out;
    for (Descriptor* d = all_.load(std::memory_order_acquire); d;
         d = d->next_all)
      out.push_back(d);
    return out;
  }

  const size_t block_size_;
  const uint16_t maxcount_;
  VersionedAtomic<Descriptor*> active_{nullptr};
  VersionedAtomic<Descriptor*> partial_{nullptr};
  std::atomic<Descriptor*> all_{nullptr};
  std::atomic<size_t> sb_count_{0};
};

}  // namespace synat::runtime
