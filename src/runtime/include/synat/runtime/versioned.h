// CAS with a modification counter — the paper's Section 5.2 cure for ABA.
//
// Every successful CAS increments a counter stored next to the value in a
// double-word atomic; the expected value for a CAS is a (value, counter)
// stamp obtained by a previous load. A CAS whose stamp is stale fails even
// if the raw value happens to match (the ABA case).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace synat::runtime {

template <typename T>
  requires(std::is_trivially_copyable_v<T> && sizeof(T) <= 8)
class VersionedAtomic {
 public:
  struct Stamped {
    T value{};
    uint64_t stamp = 0;
  };

  constexpr VersionedAtomic() : state_(Packed{}) {}
  explicit VersionedAtomic(T initial) : state_(Packed{to_bits(initial), 0}) {}

  VersionedAtomic(const VersionedAtomic&) = delete;
  VersionedAtomic& operator=(const VersionedAtomic&) = delete;

  /// The matching read of a future CAS: value plus stamp.
  Stamped load() const {
    Packed p = state_.load(std::memory_order_acquire);
    return {from_bits(p.bits), p.count};
  }

  /// Value-only read.
  T value() const { return from_bits(state_.load(std::memory_order_acquire).bits); }

  /// Compare-and-swap against a stamped expectation; updates `expected` to
  /// the observed state on failure (like compare_exchange).
  bool cas(Stamped& expected, T desired) {
    Packed exp{to_bits(expected.value), expected.stamp};
    Packed des{to_bits(desired), expected.stamp + 1};
    if (state_.compare_exchange_strong(exp, des, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return true;
    }
    expected = {from_bits(exp.bits), exp.count};
    return false;
  }

  /// Unconditional store; still bumps the counter so outstanding stamps
  /// turn stale (initialization-time use).
  void store(T value) {
    Packed p = state_.load(std::memory_order_relaxed);
    while (!state_.compare_exchange_weak(p, Packed{to_bits(value), p.count + 1},
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  struct Packed {
    uint64_t bits = 0;
    uint64_t count = 0;
    friend bool operator==(const Packed&, const Packed&) = default;
  };
  static uint64_t to_bits(T v) {
    uint64_t bits = 0;
    __builtin_memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  static T from_bits(uint64_t bits) {
    T v{};
    __builtin_memcpy(&v, &bits, sizeof(T));
    return v;
  }

  std::atomic<Packed> state_;
};

}  // namespace synat::runtime
