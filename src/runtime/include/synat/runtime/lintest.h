// Linearizability testing (Herlihy & Wing [8], checked with the Wing-Gong
// search). This is the runtime counterpart of the paper's two-step plan:
// prove procedures atomic statically, check the sequential behavior, and
// conclude linearizability. The tester validates the runtime containers
// directly: record a concurrent history, then search for a legal sequential
// witness that respects real time.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "synat/support/hash.h"

namespace synat::runtime {

/// One completed operation in a history.
struct HistOp {
  int tid = 0;
  int op = 0;        ///< operation code (spec-defined)
  int64_t arg = 0;
  int64_t ret = 0;
  uint64_t invoke = 0;   ///< global timestamps
  uint64_t respond = 0;
};

/// Collects per-thread operation logs with globally ordered timestamps.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(int num_threads) : logs_(static_cast<size_t>(num_threads)) {}

  uint64_t invoke() { return clock_.fetch_add(1, std::memory_order_acq_rel); }

  void respond(int tid, int op, int64_t arg, int64_t ret, uint64_t invoke_ts) {
    uint64_t ts = clock_.fetch_add(1, std::memory_order_acq_rel);
    logs_[static_cast<size_t>(tid)].push_back({tid, op, arg, ret, invoke_ts, ts});
  }

  std::vector<HistOp> history() const {
    std::vector<HistOp> out;
    for (const auto& log : logs_) out.insert(out.end(), log.begin(), log.end());
    return out;
  }

 private:
  std::atomic<uint64_t> clock_{1};
  std::vector<std::vector<HistOp>> logs_;
};

/// Sequential FIFO queue specification. op 0 = enqueue(arg) -> 0,
/// op 1 = dequeue() -> value or kEmpty.
struct QueueSpec {
  static constexpr int kEnq = 0;
  static constexpr int kDeq = 1;
  static constexpr int64_t kEmpty = -1;

  std::deque<int64_t> items;

  /// Applies the operation; returns false if the recorded result is not the
  /// legal one from this state.
  bool apply(const HistOp& op) {
    if (op.op == kEnq) {
      items.push_back(op.arg);
      return true;
    }
    if (items.empty()) return op.ret == kEmpty;
    if (op.ret != items.front()) return false;
    items.pop_front();
    return true;
  }

  uint64_t digest() const {
    Hasher h;
    for (int64_t v : items) h.mix(static_cast<uint64_t>(v));
    return h.value();
  }
};

/// Sequential LIFO stack specification (op 0 = push, 1 = pop).
struct StackSpec {
  static constexpr int kPush = 0;
  static constexpr int kPop = 1;
  static constexpr int64_t kEmpty = -1;

  std::vector<int64_t> items;

  bool apply(const HistOp& op) {
    if (op.op == kPush) {
      items.push_back(op.arg);
      return true;
    }
    if (items.empty()) return op.ret == kEmpty;
    if (op.ret != items.back()) return false;
    items.pop_back();
    return true;
  }

  uint64_t digest() const {
    Hasher h;
    for (int64_t v : items) h.mix(static_cast<uint64_t>(v));
    return h.value();
  }
};

/// Wing-Gong search: true iff `history` is linearizable w.r.t. Spec.
/// Exponential in the worst case; intended for the small histories the
/// stress tests record. Memoizes (chosen-set, spec-state) pairs.
template <typename Spec>
bool linearizable(std::vector<HistOp> history) {
  const size_t n = history.size();
  if (n > 62) return true;  // too large to decide; callers keep runs small
  std::unordered_set<uint64_t> seen;

  struct Frame {
    uint64_t taken;  ///< bitmask of linearized ops
    Spec spec;
  };
  std::vector<Frame> stack{{0, Spec{}}};

  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (std::popcount(f.taken) == static_cast<int>(n)) return true;

    // An op is a candidate if it is not taken and no other untaken op
    // responded before its invocation (real-time order).
    uint64_t earliest_response = ~0ull;
    for (size_t i = 0; i < n; ++i) {
      if (f.taken & (1ull << i)) continue;
      earliest_response = std::min(earliest_response, history[i].respond);
    }
    for (size_t i = 0; i < n; ++i) {
      if (f.taken & (1ull << i)) continue;
      if (history[i].invoke > earliest_response) continue;
      Spec next = f.spec;
      if (!next.apply(history[i])) continue;
      uint64_t key = Hasher()
                         .mix(f.taken | (1ull << i))
                         .mix(next.digest())
                         .value();
      if (!seen.insert(key).second) continue;
      stack.push_back({f.taken | (1ull << i), std::move(next)});
    }
  }
  return false;
}

}  // namespace synat::runtime
