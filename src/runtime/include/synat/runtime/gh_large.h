// Gao & Hesselink's universal construction for large objects (paper
// Section 6.3, [5]): the object's state is split into G groups; every group
// of each copy carries a version number, and an operation only copies the
// groups whose versions differ between the shared copy and the thread's
// working copy (plus the paper's added VL validation during copying). A
// failed SC resets the speculatively bumped version so the group is
// re-copied next time (Figure 7's `prvObj.version[g] := 0`).
#pragma once

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "synat/runtime/llsc.h"

namespace synat::runtime {

/// T is the per-group payload; G the number of groups. An operation targets
/// one group (the paper's `compute(prvObj, g)`).
template <typename T, size_t G, size_t MaxThreads = 64>
  requires std::is_trivially_copyable_v<T>
class GHLargeObject {
 public:
  GHLargeObject() {
    blocks_.resize(MaxThreads + 1);
    shared_.store(&blocks_[0]);
    for (size_t i = 1; i < blocks_.size(); ++i) free_.push_back(&blocks_[i]);
  }
  GHLargeObject(const GHLargeObject&) = delete;
  GHLargeObject& operator=(const GHLargeObject&) = delete;

  /// Applies `op` to group `g` atomically; op sees and may update only that
  /// group's payload.
  template <typename Op>
  auto apply(size_t g, Op&& op) {
    Block* prv = my_private();
    typename LLSCCell<Block*>::Link link;
    retry:
    while (true) {
      Block* m = shared_.ll(link);
      for (size_t i = 0; i < G; ++i) {
        uint64_t new_version = m->version[i];
        if (new_version != prv->version[i]) {
          std::memcpy(static_cast<void*>(&prv->data[i]),
                      static_cast<const void*>(&m->data[i]), sizeof(T));
          if (!shared_.vl(link)) goto retry;
          prv->version[i] = new_version;
        }
      }
      if (!shared_.vl(link)) continue;
      auto result = op(prv->data[g]);
      prv->version[g] = next_version_.fetch_add(1, std::memory_order_relaxed);
      if (shared_.sc(link, prv)) {
        my_private() = m;
        return result;
      }
      // Discard the speculative bump (Figure 7's a20 resets to 0; we use a
      // sentinel no published version can equal, which also covers the
      // zero-initial-version corner the SYNL model checker found).
      prv->version[g] = kDirty;
    }
  }

  /// Linearizable read of one group.
  T read(size_t g) {
    return apply(g, [](T& v) { return v; });
  }

  /// Bytes copied would be G*sizeof(T) without the version filter; tests
  /// use this counter to verify partial copying actually happens.
  struct Stats {
    uint64_t groups_copied = 0;
  };

 private:
  static constexpr uint64_t kDirty = ~0ull;

  struct alignas(64) Block {
    std::array<T, G> data{};
    std::array<uint64_t, G> version{};
  };

  Block*& my_private() {
    thread_local std::vector<std::pair<const GHLargeObject*, Block*>> cache;
    for (auto& [obj, blk] : cache) {
      if (obj == this) return blk;
    }
    Block* blk;
    {
      std::lock_guard<std::mutex> lk(init_mu_);
      if (free_.empty()) std::abort();
      blk = free_.back();
      free_.pop_back();
    }
    cache.emplace_back(this, blk);
    return cache.back().second;
  }

  LLSCCell<Block*> shared_{nullptr};
  std::vector<Block> blocks_;
  std::vector<Block*> free_;
  std::mutex init_mu_;
  /// Globally unique version stamps sidestep the classic GH pitfall of two
  /// threads picking the same per-group version independently.
  std::atomic<uint64_t> next_version_{1};
};

}  // namespace synat::runtime
