// Treiber stack with counted CAS and epoch reclamation.
#pragma once

#include <optional>

#include "synat/runtime/ebr.h"
#include "synat/runtime/versioned.h"

namespace synat::runtime {

template <typename T>
class TreiberStack {
 public:
  TreiberStack() = default;
  ~TreiberStack() {
    Node* n = top_.value();
    while (n) {
      Node* next = n->next;
      delete n;
      n = next;
    }
    ebr_.drain_all_unsafe();
  }
  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;

  void push(T value) {
    Node* node = new Node{std::move(value), nullptr};
    auto top = top_.load();
    while (true) {
      node->next = top.value;
      if (top_.cas(top, node)) return;  // cas refreshed `top` on failure
    }
  }

  std::optional<T> pop() {
    EpochDomain::Guard g(ebr_);
    auto top = top_.load();
    while (true) {
      if (top.value == nullptr) return std::nullopt;
      T value = top.value->value;
      Node* retired = top.value;
      if (top_.cas(top, top.value->next)) {
        ebr_.retire([retired] { delete retired; });
        return value;
      }
    }
  }

  bool empty() const { return top_.value() == nullptr; }

 private:
  struct Node {
    T value;
    Node* next;
  };
  VersionedAtomic<Node*> top_{nullptr};
  EpochDomain ebr_;
};

}  // namespace synat::runtime
