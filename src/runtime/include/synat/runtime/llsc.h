// Simulated Load-Linked / Store-Conditional / Validate.
//
// x86-64 has no LL/SC, so the cell packs a 64-bit value with a 64-bit
// modification count into a double-word atomic (cmpxchg16b where available;
// libatomic otherwise). Semantics match the paper's Section 3.1:
//   - LL returns the value and records the count in the calling thread's
//     link token;
//   - SC succeeds iff no successful SC happened since the matching LL (the
//     count is unchanged), and bumps the count;
//   - VL reports whether the link is still valid;
//   - plain loads/stores are possible but, per the discipline the analysis
//     assumes, stores should go through SC only.
// There are no spurious failures.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace synat::runtime {

/// A value holdable by an LLSCCell: 64 bits, trivially copyable.
template <typename T>
concept LLSCValue = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

template <LLSCValue T>
class LLSCCell {
 public:
  /// Link token returned by ll(); pass it to sc()/vl(). Tokens are cheap
  /// value types; each thread typically keeps one per protected cell.
  struct Link {
    uint64_t count = ~0ull;
  };

  constexpr LLSCCell() : state_(Packed{}) {}
  explicit LLSCCell(T initial) : state_(Packed{to_bits(initial), 0}) {}

  LLSCCell(const LLSCCell&) = delete;
  LLSCCell& operator=(const LLSCCell&) = delete;

  /// Load-linked: returns the current value and arms `link`.
  T ll(Link& link) const {
    Packed p = state_.load(std::memory_order_acquire);
    link.count = p.count;
    return from_bits(p.bits);
  }

  /// Validate: true iff no successful SC since the matching ll().
  bool vl(const Link& link) const {
    return state_.load(std::memory_order_acquire).count == link.count;
  }

  /// Store-conditional: writes `value` iff the link is still valid.
  /// Consumes the link (a second sc on the same token fails).
  bool sc(Link& link, T value) {
    Packed expected = state_.load(std::memory_order_acquire);
    if (expected.count != link.count) {
      link.count = ~0ull;
      return false;
    }
    Packed desired{to_bits(value), expected.count + 1};
    bool ok = state_.compare_exchange_strong(expected, desired,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire);
    link.count = ~0ull;
    return ok;
  }

  /// Unlinked read (a plain global read in the paper's terms).
  T load() const { return from_bits(state_.load(std::memory_order_acquire).bits); }

  /// Unconditional store. Does NOT bump the count: per the paper's
  /// semantics only successful SCs invalidate links. Use only for
  /// initialization in code the analysis blesses.
  void store(T value) {
    Packed p = state_.load(std::memory_order_relaxed);
    // Re-read of p on failure updates the count we preserve.
    while (!state_.compare_exchange_weak(p, Packed{to_bits(value), p.count},
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Number of successful SCs so far (diagnostics).
  uint64_t modification_count() const {
    return state_.load(std::memory_order_relaxed).count;
  }

 private:
  struct Packed {
    uint64_t bits = 0;
    uint64_t count = 0;
    friend bool operator==(const Packed&, const Packed&) = default;
  };

  static uint64_t to_bits(T v) {
    uint64_t bits = 0;
    __builtin_memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  static T from_bits(uint64_t bits) {
    T v{};
    __builtin_memcpy(&v, &bits, sizeof(T));
    return v;
  }

  std::atomic<Packed> state_;
};

}  // namespace synat::runtime
