// Michael & Scott's non-blocking FIFO queue (paper Section 6.1, [13]),
// implemented with counted CAS (VersionedAtomic) and epoch reclamation.
//
// This is the CAS flavor of the algorithm the paper analyzes as NFQ: a
// singly-linked list with a dummy head; enqueue links at the tail and
// swings Tail (possibly helped by other operations); dequeue advances Head.
#pragma once

#include <optional>

#include "synat/runtime/ebr.h"
#include "synat/runtime/versioned.h"

namespace synat::runtime {

template <typename T>
class MSQueue {
 public:
  MSQueue() {
    Node* dummy = new Node{};
    head_.store(dummy);
    tail_.store(dummy);
  }
  ~MSQueue() {
    // Single-threaded teardown.
    Node* n = head_.value();
    while (n) {
      Node* next = n->next.value();
      delete n;
      n = next;
    }
    ebr_.drain_all_unsafe();
  }
  MSQueue(const MSQueue&) = delete;
  MSQueue& operator=(const MSQueue&) = delete;

  void enqueue(T value) {
    enqueue_stalled(std::move(value), [] {});
  }

  /// enqueue with a caller-provided stall between the link CAS and the Tail
  /// swing — simulates a thread preempted at the algorithm's most delicate
  /// point. Other operations help the stalled enqueue to completion, which
  /// is the non-blocking progress property the paper's introduction cites
  /// (benchmark E7 uses this hook).
  template <typename Stall>
  void enqueue_stalled(T value, Stall&& stall) {
    Node* node = new Node{std::move(value)};
    EpochDomain::Guard g(ebr_);
    while (true) {
      auto tail = tail_.load();
      auto next = tail.value->next.load();
      if (tail.stamp != tail_.load().stamp) continue;  // tail moved: re-read
      if (next.value != nullptr) {
        // Tail lags: help swing it (the update NFQ' moves into UpdateTail).
        tail_.cas(tail, next.value);
        continue;
      }
      auto expected = next;
      if (tail.value->next.cas(expected, node)) {
        stall();
        tail_.cas(tail, node);  // optional SC(Tail, node); may fail harmlessly
        return;
      }
    }
  }

  std::optional<T> dequeue() {
    EpochDomain::Guard g(ebr_);
    while (true) {
      auto head = head_.load();
      auto tail = tail_.load();
      auto next = head.value->next.load();
      if (head.stamp != head_.load().stamp) continue;
      if (next.value == nullptr) return std::nullopt;  // EMPTY
      if (head.value == tail.value) {
        tail_.cas(tail, next.value);  // help
        continue;
      }
      T value = next.value->value;  // read before CAS (next may be retired)
      auto expected = head;
      if (head_.cas(expected, next.value)) {
        Node* retired = head.value;
        ebr_.retire([retired] { delete retired; });
        return value;
      }
    }
  }

  /// Approximate length (single-threaded use / tests).
  size_t unsafe_size() const {
    size_t n = 0;
    for (Node* cur = head_.value()->next.value(); cur;
         cur = cur->next.value())
      ++n;
    return n;
  }

 private:
  struct Node {
    T value{};
    VersionedAtomic<Node*> next{nullptr};
  };

  VersionedAtomic<Node*> head_{nullptr};
  VersionedAtomic<Node*> tail_{nullptr};
  EpochDomain ebr_;
};

}  // namespace synat::runtime
