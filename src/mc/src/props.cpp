#include "synat/mc/props.h"

namespace synat::mc {

using interp::ObjId;

std::optional<std::string> walk_list(const State& s, ObjId head,
                                     int next_field,
                                     std::vector<ObjId>& out) {
  ObjId cur = head;
  size_t guard = s.heap.size() + 1;
  while (cur != interp::kNull) {
    if (!s.valid_ref(cur)) return "dangling reference in list";
    if (out.size() > guard) return "cycle in list";
    out.push_back(cur);
    const Value& next = s.obj(cur).fields[static_cast<size_t>(next_field)];
    if (next.kind != Value::Ref) return "non-reference Next field";
    cur = next.ref;
  }
  return std::nullopt;
}

StateCheck queue_wellformed(const ModelChecker& mc, int next_field) {
  int head_slot = mc.global_slot("Head");
  int tail_slot = mc.global_slot("Tail");
  return [=](const State& s, const Interp&) -> std::optional<std::string> {
    ObjId head = s.globals[static_cast<size_t>(head_slot)].ref;
    ObjId tail = s.globals[static_cast<size_t>(tail_slot)].ref;
    if (head == interp::kNull) return std::nullopt;  // before Init
    std::vector<ObjId> nodes;
    if (auto err = walk_list(s, head, next_field, nodes)) return err;
    for (ObjId n : nodes) {
      if (n == tail) return std::nullopt;
    }
    return "Tail not reachable from Head";
  };
}

StateCheck queue_final_contents(const ModelChecker& mc, int value_field,
                                int next_field,
                                std::multiset<int64_t> expected) {
  int head_slot = mc.global_slot("Head");
  return [=](const State& s, const Interp&) -> std::optional<std::string> {
    ObjId head = s.globals[static_cast<size_t>(head_slot)].ref;
    if (head == interp::kNull) return "queue never initialized";
    std::vector<ObjId> nodes;
    if (auto err = walk_list(s, head, next_field, nodes)) return err;
    std::multiset<int64_t> got;
    for (size_t i = 1; i < nodes.size(); ++i) {  // skip the dummy
      got.insert(s.obj(nodes[i]).fields[static_cast<size_t>(value_field)].i);
    }
    if (got != expected) {
      std::string msg = "queue contents {";
      for (int64_t v : got) msg += std::to_string(v) + ",";
      msg += "} != expected {";
      for (int64_t v : expected) msg += std::to_string(v) + ",";
      msg += "}";
      return msg;
    }
    return std::nullopt;
  };
}

}  // namespace synat::mc
