#include "synat/mc/mc.h"

#include <algorithm>
#include <chrono>

#include "synat/support/hash.h"

namespace synat::mc {

using interp::HeapObj;
using interp::LocKey;
using interp::ObjId;
using interp::StepResult;
using interp::Thread;
using interp::ThreadStatus;

std::string Result::summary() const {
  std::string out = "states=" + std::to_string(states) +
                    " transitions=" + std::to_string(transitions) +
                    " finals=" + std::to_string(final_states) +
                    " time=" + std::to_string(seconds) + "s";
  if (error_found) out += " ERROR: " + error;
  if (hit_state_limit) out += " (state limit hit)";
  return out;
}

ModelChecker::ModelChecker(const CompiledProgram& cp, Options opts)
    : cp_(cp), opts_(std::move(opts)), interp_(cp, opts_.array_size) {
  proc_atomic_.assign(cp_.procs.size(), false);
  for (const std::string& name : opts_.atomic_procs) {
    int idx = cp_.find_index(name);
    SYNAT_ASSERT(idx >= 0, "unknown atomic proc: " + name);
    proc_atomic_[static_cast<size_t>(idx)] = true;
  }
}

int ModelChecker::global_slot(std::string_view name) const {
  synat::Symbol s = cp_.prog->syms().lookup(name);
  for (size_t i = 0; i < cp_.global_vars.size(); ++i)
    if (cp_.prog->var(cp_.global_vars[i]).name == s)
      return static_cast<int>(i);
  return -1;
}

// ---------------------------------------------------------------------------
// Canonicalization

namespace {

class Canonicalizer {
 public:
  explicit Canonicalizer(const State& s) : s_(s) {}

  std::string run() {
    // Deterministic root order: globals, then per thread frame/stack/tls/ret.
    for (const Value& v : s_.globals) touch(v);
    for (size_t tid = 0; tid < s_.threads.size(); ++tid) {
      const Thread& t = s_.threads[tid];
      if (t.status == ThreadStatus::Runnable) {
        for (const Value& v : t.frame) touch(v);
        for (const Value& v : t.stack) touch(v);
        for (const auto& [key, ver] : t.links) {
          if (key.kind != LocKey::Global) touch(Value::of_ref(key.a));
        }
        // Thread-locals of finished threads can never be read again (each
        // thread runs its procedure once), so only live threads' count.
        for (const Value& v : s_.tls[tid]) touch(v);
      }
      touch(t.ret);
    }
    // BFS closure over heap references.
    for (size_t i = 0; i < order_.size(); ++i) {
      const HeapObj& obj = s_.obj(order_[i]);
      for (const Value& v : obj.fields) touch(v);
    }

    // Serialize.
    put(static_cast<uint64_t>(s_.globals.size()));
    for (const Value& v : s_.globals) put_value(v);
    put(static_cast<uint64_t>(order_.size()));
    for (ObjId o : order_) {
      const HeapObj& obj = s_.obj(o);
      put(obj.cls.valid() ? obj.cls.idx + 1 : 0u);
      put(static_cast<uint64_t>(static_cast<int64_t>(obj.lock_owner)));
      put(obj.lock_depth);
      put(static_cast<uint64_t>(obj.fields.size()));
      for (const Value& v : obj.fields) put_value(v);
    }
    put(static_cast<uint64_t>(s_.threads.size()));
    for (size_t tid = 0; tid < s_.threads.size(); ++tid) {
      const Thread& t = s_.threads[tid];
      // A thread that can never run again is fully described by its status
      // and return value; pc, procedure and private data are normalized
      // away so equivalent futures coincide.
      bool live = t.status == ThreadStatus::Runnable;
      put(static_cast<uint64_t>(t.status));
      put_value(t.ret);
      if (!live) continue;
      put(static_cast<uint64_t>(t.proc));
      put(t.pc);
      put(static_cast<uint64_t>(t.frame.size()));
      for (const Value& v : t.frame) put_value(v);
      put(static_cast<uint64_t>(t.stack.size()));
      for (const Value& v : t.stack) put_value(v);
      put(static_cast<uint64_t>(s_.tls[tid].size()));
      for (const Value& v : s_.tls[tid]) put_value(v);
      put_links(t);
    }
    return std::move(out_);
  }

 private:
  void touch(const Value& v) {
    if (v.kind != Value::Ref || v.ref == interp::kNull) return;
    if (canon_.size() <= v.ref) canon_.resize(v.ref + 1, 0);
    if (canon_[v.ref] != 0) return;
    canon_[v.ref] = static_cast<uint32_t>(order_.size()) + 1;
    order_.push_back(v.ref);
  }

  uint32_t canon_ref(ObjId o) const {
    return o == interp::kNull ? 0 : canon_[o];
  }

  void put(uint64_t v) {
    // Varint-free fixed encoding; compactness is irrelevant (hashed anyway).
    out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }

  void put_value(const Value& v) {
    put(v.kind);
    if (v.kind == Value::Ref) {
      put(canon_ref(v.ref));
    } else {
      put(static_cast<uint64_t>(v.i));
    }
  }

  /// Links serialize as (canonical key, still-valid bit), sorted by the
  /// canonical key: absolute version numbers never enter the state identity.
  void put_links(const Thread& t) {
    struct CanonLink {
      uint8_t kind;
      uint32_t a, b;
      uint8_t valid;
      auto key() const { return std::tuple(kind, a, b); }
    };
    std::vector<CanonLink> links;
    for (const auto& [key, ver] : t.links) {
      CanonLink cl;
      cl.kind = key.kind;
      cl.a = key.kind == LocKey::Global ? key.a : canon_ref(key.a);
      cl.b = key.b;
      uint64_t current;
      if (key.kind == LocKey::Global) {
        current = s_.global_versions[key.a];
      } else {
        current = s_.obj(key.a).versions[key.b];
      }
      cl.valid = ver == current ? 1 : 0;
      // Stale links on unreachable objects can never be validated again and
      // are dropped from the identity entirely.
      if (key.kind != LocKey::Global && cl.a == 0) continue;
      links.push_back(cl);
    }
    std::sort(links.begin(), links.end(),
              [](const CanonLink& x, const CanonLink& y) {
                if (x.key() != y.key()) return x.key() < y.key();
                return x.valid < y.valid;
              });
    put(static_cast<uint64_t>(links.size()));
    for (const CanonLink& cl : links) {
      put(cl.kind);
      put(cl.a);
      put(cl.b);
      put(cl.valid);
    }
  }

  const State& s_;
  std::vector<uint32_t> canon_{0};  ///< raw ObjId -> canonical id (1-based)
  std::vector<ObjId> order_;
  std::string out_;
};

}  // namespace

std::string ModelChecker::canonicalize(const State& s) const {
  return Canonicalizer(s).run();
}

// ---------------------------------------------------------------------------
// Scheduling

bool ModelChecker::thread_inside_atomic(const State& s, int tid) const {
  const Thread& t = s.threads[static_cast<size_t>(tid)];
  if (t.status != ThreadStatus::Runnable) return false;
  if (!proc_atomic_[static_cast<size_t>(t.proc)]) return false;
  return t.pc > 0;  // entered but not finished
}

std::vector<int> ModelChecker::choices(const State& s) const {
  const int n = static_cast<int>(s.threads.size());

  // Atomic-block reduction: a thread inside a declared-atomic procedure
  // runs to completion before anyone else is considered.
  for (int tid = 0; tid < n; ++tid) {
    if (thread_inside_atomic(s, tid) && interp_.runnable(s, tid))
      return {tid};
  }

  // Ample-set POR: commit one invisible instruction without interleaving.
  if (opts_.por) {
    for (int tid = 0; tid < n; ++tid) {
      if (interp_.runnable(s, tid) && interp_.next_insn_invisible(s, tid))
        return {tid};
    }
  }

  std::vector<int> out;
  for (int tid = 0; tid < n; ++tid) {
    if (interp_.runnable(s, tid)) out.push_back(tid);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exploration

Result ModelChecker::run(const RunSpec& spec) {
  Result result;
  auto t0 = std::chrono::steady_clock::now();
  auto finish = [&]() {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  };
  auto report = [&](const std::string& msg) {
    result.error_found = true;
    result.error = msg;
  };

  // Build the initial state and run setup deterministically.
  std::vector<interp::ThreadSpec> specs;
  for (const ThreadPlan& plan : spec.threads) {
    int idx = cp_.find_index(plan.proc);
    SYNAT_ASSERT(idx >= 0, "unknown procedure: " + plan.proc);
    specs.push_back({idx, plan.args});
  }
  State init = interp_.initial_state(specs);

  auto run_setup = [&](int tid, const std::string& proc,
                       const std::vector<Value>& args) -> bool {
    int idx = cp_.find_index(proc);
    SYNAT_ASSERT(idx >= 0, "unknown setup procedure: " + proc);
    Thread& t = init.threads[static_cast<size_t>(tid)];
    Thread saved = t;
    const interp::CompiledProc& p = cp_.procs[static_cast<size_t>(idx)];
    SYNAT_ASSERT(args.size() == p.num_params,
                 "wrong setup argument count for " + proc);
    t.proc = idx;
    t.pc = 0;
    t.stack.clear();
    t.frame.assign(p.frame_size, Value::unit());
    for (size_t i = 0; i < args.size(); ++i) t.frame[i] = args[i];
    t.status = ThreadStatus::Runnable;
    std::string err;
    StepResult r = interp_.run_thread(init, tid, &err);
    if (r != StepResult::Done) {
      report("setup " + proc + " failed: " + err);
      return false;
    }
    // Restore the main procedure (thread-locals and links persist).
    saved.links = t.links;
    t = std::move(saved);
    return true;
  };

  if (!spec.global_init.empty()) {
    if (!run_setup(0, spec.global_init, {})) return finish();
  }
  for (size_t tid = 0; tid < spec.threads.size(); ++tid) {
    const ThreadPlan& plan = spec.threads[tid];
    if (plan.init_proc.empty()) continue;
    if (!run_setup(static_cast<int>(tid), plan.init_proc, plan.init_args))
      return finish();
  }

  // DFS with hash-compacted seen set.
  std::unordered_set<uint64_t> seen;
  auto canon_hash = [&](const State& s) {
    std::string bytes = canonicalize(s);
    return hash_bytes(bytes);
  };

  struct Frame {
    State state;
    std::vector<int> tids;
    size_t next = 0;
  };
  std::vector<Frame> stack;

  auto check_state = [&](const State& s, const std::vector<int>& tids) -> bool {
    if (opts_.invariant) {
      if (auto msg = opts_.invariant(s, interp_)) {
        report("invariant violated: " + *msg);
        return false;
      }
    }
    if (tids.empty()) {
      ++result.final_states;
      if (opts_.report_deadlock) {
        for (const Thread& t : s.threads) {
          if (t.status == ThreadStatus::Runnable) {
            report("deadlock: thread blocked at quiescence");
            return false;
          }
        }
      }
      if (opts_.final_check) {
        if (auto msg = opts_.final_check(s, interp_)) {
          report("final-state check failed: " + *msg);
          return false;
        }
      }
    }
    return true;
  };

  seen.insert(canon_hash(init));
  result.states = 1;
  {
    std::vector<int> tids = choices(init);
    if (!check_state(init, tids)) return finish();
    stack.push_back({std::move(init), std::move(tids), 0});
  }

  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next >= top.tids.size()) {
      stack.pop_back();
      continue;
    }
    int tid = top.tids[top.next++];
    State succ = top.state;  // copy
    std::string err;
    StepResult r = interp_.step(succ, tid, &err);
    ++result.transitions;
    switch (r) {
      case StepResult::Ok:
      case StepResult::Stuck:
        break;  // Stuck marks the thread infeasible; the state still counts
      case StepResult::Blocked:
      case StepResult::Done:
        continue;  // no new state
      case StepResult::Error:
        report(err);
        return finish();
    }
    uint64_t h = canon_hash(succ);
    if (!seen.insert(h).second) continue;
    ++result.states;
    if (result.states > opts_.max_states) {
      result.hit_state_limit = true;
      return finish();
    }
    std::vector<int> tids = choices(succ);
    if (!check_state(succ, tids)) return finish();
    stack.push_back({std::move(succ), std::move(tids), 0});
  }
  return finish();
}

}  // namespace synat::mc
