// Explicit-state model checker for SYNL programs.
//
// Substitutes for the paper's TVLA (Table 2) and SPIN (Section 6.3)
// substrates: a DFS over canonicalized states with two optional reductions,
//   - a conservative ample-set partial-order reduction that commits
//     invisible (thread-local) instructions without interleaving, and
//   - the paper's contribution: procedure-level atomic-block reduction,
//     where procedures the atomicity analysis proved atomic are executed
//     without interruption once entered.
//
// State canonicalization renames heap objects in deterministic reachability
// order (symmetry on object identity) and replaces absolute LL/SC version
// counters with validity bits, so states differing only in allocation
// history or version magnitudes coincide. Seen-state storage keeps 64-bit
// hashes of the canonical serialization (hash compaction, as in SPIN; the
// collision probability at our state counts is negligible and the technique
// is documented in EXPERIMENTS.md).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "synat/interp/interp.h"

namespace synat::mc {

using interp::CompiledProgram;
using interp::Interp;
using interp::State;
using interp::Value;

struct ThreadPlan {
  std::string proc;          ///< main procedure the thread runs (once)
  std::vector<Value> args;
  std::string init_proc;     ///< optional per-thread setup (e.g. allocate
                             ///< the thread's working copy), run before
                             ///< exploration starts
  std::vector<Value> init_args;
};

struct RunSpec {
  std::vector<ThreadPlan> threads;
  std::string global_init;  ///< optional setup run once (on thread 0)
};

/// Property callbacks. Returning a message reports a violation.
using StateCheck =
    std::function<std::optional<std::string>(const State&, const Interp&)>;

struct Options {
  int array_size = 3;
  bool por = false;  ///< ample-set reduction over invisible instructions
  /// Names of procedures to treat as atomic blocks (normally the ones the
  /// analysis proved; the checker does not re-verify the claim).
  std::vector<std::string> atomic_procs;
  uint64_t max_states = 100'000'000;
  StateCheck invariant;    ///< checked at every state
  StateCheck final_check;  ///< checked at quiescent states (no runnable thread)
  bool report_deadlock = false;  ///< quiescent non-done threads are an error
};

struct Result {
  uint64_t states = 0;
  uint64_t transitions = 0;
  uint64_t final_states = 0;
  bool error_found = false;
  std::string error;
  bool hit_state_limit = false;
  double seconds = 0;

  std::string summary() const;
};

class ModelChecker {
 public:
  ModelChecker(const CompiledProgram& cp, Options opts);

  Result run(const RunSpec& spec);

  /// Canonical serialization of a state (exposed for tests: isomorphic
  /// states must serialize identically).
  std::string canonicalize(const State& s) const;

  /// Resolves a global variable's slot by name (-1 if absent); property
  /// callbacks use this to inspect the heap.
  int global_slot(std::string_view name) const;

  const Interp& interp() const { return interp_; }

 private:
  std::vector<int> choices(const State& s) const;
  bool thread_inside_atomic(const State& s, int tid) const;

  const CompiledProgram& cp_;
  Options opts_;
  Interp interp_;
  std::vector<bool> proc_atomic_;  ///< per compiled proc
};

}  // namespace synat::mc
