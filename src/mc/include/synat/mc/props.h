// Ready-made property checks for the model-checking experiments.
//
// These correspond to the structural/functional properties TVLA verified in
// the paper's Table 2 experiment: the queue's list stays well formed in
// every state, and at quiescence the queue contains exactly the values
// whose producers completed.
#pragma once

#include <set>

#include "synat/mc/mc.h"

namespace synat::mc {

/// Walks the Node list from `head` (inclusive) collecting object ids;
/// returns an error string on cycles or dangling references.
std::optional<std::string> walk_list(const State& s, interp::ObjId head,
                                     int next_field,
                                     std::vector<interp::ObjId>& out);

/// Invariant for NFQ'-style queues: the list from Head is finite and
/// null-terminated, and Tail points to a node on it.
StateCheck queue_wellformed(const ModelChecker& mc, int next_field);

/// Final-state check: the values stored in the queue (excluding the dummy
/// head) are exactly `expected` — detects the lost-node bug of the paper's
/// "incorrect AddNode" row.
StateCheck queue_final_contents(const ModelChecker& mc, int value_field,
                                int next_field, std::multiset<int64_t> expected);

}  // namespace synat::mc
