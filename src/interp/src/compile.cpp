#include <unordered_map>

#include "synat/interp/bytecode.h"

namespace synat::interp {

using synl::Expr;
using synl::ExprId;
using synl::ExprKind;
using synl::Program;
using synl::Stmt;
using synl::StmtId;
using synl::StmtKind;
using synl::VarId;
using synl::VarKind;

std::string_view to_string(Op op) {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::PushInt: return "push.i";
    case Op::PushBool: return "push.b";
    case Op::PushNull: return "push.null";
    case Op::Pop: return "pop";
    case Op::LoadLocal: return "ld.loc";
    case Op::StoreLocal: return "st.loc";
    case Op::LoadGlobal: return "ld.glob";
    case Op::StoreGlobal: return "st.glob";
    case Op::LoadTL: return "ld.tl";
    case Op::StoreTL: return "st.tl";
    case Op::LoadField: return "ld.fld";
    case Op::StoreField: return "st.fld";
    case Op::LoadElem: return "ld.elem";
    case Op::StoreElem: return "st.elem";
    case Op::New: return "new";
    case Op::Binary: return "binop";
    case Op::Unary: return "unop";
    case Op::LLGlobal: return "ll.glob";
    case Op::LLField: return "ll.fld";
    case Op::LLElem: return "ll.elem";
    case Op::VLGlobal: return "vl.glob";
    case Op::VLField: return "vl.fld";
    case Op::VLElem: return "vl.elem";
    case Op::SCGlobal: return "sc.glob";
    case Op::SCField: return "sc.fld";
    case Op::SCElem: return "sc.elem";
    case Op::CASGlobal: return "cas.glob";
    case Op::CASField: return "cas.fld";
    case Op::CASElem: return "cas.elem";
    case Op::Jump: return "jmp";
    case Op::JumpIfFalse: return "jf";
    case Op::Acquire: return "acquire";
    case Op::Release: return "release";
    case Op::Assume: return "assume";
    case Op::Assert: return "assert";
    case Op::Return: return "ret";
  }
  return "?";
}

std::string disassemble(const CompiledProc& proc) {
  std::string out = "proc " + proc.name + " (frame " +
                    std::to_string(proc.frame_size) + ")\n";
  for (size_t i = 0; i < proc.code.size(); ++i) {
    const Insn& in = proc.code[i];
    out += "  " + std::to_string(i) + ": " + std::string(to_string(in.op));
    if (in.op == Op::PushInt) {
      out += " " + std::to_string(in.imm);
    } else if (in.op != Op::Nop && in.op != Op::Return && in.op != Op::Pop &&
               in.op != Op::PushNull) {
      out += " " + std::to_string(in.a);
    }
    out += "\n";
  }
  return out;
}

namespace {

class ProcCompiler {
 public:
  ProcCompiler(const Program& prog, const CompiledProgram& cp,
               synl::ProcId pid, DiagEngine& diags)
      : prog_(prog), cp_(cp), diags_(diags) {
    out_.proc = pid;
    out_.name = std::string(prog.syms().name(prog.proc(pid).name));
  }

  CompiledProc run() {
    const synl::ProcInfo& p = prog_.proc(out_.proc);
    for (VarId v : p.params) frame_slot_[v] = next_slot_++;
    out_.num_params = static_cast<uint32_t>(p.params.size());
    compile_stmt(p.body);
    // Implicit `return` (Unit) at the end.
    emit({Op::PushNull, 0, 0, p.body});
    emit({Op::Return, 0, 0, p.body});
    out_.frame_size = next_slot_;
    return std::move(out_);
  }

 private:
  struct LoopCtx {
    StmtId stmt;
    int32_t head;
    size_t sync_depth;
    std::vector<size_t> break_patches;
  };

  size_t emit(Insn insn) {
    out_.code.push_back(insn);
    return out_.code.size() - 1;
  }
  int32_t here() const { return static_cast<int32_t>(out_.code.size()); }
  void patch(size_t at, int32_t target) { out_.code[at].a = target; }

  int32_t slot_of(VarId v) {
    auto it = frame_slot_.find(v);
    if (it != frame_slot_.end()) return static_cast<int32_t>(it->second);
    uint32_t s = next_slot_++;
    frame_slot_[v] = s;
    return static_cast<int32_t>(s);
  }

  int32_t global_slot(VarId v) const {
    for (size_t i = 0; i < cp_.global_vars.size(); ++i)
      if (cp_.global_vars[i] == v) return static_cast<int32_t>(i);
    SYNAT_ASSERT(false, "unknown global");
  }
  int32_t tl_slot(VarId v) const {
    for (size_t i = 0; i < cp_.tl_vars.size(); ++i)
      if (cp_.tl_vars[i] == v) return static_cast<int32_t>(i);
    SYNAT_ASSERT(false, "unknown thread-local");
  }

  int32_t field_index(ExprId field_expr) const {
    const Expr& e = prog_.expr(field_expr);
    const Expr& base = prog_.expr(e.a);
    if (base.type.valid() &&
        prog_.type(base.type).kind == synl::TypeKind::Ref) {
      int idx = prog_.cls(prog_.type(base.type).cls).field_index(e.name);
      if (idx >= 0) return idx;
    }
    diags_.error(e.loc, "cannot compile unresolved field access");
    return 0;
  }

  /// Emits code leaving the location's base on the stack (nothing for
  /// variables) and returns which addressing flavor to use.
  enum class Addr { Local, Global, TL, Field, Elem };
  Addr compile_location_base(ExprId loc) {
    const Expr& e = prog_.expr(loc);
    switch (e.kind) {
      case ExprKind::VarRef: {
        switch (prog_.var(e.var).kind) {
          case VarKind::Global: return Addr::Global;
          case VarKind::ThreadLocal: return Addr::TL;
          default: return Addr::Local;
        }
      }
      case ExprKind::Field:
        compile_expr(e.a);
        return Addr::Field;
      case ExprKind::Index:
        compile_expr(e.a);
        compile_expr(e.b);
        return Addr::Elem;
      default:
        diags_.error(e.loc, "expected a location");
        return Addr::Local;
    }
  }

  int32_t location_operand(ExprId loc, Addr addr) {
    const Expr& e = prog_.expr(loc);
    switch (addr) {
      case Addr::Local: return slot_of(e.var);
      case Addr::Global: return global_slot(e.var);
      case Addr::TL: return tl_slot(e.var);
      case Addr::Field: return field_index(loc);
      case Addr::Elem: return 0;
    }
    return 0;
  }

  void compile_load(ExprId loc) {
    Addr addr = compile_location_base(loc);
    int32_t a = location_operand(loc, addr);
    StmtId s = cur_stmt_;
    switch (addr) {
      case Addr::Local: emit({Op::LoadLocal, a, 0, s}); break;
      case Addr::Global: emit({Op::LoadGlobal, a, 0, s}); break;
      case Addr::TL: emit({Op::LoadTL, a, 0, s}); break;
      case Addr::Field: emit({Op::LoadField, a, 0, s}); break;
      case Addr::Elem: emit({Op::LoadElem, a, 0, s}); break;
    }
  }

  /// Value must already be on the stack below the base (see bytecode.h).
  void compile_store_with_value_below(ExprId loc, Addr addr) {
    int32_t a = location_operand(loc, addr);
    StmtId s = cur_stmt_;
    switch (addr) {
      case Addr::Local: emit({Op::StoreLocal, a, 0, s}); break;
      case Addr::Global: emit({Op::StoreGlobal, a, 0, s}); break;
      case Addr::TL: emit({Op::StoreTL, a, 0, s}); break;
      case Addr::Field: emit({Op::StoreField, a, 0, s}); break;
      case Addr::Elem: emit({Op::StoreElem, a, 0, s}); break;
    }
  }

  void compile_nb_primitive(const Expr& e, ExprId self) {
    StmtId s = cur_stmt_;
    auto pick = [&](Addr addr, Op glob, Op fld, Op elem) {
      switch (addr) {
        case Addr::Global: emit({glob, location_operand(e.a, addr), 0, s}); break;
        case Addr::Field: emit({fld, location_operand(e.a, addr), 0, s}); break;
        case Addr::Elem: emit({elem, 0, 0, s}); break;
        default:
          diags_.error(e.loc,
                       "LL/SC/VL/CAS require a shared location (global or "
                       "heap), not a local variable");
          emit({glob, 0, 0, s});
      }
    };
    switch (e.kind) {
      case ExprKind::LL: {
        Addr addr = compile_location_base(e.a);
        pick(addr, Op::LLGlobal, Op::LLField, Op::LLElem);
        break;
      }
      case ExprKind::VL: {
        Addr addr = compile_location_base(e.a);
        pick(addr, Op::VLGlobal, Op::VLField, Op::VLElem);
        break;
      }
      case ExprKind::SC: {
        compile_expr(e.b);  // value first (below the base)
        Addr addr = compile_location_base(e.a);
        pick(addr, Op::SCGlobal, Op::SCField, Op::SCElem);
        break;
      }
      case ExprKind::CAS: {
        compile_expr(e.b);  // expected
        compile_expr(e.c);  // new value
        Addr addr = compile_location_base(e.a);
        pick(addr, Op::CASGlobal, Op::CASField, Op::CASElem);
        break;
      }
      default:
        SYNAT_ASSERT(false, "not a primitive");
    }
    (void)self;
  }

  void compile_expr(ExprId id) {
    const Expr& e = prog_.expr(id);
    StmtId s = cur_stmt_;
    switch (e.kind) {
      case ExprKind::IntLit:
        emit({Op::PushInt, 0, e.int_value, s});
        break;
      case ExprKind::BoolLit:
        emit({Op::PushBool, e.bool_value ? 1 : 0, 0, s});
        break;
      case ExprKind::NullLit:
        emit({Op::PushNull, 0, 0, s});
        break;
      case ExprKind::VarRef:
      case ExprKind::Field:
      case ExprKind::Index:
        compile_load(id);
        break;
      case ExprKind::Unary:
        compile_expr(e.a);
        emit({Op::Unary, static_cast<int32_t>(e.un_op), 0, s});
        break;
      case ExprKind::Binary:
        // Note: && and || evaluate both sides (no short-circuit), matching
        // the analysis's event model.
        compile_expr(e.a);
        compile_expr(e.b);
        emit({Op::Binary, static_cast<int32_t>(e.bin_op), 0, s});
        break;
      case ExprKind::LL:
      case ExprKind::VL:
      case ExprKind::SC:
      case ExprKind::CAS:
        compile_nb_primitive(e, id);
        break;
      case ExprKind::New:
        emit({Op::New, static_cast<int32_t>(e.new_class.idx), 0, s});
        break;
      case ExprKind::Call:
        diags_.error(e.loc, "cannot compile a procedure call; inline first");
        emit({Op::PushNull, 0, 0, s});
        break;
    }
  }

  LoopCtx* find_loop(StmtId target) {
    for (auto it = loops_.rbegin(); it != loops_.rend(); ++it)
      if (it->stmt == target) return &*it;
    return nullptr;
  }

  void emit_releases_down_to(size_t depth, StmtId s) {
    for (size_t i = sync_locks_.size(); i > depth; --i) {
      compile_expr(sync_locks_[i - 1]);
      emit({Op::Release, 0, 0, s});
    }
  }

  void compile_stmt(StmtId id) {
    if (!id.valid()) return;
    const Stmt& st = prog_.stmt(id);
    StmtId prev = cur_stmt_;
    cur_stmt_ = id;
    switch (st.kind) {
      case StmtKind::Assign: {
        compile_expr(st.e2);
        Addr addr = compile_location_base(st.e1);
        compile_store_with_value_below(st.e1, addr);
        break;
      }
      case StmtKind::ExprStmt:
        compile_expr(st.e1);
        emit({Op::Pop, 0, 0, id});
        break;
      case StmtKind::Block:
        for (StmtId c : st.stmts) compile_stmt(c);
        break;
      case StmtKind::If: {
        compile_expr(st.e1);
        size_t jf = emit({Op::JumpIfFalse, 0, 0, id});
        compile_stmt(st.s1);
        if (st.s2.valid()) {
          size_t jend = emit({Op::Jump, 0, 0, id});
          patch(jf, here());
          compile_stmt(st.s2);
          patch(jend, here());
        } else {
          patch(jf, here());
        }
        break;
      }
      case StmtKind::Local: {
        compile_expr(st.e1);
        emit({Op::StoreLocal, slot_of(st.var), 0, id});
        compile_stmt(st.s1);
        break;
      }
      case StmtKind::Loop: {
        loops_.push_back({id, here(), sync_locks_.size(), {}});
        compile_stmt(st.s1);
        emit({Op::Jump, loops_.back().head, 0, id});
        for (size_t at : loops_.back().break_patches) patch(at, here());
        loops_.pop_back();
        break;
      }
      case StmtKind::Return: {
        if (st.e1.valid()) {
          compile_expr(st.e1);
        } else {
          emit({Op::PushNull, 0, 0, id});
        }
        emit_releases_down_to(0, id);
        emit({Op::Return, 0, 0, id});
        break;
      }
      case StmtKind::Break: {
        LoopCtx* ctx = find_loop(st.jump_target);
        if (!ctx) break;
        emit_releases_down_to(ctx->sync_depth, id);
        ctx->break_patches.push_back(emit({Op::Jump, 0, 0, id}));
        break;
      }
      case StmtKind::Continue: {
        LoopCtx* ctx = find_loop(st.jump_target);
        if (!ctx) break;
        emit_releases_down_to(ctx->sync_depth, id);
        emit({Op::Jump, ctx->head, 0, id});
        break;
      }
      case StmtKind::Skip:
        break;
      case StmtKind::Synchronized: {
        compile_expr(st.e1);
        emit({Op::Acquire, 0, 0, id});
        sync_locks_.push_back(st.e1);
        compile_stmt(st.s1);
        sync_locks_.pop_back();
        compile_expr(st.e1);
        emit({Op::Release, 0, 0, id});
        break;
      }
      case StmtKind::Assume:
        compile_expr(st.e1);
        emit({Op::Assume, 0, 0, id});
        break;
      case StmtKind::Assert:
        compile_expr(st.e1);
        emit({Op::Assert, 0, 0, id});
        break;
    }
    cur_stmt_ = prev;
  }

  const Program& prog_;
  const CompiledProgram& cp_;
  DiagEngine& diags_;
  CompiledProc out_;
  std::unordered_map<VarId, uint32_t> frame_slot_;
  uint32_t next_slot_ = 0;
  std::vector<LoopCtx> loops_;
  std::vector<ExprId> sync_locks_;
  StmtId cur_stmt_;
};

}  // namespace

CompiledProgram compile_program(const Program& prog, DiagEngine& diags,
                                bool include_variants) {
  CompiledProgram cp;
  cp.prog = &prog;
  for (VarId v : prog.globals()) cp.global_vars.push_back(v);
  for (VarId v : prog.threadlocals()) cp.tl_vars.push_back(v);
  for (size_t i = 0; i < prog.num_classes(); ++i) {
    cp.class_num_fields.push_back(static_cast<uint32_t>(
        prog.cls(synl::ClassId(static_cast<uint32_t>(i))).fields.size()));
  }
  for (size_t i = 0; i < prog.num_procs(); ++i) {
    synl::ProcId pid(static_cast<uint32_t>(i));
    if (!include_variants && prog.proc(pid).variant_of.valid()) continue;
    cp.procs.push_back(ProcCompiler(prog, cp, pid, diags).run());
  }
  return cp;
}

}  // namespace synat::interp
