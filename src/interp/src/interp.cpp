#include "synat/interp/interp.h"

namespace synat::interp {

using synl::BinOp;
using synl::TypeKind;
using synl::UnOp;

namespace {

std::string at(const CompiledProgram& cp, const Thread& t) {
  const CompiledProc& p = cp.procs[static_cast<size_t>(t.proc)];
  std::string out = p.name + "+" + std::to_string(t.pc);
  if (t.pc < p.code.size() && t.pc > 0) {
    synl::StmtId s = p.code[t.pc - 1].stmt;
    if (s.valid() && cp.prog->stmt(s).loc.valid())
      out += " (line " + std::to_string(cp.prog->stmt(s).loc.line) + ")";
  }
  return out;
}

Value eval_binary(BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinOp::Add: return Value::of_int(a.i + b.i);
    case BinOp::Sub: return Value::of_int(a.i - b.i);
    case BinOp::Mul: return Value::of_int(a.i * b.i);
    case BinOp::Div: return Value::of_int(b.i == 0 ? 0 : a.i / b.i);
    case BinOp::Mod: return Value::of_int(b.i == 0 ? 0 : a.i % b.i);
    case BinOp::Eq:
      if (a.kind == Value::Ref || b.kind == Value::Ref)
        return Value::of_bool(a.ref == b.ref);
      return Value::of_bool(a.i == b.i);
    case BinOp::Ne:
      if (a.kind == Value::Ref || b.kind == Value::Ref)
        return Value::of_bool(a.ref != b.ref);
      return Value::of_bool(a.i != b.i);
    case BinOp::Lt: return Value::of_bool(a.i < b.i);
    case BinOp::Le: return Value::of_bool(a.i <= b.i);
    case BinOp::Gt: return Value::of_bool(a.i > b.i);
    case BinOp::Ge: return Value::of_bool(a.i >= b.i);
    case BinOp::And: return Value::of_bool(a.truthy() && b.truthy());
    case BinOp::Or: return Value::of_bool(a.truthy() || b.truthy());
  }
  return Value::unit();
}

}  // namespace

Value Interp::default_value(synl::TypeId t) const {
  if (!t.valid()) return Value::of_int(0);
  switch (cp_.prog->type(t).kind) {
    case TypeKind::Bool: return Value::of_bool(false);
    case TypeKind::Ref:
    case TypeKind::Null:
    case TypeKind::Array: return Value::null();
    default: return Value::of_int(0);
  }
}

ObjId Interp::alloc_array(State& s, synl::TypeId elem) const {
  HeapObj arr;
  arr.cls = synl::ClassId();  // array marker
  arr.fields.assign(static_cast<size_t>(array_size_), default_value(elem));
  arr.versions.assign(static_cast<size_t>(array_size_), 0);
  s.heap.push_back(std::move(arr));
  return static_cast<ObjId>(s.heap.size());
}

ObjId Interp::alloc_object(State& s, synl::ClassId cls) const {
  HeapObj obj;
  obj.cls = cls;
  const synl::ClassInfo& info = cp_.prog->cls(cls);
  for (const synl::FieldInfo& f : info.fields) {
    if (f.type.valid() && cp_.prog->type(f.type).kind == TypeKind::Array) {
      // Auto-allocate fixed-size arrays (SYNL has no array literal; the
      // model checker bounds them, see DESIGN.md).
      obj.fields.push_back(Value::of_ref(alloc_array(s, cp_.prog->type(f.type).elem)));
    } else {
      obj.fields.push_back(default_value(f.type));
    }
    obj.versions.push_back(0);
  }
  s.heap.push_back(std::move(obj));
  return static_cast<ObjId>(s.heap.size());
}

State Interp::initial_state(const std::vector<ThreadSpec>& specs) const {
  State s;
  s.globals.reserve(cp_.global_vars.size());
  for (synl::VarId v : cp_.global_vars)
    s.globals.push_back(default_value(cp_.prog->var(v).type));
  s.global_versions.assign(cp_.global_vars.size(), 0);

  for (const ThreadSpec& spec : specs) {
    Thread t;
    t.proc = spec.proc;
    t.pc = 0;
    SYNAT_ASSERT(spec.proc >= 0 &&
                     static_cast<size_t>(spec.proc) < cp_.procs.size(),
                 "bad thread proc index");
    const CompiledProc& p = cp_.procs[static_cast<size_t>(spec.proc)];
    SYNAT_ASSERT(spec.args.size() == p.num_params,
                 "wrong argument count for " + p.name);
    t.frame.assign(p.frame_size, Value::unit());
    for (size_t i = 0; i < spec.args.size(); ++i) t.frame[i] = spec.args[i];
    t.status = ThreadStatus::Runnable;
    s.threads.push_back(std::move(t));

    std::vector<Value> tls;
    for (synl::VarId v : cp_.tl_vars)
      tls.push_back(default_value(cp_.prog->var(v).type));
    s.tls.push_back(std::move(tls));
  }
  return s;
}

const Insn& Interp::next_insn(const State& s, int tid) const {
  const Thread& t = s.threads[static_cast<size_t>(tid)];
  return cp_.procs[static_cast<size_t>(t.proc)].code[t.pc];
}

bool Interp::runnable(const State& s, int tid) const {
  const Thread& t = s.threads[static_cast<size_t>(tid)];
  if (t.status != ThreadStatus::Runnable) return false;
  const Insn& insn = next_insn(s, tid);
  if (insn.op == Op::Acquire) {
    // The lock object ref is on top of the stack.
    if (t.stack.empty()) return true;  // error path; let step report it
    ObjId o = t.stack.back().ref;
    if (!s.valid_ref(o)) return true;
    const HeapObj& obj = s.obj(o);
    return obj.lock_owner == -1 || obj.lock_owner == tid;
  }
  return true;
}

bool Interp::next_insn_invisible(const State& s, int tid) const {
  const Thread& t = s.threads[static_cast<size_t>(tid)];
  if (t.status != ThreadStatus::Runnable) return false;
  switch (next_insn(s, tid).op) {
    case Op::Nop:
    case Op::PushInt:
    case Op::PushBool:
    case Op::PushNull:
    case Op::Pop:
    case Op::LoadLocal:
    case Op::StoreLocal:
    case Op::LoadTL:
    case Op::StoreTL:
    case Op::Binary:
    case Op::Unary:
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::Assume:
    case Op::Assert:
    case Op::Return:
    case Op::New:  // fresh object: invisible until published
      return true;
    default:
      return false;
  }
}

StepResult Interp::step(State& s, int tid, std::string* error) const {
  Thread& t = s.threads[static_cast<size_t>(tid)];
  switch (t.status) {
    case ThreadStatus::Done: return StepResult::Done;
    case ThreadStatus::Stuck: return StepResult::Stuck;
    case ThreadStatus::Runnable: break;
  }
  const Insn& insn = next_insn(s, tid);
  return exec(s, tid, insn, error);
}

StepResult Interp::exec(State& s, int tid, const Insn& insn,
                        std::string* error) const {
  Thread& t = s.threads[static_cast<size_t>(tid)];
  auto fail = [&](const std::string& what) {
    if (error) *error = what + " at " + at(cp_, t);
    return StepResult::Error;
  };
  auto pop = [&]() {
    Value v = t.stack.back();
    t.stack.pop_back();
    return v;
  };
  if (t.stack.size() > 4096) return fail("operand stack overflow");

  // Helpers shared by the location-addressed instruction families. They
  // resolve the cell identity and current value/version.
  struct Cell {
    Value* value = nullptr;
    uint64_t* version = nullptr;
    LocKey key;
    bool ok = false;
  };
  auto global_cell = [&](int32_t slot) {
    Cell c;
    c.value = &s.globals[static_cast<size_t>(slot)];
    c.version = &s.global_versions[static_cast<size_t>(slot)];
    c.key = {LocKey::Global, static_cast<uint32_t>(slot), 0};
    c.ok = true;
    return c;
  };
  auto field_cell = [&](ObjId o, int32_t field) {
    Cell c;
    if (!s.valid_ref(o)) return c;
    HeapObj& obj = s.obj(o);
    if (field < 0 || static_cast<size_t>(field) >= obj.fields.size()) return c;
    c.value = &obj.fields[static_cast<size_t>(field)];
    c.version = &obj.versions[static_cast<size_t>(field)];
    c.key = {LocKey::Field, o, static_cast<uint32_t>(field)};
    c.ok = true;
    return c;
  };
  auto elem_cell = [&](ObjId o, int64_t idx) {
    Cell c;
    if (!s.valid_ref(o)) return c;
    HeapObj& obj = s.obj(o);
    if (idx < 0 || static_cast<size_t>(idx) >= obj.fields.size()) return c;
    c.value = &obj.fields[static_cast<size_t>(idx)];
    c.version = &obj.versions[static_cast<size_t>(idx)];
    c.key = {LocKey::Elem, o, static_cast<uint32_t>(idx)};
    c.ok = true;
    return c;
  };

  auto do_ll = [&](const Cell& c) {
    t.links[c.key] = *c.version;
    t.stack.push_back(*c.value);
  };
  auto do_vl = [&](const Cell& c) {
    auto it = t.links.find(c.key);
    t.stack.push_back(
        Value::of_bool(it != t.links.end() && it->second == *c.version));
  };
  auto do_sc = [&](const Cell& c, const Value& v) {
    auto it = t.links.find(c.key);
    if (it != t.links.end() && it->second == *c.version) {
      *c.value = v;
      ++*c.version;
      t.stack.push_back(Value::of_bool(true));
    } else {
      t.stack.push_back(Value::of_bool(false));
    }
  };
  auto do_cas = [&](const Cell& c, const Value& expected, const Value& newv) {
    bool equal = (c.value->kind == Value::Ref || expected.kind == Value::Ref)
                     ? c.value->ref == expected.ref
                     : c.value->i == expected.i;
    if (equal) {
      *c.value = newv;
      ++*c.version;  // the "modification counter": CAS bumps it
      t.stack.push_back(Value::of_bool(true));
    } else {
      t.stack.push_back(Value::of_bool(false));
    }
  };

  switch (insn.op) {
    case Op::Nop:
      break;
    case Op::PushInt:
      t.stack.push_back(Value::of_int(insn.imm));
      break;
    case Op::PushBool:
      t.stack.push_back(Value::of_bool(insn.a != 0));
      break;
    case Op::PushNull:
      t.stack.push_back(Value::null());
      break;
    case Op::Pop:
      pop();
      break;
    case Op::LoadLocal:
      t.stack.push_back(t.frame[static_cast<size_t>(insn.a)]);
      break;
    case Op::StoreLocal:
      t.frame[static_cast<size_t>(insn.a)] = pop();
      break;
    case Op::LoadGlobal:
      t.stack.push_back(s.globals[static_cast<size_t>(insn.a)]);
      break;
    case Op::StoreGlobal:
      s.globals[static_cast<size_t>(insn.a)] = pop();
      break;
    case Op::LoadTL:
      t.stack.push_back(s.tls[static_cast<size_t>(tid)][static_cast<size_t>(insn.a)]);
      break;
    case Op::StoreTL:
      s.tls[static_cast<size_t>(tid)][static_cast<size_t>(insn.a)] = pop();
      break;
    case Op::LoadField: {
      ObjId o = pop().ref;
      Cell c = field_cell(o, insn.a);
      if (!c.ok) return fail("null or invalid field access");
      t.stack.push_back(*c.value);
      break;
    }
    case Op::StoreField: {
      ObjId o = pop().ref;
      Value v = pop();
      Cell c = field_cell(o, insn.a);
      if (!c.ok) return fail("null or invalid field store");
      *c.value = v;
      break;
    }
    case Op::LoadElem: {
      int64_t idx = pop().i;
      ObjId o = pop().ref;
      Cell c = elem_cell(o, idx);
      if (!c.ok) return fail("array access out of bounds or null");
      t.stack.push_back(*c.value);
      break;
    }
    case Op::StoreElem: {
      int64_t idx = pop().i;
      ObjId o = pop().ref;
      Value v = pop();
      Cell c = elem_cell(o, idx);
      if (!c.ok) return fail("array store out of bounds or null");
      *c.value = v;
      break;
    }
    case Op::New:
      t.stack.push_back(Value::of_ref(
          alloc_object(s, synl::ClassId(static_cast<uint32_t>(insn.a)))));
      break;
    case Op::Binary: {
      Value b = pop();
      Value a = pop();
      t.stack.push_back(eval_binary(static_cast<BinOp>(insn.a), a, b));
      break;
    }
    case Op::Unary: {
      Value a = pop();
      if (static_cast<UnOp>(insn.a) == UnOp::Not) {
        t.stack.push_back(Value::of_bool(!a.truthy()));
      } else {
        t.stack.push_back(Value::of_int(-a.i));
      }
      break;
    }
    case Op::LLGlobal: do_ll(global_cell(insn.a)); break;
    case Op::VLGlobal: do_vl(global_cell(insn.a)); break;
    case Op::SCGlobal: {
      Value v = pop();
      do_sc(global_cell(insn.a), v);
      break;
    }
    case Op::CASGlobal: {
      Value newv = pop();
      Value expected = pop();
      do_cas(global_cell(insn.a), expected, newv);
      break;
    }
    case Op::LLField: {
      ObjId o = pop().ref;
      Cell c = field_cell(o, insn.a);
      if (!c.ok) return fail("LL on null/invalid field");
      do_ll(c);
      break;
    }
    case Op::VLField: {
      ObjId o = pop().ref;
      Cell c = field_cell(o, insn.a);
      if (!c.ok) return fail("VL on null/invalid field");
      do_vl(c);
      break;
    }
    case Op::SCField: {
      ObjId o = pop().ref;
      Value v = pop();
      Cell c = field_cell(o, insn.a);
      if (!c.ok) return fail("SC on null/invalid field");
      do_sc(c, v);
      break;
    }
    case Op::CASField: {
      ObjId o = pop().ref;
      Value newv = pop();
      Value expected = pop();
      Cell c = field_cell(o, insn.a);
      if (!c.ok) return fail("CAS on null/invalid field");
      do_cas(c, expected, newv);
      break;
    }
    case Op::LLElem: {
      int64_t idx = pop().i;
      ObjId o = pop().ref;
      Cell c = elem_cell(o, idx);
      if (!c.ok) return fail("LL on invalid element");
      do_ll(c);
      break;
    }
    case Op::VLElem: {
      int64_t idx = pop().i;
      ObjId o = pop().ref;
      Cell c = elem_cell(o, idx);
      if (!c.ok) return fail("VL on invalid element");
      do_vl(c);
      break;
    }
    case Op::SCElem: {
      int64_t idx = pop().i;
      ObjId o = pop().ref;
      Value v = pop();
      Cell c = elem_cell(o, idx);
      if (!c.ok) return fail("SC on invalid element");
      do_sc(c, v);
      break;
    }
    case Op::CASElem: {
      int64_t idx = pop().i;
      ObjId o = pop().ref;
      Value newv = pop();
      Value expected = pop();
      Cell c = elem_cell(o, idx);
      if (!c.ok) return fail("CAS on invalid element");
      do_cas(c, expected, newv);
      break;
    }
    case Op::Jump:
      t.pc = static_cast<uint32_t>(insn.a);
      return StepResult::Ok;
    case Op::JumpIfFalse: {
      Value c = pop();
      if (!c.truthy()) {
        t.pc = static_cast<uint32_t>(insn.a);
        return StepResult::Ok;
      }
      break;
    }
    case Op::Acquire: {
      // Do not consume anything unless the lock is available.
      if (t.stack.empty()) return fail("acquire without lock operand");
      ObjId o = t.stack.back().ref;
      if (!s.valid_ref(o)) return fail("acquire on null");
      HeapObj& obj = s.obj(o);
      if (obj.lock_owner != -1 && obj.lock_owner != tid)
        return StepResult::Blocked;
      pop();
      obj.lock_owner = tid;
      ++obj.lock_depth;
      break;
    }
    case Op::Release: {
      ObjId o = pop().ref;
      if (!s.valid_ref(o)) return fail("release on null");
      HeapObj& obj = s.obj(o);
      if (obj.lock_owner != tid) return fail("release of unowned lock");
      if (--obj.lock_depth == 0) obj.lock_owner = -1;
      break;
    }
    case Op::Assume: {
      Value c = pop();
      if (!c.truthy()) {
        t.status = ThreadStatus::Stuck;
        return StepResult::Stuck;
      }
      break;
    }
    case Op::Assert: {
      Value c = pop();
      if (!c.truthy()) return fail("assertion failed");
      break;
    }
    case Op::Return: {
      t.ret = pop();
      t.status = ThreadStatus::Done;
      // A finished thread never runs again: drop its frame, stack and links
      // so they neither root garbage nor differentiate states.
      t.frame.clear();
      t.stack.clear();
      t.links.clear();
      ++t.pc;
      return StepResult::Ok;
    }
  }
  ++t.pc;
  return StepResult::Ok;
}

StepResult Interp::run_thread(State& s, int tid, std::string* error,
                              size_t max_steps) const {
  for (size_t i = 0; i < max_steps; ++i) {
    StepResult r = step(s, tid, error);
    switch (r) {
      case StepResult::Ok:
        if (s.threads[static_cast<size_t>(tid)].status == ThreadStatus::Done)
          return StepResult::Done;
        break;
      case StepResult::Done:
      case StepResult::Stuck:
      case StepResult::Blocked:
      case StepResult::Error:
        return r;
    }
  }
  if (error) *error = "thread did not terminate within the step budget";
  return StepResult::Error;
}

}  // namespace synat::interp
