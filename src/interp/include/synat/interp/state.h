// Interpreter state: a full program configuration (globals, heap, threads).
//
// LL/SC is modelled with per-location version counters: LL records the
// current version in the thread's link set; SC succeeds iff the recorded
// version is still current, and bumps it (plain writes do not break links,
// matching the paper's Section 3.1 semantics where only successful SCs
// count as writes for link purposes). Absolute version numbers are
// exploration artifacts; the model checker canonicalizes them to validity
// bits when hashing states.
#pragma once

#include <map>
#include <vector>

#include "synat/interp/value.h"
#include "synat/synl/ast.h"

namespace synat::interp {

struct HeapObj {
  synl::ClassId cls;               ///< invalid => this is an array
  std::vector<Value> fields;       ///< fields or elements
  std::vector<uint64_t> versions;  ///< per-cell SC version
  int32_t lock_owner = -1;         ///< thread id holding the object's lock
  uint32_t lock_depth = 0;
};

enum class ThreadStatus : uint8_t {
  Runnable,
  Done,   ///< returned from its top-level procedure
  Stuck,  ///< failed an Assume; this path is infeasible
};

struct Thread {
  int proc = -1;  ///< index into CompiledProgram::procs
  uint32_t pc = 0;
  std::vector<Value> stack;
  std::vector<Value> frame;
  /// LL reservations: location -> version observed. std::map keeps the
  /// canonical serialization deterministic.
  std::map<LocKey, uint64_t> links;
  ThreadStatus status = ThreadStatus::Done;
  Value ret;  ///< return value once Done
};

struct State {
  std::vector<Value> globals;
  std::vector<uint64_t> global_versions;
  std::vector<HeapObj> heap;              ///< ObjId o lives at heap[o - 1]
  std::vector<std::vector<Value>> tls;    ///< per-thread thread-local slots
  std::vector<Thread> threads;

  HeapObj& obj(ObjId o) { return heap[o - 1]; }
  const HeapObj& obj(ObjId o) const { return heap[o - 1]; }
  bool valid_ref(ObjId o) const { return o != kNull && o <= heap.size(); }
};

}  // namespace synat::interp
