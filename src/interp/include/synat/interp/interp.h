// SYNL small-step interpreter over the compiled bytecode.
//
// One `step` executes exactly one instruction of one thread — the
// interleaving granularity used by the model checker. Steps are
// deterministic given (state, tid), so an execution is fully described by
// its schedule, matching the paper's Section 3.2 determinism note.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "synat/interp/bytecode.h"
#include "synat/interp/state.h"

namespace synat::interp {

struct ThreadSpec {
  int proc = -1;  ///< index into CompiledProgram::procs
  std::vector<Value> args;
};

enum class StepResult : uint8_t {
  Ok,       ///< executed one instruction
  Done,     ///< thread already finished (no-op)
  Blocked,  ///< next instruction is a lock acquire held elsewhere
  Stuck,    ///< thread failed an Assume (infeasible path)
  Error,    ///< assertion failure or runtime error (null deref, bounds)
};

class Interp {
 public:
  Interp(const CompiledProgram& cp, int array_size = 3)
      : cp_(cp), array_size_(array_size) {}

  const CompiledProgram& program() const { return cp_; }

  /// Fresh state with one thread per spec, all at pc 0. Globals are
  /// zero/null/false; thread-locals likewise.
  State initial_state(const std::vector<ThreadSpec>& threads) const;

  /// Executes one instruction of thread `tid`.
  StepResult step(State& s, int tid, std::string* error) const;

  /// True if step(s, tid) would execute an instruction right now.
  bool runnable(const State& s, int tid) const;

  /// The instruction thread `tid` would execute next (it must be Runnable).
  const Insn& next_insn(const State& s, int tid) const;

  /// True if the next instruction neither reads nor writes shared state:
  /// safe to commit without considering other threads (POR ample set).
  bool next_insn_invisible(const State& s, int tid) const;

  /// Runs a single thread to completion (for sequential setup and tests).
  StepResult run_thread(State& s, int tid, std::string* error,
                        size_t max_steps = 1u << 20) const;

  /// Allocates an object of class `cls`; array-typed fields get fresh
  /// arrays of `array_size` elements.
  ObjId alloc_object(State& s, synl::ClassId cls) const;
  ObjId alloc_array(State& s, synl::TypeId elem) const;

 private:
  Value default_value(synl::TypeId t) const;
  StepResult exec(State& s, int tid, const Insn& insn, std::string* error) const;

  const CompiledProgram& cp_;
  int array_size_;
};

}  // namespace synat::interp
