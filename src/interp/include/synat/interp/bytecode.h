// Stack-machine bytecode for SYNL and its compiler.
//
// Each instruction is one interpreter transition (the granularity the model
// checker interleaves at, mirroring SPIN's statement-level steps). The
// compiler assigns dense slots to globals, thread-locals and per-procedure
// locals, and lowers structured control flow to jumps.
//
// Stack conventions (top on the right):
//   StoreField  [value, ref]        -> []
//   StoreElem   [value, ref, idx]   -> []
//   SCField     [value, ref]        -> [bool]
//   CASGlobal   [expected, newv]    -> [bool]
//   CASField    [expected, newv, ref]        -> [bool]
//   CASElem     [expected, newv, ref, idx]   -> [bool]
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "synat/support/diag.h"
#include "synat/synl/ast.h"

namespace synat::interp {

enum class Op : uint8_t {
  Nop,
  PushInt,   ///< imm = value
  PushBool,  ///< a = 0/1
  PushNull,
  Pop,
  LoadLocal, StoreLocal,    ///< a = frame slot
  LoadGlobal, StoreGlobal,  ///< a = global slot
  LoadTL, StoreTL,          ///< a = thread-local slot
  LoadField, StoreField,    ///< a = field index
  LoadElem, StoreElem,
  New,                      ///< a = class id
  Binary,                   ///< a = BinOp
  Unary,                    ///< a = UnOp
  LLGlobal, LLField, LLElem,
  VLGlobal, VLField, VLElem,
  SCGlobal, SCField, SCElem,
  CASGlobal, CASField, CASElem,
  Jump,         ///< a = target pc
  JumpIfFalse,  ///< a = target pc; pops condition
  Acquire,      ///< pops lock object ref
  Release,      ///< pops lock object ref
  Assume,       ///< pops bool; false => path infeasible (thread stuck)
  Assert,       ///< pops bool; false => error
  Return,       ///< pops return value (always pushed; Unit if none)
};

std::string_view to_string(Op op);

struct Insn {
  Op op = Op::Nop;
  int32_t a = 0;
  int64_t imm = 0;
  synl::StmtId stmt;  ///< originating statement (diagnostics)
};

struct CompiledProc {
  synl::ProcId proc;
  std::string name;
  uint32_t num_params = 0;
  uint32_t frame_size = 0;  ///< params + locals
  std::vector<Insn> code;
  bool declared_atomic = false;  ///< set by the model-checker configuration
};

struct CompiledProgram {
  const synl::Program* prog = nullptr;
  std::vector<CompiledProc> procs;
  std::vector<synl::VarId> global_vars;  ///< slot -> VarId
  std::vector<synl::VarId> tl_vars;
  /// Field slot maps: class id -> number of fields (field index == slot).
  std::vector<uint32_t> class_num_fields;

  const CompiledProc* find(std::string_view name) const {
    for (const CompiledProc& p : procs)
      if (p.name == name) return &p;
    return nullptr;
  }
  int find_index(std::string_view name) const {
    for (size_t i = 0; i < procs.size(); ++i)
      if (procs[i].name == name) return static_cast<int>(i);
    return -1;
  }
};

/// Compiles every procedure. The program must have passed sema. Procedures
/// created by the variant generator are skipped (they contain TRUE(...)
/// assumptions and are analysis artifacts, not executable entry points),
/// unless `include_variants` is set.
CompiledProgram compile_program(const synl::Program& prog, DiagEngine& diags,
                                bool include_variants = false);

std::string disassemble(const CompiledProc& proc);

}  // namespace synat::interp
