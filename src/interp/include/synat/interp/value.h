// Runtime values and location identities for the SYNL interpreter.
#pragma once

#include <cstdint>
#include <string>

namespace synat::interp {

/// Heap object id; 0 is null.
using ObjId = uint32_t;
inline constexpr ObjId kNull = 0;

struct Value {
  enum Kind : uint8_t { Unit, Int, Bool, Ref } kind = Unit;
  int64_t i = 0;  ///< integer / boolean payload
  ObjId ref = kNull;

  static Value unit() { return {}; }
  static Value of_int(int64_t v) { return {Int, v, kNull}; }
  static Value of_bool(bool v) { return {Bool, v ? 1 : 0, kNull}; }
  static Value of_ref(ObjId o) { return {Ref, 0, o}; }
  static Value null() { return of_ref(kNull); }

  bool truthy() const { return kind == Bool ? i != 0 : (kind == Ref ? ref != kNull : i != 0); }
  bool is_null() const { return kind == Ref && ref == kNull; }

  friend bool operator==(const Value&, const Value&) = default;

  std::string str() const {
    switch (kind) {
      case Unit: return "unit";
      case Int: return std::to_string(i);
      case Bool: return i ? "true" : "false";
      case Ref: return ref == kNull ? "null" : "@" + std::to_string(ref);
    }
    return "?";
  }
};

/// Identity of a mutable memory cell, used for LL/SC reservations.
struct LocKey {
  enum Kind : uint8_t { Global, Field, Elem } kind = Global;
  uint32_t a = 0;  ///< global slot / object id
  uint32_t b = 0;  ///< field index / element index

  friend bool operator==(const LocKey&, const LocKey&) = default;
  friend auto operator<=>(const LocKey&, const LocKey&) = default;
};

}  // namespace synat::interp

template <>
struct std::hash<synat::interp::LocKey> {
  size_t operator()(const synat::interp::LocKey& k) const noexcept {
    return (static_cast<size_t>(k.kind) << 60) ^
           (static_cast<size_t>(k.a) << 30) ^ k.b;
  }
};
