#include "synat/driver/worker.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <new>
#include <thread>

#include "synat/driver/codec.h"
#include "synat/obs/metrics.h"
#include "synat/obs/trace.h"
#include "synat/support/fault.h"
#include "synat/support/frame.h"
#include "synat/support/subprocess.h"

namespace synat::driver {

namespace {

using support::Child;
using support::FrameReader;
using support::FrameType;

constexpr uint64_t kHeartbeatMs = 50;
/// Grace on top of the analysis deadline before a silent worker is reaped;
/// heartbeats come from a dedicated thread, so only a frozen or dead
/// process goes quiet this long.
constexpr uint64_t kStallGraceMs = 500;
constexpr uint64_t kStallDefaultMs = 10000;  ///< when no deadline is set
constexpr uint64_t kBackoffBaseMs = 50;      ///< retry n waits base << (n-1)
/// RLIMIT_CPU backstop: an order of magnitude above the per-procedure
/// deadline, for runaway spins the in-process watchdog failed to contain.
constexpr uint64_t kCpuLimitFactor = 16;

uint64_t now_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Serializes the worker's response pipe between the heartbeat thread and
/// the result write; a torn frame would read as corruption upstream.
struct WorkerPipe {
  int fd;
  std::mutex mu;

  bool send(FrameType type, std::string_view payload) {
    std::lock_guard<std::mutex> lock(mu);
    return support::write_frame(fd, type, payload);
  }
};

/// Shared body of a one-shot worker process, used by both the batch worker
/// (after it has decoded its Request frame) and the sandboxed serve worker
/// (which is forked with its input already bound). Runs the analysis with
/// an in-process sub-driver, streams heartbeats, and ships Telemetry /
/// Provenance / CacheDelta / Result frames to `out_fd`.
///
/// `cache` is non-null only on the serve path: the fork inherited the
/// daemon's hot cache as a copy-on-write image, so the sub-driver runs
/// against it (use_cache on) and the entries it adds are captured and
/// shipped back as a CacheDelta frame — the child's image dies with it.
/// `zero_program_counter` is set by the batch worker, whose supervisor
/// already counted the program in its own run().
int worker_body(int out_fd, const ProgramInput& input, unsigned attempt,
                const DriverOptions& opts, ResultCache* cache,
                bool zero_program_counter) {
  support::maybe_inject_fault(input.name, attempt);

  // Telemetry baseline: the fork copied the supervisor's rings and counter
  // values, so shed the inherited spans and delta against the inherited
  // counts — what crosses the pipe is exactly this worker's contribution.
  obs::Tracer::instance().reset();
  const obs::MetricsSnapshot obs_base = obs::registry().snapshot();

  WorkerPipe pipe{out_fd, {}};
  std::atomic<bool> stop{false};
  std::mutex beat_mu;
  std::condition_variable beat_cv;
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(beat_mu);
    static obs::Counter& heartbeats =
        obs::registry().counter("synat_worker_heartbeats_total", false);
    while (!stop.load(std::memory_order_relaxed)) {
      heartbeats.inc();
      if (!pipe.send(FrameType::Heartbeat, {})) return;  // supervisor gone
      beat_cv.wait_for(lock, std::chrono::milliseconds(kHeartbeatMs),
                       [&] { return stop.load(std::memory_order_relaxed); });
    }
  });

  // The sub-driver mirrors the non-isolated per-program execution exactly:
  // report content never depends on jobs/cache/journal, so one inline run
  // with everything else off is byte-identical to the in-process path.
  DriverOptions sub = opts;
  sub.jobs = 1;
  sub.isolate = false;
  sub.use_cache = cache != nullptr;
  sub.collect_timings = false;
  sub.journal_path.clear();
  sub.resume = false;
  uint64_t hits_base = 0, misses_base = 0;
  if (cache != nullptr) {
    hits_base = cache->hits();
    misses_base = cache->misses();
    cache->start_capture();
  }
  int rc = 0;
  std::string result, prov, delta_frame;
  try {
    BatchDriver driver(sub, cache);
    BatchReport report = driver.run({input});
    codec::put_program_report(result, report.programs.at(0));
    // Provenance rides in its own frame so the Result payload stays
    // byte-identical to the non-provenance wire shape.
    if (input.opts.provenance)
      codec::put_program_provenance(prov, report.programs.at(0));
    if (cache != nullptr)
      codec::put_cache_delta(delta_frame, cache->hits() - hits_base,
                             cache->misses() - misses_base,
                             cache->take_capture());
  } catch (const std::bad_alloc&) {
    // Distinct exit code so the supervisor can classify an allocation
    // failure under RLIMIT_AS as an OOM kill rather than a crash.
    rc = 114;
  } catch (...) {
    rc = 112;
  }
  {
    std::lock_guard<std::mutex> lock(beat_mu);
    stop.store(true, std::memory_order_relaxed);
  }
  beat_cv.notify_all();
  heartbeat.join();
  if (rc == 0) {
    // Telemetry travels in its own frame just before the Result. Failure
    // to send it is not fatal: the supervisor only trusts (and merges)
    // telemetry that is followed by a decodable Result anyway.
    std::vector<obs::SpanRecord> spans;
    if (obs::flags() & obs::kTraceFlag) spans = obs::Tracer::instance().drain();
    obs::MetricsSnapshot delta =
        obs::registry().snapshot().delta_from(obs_base);
    // The batch supervisor already counted this program in its own run();
    // the sub-driver's copy of that increment must not merge back on top
    // of it. The serve daemon never counts it itself, so the sandboxed
    // worker's increment is the only one and merges through.
    if (zero_program_counter)
      for (obs::CounterSample& c : delta.counters)
        if (c.name == "synat_programs_total") c.value = 0;
    std::string telem;
    codec::put_telemetry(telem, spans, delta);
    pipe.send(FrameType::Telemetry, telem);
    // Like telemetry, the Provenance and CacheDelta frames are only
    // trusted when a decodable Result follows; a send failure here
    // surfaces on the Result send.
    if (!prov.empty()) pipe.send(FrameType::Provenance, prov);
    if (!delta_frame.empty()) pipe.send(FrameType::CacheDelta, delta_frame);
  }
  if (rc == 0 && !pipe.send(FrameType::Result, result)) rc = 111;
  return rc;
}

}  // namespace

int worker_main(int in_fd, int out_fd, const std::vector<ProgramInput>& inputs,
                const DriverOptions& opts) {
  // The Request tells this one-shot worker which captured input to run.
  FrameReader reader;
  std::string payload;
  FrameType type{};
  while (true) {
    FrameReader::Next n = reader.next(type, payload);
    if (n == FrameReader::Next::Frame) break;
    if (n == FrameReader::Next::Corrupt) return 110;
    FrameReader::Fill f = reader.fill(in_fd);
    if (f == FrameReader::Fill::Eof || f == FrameReader::Fill::Failed)
      return 110;
  }
  codec::Reader req(payload);
  uint64_t index = 0, attempt = 0;
  if (type != FrameType::Request || !req.get_u64(index) ||
      !req.get_u64(attempt) || !req.at_end() || index >= inputs.size())
    return 110;
  return worker_body(out_fd, inputs[index], static_cast<unsigned>(attempt),
                     opts, nullptr, /*zero_program_counter=*/true);
}

// ---------------------------------------------------------------------------
// Supervisor

namespace {

struct Pending {
  size_t index = 0;
  unsigned attempt = 1;
  uint64_t ready_ms = 0;  ///< retry backoff: not dispatched before this
};

struct Slot {
  Child child;
  size_t index = 0;
  unsigned attempt = 1;
  FrameReader reader;
  uint64_t last_beat_ms = 0;
  bool live = false;
  /// Stashed Telemetry payload; merged only when a decodable Result
  /// follows, so a crashed or retried attempt never double-counts.
  std::string telemetry;
  /// Stashed Provenance payload; attached to the decoded Result the same
  /// way (and discarded with the slot on crash/retry).
  std::string provenance;
};

void close_slot(Slot& s) {
  if (s.child.to_child >= 0) ::close(s.child.to_child);
  if (s.child.from_child >= 0) ::close(s.child.from_child);
  s.child = Child{};
  s.reader = FrameReader{};
  s.live = false;
  s.telemetry.clear();
  s.provenance.clear();
}

/// Folds a worker's stashed telemetry into the supervisor's registry and
/// tracer. Lane = task index + 1 (lane 0 is the supervisor), which is
/// deterministic where a pid would not be.
void merge_telemetry(Slot& s, const std::vector<ProgramInput>& inputs) {
  if (s.telemetry.empty()) return;
  codec::Reader r(s.telemetry);
  std::vector<obs::SpanRecord> spans;
  obs::MetricsSnapshot delta;
  if (codec::get_telemetry(r, spans, delta) && r.at_end()) {
    obs::registry().merge(delta);
    if (!spans.empty()) {
      uint32_t lane = static_cast<uint32_t>(s.index) + 1;
      obs::Tracer::instance().inject(lane, spans);
      obs::Tracer::instance().set_lane_name(
          lane, "worker " + inputs[s.index].name);
    }
  }
  s.telemetry.clear();
}

}  // namespace

void run_supervised(const std::vector<ProgramInput>& inputs,
                    const std::vector<uint64_t>& keys,
                    const std::vector<bool>& done, const DriverOptions& opts,
                    unsigned jobs, ReportSink& sink, JournalWriter& journal) {
  // A worker can die between our poll and our write; EPIPE must come back
  // as an error code here, not kill the supervisor.
  struct sigaction ignore {};
  ignore.sa_handler = SIG_IGN;
  struct sigaction saved {};
  sigaction(SIGPIPE, &ignore, &saved);

  const uint64_t stall_ms = opts.deadline_ms > 0
                                ? opts.deadline_ms + kStallGraceMs
                                : kStallDefaultMs;
  support::ChildLimits limits;
  limits.max_rss_mb = opts.max_rss_mb;
  if (opts.deadline_ms > 0)
    limits.cpu_seconds = opts.deadline_ms * kCpuLimitFactor / 1000 + 1;

  std::deque<Pending> pending;
  for (size_t i = 0; i < inputs.size(); ++i)
    if (!done[i]) pending.push_back({i, 1, 0});
  std::vector<Slot> slots(std::max(1u, jobs));
  size_t live = 0;

  // A worker died (or was reaped) before delivering its Result: retry with
  // backoff while attempts remain, then contain it as a degraded program.
  auto worker_failed = [&](Slot& s, const std::string& reason) {
    static obs::Counter& crashes =
        obs::registry().counter("synat_worker_crashes_total");
    crashes.inc();
    if (s.attempt <= opts.retries) {
      static obs::Counter& retries =
          obs::registry().counter("synat_worker_retries_total");
      retries.inc();
      pending.push_back({s.index, s.attempt + 1,
                         now_ms() + (kBackoffBaseMs << (s.attempt - 1))});
    } else {
      sink.fail_program(s.index, inputs[s.index].name, ProgramStatus::Degraded,
                        {{"error", 0, 0, reason}});
    }
    close_slot(s);
    --live;
  };

  auto reap_failed = [&](Slot& s, const char* what) {
    int status = support::wait_child(s.child.pid);
    worker_failed(s, std::string(what) + ": " +
                         support::describe_wait_status(status));
  };

  while (live > 0 || !pending.empty()) {
    uint64_t now = now_ms();
    // Dispatch ready tasks into free slots.
    for (Slot& s : slots) {
      if (s.live || pending.empty()) continue;
      auto ready = pending.end();
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->ready_ms <= now) {
          ready = it;
          break;
        }
      }
      if (ready == pending.end()) break;  // all remaining are backing off
      Pending task = *ready;
      pending.erase(ready);
      obs::SpanScope dispatch_span(obs::StageId::Dispatch);
      static obs::Counter& dispatches =
          obs::registry().counter("synat_worker_dispatches_total");
      dispatches.inc();
      s.index = task.index;
      s.attempt = task.attempt;
      s.child = support::spawn_child(
          [&inputs, &opts](int in, int out) {
            return worker_main(in, out, inputs, opts);
          },
          limits);
      s.last_beat_ms = now;
      s.live = true;
      ++live;
      if (!s.child.valid()) {
        worker_failed(s, "crashed: fork failed");
        continue;
      }
      std::string req;
      codec::put_u64(req, task.index);
      codec::put_u64(req, task.attempt);
      if (!support::write_frame(s.child.to_child, FrameType::Request, req)) {
        ::kill(s.child.pid, SIGKILL);
        reap_failed(s, "crashed");
      }
    }

    if (live == 0) {
      // Nothing running; sleep until the earliest backoff expires.
      uint64_t wake = ~uint64_t{0};
      for (const Pending& p : pending) wake = std::min(wake, p.ready_ms);
      if (wake > now)
        std::this_thread::sleep_for(std::chrono::milliseconds(wake - now));
      continue;
    }

    std::vector<struct pollfd> fds;
    std::vector<size_t> fd_slot;
    for (size_t si = 0; si < slots.size(); ++si) {
      if (!slots[si].live) continue;
      fds.push_back({slots[si].child.from_child, POLLIN, 0});
      fd_slot.push_back(si);
    }
    ::poll(fds.data(), fds.size(), static_cast<int>(kHeartbeatMs));
    now = now_ms();

    for (size_t fi = 0; fi < fds.size(); ++fi) {
      Slot& s = slots[fd_slot[fi]];
      if (!s.live) continue;
      if (fds[fi].revents != 0) {
        bool closed = false;
        for (;;) {
          FrameReader::Fill f = s.reader.fill(s.child.from_child);
          if (f == FrameReader::Fill::Blocked) break;
          if (f == FrameReader::Fill::Eof ||
              f == FrameReader::Fill::Failed) {
            closed = true;
            break;
          }
          s.last_beat_ms = now;
        }
        bool handled = false;
        for (;;) {
          FrameType type{};
          std::string payload;
          FrameReader::Next n = s.reader.next(type, payload);
          if (n == FrameReader::Next::Need) break;
          if (n == FrameReader::Next::Corrupt) {
            ::kill(s.child.pid, SIGKILL);
            support::wait_child(s.child.pid);
            worker_failed(s, "crashed: corrupt result frame");
            handled = true;
            break;
          }
          if (type == FrameType::Result) {
            codec::Reader r(payload);
            ProgramReport report;
            bool ok = codec::get_program_report(r, report) && r.at_end();
            if (ok && !s.provenance.empty()) {
              // A corrupt provenance section fails the whole attempt: a
              // report silently missing its derivation records would break
              // the explain byte-identity contract.
              codec::Reader pr(s.provenance);
              ok = codec::get_program_provenance(pr, report) && pr.at_end();
            }
            if (!ok) {
              ::kill(s.child.pid, SIGKILL);
              support::wait_child(s.child.pid);
              worker_failed(s, "crashed: undecodable result");
              handled = true;
              break;
            }
            if (journal.active() && journal_worthy(report))
              journal.append(keys[s.index], report);
            static obs::Counter& results =
                obs::registry().counter("synat_worker_results_total");
            results.inc();
            merge_telemetry(s, inputs);
            sink.set_program(s.index, std::move(report));
            support::wait_child(s.child.pid);
            close_slot(s);
            --live;
            handled = true;
            break;
          }
          if (type == FrameType::Telemetry) {
            s.telemetry = std::move(payload);
            continue;
          }
          if (type == FrameType::Provenance) {
            s.provenance = std::move(payload);
            continue;
          }
          // Heartbeat (or an unexpected type): liveness either way.
        }
        if (handled) continue;
        if (closed) {
          reap_failed(s, "crashed");
          continue;
        }
      }
      if (now - s.last_beat_ms > stall_ms) {
        ::kill(s.child.pid, SIGKILL);
        support::wait_child(s.child.pid);
        // Deterministic text (the limit, not the measured silence): degraded
        // reasons land in rendered documents.
        worker_failed(s, "crashed: stalled (no heartbeat within " +
                             std::to_string(stall_ms) + " ms)");
      }
    }
  }

  sigaction(SIGPIPE, &saved, nullptr);
}

// ---------------------------------------------------------------------------
// Single-request sandbox (serve --sandbox)

namespace {

/// Maps a reaped wait status onto the sandbox failure taxonomy. SIGXCPU is
/// the RLIMIT_CPU backstop firing (the in-process watchdog missed a spin);
/// exit 114 is worker_body's std::bad_alloc path; SIGABRT under an
/// RLIMIT_AS cap is glibc aborting on an allocation the limit refused
/// (raw mallocs bypass the bad_alloc path). Everything else is a crash.
SandboxOutcome::FailKind classify_death(int status,
                                        const DriverOptions& opts) {
  if (WIFSIGNALED(status)) {
    if (WTERMSIG(status) == SIGXCPU) return SandboxOutcome::FailKind::Timeout;
    if (WTERMSIG(status) == SIGABRT && opts.max_rss_mb > 0)
      return SandboxOutcome::FailKind::Oom;
    return SandboxOutcome::FailKind::Crash;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 114)
    return SandboxOutcome::FailKind::Oom;
  return SandboxOutcome::FailKind::Crash;
}

}  // namespace

SandboxOutcome run_sandboxed(const ProgramInput& input,
                             const DriverOptions& opts, ResultCache* cache,
                             uint32_t lane) {
  // The daemon's pool threads write into worker pipes; a worker can die
  // between our poll and our write, and unlike the server's sockets
  // (MSG_NOSIGNAL) a pipe write has no per-call opt-out, so SIGPIPE is
  // ignored process-wide once. The daemon never wants the default anyway.
  static std::once_flag sigpipe_once;
  std::call_once(sigpipe_once, [] {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ignore, nullptr);
  });

  const uint64_t stall_ms = opts.deadline_ms > 0
                                ? opts.deadline_ms + kStallGraceMs
                                : kStallDefaultMs;
  support::ChildLimits limits;
  limits.max_rss_mb = opts.max_rss_mb;
  if (opts.deadline_ms > 0)
    limits.cpu_seconds = opts.deadline_ms * kCpuLimitFactor / 1000 + 1;

  SandboxOutcome out;
  for (unsigned attempt = 1;; ++attempt) {
    Child child = support::spawn_child(
        [&input, attempt, &opts, cache](int, int out_fd) {
          return worker_body(out_fd, input, attempt, opts, cache,
                             /*zero_program_counter=*/false);
        },
        limits);

    auto kind = SandboxOutcome::FailKind::Crash;
    std::string reason;
    bool reaped = false;
    bool failed = false;
    std::string telemetry, provenance, cache_delta;

    if (!child.valid()) {
      reason = "crashed: fork failed";
      failed = true;
      reaped = true;  // nothing to reap
    } else {
      FrameReader reader;
      uint64_t last_beat = now_ms();
      while (!failed) {
        struct pollfd pfd = {child.from_child, POLLIN, 0};
        ::poll(&pfd, 1, static_cast<int>(kHeartbeatMs));
        uint64_t now = now_ms();
        bool closed = false;
        if (pfd.revents != 0) {
          for (;;) {
            FrameReader::Fill f = reader.fill(child.from_child);
            if (f == FrameReader::Fill::Blocked) break;
            if (f == FrameReader::Fill::Eof ||
                f == FrameReader::Fill::Failed) {
              closed = true;
              break;
            }
            last_beat = now;
          }
        }
        bool done = false;
        for (;;) {
          FrameType type{};
          std::string payload;
          FrameReader::Next n = reader.next(type, payload);
          if (n == FrameReader::Next::Need) break;
          if (n == FrameReader::Next::Corrupt) {
            ::kill(child.pid, SIGKILL);
            support::wait_child(child.pid);
            reaped = true;
            reason = "crashed: corrupt result frame";
            failed = true;
            break;
          }
          if (type == FrameType::Telemetry) {
            telemetry = std::move(payload);
            continue;
          }
          if (type == FrameType::Provenance) {
            provenance = std::move(payload);
            continue;
          }
          if (type == FrameType::CacheDelta) {
            cache_delta = std::move(payload);
            continue;
          }
          if (type != FrameType::Result) continue;  // heartbeat: liveness
          codec::Reader r(payload);
          ProgramReport report;
          bool ok = codec::get_program_report(r, report) && r.at_end();
          if (ok && !provenance.empty()) {
            codec::Reader pr(provenance);
            ok = codec::get_program_provenance(pr, report) && pr.at_end();
          }
          std::vector<codec::CacheDeltaEntry> entries;
          if (ok && !cache_delta.empty()) {
            codec::Reader dr(cache_delta);
            ok = codec::get_cache_delta(dr, out.cache_hits, out.cache_misses,
                                        entries) &&
                 dr.at_end();
          }
          if (!ok) {
            ::kill(child.pid, SIGKILL);
            support::wait_child(child.pid);
            reaped = true;
            reason = "crashed: undecodable result";
            failed = true;
            break;
          }
          // The child computed these entries against its copy-on-write
          // cache image; folding them into the live cache is what keeps
          // the next fork warm.
          if (cache != nullptr)
            for (codec::CacheDeltaEntry& e : entries)
              cache->insert(e.first, std::move(e.second));
          if (!telemetry.empty()) {
            codec::Reader tr(telemetry);
            std::vector<obs::SpanRecord> spans;
            obs::MetricsSnapshot delta;
            if (codec::get_telemetry(tr, spans, delta) && tr.at_end()) {
              obs::registry().merge(delta);
              if (!spans.empty() && lane != 0)
                obs::Tracer::instance().inject(lane, spans);
            }
          }
          support::wait_child(child.pid);
          out.ok = true;
          out.report = std::move(report);
          done = true;
          break;
        }
        if (done) {
          ::close(child.to_child);
          ::close(child.from_child);
          return out;
        }
        if (failed) break;
        if (closed) {
          int status = support::wait_child(child.pid);
          reaped = true;
          reason = "crashed: " + support::describe_wait_status(status);
          kind = classify_death(status, opts);
          failed = true;
          break;
        }
        if (now_ms() - last_beat > stall_ms) {
          ::kill(child.pid, SIGKILL);
          support::wait_child(child.pid);
          reaped = true;
          // Deterministic text (the limit, not the measured silence):
          // degraded reasons land in rendered documents.
          reason = "crashed: stalled (no heartbeat within " +
                   std::to_string(stall_ms) + " ms)";
          kind = SandboxOutcome::FailKind::Timeout;
          failed = true;
          break;
        }
      }
    }

    if (child.valid()) {
      if (!reaped) support::wait_child(child.pid);
      ::close(child.to_child);
      ::close(child.from_child);
    }
    switch (kind) {
      case SandboxOutcome::FailKind::Timeout: ++out.deaths_timeout; break;
      case SandboxOutcome::FailKind::Oom: ++out.deaths_oom; break;
      default: ++out.deaths_crash; break;
    }
    if (attempt <= opts.retries) {
      ++out.retries;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kBackoffBaseMs << (attempt - 1)));
      continue;
    }
    out.ok = false;
    out.kind = kind;
    out.reason = std::move(reason);
    return out;
  }
}

}  // namespace synat::driver
