#include "synat/driver/json.h"

#include <cstdio>

namespace synat::driver {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma_and_newline() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows "key": on the same line
  }
  if (has_item_[static_cast<size_t>(depth_)]) out_ += ',';
  if (depth_ > 0) out_ += '\n';
  indent();
  has_item_[static_cast<size_t>(depth_)] = true;
}

void JsonWriter::indent() {
  out_.append(static_cast<size_t>(depth_ * indent_width_), ' ');
}

JsonWriter& JsonWriter::begin_object() {
  comma_and_newline();
  out_ += '{';
  ++depth_;
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  bool had = has_item_.back();
  has_item_.pop_back();
  --depth_;
  if (had) {
    out_ += '\n';
    indent();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_and_newline();
  out_ += '[';
  ++depth_;
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  bool had = has_item_.back();
  has_item_.pop_back();
  --depth_;
  if (had) {
    out_ += '\n';
    indent();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma_and_newline();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_and_newline();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_and_newline();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  comma_and_newline();
  // Re-indent the fragment's continuation lines so a sub-document rendered
  // at depth 0 in a worker nests correctly at the splice point.
  std::string pad(static_cast<size_t>(depth_ * indent_width_), ' ');
  for (char c : fragment) {
    out_ += c;
    if (c == '\n') out_ += pad;
  }
  return *this;
}

}  // namespace synat::driver
