#include "synat/driver/journal.h"

#include <cstring>
#include <fstream>

#include "synat/driver/codec.h"
#include "synat/obs/metrics.h"
#include "synat/obs/trace.h"
#include "synat/support/hash.h"

namespace synat::driver {

namespace {

// v2 appends the provenance section to every record payload (codec.h), so
// a --resume of a provenance-collecting run replays the derivation records
// too and stays byte-identical. v1 journals reject cleanly on magic.
constexpr char kMagic[8] = {'S', 'Y', 'N', 'A', 'T', 'J', 'L', '2'};
constexpr uint64_t kFormatVersion = kJournalSchemaVersion;

bool get_u64(std::istream& in, uint64_t& v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i])) << (i * 8);
  return true;
}

bool get_u32(std::istream& in, uint32_t& v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i])) << (i * 8);
  return true;
}

}  // namespace

JournalReplay read_journal(const std::string& path,
                           uint64_t batch_fingerprint) {
  obs::SpanScope span(obs::StageId::JournalReplay);
  JournalReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no journal: a fresh batch, not an error
  out.existed = true;
  char magic[sizeof kMagic];
  uint64_t version = 0, fp = 0;
  if (!in.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0 ||
      !get_u64(in, version) || version != kFormatVersion ||
      !get_u64(in, fp) || fp != batch_fingerprint) {
    // Foreign file, future format, or a journal for a different input
    // set / option set: nothing in it can be trusted for this batch.
    out.rejected_whole = true;
    return out;
  }
  while (true) {
    uint64_t key = 0, len = 0;
    if (!get_u64(in, key)) break;  // clean end of journal
    if (!get_u64(in, len) || len > (uint64_t{1} << 32)) {
      ++out.rejected_records;  // truncated or absurd length: drop the tail
      break;
    }
    std::string payload(len, '\0');
    uint32_t crc = 0;
    if (!in.read(payload.data(), static_cast<std::streamsize>(len)) ||
        !get_u32(in, crc)) {
      ++out.rejected_records;  // SIGKILL mid-append leaves exactly this
      break;
    }
    if (crc32(payload) != crc) {
      ++out.rejected_records;  // bit flip; framing intact, keep scanning
      continue;
    }
    codec::Reader r(payload);
    JournalRecord rec;
    rec.key = key;
    if (!codec::get_program_report(r, rec.report) ||
        !codec::get_program_provenance(r, rec.report) || !r.at_end()) {
      ++out.rejected_records;
      continue;
    }
    out.records.push_back(std::move(rec));
  }
  return out;
}

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string& path, uint64_t batch_fingerprint,
                         const std::vector<JournalRecord>& keep) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return false;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return false;
  std::string header(kMagic, sizeof kMagic);
  codec::put_u64(header, kFormatVersion);
  codec::put_u64(header, batch_fingerprint);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  // Re-persist the replayed records so the rewritten journal stands alone:
  // a second crash during the resumed run must not lose the first run's
  // work to the truncation above.
  for (const JournalRecord& rec : keep)
    if (!write_record_locked(rec.key, rec.report)) return false;
  std::fflush(file_);
  return file_ != nullptr;
}

bool JournalWriter::write_record_locked(uint64_t key,
                                        const ProgramReport& report) {
  std::string payload;
  codec::put_program_report(payload, report);
  codec::put_program_provenance(payload, report);
  std::string frame;
  codec::put_u64(frame, key);
  codec::put_u64(frame, payload.size());
  frame += payload;
  codec::put_u32(frame, crc32(payload));
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    std::fclose(file_);  // disk full or worse: stop journaling, keep running
    file_ = nullptr;
    return false;
  }
  return true;
}

void JournalWriter::append(uint64_t key, const ProgramReport& report) {
  obs::SpanScope span(obs::StageId::JournalAppend);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (write_record_locked(key, report)) {
    static obs::Counter& appended =
        obs::registry().counter("synat_journal_appended_total");
    appended.inc();
  }
}

void JournalWriter::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool journal_worthy(const ProgramReport& report) {
  if (report.status != ProgramStatus::Ok) return false;
  for (const auto& p : report.procs)
    if (p == nullptr || p->degraded) return false;
  return true;
}

}  // namespace synat::driver
