#include "synat/driver/cache.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "synat/support/hash.h"

namespace synat::driver {

namespace {

// Snapshot format v2: magic, format version, entry count, then per entry
// [key][payload length][payload bytes][CRC32 of payload], where the payload
// is one length-prefix-encoded ProcReport. The explicit framing plus
// per-entry checksum lets load() skip a corrupted entry (bit flips) and
// salvage the intact prefix of a truncated file, instead of dropping the
// whole snapshot. Entries are written in key order so snapshots of equal
// caches are byte-identical.
constexpr char kMagic[8] = {'S', 'Y', 'N', 'A', 'T', 'C', 'C', '2'};
constexpr uint64_t kFormatVersion = 2;

void put_u64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (i * 8)) & 0xff);
  out.write(buf, 8);
}

void put_u32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (i * 8)) & 0xff);
  out.write(buf, 4);
}

bool get_u32(std::istream& in, uint32_t& v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i])) << (i * 8);
  return true;
}

void put_str(std::ostream& out, const std::string& s) {
  put_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_u64(std::istream& in, uint64_t& v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i])) << (i * 8);
  return true;
}

bool get_str(std::istream& in, std::string& s) {
  uint64_t n = 0;
  if (!get_u64(in, n)) return false;
  if (n > (uint64_t{1} << 32)) return false;  // corrupt length
  s.resize(n);
  return static_cast<bool>(in.read(s.data(), static_cast<std::streamsize>(n)));
}

void put_report(std::ostream& out, const ProcReport& r) {
  put_str(out, r.name);
  put_u64(out, r.line);
  put_u64(out, static_cast<uint64_t>(r.atomic));
  put_str(out, r.atomicity);
  put_u64(out, static_cast<uint64_t>(r.no_variants));
  put_u64(out, static_cast<uint64_t>(r.bailed_out));
  put_u64(out, r.key);
  put_u64(out, r.variants.size());
  for (const VariantReport& v : r.variants) {
    put_str(out, v.tag);
    put_str(out, v.atomicity);
    put_u64(out, v.lines.size());
    for (const LineReport& l : v.lines) {
      put_u64(out, l.line);
      put_str(out, l.atom);
      put_str(out, l.text);
    }
    put_u64(out, v.blocks.size());
    for (const BlockReport& b : v.blocks) {
      put_str(out, b.atom);
      put_u64(out, b.units);
    }
  }
}

bool get_report(std::istream& in, ProcReport& r) {
  uint64_t u = 0;
  if (!get_str(in, r.name) || !get_u64(in, u)) return false;
  r.line = static_cast<uint32_t>(u);
  if (!get_u64(in, u)) return false;
  r.atomic = u != 0;
  if (!get_str(in, r.atomicity)) return false;
  if (!get_u64(in, u)) return false;
  r.no_variants = u != 0;
  if (!get_u64(in, u)) return false;
  r.bailed_out = u != 0;
  if (!get_u64(in, r.key)) return false;
  uint64_t nv = 0;
  if (!get_u64(in, nv) || nv > (1 << 20)) return false;
  r.variants.resize(nv);
  for (VariantReport& v : r.variants) {
    if (!get_str(in, v.tag) || !get_str(in, v.atomicity)) return false;
    uint64_t nl = 0;
    if (!get_u64(in, nl) || nl > (1 << 24)) return false;
    v.lines.resize(nl);
    for (LineReport& l : v.lines) {
      if (!get_u64(in, u)) return false;
      l.line = static_cast<uint32_t>(u);
      if (!get_str(in, l.atom) || !get_str(in, l.text)) return false;
    }
    uint64_t nb = 0;
    if (!get_u64(in, nb) || nb > (1 << 24)) return false;
    v.blocks.resize(nb);
    for (BlockReport& b : v.blocks) {
      if (!get_str(in, b.atom) || !get_u64(in, u)) return false;
      b.units = static_cast<size_t>(u);
    }
  }
  return true;
}

}  // namespace

std::shared_ptr<const ProcReport> ResultCache::lookup(uint64_t key) {
  Shard& s = shard(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const ProcReport> ResultCache::insert(
    uint64_t key, std::shared_ptr<const ProcReport> report) {
  Shard& s = shard(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto [it, inserted] = s.map.emplace(key, std::move(report));
  return it->second;
}

void ResultCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

size_t ResultCache::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

bool ResultCache::save(const std::string& path) const {
  std::map<uint64_t, std::shared_ptr<const ProcReport>> sorted;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    sorted.insert(s.map.begin(), s.map.end());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof kMagic);
  put_u64(out, kFormatVersion);
  put_u64(out, sorted.size());
  for (const auto& [key, report] : sorted) {
    std::ostringstream payload;
    put_report(payload, *report);
    std::string bytes = std::move(payload).str();
    put_u64(out, key);
    put_u64(out, bytes.size());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    put_u32(out, crc32(bytes));
  }
  return static_cast<bool>(out);
}

bool ResultCache::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;  // no snapshot: a plain cold start, not corruption
  auto reject = [this] { rejected_.fetch_add(1, std::memory_order_relaxed); };
  char magic[sizeof kMagic];
  if (!in.read(magic, sizeof magic) ||
      std::string_view(magic, sizeof magic) !=
          std::string_view(kMagic, sizeof kMagic)) {
    reject();  // garbage or a pre-v2 snapshot: cold start
    return false;
  }
  uint64_t version = 0;
  if (!get_u64(in, version) || version != kFormatVersion) {
    reject();
    return false;
  }
  uint64_t count = 0;
  if (!get_u64(in, count) || count > (uint64_t{1} << 32)) {
    reject();
    return false;
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0, len = 0;
    if (!get_u64(in, key) || !get_u64(in, len) || len > (uint64_t{1} << 32)) {
      reject();  // truncated tail: keep what already decoded
      break;
    }
    std::string bytes(len, '\0');
    uint32_t crc = 0;
    if (!in.read(bytes.data(), static_cast<std::streamsize>(len)) ||
        !get_u32(in, crc)) {
      reject();
      break;
    }
    if (crc32(bytes) != crc) {
      reject();  // bit flip inside this entry; framing is intact, carry on
      continue;
    }
    std::istringstream payload(bytes);
    auto report = std::make_shared<ProcReport>();
    if (!get_report(payload, *report)) {
      reject();  // checksum matched but the encoding didn't: skip it
      continue;
    }
    insert(key, std::move(report));
  }
  return true;
}

}  // namespace synat::driver
