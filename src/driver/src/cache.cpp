#include "synat/driver/cache.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "synat/driver/codec.h"
#include "synat/obs/metrics.h"
#include "synat/obs/trace.h"
#include "synat/support/hash.h"

namespace synat::driver {

namespace {

// Snapshot format v4: magic, format version, entry count, then per entry
// [key][payload length][payload bytes][CRC32 of payload], where the payload
// is one codec-encoded ProcReport plus its provenance section (shared with
// the journal and the worker result frames — see codec.h). The explicit
// framing plus per-entry checksum
// lets load() skip a corrupted entry (bit flips) and salvage the intact
// prefix of a truncated file, instead of dropping the whole snapshot.
// Entries are written in key order so snapshots of equal caches are
// byte-identical. v4 bumped v3 because every entry payload now appends the
// provenance section (codec.h) after the ProcReport. v5 bumps v4 because
// the keying scheme changed (fine-grained content/interference addresses,
// cache.h): v4 snapshots hold whole-program keys that a v5 process would
// never look up, and vice versa, so mixing them would silently waste the
// warm start. Old snapshots reject cleanly on magic, exactly as pre-v4
// ones did.
constexpr char kMagic[8] = {'S', 'Y', 'N', 'A', 'T', 'C', 'C', '5'};
constexpr uint64_t kFormatVersion = kCacheSchemaVersion;

void put_u64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (i * 8)) & 0xff);
  out.write(buf, 8);
}

void put_u32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (i * 8)) & 0xff);
  out.write(buf, 4);
}

bool get_u32(std::istream& in, uint32_t& v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i])) << (i * 8);
  return true;
}

bool get_u64(std::istream& in, uint64_t& v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i])) << (i * 8);
  return true;
}

}  // namespace

std::shared_ptr<const ProcReport> ResultCache::lookup(uint64_t key) {
  obs::SpanScope span(obs::StageId::CacheLookup);
  static obs::Counter& hits = obs::registry().counter("synat_cache_hits_total");
  static obs::Counter& misses =
      obs::registry().counter("synat_cache_misses_total");
  Shard& s = shard(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses.inc();
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hits.inc();
  return it->second;
}

std::shared_ptr<const ProcReport> ResultCache::insert(
    uint64_t key, std::shared_ptr<const ProcReport> report) {
  obs::SpanScope span(obs::StageId::CacheStore);
  static obs::Counter& inserts =
      obs::registry().counter("synat_cache_inserts_total");
  inserts.inc();
  Shard& s = shard(key);
  std::shared_ptr<const ProcReport> resident;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto [it, inserted] = s.map.emplace(key, std::move(report));
    resident = it->second;
    fresh = inserted;
  }
  if (fresh) {
    std::lock_guard<std::mutex> lock(capture_mu_);
    if (capturing_) capture_.emplace_back(key, resident);
  }
  return resident;
}

void ResultCache::start_capture() {
  std::lock_guard<std::mutex> lock(capture_mu_);
  capturing_ = true;
  capture_.clear();
}

std::vector<std::pair<uint64_t, std::shared_ptr<const ProcReport>>>
ResultCache::take_capture() {
  std::lock_guard<std::mutex> lock(capture_mu_);
  capturing_ = false;
  return std::move(capture_);
}

void ResultCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

size_t ResultCache::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

bool ResultCache::save(const std::string& path) const {
  std::map<uint64_t, std::shared_ptr<const ProcReport>> sorted;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    sorted.insert(s.map.begin(), s.map.end());
  }
  // Write-then-rename: the serve daemon snapshots the live cache on a
  // timer, so a crash mid-write must leave the previous snapshot intact
  // (crash-only design — the snapshot on disk is always a complete one).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kMagic, sizeof kMagic);
    put_u64(out, kFormatVersion);
    put_u64(out, sorted.size());
    for (const auto& [key, report] : sorted) {
      std::string bytes;
      codec::put_proc_report(bytes, *report);
      codec::put_proc_provenance(bytes, *report);
      put_u64(out, key);
      put_u64(out, bytes.size());
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      put_u32(out, crc32(bytes));
    }
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ResultCache::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;  // no snapshot: a plain cold start, not corruption
  auto reject = [this] {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& rejected =
        obs::registry().counter("synat_cache_rejected_total");
    rejected.inc();
  };
  char magic[sizeof kMagic];
  if (!in.read(magic, sizeof magic) ||
      std::string_view(magic, sizeof magic) !=
          std::string_view(kMagic, sizeof kMagic)) {
    reject();  // garbage or a pre-v3 snapshot: cold start
    return false;
  }
  uint64_t version = 0;
  if (!get_u64(in, version) || version != kFormatVersion) {
    reject();
    return false;
  }
  uint64_t count = 0;
  if (!get_u64(in, count) || count > (uint64_t{1} << 32)) {
    reject();
    return false;
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0, len = 0;
    if (!get_u64(in, key) || !get_u64(in, len) || len > (uint64_t{1} << 32)) {
      reject();  // truncated tail: keep what already decoded
      break;
    }
    std::string bytes(len, '\0');
    uint32_t crc = 0;
    if (!in.read(bytes.data(), static_cast<std::streamsize>(len)) ||
        !get_u32(in, crc)) {
      reject();
      break;
    }
    if (crc32(bytes) != crc) {
      reject();  // bit flip inside this entry; framing is intact, carry on
      continue;
    }
    codec::Reader payload(bytes);
    auto report = std::make_shared<ProcReport>();
    if (!codec::get_proc_report(payload, *report) ||
        !codec::get_proc_provenance(payload, *report) || !payload.at_end()) {
      reject();  // checksum matched but the encoding didn't: skip it
      continue;
    }
    insert(key, std::move(report));
  }
  return true;
}

}  // namespace synat::driver
