#include "synat/driver/codec.h"

#include <memory>

namespace synat::driver::codec {

namespace {

// Sanity caps; a count above these is corruption by definition.
constexpr uint64_t kMaxString = uint64_t{1} << 32;
constexpr uint64_t kMaxVariants = 1 << 20;
constexpr uint64_t kMaxItems = 1 << 24;

}  // namespace

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (i * 8)) & 0xff));
}

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (i * 8)) & 0xff));
}

void put_str(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s.data(), s.size());
}

bool Reader::take(size_t n, const char*& p) {
  if (!ok_ || in_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  p = in_.data() + pos_;
  pos_ += n;
  return true;
}

bool Reader::get_u32(uint32_t& v) {
  const char* p = nullptr;
  if (!take(4, p)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (i * 8);
  return true;
}

bool Reader::get_u64(uint64_t& v) {
  const char* p = nullptr;
  if (!take(8, p)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (i * 8);
  return true;
}

bool Reader::get_str(std::string& s) {
  uint64_t n = 0;
  if (!get_u64(n) || n > kMaxString) {
    ok_ = false;
    return false;
  }
  const char* p = nullptr;
  if (!take(static_cast<size_t>(n), p)) return false;
  s.assign(p, static_cast<size_t>(n));
  return true;
}

void put_proc_report(std::string& out, const ProcReport& r) {
  put_str(out, r.name);
  put_u64(out, r.line);
  put_u64(out, static_cast<uint64_t>(r.atomic));
  put_str(out, r.atomicity);
  put_u64(out, static_cast<uint64_t>(r.no_variants));
  put_u64(out, static_cast<uint64_t>(r.bailed_out));
  put_u64(out, r.key);
  put_u64(out, static_cast<uint64_t>(r.degraded));
  put_str(out, r.degrade_kind);
  put_str(out, r.degrade_reason);
  put_u64(out, r.variants.size());
  for (const VariantReport& v : r.variants) {
    put_str(out, v.tag);
    put_str(out, v.atomicity);
    put_u64(out, v.lines.size());
    for (const LineReport& l : v.lines) {
      put_u64(out, l.line);
      put_str(out, l.atom);
      put_str(out, l.text);
    }
    put_u64(out, v.blocks.size());
    for (const BlockReport& b : v.blocks) {
      put_str(out, b.atom);
      put_u64(out, b.units);
    }
  }
}

bool get_proc_report(Reader& in, ProcReport& r) {
  uint64_t u = 0;
  if (!in.get_str(r.name) || !in.get_u64(u)) return false;
  r.line = static_cast<uint32_t>(u);
  if (!in.get_u64(u)) return false;
  r.atomic = u != 0;
  if (!in.get_str(r.atomicity)) return false;
  if (!in.get_u64(u)) return false;
  r.no_variants = u != 0;
  if (!in.get_u64(u)) return false;
  r.bailed_out = u != 0;
  if (!in.get_u64(r.key)) return false;
  if (!in.get_u64(u)) return false;
  r.degraded = u != 0;
  if (!in.get_str(r.degrade_kind) || !in.get_str(r.degrade_reason))
    return false;
  uint64_t nv = 0;
  if (!in.get_u64(nv) || nv > kMaxVariants) return false;
  r.variants.resize(nv);
  for (VariantReport& v : r.variants) {
    if (!in.get_str(v.tag) || !in.get_str(v.atomicity)) return false;
    uint64_t nl = 0;
    if (!in.get_u64(nl) || nl > kMaxItems) return false;
    v.lines.resize(nl);
    for (LineReport& l : v.lines) {
      if (!in.get_u64(u)) return false;
      l.line = static_cast<uint32_t>(u);
      if (!in.get_str(l.atom) || !in.get_str(l.text)) return false;
    }
    uint64_t nb = 0;
    if (!in.get_u64(nb) || nb > kMaxItems) return false;
    v.blocks.resize(nb);
    for (BlockReport& b : v.blocks) {
      if (!in.get_str(b.atom) || !in.get_u64(u)) return false;
      b.units = static_cast<size_t>(u);
    }
  }
  return true;
}

void put_program_report(std::string& out, const ProgramReport& r) {
  put_str(out, r.name);
  put_str(out, r.fingerprint);
  put_u64(out, static_cast<uint64_t>(r.status));
  put_u64(out, r.diagnostics.size());
  for (const DiagReport& d : r.diagnostics) {
    put_str(out, d.severity);
    put_u64(out, d.line);
    put_u64(out, d.column);
    put_str(out, d.message);
  }
  put_u64(out, r.procs.size());
  for (const auto& p : r.procs) {
    put_u64(out, p != nullptr ? 1 : 0);
    if (p != nullptr) put_proc_report(out, *p);
  }
}

bool get_program_report(Reader& in, ProgramReport& r) {
  uint64_t u = 0;
  if (!in.get_str(r.name) || !in.get_str(r.fingerprint)) return false;
  if (!in.get_u64(u) || u > static_cast<uint64_t>(ProgramStatus::InternalError))
    return false;
  r.status = static_cast<ProgramStatus>(u);
  uint64_t nd = 0;
  if (!in.get_u64(nd) || nd > kMaxItems) return false;
  r.diagnostics.resize(nd);
  for (DiagReport& d : r.diagnostics) {
    if (!in.get_str(d.severity) || !in.get_u64(u)) return false;
    d.line = static_cast<uint32_t>(u);
    if (!in.get_u64(u)) return false;
    d.column = static_cast<uint32_t>(u);
    if (!in.get_str(d.message)) return false;
  }
  uint64_t np = 0;
  if (!in.get_u64(np) || np > kMaxItems) return false;
  r.procs.clear();
  r.procs.reserve(np);
  for (uint64_t i = 0; i < np; ++i) {
    if (!in.get_u64(u)) return false;
    if (u == 0) {
      r.procs.push_back(nullptr);
      continue;
    }
    auto proc = std::make_shared<ProcReport>();
    if (!get_proc_report(in, *proc)) return false;
    r.procs.push_back(std::move(proc));
  }
  return true;
}

void put_telemetry(std::string& out, const std::vector<obs::SpanRecord>& spans,
                   const obs::MetricsSnapshot& delta) {
  put_u64(out, spans.size());
  for (const obs::SpanRecord& s : spans) {
    put_u32(out, s.stage);
    put_u32(out, s.tid);
    put_u64(out, s.start_ns);
    put_u64(out, s.dur_ns);
  }
  put_u64(out, delta.counters.size());
  for (const obs::CounterSample& c : delta.counters) {
    put_str(out, c.name);
    put_u64(out, c.value);
    put_u32(out, c.deterministic ? 1 : 0);
  }
  put_u64(out, delta.histograms.size());
  for (const obs::HistogramSample& h : delta.histograms) {
    put_str(out, h.name);
    put_u32(out, static_cast<uint32_t>(obs::Histogram::kBuckets));
    for (uint64_t b : h.buckets) put_u64(out, b);
    put_u64(out, h.sum_ns);
  }
}

bool get_telemetry(Reader& in, std::vector<obs::SpanRecord>& spans,
                   obs::MetricsSnapshot& delta) {
  uint64_t ns = 0, u = 0;
  uint32_t w = 0;
  if (!in.get_u64(ns) || ns > kMaxTelemetrySpans) return false;
  spans.clear();
  spans.reserve(ns);
  for (uint64_t i = 0; i < ns; ++i) {
    obs::SpanRecord s;
    if (!in.get_u32(s.stage) || s.stage >= obs::kNumStages) return false;
    if (!in.get_u32(s.tid) || !in.get_u64(s.start_ns) || !in.get_u64(s.dur_ns))
      return false;
    spans.push_back(s);
  }
  uint64_t nc = 0;
  if (!in.get_u64(nc) || nc > kMaxTelemetryMetrics) return false;
  delta.counters.resize(nc);
  for (obs::CounterSample& c : delta.counters) {
    if (!in.get_str(c.name) || !in.get_u64(c.value) || !in.get_u32(w) || w > 1)
      return false;
    c.deterministic = w != 0;
  }
  uint64_t nh = 0;
  if (!in.get_u64(nh) || nh > kMaxTelemetryMetrics) return false;
  delta.histograms.resize(nh);
  for (obs::HistogramSample& h : delta.histograms) {
    if (!in.get_str(h.name) || !in.get_u32(w) || w != obs::Histogram::kBuckets)
      return false;
    for (uint64_t& b : h.buckets)
      if (!in.get_u64(b)) return false;
    if (!in.get_u64(u)) return false;
    h.sum_ns = u;
  }
  return true;
}

void put_prov_records(std::string& out,
                      const std::vector<obs::ProvenanceRecord>& recs) {
  put_u64(out, recs.size());
  for (const obs::ProvenanceRecord& r : recs) {
    put_u32(out, r.step);
    put_str(out, r.theorem);
    put_str(out, r.rule);
    put_str(out, r.subject);
    put_u32(out, r.line);
    put_u32(out, r.column);
    put_str(out, r.atom);
    put_str(out, r.detail);
    put_str(out, r.witness);
    put_u32(out, r.witness_line);
    put_u32(out, r.witness_column);
  }
}

bool get_prov_records(Reader& in, std::vector<obs::ProvenanceRecord>& recs) {
  uint64_t n = 0;
  if (!in.get_u64(n) || n > kMaxProvRecords) return false;
  recs.resize(n);
  for (obs::ProvenanceRecord& r : recs) {
    if (!in.get_u32(r.step) || !in.get_str(r.theorem) ||
        !in.get_str(r.rule) || !in.get_str(r.subject) ||
        !in.get_u32(r.line) || !in.get_u32(r.column) ||
        !in.get_str(r.atom) || !in.get_str(r.detail) ||
        !in.get_str(r.witness) || !in.get_u32(r.witness_line) ||
        !in.get_u32(r.witness_column))
      return false;
  }
  return true;
}

void put_proc_provenance(std::string& out, const ProcReport& r) {
  put_prov_records(out, r.prov);
  put_u64(out, r.variants.size());
  for (const VariantReport& v : r.variants) put_prov_records(out, v.prov);
}

bool get_proc_provenance(Reader& in, ProcReport& r) {
  if (!get_prov_records(in, r.prov)) return false;
  uint64_t nv = 0;
  if (!in.get_u64(nv) || nv != r.variants.size()) return false;
  for (VariantReport& v : r.variants)
    if (!get_prov_records(in, v.prov)) return false;
  return true;
}

void put_program_provenance(std::string& out, const ProgramReport& r) {
  put_u64(out, r.procs.size());
  for (const auto& p : r.procs) {
    put_u64(out, p != nullptr ? 1 : 0);
    if (p != nullptr) put_proc_provenance(out, *p);
  }
}

bool get_program_provenance(Reader& in, ProgramReport& r) {
  uint64_t np = 0;
  if (!in.get_u64(np) || np != r.procs.size()) return false;
  for (auto& p : r.procs) {
    uint64_t has = 0;
    if (!in.get_u64(has) || (has != 0) != (p != nullptr)) return false;
    if (p == nullptr) continue;
    // Reports are shared immutable once published; this decode path owns
    // the freshly decoded report, so the const_cast is attaching to a
    // not-yet-published object.
    auto* mut = const_cast<ProcReport*>(p.get());
    if (!get_proc_provenance(in, *mut)) return false;
  }
  return true;
}

void put_cache_delta(std::string& out, uint64_t hits, uint64_t misses,
                     const std::vector<CacheDeltaEntry>& entries) {
  put_u64(out, hits);
  put_u64(out, misses);
  put_u64(out, entries.size());
  for (const CacheDeltaEntry& e : entries) {
    put_u64(out, e.first);
    put_proc_report(out, *e.second);
    put_proc_provenance(out, *e.second);
  }
}

bool get_cache_delta(Reader& in, uint64_t& hits, uint64_t& misses,
                     std::vector<CacheDeltaEntry>& entries) {
  uint64_t n = 0;
  if (!in.get_u64(hits) || !in.get_u64(misses) || !in.get_u64(n) ||
      n > kMaxCacheDeltaEntries)
    return false;
  entries.clear();
  entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    auto report = std::make_shared<ProcReport>();
    if (!in.get_u64(key) || !get_proc_report(in, *report) ||
        !get_proc_provenance(in, *report))
      return false;
    entries.emplace_back(key, std::move(report));
  }
  return true;
}

}  // namespace synat::driver::codec
