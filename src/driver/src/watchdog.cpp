#include "synat/driver/watchdog.h"

#include <algorithm>
#include <chrono>

#include "synat/obs/metrics.h"

namespace synat::driver {

Watchdog::Watchdog() : thread_([this] { loop(); }) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() noexcept {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Tasks still registered at shutdown (run() threw mid-batch, or an
    // embedder stops the watchdog under load) would otherwise keep armed
    // deadlines that can never trip; cancel them so every waiter unwinds.
    for (Entry& e : entries_) e.budget->cancel("shutdown");
    entries_.clear();
  }
  cv_.notify_all();
  // joinable() guards the second stop() (or a destructor after an explicit
  // stop) from joining an already-joined thread, which would terminate().
  if (thread_.joinable()) thread_.join();
}

void Watchdog::add(ExecBudget* budget, uint64_t deadline_ns) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back({budget, deadline_ns});
  }
  cv_.notify_all();  // the new deadline may be the earliest
}

void Watchdog::remove(ExecBudget* budget) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return e.budget == budget;
                                }),
                 entries_.end());
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (entries_.empty()) {
      cv_.wait(lock);
      continue;
    }
    uint64_t now = steady_now_ns();
    uint64_t earliest = UINT64_MAX;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->deadline_ns <= now) {
        // Trips are timing-dependent, so the counter is nondeterministic by
        // registration and never enters the JSON report.
        static obs::Counter& trips =
            obs::registry().counter("synat_watchdog_trips_total", false);
        trips.inc();
        it->budget->cancel("deadline");
        it = entries_.erase(it);
      } else {
        earliest = std::min(earliest, it->deadline_ns);
        ++it;
      }
    }
    if (entries_.empty()) continue;
    cv_.wait_for(lock, std::chrono::nanoseconds(earliest - now));
  }
}

Watchdog::Scope::Scope(Watchdog* dog, ExecBudget& budget, uint64_t delay_ms) {
  if (delay_ms == 0) return;
  static obs::Counter& arms =
      obs::registry().counter("synat_watchdog_arms_total");
  arms.inc();
  budget.arm_deadline_ms(delay_ms);
  if (dog != nullptr) {
    dog_ = dog;
    budget_ = &budget;
    dog->add(&budget, budget.deadline_ns());
  }
}

Watchdog::Scope::~Scope() {
  if (dog_ != nullptr) dog_->remove(budget_);
}

}  // namespace synat::driver
