#include "synat/driver/thread_pool.h"

namespace synat::driver {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(Task t) {
  if (workers_.empty()) {
    // Inline mode: depth-first execution on the caller's thread. FIFO order
    // is irrelevant for correctness (tasks are independent) and running
    // immediately avoids unbounded queue growth.
    t();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(t));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ and drained
    Task t = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    t();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace synat::driver
