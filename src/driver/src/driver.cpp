#include "synat/driver/driver.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "synat/atomicity/blocks.h"
#include "synat/atomicity/infer.h"
#include "synat/driver/journal.h"
#include "synat/driver/worker.h"
#include "synat/obs/events.h"
#include "synat/obs/metrics.h"
#include "synat/obs/trace.h"
#include "synat/support/hash.h"
#include "synat/synl/parser.h"
#include "synat/synl/printer.h"

namespace synat::driver {

namespace {

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::StageId obs_stage(Stage s) {
  switch (s) {
    case Stage::Parse: return obs::StageId::Parse;
    case Stage::Analyze: return obs::StageId::Analyze;
    case Stage::Report: return obs::StageId::Report;
    case Stage::COUNT: break;
  }
  return obs::StageId::Parse;
}

/// RAII stage timer; no clock calls unless timing collection is on. The
/// embedded SpanScope gates itself on the obs flags independently. Times
/// are charged both to the batch histograms and to program `index`'s own
/// tally (the wide event's parse/analyze/report fields).
class StageTimer {
 public:
  StageTimer(ReportSink& sink, size_t index, Stage stage, bool enabled)
      : span_(obs_stage(stage)), sink_(sink), index_(index), stage_(stage),
        enabled_(enabled), start_(enabled ? now_ns() : 0) {}
  ~StageTimer() {
    if (enabled_) sink_.add_stage_time(index_, stage_, now_ns() - start_);
  }

 private:
  obs::SpanScope span_;
  ReportSink& sink_;
  size_t index_;
  Stage stage_;
  bool enabled_;
  uint64_t start_;
};

std::string hex64(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[static_cast<size_t>(i)] = digits[v & 0xf];
  return s;
}

std::vector<DiagReport> diag_reports(const DiagEngine& diags) {
  std::vector<DiagReport> out;
  for (const Diagnostic& d : diags.diagnostics())
    out.push_back({std::string(to_string(d.severity)), d.loc.line,
                   d.loc.column, d.message});
  return out;
}

/// Pre-order walk of a variant body producing one LineReport per statement,
/// mirroring AtomicityResult::listing but as structured data.
void collect_lines(const synl::Program& prog,
                   const atomicity::VariantResult& v, synl::StmtId s,
                   std::vector<LineReport>& out) {
  if (!s.valid()) return;
  const synl::Stmt& st = prog.stmt(s);
  if (st.kind == synl::StmtKind::Block) {
    for (synl::StmtId c : st.stmts) collect_lines(prog, v, c, out);
    return;
  }
  LineReport line;
  line.line = st.loc.line;
  auto it = v.stmt_atom.find(s.idx);
  line.atom = it == v.stmt_atom.end()
                  ? std::string("-")
                  : std::string(to_string(it->second));
  line.text = synl::stmt_head(prog, s);
  out.push_back(std::move(line));
  switch (st.kind) {
    case synl::StmtKind::Local:
    case synl::StmtKind::Loop:
    case synl::StmtKind::Synchronized:
      collect_lines(prog, v, st.s1, out);
      break;
    case synl::StmtKind::If:
      collect_lines(prog, v, st.s1, out);
      collect_lines(prog, v, st.s2, out);
      break;
    default:
      break;
  }
}

std::shared_ptr<const ProcReport> make_proc_report(
    const synl::Program& prog, const atomicity::ProcResult& pr,
    uint64_t key, bool provenance) {
  static obs::Counter& procs_analyzed =
      obs::registry().counter("synat_procs_analyzed_total");
  procs_analyzed.inc();
  auto report = std::make_shared<ProcReport>();
  report->name = std::string(prog.syms().name(prog.proc(pr.proc).name));
  report->line = prog.proc(pr.proc).loc.line;
  report->atomic = pr.atomic;
  report->atomicity = std::string(to_string(pr.atomicity));
  report->no_variants = pr.no_variants;
  report->bailed_out = pr.bailed_out;
  report->key = key;
  report->prov = pr.prov;
  for (const atomicity::VariantResult& v : pr.variants) {
    VariantReport vr;
    const synl::ProcInfo& vp = prog.proc(v.variant);
    vr.tag = vp.variant_tag.empty()
                 ? std::string(prog.syms().name(vp.name))
                 : vp.variant_tag;
    vr.atomicity = std::string(to_string(v.atomicity));
    vr.prov = v.prov;
    collect_lines(prog, v, vp.body, vr.lines);
    atomicity::BlockPartition part = atomicity::partition_blocks(prog, v);
    for (const atomicity::AtomicBlock& b : part.blocks)
      vr.blocks.push_back(
          {std::string(to_string(b.atom)), b.units.size()});
    if (provenance) {
      // Atomic-block cuts are computed here, not in the infer engine, so
      // their step-6 records join the variant's derivation at report time.
      std::vector<obs::ProvenanceRecord> blk =
          atomicity::block_provenance(prog, v, part);
      obs::count_provenance(blk);
      for (obs::ProvenanceRecord& r : blk) vr.prov.push_back(std::move(r));
    }
    report->variants.push_back(std::move(vr));
  }
  return report;
}

/// A placeholder verdict for a procedure the pipeline could not finish
/// (parse failure, deadline, variant budget). Never cached: the next run
/// gets a fresh chance at a real result.
std::shared_ptr<const ProcReport> make_degraded_report(std::string name,
                                                       uint32_t line,
                                                       std::string kind,
                                                       std::string reason) {
  static obs::Counter& degraded =
      obs::registry().counter("synat_degraded_total");
  degraded.inc();
  auto report = std::make_shared<ProcReport>();
  report->name = std::move(name);
  report->line = line;
  report->atomic = false;
  report->atomicity = "unknown";
  report->degraded = true;
  report->degrade_kind = std::move(kind);
  report->degrade_reason = std::move(reason);
  return report;
}

/// A report's `cache_key` field carries the whole-program identity key of
/// the run being reported. A content-addressed hit can come from a run of a
/// *different* program text, so the resident report is cloned to re-stamp
/// the key it is reported under (shared reports are immutable).
std::shared_ptr<const ProcReport> with_key(std::shared_ptr<const ProcReport> r,
                                           uint64_t key) {
  if (r == nullptr || r->key == key) return r;
  auto copy = std::make_shared<ProcReport>(*r);
  copy->key = key;
  return copy;
}

}  // namespace

uint64_t options_fingerprint(const atomicity::InferOptions& opts) {
  // only_procs is deliberately excluded: it restricts which procedures are
  // classified, never what any classification is, and the driver sets it
  // per task.
  // variant_opts.budget is likewise excluded: it only decides whether an
  // analysis finishes, never what a finished analysis computes (and
  // degraded results are never cached anyway).
  Hasher h;
  h.mix(static_cast<uint64_t>(opts.variant_opts.disable));
  h.mix(static_cast<uint64_t>(opts.variant_opts.max_paths));
  h.mix(static_cast<uint64_t>(opts.variant_opts.max_variants));
  h.mix(static_cast<uint64_t>(opts.use_window_rule));
  h.mix(static_cast<uint64_t>(opts.use_local_conditions));
  // Provenance changes what a cached/journaled report carries (derivation
  // records), so runs with and without it must not share entries.
  h.mix(static_cast<uint64_t>(opts.provenance));
  std::vector<std::string> counted = opts.counted_cas;
  std::sort(counted.begin(), counted.end());
  counted.erase(std::unique(counted.begin(), counted.end()), counted.end());
  for (const std::string& c : counted) h.mix(c);
  return h.value();
}

BatchDriver::BatchDriver(DriverOptions opts, ResultCache* cache)
    : opts_(opts), cache_(cache ? cache : &owned_cache_) {}

BatchDriver::~BatchDriver() = default;

void BatchDriver::run_program_task(const ProgramInput& input, size_t index,
                                   ReportSink& sink, ThreadPool& pool) {
  DiagEngine diags;
  synl::FrontEnd fe = [&] {
    StageTimer t(sink, index, Stage::Parse, timed());
    return synl::parse_and_recover(input.source, diags);
  }();
  synl::Program& prog = fe.prog;
  size_t num_procs = prog.num_procs();
  size_t healthy = 0;
  for (size_t p = 0; p < num_procs; ++p)
    if (!prog.proc(synl::ProcId(static_cast<uint32_t>(p))).broken) ++healthy;
  // A program with errors is recovered — analyzed with its broken
  // procedures degraded — only when every error was contained to some
  // procedure and at least one procedure survived. --strict disables
  // recovery entirely.
  bool recovered =
      diags.has_errors() && fe.contained && healthy > 0 && !opts_.strict;
  if (recovered) {
    static obs::Counter& recoveries =
        obs::registry().counter("synat_parse_recovered_total");
    recoveries.inc();
  }
  if (diags.has_errors() && !recovered) {
    sink.fail_program(index, input.name, ProgramStatus::ParseError,
                      diag_reports(diags));
    return;
  }
  const uint64_t opts_fp = options_fingerprint(input.opts);
  uint64_t program_fp =
      Hasher().mix(synl::print_program(prog)).mix(opts_fp).value();
  sink.open_program(index, input.name, hex64(program_fp), num_procs);

  // Fine-grained cache addressing (DESIGN.md §3g): when the program
  // fingerprints completely, each procedure's result is cached under
  // H(options, own content, interference universe) instead of the
  // whole-program key, so an edit that leaves a procedure's body and the
  // program's interference signature unchanged still hits. This is what
  // makes `synat serve` re-analyze only edited procedures. Reports keep
  // the whole-program identity key in their `cache_key` field either way.
  // Provenance runs stay on whole-program keys: derivation records quote
  // other variants' source text and locations.
  std::shared_ptr<const atomicity::ProgramFingerprint> fng;
  if (opts_.use_cache && !input.opts.provenance && !recovered) {
    obs::SpanScope fp_span(obs::StageId::Schedule);
    ExecBudget fbudget;
    Watchdog::Scope fscope(watchdog_.get(), fbudget, opts_.deadline_ms);
    atomicity::InferOptions fopts = input.opts;
    fopts.variant_opts.budget = &fbudget;
    auto f = std::make_shared<atomicity::ProgramFingerprint>(
        atomicity::fingerprint_program(prog, fopts));
    if (f->complete && f->content.size() == num_procs) fng = std::move(f);
  }
  auto content_key = [&fng, opts_fp](size_t p) {
    return Hasher()
        .mix(opts_fp)
        .mix(fng->content[p])
        .mix(fng->universe)
        .value();
  };
  if (recovered) sink.add_diagnostics(index, diag_reports(diags));
  auto degrade_parse = [&prog, &sink, index](size_t p) {
    synl::ProcId pid(static_cast<uint32_t>(p));
    sink.set_proc(index, p,
                  make_degraded_report(
                      std::string(prog.syms().name(prog.proc(pid).name)),
                      prog.proc(pid).loc.line, "parse",
                      "procedure body failed to parse"));
  };

  // Program granularity (and the single-procedure fast path): analyze in
  // this task, reusing the Program we just parsed.
  if (opts_.granularity == Granularity::Program || num_procs <= 1) {
    std::vector<uint64_t> keys(num_procs), addrs(num_procs);
    bool all_hit = opts_.use_cache;
    std::vector<std::shared_ptr<const ProcReport>> hits(num_procs);
    for (size_t p = 0; p < num_procs; ++p) {
      synl::ProcId pid(static_cast<uint32_t>(p));
      if (prog.proc(pid).broken) continue;  // degraded; never keyed or cached
      keys[p] = Hasher()
                    .mix(program_fp)
                    .mix(prog.syms().name(prog.proc(pid).name))
                    .value();
      addrs[p] = fng ? content_key(p) : keys[p];
      if (opts_.use_cache) {
        hits[p] = with_key(cache_->lookup(addrs[p]), keys[p]);
        all_hit = all_hit && hits[p] != nullptr;
      }
    }
    if (opts_.use_cache && all_hit) {
      for (size_t p = 0; p < num_procs; ++p) {
        if (prog.proc(synl::ProcId(static_cast<uint32_t>(p))).broken)
          degrade_parse(p);
        else
          sink.set_proc(index, p, hits[p]);
      }
      return;
    }
    ExecBudget budget;
    Watchdog::Scope scope(watchdog_.get(), budget, opts_.deadline_ms);
    atomicity::InferOptions iopts = input.opts;
    iopts.variant_opts.budget = &budget;
    atomicity::AtomicityResult result;
    try {
      result = [&] {
        StageTimer ta(sink, index, Stage::Analyze, timed());
        return atomicity::infer_atomicity(prog, diags, iopts);
      }();
    } catch (const BudgetExceeded& e) {
      if (opts_.strict) {
        sink.fail_program(index, input.name, ProgramStatus::InternalError,
                          {{"error", 0, 0, e.what()}});
        return;
      }
      // One budget covers the whole program at this granularity, so every
      // surviving procedure degrades together.
      for (size_t p = 0; p < num_procs; ++p) {
        synl::ProcId pid(static_cast<uint32_t>(p));
        if (prog.proc(pid).broken) {
          degrade_parse(p);
          continue;
        }
        sink.set_proc(index, p,
                      make_degraded_report(
                          std::string(prog.syms().name(prog.proc(pid).name)),
                          prog.proc(pid).loc.line, e.reason(), e.what()));
      }
      return;
    }
    StageTimer tr(sink, index, Stage::Report, timed());
    for (size_t p = 0; p < num_procs; ++p) {
      synl::ProcId pid(static_cast<uint32_t>(p));
      if (prog.proc(pid).broken) {
        degrade_parse(p);
        continue;
      }
      const atomicity::ProcResult* pr = result.result_for(pid);
      SYNAT_ASSERT(pr != nullptr, "missing procedure result");
      std::shared_ptr<const ProcReport> report =
          make_proc_report(prog, *pr, keys[p], iopts.provenance);
      if (opts_.use_cache)
        report = with_key(cache_->insert(addrs[p], report), keys[p]);
      sink.set_proc(index, p, report);
    }
    return;
  }

  // Procedure granularity: one analysis task per procedure. Each task
  // re-parses its own Program (ASTs are never shared across threads) and
  // classifies only its target; the conflict universe is still whole-
  // program, so the result equals the whole-program run.
  for (size_t p = 0; p < num_procs; ++p) {
    if (prog.proc(synl::ProcId(static_cast<uint32_t>(p))).broken) {
      degrade_parse(p);  // no task: there is nothing to analyze
      continue;
    }
    pool.submit([this, &input, index, p, program_fp, opts_fp, fng, &sink] {
      std::string name;  // filled before analysis so a budget trip can
      uint32_t line = 0;  // still name its victim
      try {
        DiagEngine d;
        synl::FrontEnd fe = [&] {
          StageTimer t(sink, index, Stage::Parse, timed());
          return synl::parse_and_recover(input.source, d);
        }();
        SYNAT_ASSERT(fe.contained, "reparse of a recovered program failed");
        synl::Program& prog = fe.prog;
        synl::ProcId pid(static_cast<uint32_t>(p));
        name = std::string(prog.syms().name(prog.proc(pid).name));
        line = prog.proc(pid).loc.line;
        uint64_t key = Hasher().mix(program_fp).mix(name).value();
        uint64_t addr = fng ? Hasher()
                                  .mix(opts_fp)
                                  .mix(fng->content[p])
                                  .mix(fng->universe)
                                  .value()
                            : key;
        if (opts_.use_cache) {
          if (std::shared_ptr<const ProcReport> hit =
                  with_key(cache_->lookup(addr), key)) {
            sink.set_proc(index, p, std::move(hit));
            return;
          }
        }
        atomicity::InferOptions opts = input.opts;
        opts.only_procs = {name};
        ExecBudget budget;
        Watchdog::Scope scope(watchdog_.get(), budget, opts_.deadline_ms);
        opts.variant_opts.budget = &budget;
        atomicity::AtomicityResult result = [&] {
          StageTimer ta(sink, index, Stage::Analyze, timed());
          return atomicity::infer_atomicity(prog, d, opts);
        }();
        std::shared_ptr<const ProcReport> report;
        {
          StageTimer tr(sink, index, Stage::Report, timed());
          const atomicity::ProcResult* pr = result.result_for(pid);
          SYNAT_ASSERT(pr != nullptr, "missing procedure result");
          report = make_proc_report(prog, *pr, key, opts.provenance);
        }
        if (opts_.use_cache)
          report = with_key(cache_->insert(addr, report), key);
        sink.set_proc(index, p, std::move(report));
      } catch (const BudgetExceeded& e) {
        if (opts_.strict) {
          sink.fail_program(index, input.name, ProgramStatus::InternalError,
                            {{"error", line, 0, e.what()}});
        } else {
          sink.set_proc(
              index, p,
              make_degraded_report(name, line, e.reason(), e.what()));
        }
      } catch (const std::exception& e) {
        sink.fail_program(index, input.name, ProgramStatus::InternalError,
                          {{"error", 0, 0, e.what()}});
      }
    });
  }
}

BatchReport BatchDriver::run(const std::vector<ProgramInput>& inputs) {
  unsigned jobs = opts_.jobs == 0
                      ? std::max(1u, std::thread::hardware_concurrency())
                      : opts_.jobs;
  ReportSink sink(inputs.size());
  Metrics counters;
  // The run's registry delta starts here: everything the batch increments
  // (in-process or merged back from workers) minus what previous runs in
  // this process already counted.
  const obs::MetricsSnapshot telemetry_base = obs::registry().snapshot();
  obs::registry().gauge("synat_jobs").set(jobs);
  static obs::Counter& programs_total =
      obs::registry().counter("synat_programs_total");
  programs_total.inc(inputs.size());

  // Per-program journal keys and the whole-batch fingerprint. The key is
  // content-addressed (name, source, options), so a journal can only ever
  // replay a verdict for the exact program text it was computed from.
  std::vector<uint64_t> keys(inputs.size());
  JournalWriter journal;
  std::vector<bool> done(inputs.size(), false);
  {
    obs::SpanScope schedule_span(obs::StageId::Schedule);
    Hasher batch_hash;
    batch_hash.mix(static_cast<uint64_t>(inputs.size()));
    for (size_t i = 0; i < inputs.size(); ++i) {
      keys[i] = Hasher()
                    .mix(inputs[i].name)
                    .mix(inputs[i].source)
                    .mix(options_fingerprint(inputs[i].opts))
                    .value();
      batch_hash.mix(keys[i]);
    }
    uint64_t batch_fp = batch_hash.value();

    // Journal replay and (re)open. The writer outlives the pool/supervisor
    // below: completion callbacks append to it from worker threads.
    if (!opts_.journal_path.empty()) {
      static obs::Counter& journal_replayed =
          obs::registry().counter("synat_journal_replayed_total");
      static obs::Counter& journal_rejected =
          obs::registry().counter("synat_journal_rejected_total");
      std::vector<JournalRecord> keep;
      if (opts_.resume) {
        JournalReplay replay = read_journal(opts_.journal_path, batch_fp);
        if (replay.rejected_whole) ++counters.journal_rejected;
        counters.journal_rejected += replay.rejected_records;
        for (JournalRecord& rec : replay.records) {
          size_t target = inputs.size();
          for (size_t i = 0; i < inputs.size(); ++i) {
            if (keys[i] == rec.key && !done[i]) {
              target = i;
              break;
            }
          }
          if (target == inputs.size() || !journal_worthy(rec.report)) {
            ++counters.journal_rejected;  // stale or unworthy record
            continue;
          }
          sink.set_program(target, rec.report);
          done[target] = true;
          ++counters.journal_replayed;
          keep.push_back(std::move(rec));
        }
      }
      journal_replayed.inc(counters.journal_replayed);
      journal_rejected.inc(counters.journal_rejected);
      journal.open(opts_.journal_path, batch_fp, keep);
    }

    for (size_t i = 0; i < inputs.size(); ++i) {
      if (done[i] || inputs[i].load_error.empty()) continue;
      sink.fail_program(i, inputs[i].name, ProgramStatus::LoadError,
                        {{"error", 0, 0, inputs[i].load_error}});
      done[i] = true;
    }
  }

  size_t hits0 = cache_->hits(), misses0 = cache_->misses();
  if (opts_.isolate) {
    // Supervisor path: sandboxed one-shot workers. Must fork before any
    // thread exists, so no Watchdog/ThreadPool is created here (workers
    // build their own).
    run_supervised(inputs, keys, done, opts_, jobs, sink, journal);
  } else {
    if (opts_.deadline_ms > 0 && watchdog_ == nullptr)
      watchdog_ = std::make_unique<Watchdog>();
    if (journal.active()) {
      sink.set_on_complete([&journal, &keys](size_t i,
                                             const ProgramReport& report) {
        if (journal_worthy(report)) journal.append(keys[i], report);
      });
    }
    ThreadPool pool(jobs <= 1 ? 0 : jobs);
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (done[i]) continue;
      pool.submit([this, &inputs, i, &sink, &pool] {
        try {
          run_program_task(inputs[i], i, sink, pool);
        } catch (const std::exception& e) {
          sink.fail_program(i, inputs[i].name, ProgramStatus::InternalError,
                            {{"error", 0, 0, e.what()}});
        }
      });
    }
    pool.wait_idle();
  }
  journal.close();
  counters.cache_hits = cache_->hits() - hits0;
  counters.cache_misses = cache_->misses() - misses0;
  // rejected() is a lifetime counter and load() runs before run(), so the
  // absolute value (not a delta) is what this batch observed.
  counters.cache_rejected = cache_->rejected();
  static obs::Counter& span_drops =
      obs::registry().counter("synat_trace_spans_dropped_total", false);
  uint64_t dropped = obs::Tracer::instance().dropped();
  uint64_t counted = span_drops.value();
  if (dropped > counted) span_drops.inc(dropped - counted);
  counters.telemetry = obs::registry().snapshot().delta_from(telemetry_base);
  BatchReport out = sink.finish(counters, jobs);

  // Wide events (DESIGN.md §3i): one line per program, emitted from the
  // assembled report in input order — never completion order — so the log
  // is byte-identical across --jobs values and --isolate under the virtual
  // clock. Per-program latency also feeds the p50/p95/p99 source here.
  if (opts_.events != nullptr) {
    obs::Log2Histogram& latency =
        obs::registry().log2_histogram("synat_driver_program_latency_seconds");
    for (size_t i = 0; i < out.programs.size(); ++i) {
      const ProgramReport& pr = out.programs[i];
      obs::Event ev = program_event(pr);
      if (ev.name.empty()) ev.name = inputs[i].name;
      const auto stages = sink.program_stage_ns(i);
      ev.parse_ns = stages[static_cast<size_t>(Stage::Parse)];
      ev.analyze_ns = stages[static_cast<size_t>(Stage::Analyze)];
      ev.report_ns = stages[static_cast<size_t>(Stage::Report)];
      ev.dur_ns = ev.parse_ns + ev.analyze_ns + ev.report_ns;
      if (pr.status == ProgramStatus::Degraded)
        ev.deaths_crash = 1;  // supervisor collapses the cause; see §3d
      latency.observe(ev.dur_ns);
      opts_.events->append(ev);
    }
  }
  return out;
}

}  // namespace synat::driver
