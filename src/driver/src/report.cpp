#include "synat/driver/report.h"

#include <algorithm>
#include <bit>

#include "synat/driver/json.h"

namespace synat::driver {

std::string_view to_string(ProgramStatus s) {
  switch (s) {
    case ProgramStatus::Ok: return "ok";
    case ProgramStatus::Degraded: return "degraded";
    case ProgramStatus::ParseError: return "parse_error";
    case ProgramStatus::LoadError: return "load_error";
    case ProgramStatus::InternalError: return "internal_error";
  }
  return "?";
}

std::string_view to_string(Stage s) {
  switch (s) {
    case Stage::Parse: return "parse";
    case Stage::Analyze: return "analyze";
    case Stage::Report: return "report";
    case Stage::COUNT: break;
  }
  return "?";
}

bool ProgramReport::all_atomic() const {
  if (status != ProgramStatus::Ok) return false;
  for (const auto& p : procs)
    if (!p || !p->atomic) return false;
  return true;
}

void LatencyHistogram::record(uint64_t ns) {
  size_t bucket = ns == 0 ? 0 : static_cast<size_t>(std::bit_width(ns) - 1);
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  ++count[bucket];
  total_ns += ns;
  ++samples;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) count[i] += other.count[i];
  total_ns += other.total_ns;
  samples += other.samples;
}

size_t BatchReport::procs_not_atomic() const {
  size_t n = 0;
  for (const ProgramReport& prog : programs)
    for (const auto& p : prog.procs)
      if (p && !p->atomic) ++n;
  return n;
}

int exit_code_severity(int code) {
  // Severity happens to increase with the numeric code; this function is
  // the single place that fact is allowed to live. An unknown code ranks
  // above everything so a bug can never be masked down to success.
  return (code >= 0 && code <= 4) ? code : 5;
}

int combine_exit_codes(int a, int b) {
  return exit_code_severity(a) >= exit_code_severity(b) ? a : b;
}

int BatchReport::exit_code() const {
  int code = 0;
  if (procs_not_atomic() > 0 || metrics.degraded > 0 || metrics.crashed > 0)
    code = combine_exit_codes(code, 1);
  if (metrics.parse_errors > 0 || metrics.load_errors > 0)
    code = combine_exit_codes(code, 3);
  if (metrics.internal_errors > 0) code = combine_exit_codes(code, 4);
  return code;
}

obs::Event program_event(const ProgramReport& pr) {
  obs::Event ev;
  ev.name = pr.name;
  ev.fingerprint = pr.fingerprint;
  ev.status = std::string(to_string(pr.status));
  ev.atomic = pr.all_atomic();
  switch (pr.status) {
    case ProgramStatus::Ok:
      break;
    case ProgramStatus::Degraded:
      ev.exit_code = 1;
      ev.error_kind = "worker_death";
      break;
    case ProgramStatus::ParseError:
    case ProgramStatus::LoadError:
      ev.exit_code = 3;
      break;
    case ProgramStatus::InternalError:
      ev.exit_code = 4;
      break;
  }
  ev.procs = pr.procs.size();
  for (const auto& p : pr.procs) {
    if (p == nullptr) continue;
    if (!p->atomic) ++ev.procs_not_atomic;
    if (p->degraded && ev.exit_code == 0) ev.exit_code = 1;
    ev.variants += p->variants.size();
  }
  if (ev.procs_not_atomic > 0 && ev.exit_code == 0) ev.exit_code = 1;
  return ev;
}

// ---------------------------------------------------------------------------
// ReportSink

ReportSink::ReportSink(size_t num_programs) {
  programs_.resize(num_programs);
  procs_pending_.resize(num_programs, 0);
  completed_.resize(num_programs, false);
  stage_ns_.resize(num_programs);
}

void ReportSink::set_on_complete(CompletionFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  on_complete_ = std::move(fn);
}

void ReportSink::mark_complete_locked(size_t i) {
  if (completed_.at(i)) return;
  completed_[i] = true;
  if (on_complete_) on_complete_(i, programs_[i]);
}

void ReportSink::open_program(size_t i, std::string name,
                              std::string fingerprint, size_t num_procs) {
  std::lock_guard<std::mutex> lock(mu_);
  ProgramReport& pr = programs_.at(i);
  pr.name = std::move(name);
  pr.fingerprint = std::move(fingerprint);
  pr.procs.resize(num_procs);
  procs_pending_.at(i) = num_procs;
  if (num_procs == 0) mark_complete_locked(i);
}

void ReportSink::fail_program(size_t i, std::string name, ProgramStatus status,
                              std::vector<DiagReport> diags) {
  std::lock_guard<std::mutex> lock(mu_);
  ProgramReport& pr = programs_.at(i);
  if (pr.name.empty()) pr.name = std::move(name);
  // The worst status wins (InternalError > LoadError > ParseError >
  // Degraded > Ok); a program can fail once per procedure task.
  if (static_cast<uint8_t>(status) > static_cast<uint8_t>(pr.status))
    pr.status = status;
  for (DiagReport& d : diags) pr.diagnostics.push_back(std::move(d));
  mark_complete_locked(i);
}

void ReportSink::add_diagnostics(size_t i, std::vector<DiagReport> diags) {
  std::lock_guard<std::mutex> lock(mu_);
  ProgramReport& pr = programs_.at(i);
  for (DiagReport& d : diags) pr.diagnostics.push_back(std::move(d));
}

void ReportSink::set_proc(size_t i, size_t p,
                          std::shared_ptr<const ProcReport> report) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = programs_.at(i).procs.at(p);
  bool was_empty = slot == nullptr;
  slot = std::move(report);
  if (was_empty && procs_pending_.at(i) > 0 && --procs_pending_[i] == 0)
    mark_complete_locked(i);
}

void ReportSink::set_program(size_t i, ProgramReport report) {
  std::lock_guard<std::mutex> lock(mu_);
  programs_.at(i) = std::move(report);
  procs_pending_.at(i) = 0;
  // Replayed and worker-delivered programs were journaled at their original
  // completion; firing the callback again would duplicate the record.
  completed_.at(i) = true;
}

void ReportSink::add_stage_time(Stage s, uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.stage[static_cast<size_t>(s)].record(ns);
}

void ReportSink::add_stage_time(size_t i, Stage s, uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.stage[static_cast<size_t>(s)].record(ns);
  stage_ns_.at(i)[static_cast<size_t>(s)] += ns;
}

std::array<uint64_t, static_cast<size_t>(Stage::COUNT)>
ReportSink::program_stage_ns(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stage_ns_.at(i);
}

BatchReport ReportSink::finish(const Metrics& counters, size_t jobs) {
  std::lock_guard<std::mutex> lock(mu_);
  BatchReport out;
  metrics_.programs = programs_.size();
  metrics_.cache_hits = counters.cache_hits;
  metrics_.cache_misses = counters.cache_misses;
  metrics_.cache_rejected = counters.cache_rejected;
  metrics_.journal_replayed = counters.journal_replayed;
  metrics_.journal_rejected = counters.journal_rejected;
  metrics_.jobs = jobs;
  metrics_.telemetry = counters.telemetry;
  for (ProgramReport& pr : programs_) {
    if (pr.status == ProgramStatus::Ok) {
      for (const auto& p : pr.procs) {
        if (!p) {  // a worker died without reporting; surface it
          pr.status = ProgramStatus::InternalError;
          pr.diagnostics.push_back(
              {"error", 0, 0, "procedure result missing"});
          break;
        }
      }
    }
    if (pr.status != ProgramStatus::Ok) pr.procs.clear();
    if (pr.status == ProgramStatus::Degraded) ++metrics_.crashed;
    if (pr.status == ProgramStatus::ParseError) ++metrics_.parse_errors;
    if (pr.status == ProgramStatus::LoadError) ++metrics_.load_errors;
    if (pr.status == ProgramStatus::InternalError) ++metrics_.internal_errors;
    metrics_.procedures += pr.procs.size();
    for (const auto& p : pr.procs) {
      metrics_.variants += p->variants.size();
      if (p->degraded) ++metrics_.degraded;
    }
  }
  out.programs = std::move(programs_);
  out.metrics = metrics_;
  programs_.clear();
  procs_pending_.clear();
  completed_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Renderers

namespace {

void emit_histogram(JsonWriter& w, const LatencyHistogram& h) {
  w.begin_object();
  w.key("samples").value(h.samples);
  w.key("total_ns").value(h.total_ns);
  w.key("mean_ns").value(h.samples == 0 ? uint64_t{0} : h.total_ns / h.samples);
  w.key("buckets").begin_array();
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.count[i] == 0) continue;
    w.begin_object();
    w.key("le_ns").value(uint64_t{1} << (i + 1));
    w.key("count").value(h.count[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void emit_metrics(JsonWriter& w, const BatchReport& r,
                  const RenderOptions& opts, size_t atomic_procs) {
  w.key("summary").begin_object();
  w.key("programs").value(r.metrics.programs);
  w.key("procedures").value(r.metrics.procedures);
  w.key("variants").value(r.metrics.variants);
  w.key("atomic_procedures").value(atomic_procs);
  w.key("non_atomic_procedures").value(r.metrics.procedures - atomic_procs);
  w.key("degraded_procedures").value(r.metrics.degraded);
  w.key("crashed_programs").value(r.metrics.crashed);
  w.key("parse_errors").value(r.metrics.parse_errors);
  w.key("load_errors").value(r.metrics.load_errors);
  w.key("internal_errors").value(r.metrics.internal_errors);
  w.end_object();
  // The jobs count is deliberately not emitted: `synat batch --jobs N` is
  // documented to produce byte-identical documents for every N.
  w.key("metrics").begin_object();
  w.key("cache_hits").value(r.metrics.cache_hits);
  w.key("cache_misses").value(r.metrics.cache_misses);
  w.key("cache_rejected").value(r.metrics.cache_rejected);
  if (opts.counters) {
    // Schema v4: the run's deterministic registry counters, name-sorted.
    // Gated because journal counters legitimately differ between a
    // --resume run and the uninterrupted run it must otherwise match.
    w.key("counters").begin_object();
    for (const obs::CounterSample& c : r.metrics.telemetry.counters)
      if (c.deterministic) w.key(c.name).value(c.value);
    w.end_object();
  }
  if (opts.timings) {
    w.key("stages").begin_object();
    for (size_t s = 0; s < static_cast<size_t>(Stage::COUNT); ++s) {
      w.key(to_string(static_cast<Stage>(s)));
      emit_histogram(w, r.metrics.stage[s]);
    }
    w.end_object();
  }
  w.end_object();
}

size_t count_atomic(const BatchReport& r) {
  size_t n = 0;
  for (const ProgramReport& prog : r.programs)
    for (const auto& p : prog.procs)
      if (p && p->atomic) ++n;
  return n;
}

std::string hex64_str(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4)
    s[static_cast<size_t>(i)] = digits[v & 0xf];
  return s;
}

// Every record field is always emitted (possibly empty/zero) so the schema
// validator can require a fixed shape and diff_provenance compares like
// with like.
void emit_prov(JsonWriter& w, const std::vector<obs::ProvenanceRecord>& recs) {
  w.key("provenance").begin_array();
  for (const obs::ProvenanceRecord& r : recs) {
    w.begin_object();
    w.key("step").value(r.step);
    w.key("theorem").value(r.theorem);
    w.key("rule").value(r.rule);
    w.key("subject").value(r.subject);
    w.key("line").value(r.line);
    w.key("column").value(r.column);
    w.key("atom").value(r.atom);
    w.key("detail").value(r.detail);
    w.key("witness").value(r.witness);
    w.key("witness_line").value(r.witness_line);
    w.key("witness_column").value(r.witness_column);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string to_json(const BatchReport& report, const RenderOptions& opts) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("synat-batch-report");
  // v5 adds the optional "provenance" sections (RenderOptions::provenance);
  // v4 added the optional metrics "counters" section.
  w.key("version").value(kReportSchemaVersion);
  w.key("programs").begin_array();
  for (const ProgramReport& prog : report.programs) {
    w.begin_object();
    w.key("name").value(prog.name);
    w.key("fingerprint").value(prog.fingerprint);
    w.key("status").value(to_string(prog.status));
    if (!prog.diagnostics.empty()) {
      w.key("diagnostics").begin_array();
      for (const DiagReport& d : prog.diagnostics) {
        w.begin_object();
        w.key("severity").value(d.severity);
        w.key("line").value(d.line);
        w.key("column").value(d.column);
        w.key("message").value(d.message);
        w.end_object();
      }
      w.end_array();
    }
    w.key("procedures").begin_array();
    for (const auto& p : prog.procs) {
      w.begin_object();
      w.key("name").value(p->name);
      w.key("line").value(p->line);
      w.key("atomic").value(p->atomic);
      w.key("atomicity").value(p->atomicity);
      w.key("no_variants").value(p->no_variants);
      w.key("bailed_out").value(p->bailed_out);
      if (p->degraded) {
        w.key("degraded").value(true);
        w.key("degrade_kind").value(p->degrade_kind);
        w.key("degrade_reason").value(p->degrade_reason);
      }
      w.key("cache_key").value(hex64_str(p->key));
      if (opts.provenance) emit_prov(w, p->prov);
      w.key("variants").begin_array();
      for (const VariantReport& v : p->variants) {
        w.begin_object();
        w.key("tag").value(v.tag);
        w.key("atomicity").value(v.atomicity);
        if (opts.provenance) emit_prov(w, v.prov);
        w.key("lines").begin_array();
        for (const LineReport& l : v.lines) {
          w.begin_object();
          w.key("line").value(l.line);
          w.key("atom").value(l.atom);
          w.key("text").value(l.text);
          w.end_object();
        }
        w.end_array();
        w.key("blocks").begin_array();
        for (const BlockReport& b : v.blocks) {
          w.begin_object();
          w.key("atomicity").value(b.atom);
          w.key("units").value(b.units);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  // Every degradation in one place, so a consumer checking "did anything
  // fall short of a full verdict?" needs exactly one lookup. Always
  // emitted (possibly empty) for schema stability.
  w.key("degraded").begin_array();
  for (const ProgramReport& prog : report.programs) {
    if (prog.status == ProgramStatus::Degraded) {
      w.begin_object();
      w.key("program").value(prog.name);
      w.key("kind").value("crash");
      w.key("reason").value(prog.diagnostics.empty()
                                ? std::string("isolated worker died")
                                : prog.diagnostics.front().message);
      w.end_object();
    }
    for (const auto& p : prog.procs) {
      if (!p || !p->degraded) continue;
      w.begin_object();
      w.key("program").value(prog.name);
      w.key("procedure").value(p->name);
      w.key("kind").value(p->degrade_kind);
      w.key("reason").value(p->degrade_reason);
      w.end_object();
    }
  }
  if (report.metrics.cache_rejected > 0) {
    w.begin_object();
    w.key("kind").value("cache");
    w.key("reason").value(std::to_string(report.metrics.cache_rejected) +
                          " cache snapshot entr" +
                          (report.metrics.cache_rejected == 1 ? "y" : "ies") +
                          " rejected (corrupt or stale); recomputed cold");
    w.end_object();
  }
  w.end_array();
  emit_metrics(w, report, opts, count_atomic(report));
  w.end_object();
  std::string out = std::move(w).str();
  out += '\n';
  return out;
}

std::string to_sarif(const BatchReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("$schema")
      .value("https://json.schemastore.org/sarif-2.1.0.json");
  w.key("version").value("2.1.0");
  w.key("runs").begin_array();
  w.begin_object();
  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.key("name").value("synat");
  w.key("informationUri")
      .value("https://doi.org/10.1145/1065944.1065955");
  w.key("rules").begin_array();
  struct Rule { const char* id; const char* name; const char* text; };
  const Rule rules[] = {
      {"SYNAT001", "NonAtomicProcedure",
       "Procedure could not be proven atomic (Lipton reduction over the "
       "Flanagan-Qadeer calculus)."},
      {"SYNAT002", "ParseError",
       "SYNL front end rejected the program or the input could not be "
       "read."},
      {"SYNAT003", "VariantBailout",
       "Exceptional-variant enumeration exceeded the path cap; the verdict "
       "is conservative."},
      {"SYNAT004", "InternalError", "The analyzer failed on this program."},
      {"SYNAT005", "DegradedResult",
       "Analysis of this procedure was cut short (parse failure, deadline, "
       "or resource budget); its atomicity is unknown."},
      {"SYNAT006", "WorkerCrashed",
       "The isolated worker process analyzing this program died (crash, "
       "out-of-memory kill, or stall); the program has no verdict."},
  };
  for (const Rule& r : rules) {
    w.begin_object();
    w.key("id").value(r.id);
    w.key("name").value(r.name);
    w.key("shortDescription").begin_object();
    w.key("text").value(r.text);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();  // driver
  w.end_object();  // tool
  w.key("results").begin_array();
  auto location = [&](const std::string& uri, uint32_t line) {
    w.key("locations").begin_array();
    w.begin_object();
    w.key("physicalLocation").begin_object();
    w.key("artifactLocation").begin_object();
    w.key("uri").value(uri);
    w.end_object();
    if (line > 0) {
      w.key("region").begin_object();
      w.key("startLine").value(line);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    w.end_array();
  };
  for (const ProgramReport& prog : report.programs) {
    if (prog.status != ProgramStatus::Ok) {
      const char* rule = "SYNAT002";
      const char* level = "error";
      if (prog.status == ProgramStatus::InternalError) rule = "SYNAT004";
      if (prog.status == ProgramStatus::Degraded) {
        rule = "SYNAT006";
        level = "warning";  // contained fault, same severity as SYNAT005
      }
      w.begin_object();
      w.key("ruleId").value(rule);
      w.key("level").value(level);
      w.key("message").begin_object();
      std::string text = prog.diagnostics.empty()
                             ? std::string(to_string(prog.status))
                             : prog.diagnostics.front().message;
      w.key("text").value(text);
      w.end_object();
      uint32_t line =
          prog.diagnostics.empty() ? 0 : prog.diagnostics.front().line;
      location(prog.name, line);
      w.end_object();
      continue;
    }
    for (const auto& p : prog.procs) {
      if (p->degraded) {
        w.begin_object();
        w.key("ruleId").value("SYNAT005");
        w.key("level").value("warning");
        w.key("message").begin_object();
        w.key("text").value("procedure '" + p->name +
                            "' has no verdict (degraded: " + p->degrade_kind +
                            "): " + p->degrade_reason);
        w.end_object();
        location(prog.name, p->line);
        w.end_object();
        continue;  // "unknown" must not double-report as non-atomic
      }
      if (!p->atomic) {
        w.begin_object();
        w.key("ruleId").value("SYNAT001");
        w.key("level").value("warning");
        w.key("message").begin_object();
        std::string text = "procedure '" + p->name + "' is not atomic (" +
                           p->atomicity + ")";
        if (!p->variants.empty() && !p->variants.front().blocks.empty()) {
          size_t max_blocks = 0;
          for (const VariantReport& v : p->variants)
            max_blocks = std::max(max_blocks, v.blocks.size());
          text += "; largest variant partitions into " +
                  std::to_string(max_blocks) + " atomic block(s)";
        }
        w.key("text").value(text);
        w.end_object();
        location(prog.name, p->line);
        // Conflict witnesses recorded by step 4 become relatedLocations:
        // both sides of each conflicting access pair, in variant order.
        bool have_witness = false;
        for (const VariantReport& v : p->variants)
          for (const obs::ProvenanceRecord& r : v.prov)
            if (r.step == 4 && r.rule == "conflict" && !r.witness.empty())
              have_witness = true;
        if (have_witness) {
          auto related = [&](const std::string& msg, uint32_t line) {
            w.begin_object();
            w.key("physicalLocation").begin_object();
            w.key("artifactLocation").begin_object();
            w.key("uri").value(prog.name);
            w.end_object();
            if (line > 0) {
              w.key("region").begin_object();
              w.key("startLine").value(line);
              w.end_object();
            }
            w.end_object();
            w.key("message").begin_object();
            w.key("text").value(msg);
            w.end_object();
            w.end_object();
          };
          w.key("relatedLocations").begin_array();
          for (const VariantReport& v : p->variants) {
            for (const obs::ProvenanceRecord& r : v.prov) {
              if (r.step != 4 || r.rule != "conflict" || r.witness.empty())
                continue;
              related(r.subject, r.line);
              related("conflicts with " + r.witness, r.witness_line);
            }
          }
          w.end_array();
        }
        w.end_object();
      }
      if (p->bailed_out) {
        w.begin_object();
        w.key("ruleId").value("SYNAT003");
        w.key("level").value("note");
        w.key("message").begin_object();
        w.key("text").value("variant enumeration bailed out for '" + p->name +
                            "'");
        w.end_object();
        location(prog.name, p->line);
        w.end_object();
      }
    }
  }
  w.end_array();
  w.end_object();  // run
  w.end_array();
  w.end_object();
  std::string out = std::move(w).str();
  out += '\n';
  return out;
}

std::string to_text(const BatchReport& report) {
  std::string out;
  for (const ProgramReport& prog : report.programs) {
    out += prog.name;
    out += ": ";
    out += to_string(prog.status);
    out += '\n';
    for (const DiagReport& d : prog.diagnostics) {
      out += "  " + d.severity + " " + std::to_string(d.line) + ":" +
             std::to_string(d.column) + ": " + d.message + "\n";
    }
    for (const auto& p : prog.procs) {
      if (p->degraded) {
        out += "  proc " + p->name + " : unknown (degraded: " +
               p->degrade_reason + ")\n";
        continue;
      }
      out += "  proc " + p->name + " : ";
      out += p->atomic ? "atomic" : "NOT atomic";
      out += " (" + p->atomicity + ")";
      out += ", " + std::to_string(p->variants.size()) + " variant(s)";
      size_t max_blocks = 0;
      for (const VariantReport& v : p->variants)
        max_blocks = std::max(max_blocks, v.blocks.size());
      if (!p->atomic && max_blocks > 0)
        out += ", " + std::to_string(max_blocks) + " atomic block(s)";
      if (p->bailed_out) out += " [bailed out]";
      out += '\n';
    }
  }
  size_t atomic = count_atomic(report);
  out += "summary: " + std::to_string(report.metrics.programs) +
         " program(s), " + std::to_string(report.metrics.procedures) +
         " procedure(s), " + std::to_string(atomic) + " atomic, " +
         std::to_string(report.metrics.procedures - atomic) + " not atomic";
  if (report.metrics.degraded > 0)
    out += ", " + std::to_string(report.metrics.degraded) + " degraded";
  if (report.metrics.crashed > 0)
    out += ", " + std::to_string(report.metrics.crashed) + " crashed";
  if (report.metrics.parse_errors > 0)
    out += ", " + std::to_string(report.metrics.parse_errors) +
           " parse error(s)";
  if (report.metrics.load_errors > 0)
    out += ", " + std::to_string(report.metrics.load_errors) +
           " load error(s)";
  if (report.metrics.internal_errors > 0)
    out += ", " + std::to_string(report.metrics.internal_errors) +
           " internal error(s)";
  out += "\ncache: " + std::to_string(report.metrics.cache_hits) + " hit(s), " +
         std::to_string(report.metrics.cache_misses) + " miss(es)";
  if (report.metrics.cache_rejected > 0)
    out += ", " + std::to_string(report.metrics.cache_rejected) +
           " rejected snapshot entr" +
           (report.metrics.cache_rejected == 1 ? "y" : "ies");
  out += "\n";
  return out;
}

namespace {

std::string loc_str(uint32_t line, uint32_t column) {
  if (line == 0) return {};
  std::string s = "line " + std::to_string(line);
  if (column > 0) s += ":" + std::to_string(column);
  return s;
}

/// One derivation record as an indented bullet:
///   - step 4 [commutativity] conflict: read Head (line 7) => A  [Thm 3.3]
///       a conflicting access exists in an adjacent slot
///       witness: SC Head in Enq'1 (line 12)
void render_record(std::string& out, const obs::ProvenanceRecord& r,
                   const std::string& indent) {
  out += indent + "- step " + std::to_string(r.step) + " [" +
         std::string(obs::provenance_step_title(r.step)) + "] " + r.rule;
  if (!r.subject.empty()) out += ": " + r.subject;
  std::string loc = loc_str(r.line, r.column);
  if (!loc.empty()) out += " (" + loc + ")";
  if (!r.atom.empty()) out += " => " + r.atom;
  if (!r.theorem.empty()) out += "  [Thm " + r.theorem + "]";
  out += '\n';
  if (!r.detail.empty()) out += indent + "    " + r.detail + "\n";
  if (!r.witness.empty()) {
    out += indent + "    witness: " + r.witness;
    std::string wloc = loc_str(r.witness_line, r.witness_column);
    if (!wloc.empty()) out += " (" + wloc + ")";
    out += '\n';
  }
}

}  // namespace

std::string to_explain(const BatchReport& report,
                       const std::string& proc_filter) {
  std::string out;
  bool matched = proc_filter.empty();
  for (const ProgramReport& prog : report.programs) {
    out += "== " + prog.name + " (" + std::string(to_string(prog.status)) +
           ") ==\n";
    if (prog.status != ProgramStatus::Ok) {
      for (const DiagReport& d : prog.diagnostics)
        out += "  " + d.severity + " " + std::to_string(d.line) + ":" +
               std::to_string(d.column) + ": " + d.message + "\n";
      continue;
    }
    for (const auto& p : prog.procs) {
      if (!proc_filter.empty() && p->name != proc_filter) continue;
      matched = true;
      out += "\nprocedure " + p->name;
      if (p->line > 0) out += " (line " + std::to_string(p->line) + ")";
      if (p->degraded) {
        out += ": unknown (degraded: " + p->degrade_kind + ") — " +
               p->degrade_reason + "\n";
        continue;
      }
      out += ": ";
      out += p->atomic ? "atomic" : "NOT atomic";
      out += " (" + p->atomicity + ")\n";
      bool any = !p->prov.empty();
      // Step-0 facts (variant enumeration, purity) lead; the step-7
      // verdict closes the tree after the variants it judges.
      for (const obs::ProvenanceRecord& r : p->prov)
        if (r.step != 7) render_record(out, r, "  ");
      for (const VariantReport& v : p->variants) {
        if (!v.prov.empty()) any = true;
        out += "  variant " + v.tag + ": composes to " + v.atomicity + "\n";
        for (const obs::ProvenanceRecord& r : v.prov)
          render_record(out, r, "    ");
      }
      for (const obs::ProvenanceRecord& r : p->prov)
        if (r.step == 7) render_record(out, r, "  ");
      if (!any)
        out += "  (no derivation records; the run did not collect "
               "provenance)\n";
    }
  }
  if (!matched)
    out += "procedure '" + proc_filter + "' not found\n";
  return out;
}

}  // namespace synat::driver
