// Fixed-size worker pool with a FIFO work queue for the batch driver.
//
// Tasks may submit further tasks (the driver's parse stage enqueues one
// analysis task per procedure), so `wait_idle` waits until the queue is
// empty AND no worker is mid-task. Tasks must not throw; the driver wraps
// every stage in its own try/catch and converts failures into reports.
// With `threads == 0` the pool is inline: submit() runs the task on the
// calling thread, which keeps `--jobs 1` free of scheduling noise and makes
// it the serial baseline for the speedup measurements.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace synat::driver {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers; 0 means inline execution (no workers).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (or runs it immediately in inline mode). Safe to call
  /// from inside a running task.
  void submit(Task t);

  /// Blocks until every submitted task (including transitively submitted
  /// ones) has finished.
  void wait_idle();

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: queue non-empty/stop
  std::condition_variable idle_cv_;   ///< signals wait_idle: all drained
  std::deque<Task> queue_;
  size_t in_flight_ = 0;  ///< tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace synat::driver
