// Batch analysis driver: runs the full per-procedure pipeline (sema →
// CFG/liveness → purity/matching/local-conditions → variant enumeration →
// mover assignment → type propagation → block partitioning) over many
// programs on a fixed-size thread pool, with optional content-addressed
// memoization of per-procedure results.
//
// Concurrency model: every task parses its own Program from source, so no
// AST is ever shared between threads (infer_atomicity appends variants to
// the Program it analyzes and must own it). At Procedure granularity the
// driver schedules one analysis task per original procedure — each task
// restricts classification to its target via InferOptions::only_procs while
// still building the whole-program conflict universe, so results are
// bit-identical to a whole-program run but long programs no longer
// serialize a worker. Output assembly is index-addressed, which makes the
// rendered documents byte-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "synat/atomicity/infer.h"
#include "synat/driver/cache.h"
#include "synat/driver/report.h"
#include "synat/driver/thread_pool.h"
#include "synat/driver/watchdog.h"

namespace synat::obs {
class EventLog;
}

namespace synat::driver {

/// One program to analyze.
struct ProgramInput {
  std::string name;    ///< display name (file path or corpus:<name>)
  std::string source;  ///< SYNL source text
  atomicity::InferOptions opts;
  /// When non-empty, the input could not be read; the driver reports the
  /// program as ProgramStatus::LoadError (with this message) without
  /// scheduling any work, and the rest of the batch proceeds.
  std::string load_error;
};

enum class Granularity : uint8_t {
  Program,    ///< one task per program
  Procedure,  ///< one parse task per program + one analysis task per proc
};

struct DriverOptions {
  /// Worker threads; 1 runs inline on the calling thread, 0 uses one
  /// worker per hardware thread.
  unsigned jobs = 1;
  /// Memoize per-procedure reports in `cache` (or an internal cache).
  bool use_cache = false;
  Granularity granularity = Granularity::Procedure;
  /// Record per-stage wall times (adds clock calls on the hot path).
  bool collect_timings = false;
  /// Wall-clock deadline per analysis task in milliseconds; 0 disables it.
  /// A task over deadline is reported as degraded ("deadline"), the batch
  /// proceeds. Deadline trips depend on machine speed, so results are only
  /// byte-deterministic when no task trips (or the deadline is 0).
  uint64_t deadline_ms = 0;
  /// Escalate instead of degrading: recovered parse errors fail the
  /// program (ParseError) and budget/deadline trips are internal errors.
  bool strict = false;
  /// Run every program in a sandboxed one-shot worker process (DESIGN.md
  /// §3d). A worker death of any kind — SIGSEGV, OOM kill, stall — is
  /// contained as that one program's ProgramStatus::Degraded verdict.
  /// Requires that no other threads exist when run() is called (workers
  /// are plain forks). `jobs` caps concurrent workers; the cache is not
  /// consulted (workers are separate address spaces).
  bool isolate = false;
  /// Address-space cap per worker in MiB (RLIMIT_AS); 0 = unlimited.
  /// Only meaningful with `isolate`.
  unsigned max_rss_mb = 0;
  /// Re-dispatches of a program whose worker died before retrying turns
  /// into a Degraded verdict (exponential backoff between attempts).
  unsigned retries = 1;
  /// Write-ahead journal file for crash-resumable batches; empty disables
  /// journaling. Works with and without `isolate`.
  std::string journal_path;
  /// Replay finished programs from `journal_path` before analyzing. A
  /// journal from a different input/option set is rejected whole (counted
  /// in Metrics::journal_rejected); the run proceeds cold.
  bool resume = false;
  /// Wide-event sink (DESIGN.md §3i): when set, run() appends one event
  /// per program, in input order, after the report is assembled. Not owned.
  /// Enabling events also enables per-program stage timing.
  obs::EventLog* events = nullptr;
};

/// Fingerprint of the analysis options that affect results; part of every
/// cache key.
uint64_t options_fingerprint(const atomicity::InferOptions& opts);

class BatchDriver {
 public:
  /// `cache` may be null; when `opts.use_cache` is set and no cache is
  /// given, the driver uses a private one (warm within a single run() —
  /// pass an external cache to keep it warm across runs).
  explicit BatchDriver(DriverOptions opts, ResultCache* cache = nullptr);
  ~BatchDriver();

  BatchDriver(const BatchDriver&) = delete;
  BatchDriver& operator=(const BatchDriver&) = delete;

  /// Analyzes every input and returns the aggregated report. Safe to call
  /// repeatedly; the cache persists across calls.
  BatchReport run(const std::vector<ProgramInput>& inputs);

  ResultCache& cache() { return *cache_; }

 private:
  struct Job;  // per-program scheduling state

  void run_program_task(const ProgramInput& input, size_t index,
                        ReportSink& sink, ThreadPool& pool);
  /// Stage timing is collected when asked for (--timings) or whenever a
  /// wide-event sink needs per-program latencies.
  bool timed() const { return opts_.collect_timings || opts_.events != nullptr; }

  DriverOptions opts_;
  ResultCache* cache_;
  ResultCache owned_cache_;
  /// Created lazily by run() when deadline_ms > 0.
  std::unique_ptr<Watchdog> watchdog_;
};

}  // namespace synat::driver
