// Write-ahead journal for crash-resumable batch runs (`synat batch
// --journal FILE [--resume]`, DESIGN.md §3d).
//
// The journal records each program's finished report the moment it
// completes, so a supervisor killed mid-batch (power loss, OOM killer,
// operator Ctrl-C) can be rerun with `--resume` and only re-analyze what is
// missing. The final report of a resumed run is byte-identical to the
// uninterrupted run's: replay feeds the same ProgramReport bytes back
// through the same renderers, and the replay counters are deliberately kept
// out of every rendered document (see Metrics).
//
// On-disk layout, little-endian throughout:
//   header:  [8B magic "SYNATJL1"][u64 format version][u64 batch fingerprint]
//   records: [u64 program key][u64 payload length][payload][u32 CRC32]
// where the payload is one codec-encoded ProgramReport. The batch
// fingerprint hashes every program key in input order; a journal written
// for a different input set or different analysis options therefore rejects
// as a whole (cold start) instead of silently replaying stale verdicts.
// Within a matching journal, corruption is contained per record: a bad CRC
// or undecodable payload skips that record, and a truncated tail (the
// expected shape after SIGKILL mid-append) keeps the intact prefix.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "synat/driver/report.h"

namespace synat::driver {

/// Version of the journal format (magic "SYNATJL<v>"); a journal with any
/// other version rejects whole. Surfaced by `serve`'s /buildz.
inline constexpr uint64_t kJournalSchemaVersion = 2;

/// One replayable journal entry: the per-program key it was stored under
/// (Hasher over name, source, and options — see BatchDriver) and the report.
struct JournalRecord {
  uint64_t key = 0;
  ProgramReport report;
};

/// Everything read_journal learned about an existing journal file.
struct JournalReplay {
  bool existed = false;         ///< a file was present (even if rejected)
  bool rejected_whole = false;  ///< header/version/fingerprint mismatch
  size_t rejected_records = 0;  ///< individually skipped records
  std::vector<JournalRecord> records;  ///< surviving records, file order
};

/// Reads and validates `path` against this run's batch fingerprint.
/// Never fails hard: a missing file is an empty replay, a foreign or
/// corrupt header rejects the whole journal, bad records are skipped.
JournalReplay read_journal(const std::string& path, uint64_t batch_fingerprint);

/// Append-side of the journal. open() truncates and rewrites the file —
/// header plus the given surviving records — so every run leaves a journal
/// whose header matches its own batch, then append() adds records as
/// programs complete. Appends are serialized and flushed per record so the
/// journal is as current as the last completed program when the process
/// dies. I/O errors disable the writer (journaling is an accelerator, not
/// a source of truth) — active() reports whether appends still reach disk.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool open(const std::string& path, uint64_t batch_fingerprint,
            const std::vector<JournalRecord>& keep);
  void append(uint64_t key, const ProgramReport& report);
  void close();
  bool active() const { return file_ != nullptr; }

 private:
  bool write_record_locked(uint64_t key, const ProgramReport& report);

  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Journal admission policy: only fully-successful programs are worth
/// replaying. Anything degraded (a crashed worker, a deadline-cut
/// procedure) or failed is re-analyzed on resume — the retry might succeed.
bool journal_worthy(const ProgramReport& report);

}  // namespace synat::driver
