// Binary encoding of report structures, shared by the cache snapshot, the
// write-ahead journal, and the supervisor/worker result frames. One codec
// means one definition of "what a report is on the wire": every consumer
// frames the payload itself (length prefix + CRC32) and treats a decode
// failure as corruption of that one payload, never of the whole stream.
//
// All integers are little-endian; strings are u64-length-prefixed.
// Collection counts are sanity-capped so a corrupt length cannot drive a
// multi-gigabyte allocation before the checksum is even consulted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "synat/driver/report.h"
#include "synat/obs/trace.h"

namespace synat::driver::codec {

void put_u32(std::string& out, uint32_t v);
void put_u64(std::string& out, uint64_t v);
void put_str(std::string& out, std::string_view s);

/// Forward-only reader over an encoded payload. Every get_* returns false
/// (and poisons the reader) on truncation or an over-cap count, so callers
/// can chain reads and check once.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : in_(bytes) {}

  bool get_u32(uint32_t& v);
  bool get_u64(uint64_t& v);
  bool get_str(std::string& s);
  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == in_.size(); }

 private:
  bool take(size_t n, const char*& p);

  std::string_view in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// ProcReport payload (cache entry unit). Includes the degradation fields:
/// the cache never stores degraded reports, but the worker and journal
/// encodings must carry them losslessly.
void put_proc_report(std::string& out, const ProcReport& r);
bool get_proc_report(Reader& in, ProcReport& r);

/// Whole-program payload (journal record / worker Result frame unit).
void put_program_report(std::string& out, const ProgramReport& r);
bool get_program_report(Reader& in, ProgramReport& r);

/// Telemetry payload (worker Telemetry frame unit): the spans a worker
/// collected plus its registry delta since fork. Span lanes are not
/// encoded — the supervisor assigns the lane when it injects the spans.
/// Counts are sanity-capped (kMaxTelemetrySpans / kMaxTelemetryMetrics)
/// and the histogram bucket count must match obs::Histogram::kBuckets, so
/// a corrupt frame fails decode instead of driving a giant allocation.
inline constexpr uint64_t kMaxTelemetrySpans = uint64_t{1} << 22;
inline constexpr uint64_t kMaxTelemetryMetrics = uint64_t{1} << 16;
void put_telemetry(std::string& out, const std::vector<obs::SpanRecord>& spans,
                   const obs::MetricsSnapshot& delta);
bool get_telemetry(Reader& in, std::vector<obs::SpanRecord>& spans,
                   obs::MetricsSnapshot& delta);

/// Provenance section: derivation records for an already-encoded report,
/// keyed by procedure and variant index. Kept out of put_proc_report /
/// put_program_report so the v3 shapes stay byte-stable; consumers that
/// carry provenance (journal v2, cache v4, the worker Provenance frame)
/// append this section after the report payload and re-attach on decode.
/// Counts are sanity-capped (kMaxProvRecords per vector).
inline constexpr uint64_t kMaxProvRecords = uint64_t{1} << 20;
void put_prov_records(std::string& out,
                      const std::vector<obs::ProvenanceRecord>& recs);
bool get_prov_records(Reader& in, std::vector<obs::ProvenanceRecord>& recs);

/// Whole-program provenance: for each procedure, its records plus each
/// variant's records, in report order. Attaches into `r` on decode
/// (procedure/variant counts must match the decoded report).
void put_program_provenance(std::string& out, const ProgramReport& r);
bool get_program_provenance(Reader& in, ProgramReport& r);

/// Per-procedure provenance (cache entry suffix).
void put_proc_provenance(std::string& out, const ProcReport& r);
bool get_proc_provenance(Reader& in, ProcReport& r);

/// Cache-delta payload (worker CacheDelta frame unit, sandboxed serve):
/// the child's cache hit/miss deltas plus every entry it inserted into its
/// copy-on-write cache image, as (address, report + provenance) pairs. The
/// supervisor re-inserts them into the live cache so subsequent forks
/// inherit a warm image. Entry count is sanity-capped — a single request
/// analyzes one program, so anything near the cap is corruption.
inline constexpr uint64_t kMaxCacheDeltaEntries = uint64_t{1} << 16;
using CacheDeltaEntry = std::pair<uint64_t, std::shared_ptr<const ProcReport>>;
void put_cache_delta(std::string& out, uint64_t hits, uint64_t misses,
                     const std::vector<CacheDeltaEntry>& entries);
bool get_cache_delta(Reader& in, uint64_t& hits, uint64_t& misses,
                     std::vector<CacheDeltaEntry>& entries);

}  // namespace synat::driver::codec
