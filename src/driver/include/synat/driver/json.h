// Minimal deterministic JSON emitter for the batch driver's reports.
//
// The writer is append-only and key order is exactly the call order, so two
// runs that produce the same logical report produce byte-identical documents
// (the determinism contract `synat batch --jobs N` is tested against).
// No DOM, no parsing: report shapes are known statically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace synat::driver {

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Streaming writer with automatic comma insertion. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("nfq");
///   w.key("procs").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///   std::string doc = std::move(w).str();
class JsonWriter {
 public:
  explicit JsonWriter(int indent_width = 2) : indent_width_(indent_width) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<uint64_t>(v)); }
  /// Emits a pre-rendered JSON fragment verbatim (caller guarantees
  /// validity); used to splice sub-documents built in worker threads.
  JsonWriter& raw(std::string_view fragment);

  std::string str() && { return std::move(out_); }
  const std::string& str() const& { return out_; }

 private:
  void comma_and_newline();
  void indent();

  std::string out_;
  int indent_width_;
  int depth_ = 0;
  /// Per-depth "a value has already been written at this level" flags.
  std::vector<bool> has_item_{false};
  bool after_key_ = false;
};

}  // namespace synat::driver
