// Content-addressed memoization cache for per-procedure analysis results.
//
// The address is an FNV-1a hash over everything a procedure's verdict can
// depend on. A procedure cannot be keyed by its own text alone: its
// atomicity depends on the conflicting accesses of every other procedure's
// variants (paper step 4, the cross-thread conflict universe). The driver
// therefore addresses entries by (analysis option fingerprint, the
// procedure's own printed body + source layout, the program's interference
// universe hash) — see atomicity::ProgramFingerprint. The universe hash
// covers only the projection of other procedures that step 4 can actually
// read (alias classes, lock sets, region structure), so editing one
// procedure re-analyzes that procedure and, at worst, procedures whose
// interference it changed — the keying behind `synat serve`'s incremental
// re-analysis. When a program cannot be fingerprinted precisely (broken
// procedures, provenance runs, budget trips) the driver falls back to the
// coarse key (pretty-printed whole program, option fingerprint, procedure
// name). Both forms are canonical content addresses: the printer is a
// fixpoint under re-parsing, so formatting differences in the input do not
// cause spurious misses.
//
// Sharded to keep lock hold times negligible next to an analysis run.
// Entries are immutable shared_ptrs, so hits alias the cached report.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "synat/driver/report.h"

namespace synat::driver {

/// Version of the cache snapshot format (magic "SYNATCC<v>"); a snapshot
/// with any other version rejects whole. Surfaced by `serve`'s /buildz.
inline constexpr uint64_t kCacheSchemaVersion = 5;

class ResultCache {
 public:
  std::shared_ptr<const ProcReport> lookup(uint64_t key);

  /// First writer wins; returns the resident entry (the argument, or the
  /// earlier one if a concurrent task already published the same key).
  std::shared_ptr<const ProcReport> insert(
      uint64_t key, std::shared_ptr<const ProcReport> report);

  void clear();
  size_t size() const;

  /// Delta capture for the sandboxed serve path (worker.h). A forked
  /// request worker inherits the daemon's cache as a copy-on-write image;
  /// inserts it performs exist only in the child. start_capture() makes
  /// every subsequent insert also append (key, report) to an internal log,
  /// which take_capture() drains — the worker ships the log back over a
  /// CacheDelta frame so the supervisor can re-insert the entries into the
  /// live cache and keep later forks warm. Not used concurrently with
  /// multi-threaded inserts (the capturing sub-driver runs jobs=1).
  void start_capture();
  std::vector<std::pair<uint64_t, std::shared_ptr<const ProcReport>>>
  take_capture();

  /// Persistence for warm starts across processes (`synat batch
  /// --cache-file`). The format is a versioned binary snapshot with a
  /// CRC32 checksum per entry. Corruption is never an error — the cache is
  /// an accelerator, not a source of truth:
  ///  - a missing file or an unreadable header loads as an empty cache
  ///    (load returns false);
  ///  - a version/magic mismatch rejects the whole snapshot (cold start);
  ///  - an entry whose checksum or encoding does not verify is skipped,
  ///    keeping every other entry (truncation keeps the intact prefix).
  /// Every rejected snapshot or entry increments rejected().
  /// save() writes to `path + ".tmp"` and renames over `path`, so a crash
  /// (or SIGKILL — the serve daemon snapshots periodically) mid-write never
  /// clobbers the previous good snapshot with a truncated one.
  bool save(const std::string& path) const;
  bool load(const std::string& path);

  /// Lifetime counters (not reset by clear()).
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Snapshots or snapshot entries rejected as corrupt/stale during load().
  size_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<const ProcReport>> map;
  };
  Shard& shard(uint64_t key) { return shards_[key % kShards]; }

  Shard shards_[kShards];
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> rejected_{0};

  std::mutex capture_mu_;
  bool capturing_ = false;
  std::vector<std::pair<uint64_t, std::shared_ptr<const ProcReport>>> capture_;
};

}  // namespace synat::driver
