// Process-isolated batch execution (DESIGN.md §3d): a single-threaded
// supervisor event loop dispatching one analysis task per sandboxed,
// one-shot worker process, plus the worker-side main function.
//
// Protocol, over two pipes per worker (frames per support/frame.h):
//   supervisor → worker:  Request  [u64 task index][u64 attempt]
//   worker → supervisor:  Heartbeat (empty payload, every ~50 ms)
//                         Result   [codec-encoded ProgramReport]
// A worker that dies before its Result — crash, OOM kill, CPU-limit kill,
// corrupt frame, or heartbeat silence past the stall deadline — is retried
// with exponential backoff (DriverOptions::retries), then contained as
// ProgramStatus::Degraded ("crashed: <cause>"). The rest of the batch is
// never affected.
#pragma once

#include <cstdint>
#include <vector>

#include "synat/driver/driver.h"
#include "synat/driver/journal.h"
#include "synat/driver/report.h"

namespace synat::driver {

/// Worker-side entry point, run inside the forked child. Reads one Request
/// from `in_fd`, analyzes that input with an in-process sub-driver (jobs=1,
/// no cache, no journal, no isolation — byte-identical results to the
/// non-isolated path), streams heartbeats, writes the Result frame to
/// `out_fd`, and returns the process exit code.
int worker_main(int in_fd, int out_fd, const std::vector<ProgramInput>& inputs,
                const DriverOptions& opts);

/// Supervisor-side driver: runs every input whose `done` flag is false
/// through the worker pool (at most `jobs` live workers), delivering
/// finished reports into `sink` and appending journal-worthy ones to
/// `journal`. `keys[i]` is input i's journal key. Must be called with no
/// other threads alive in the process (workers are plain forks).
void run_supervised(const std::vector<ProgramInput>& inputs,
                    const std::vector<uint64_t>& keys,
                    const std::vector<bool>& done, const DriverOptions& opts,
                    unsigned jobs, ReportSink& sink, JournalWriter& journal);

}  // namespace synat::driver
