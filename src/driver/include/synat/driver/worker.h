// Process-isolated batch execution (DESIGN.md §3d): a single-threaded
// supervisor event loop dispatching one analysis task per sandboxed,
// one-shot worker process, plus the worker-side main function.
//
// Protocol, over two pipes per worker (frames per support/frame.h):
//   supervisor → worker:  Request  [u64 task index][u64 attempt]
//   worker → supervisor:  Heartbeat (empty payload, every ~50 ms)
//                         Result   [codec-encoded ProgramReport]
// A worker that dies before its Result — crash, OOM kill, CPU-limit kill,
// corrupt frame, or heartbeat silence past the stall deadline — is retried
// with exponential backoff (DriverOptions::retries), then contained as
// ProgramStatus::Degraded ("crashed: <cause>"). The rest of the batch is
// never affected.
#pragma once

#include <cstdint>
#include <vector>

#include "synat/driver/driver.h"
#include "synat/driver/journal.h"
#include "synat/driver/report.h"

namespace synat::driver {

/// Worker-side entry point, run inside the forked child. Reads one Request
/// from `in_fd`, analyzes that input with an in-process sub-driver (jobs=1,
/// no cache, no journal, no isolation — byte-identical results to the
/// non-isolated path), streams heartbeats, writes the Result frame to
/// `out_fd`, and returns the process exit code.
int worker_main(int in_fd, int out_fd, const std::vector<ProgramInput>& inputs,
                const DriverOptions& opts);

/// Outcome of one sandboxed request execution (serve --sandbox). Either a
/// decoded report (ok) or a containment verdict: the degraded reason plus
/// the failure taxonomy the serve layer turns into counters. Worker deaths
/// are counted per kind across every attempt, retries included, so the
/// counters reflect fork bandwidth actually burned.
struct SandboxOutcome {
  enum class FailKind : uint8_t { None, Crash, Timeout, Oom };

  bool ok = false;
  ProgramReport report;        ///< valid only when ok
  std::string reason;          ///< degraded reason when !ok ("crashed: ...")
  FailKind kind = FailKind::None;  ///< final failure class when !ok
  unsigned retries = 0;        ///< re-forks performed after a death
  unsigned deaths_crash = 0;   ///< segfault / bad frame / unclassified exit
  unsigned deaths_timeout = 0; ///< heartbeat stall or RLIMIT_CPU (SIGXCPU)
  unsigned deaths_oom = 0;     ///< bad_alloc exit (114) or abort under rss cap
  uint64_t cache_hits = 0;     ///< child's cache-delta hit count
  uint64_t cache_misses = 0;   ///< child's cache-delta miss count (reanalyzed)
};

/// Runs one request in a forked one-shot worker: the child inherits the
/// daemon's state (including `cache` as a copy-on-write image, when
/// non-null), analyzes `input` under opts.deadline_ms / opts.max_rss_mb /
/// opts.retries, and ships the report back over SYNF frames. New cache
/// entries the child computed return via a CacheDelta frame and are folded
/// into `cache`, so subsequent forks stay warm. Worker telemetry merges
/// into the live registry, spans injected at `lane` (0 = drop spans).
/// Unlike run_supervised this is called from a pool thread of a
/// multi-threaded daemon. fork() from a threaded process is safe here
/// because glibc reinitializes its malloc locks across fork; the residual
/// hazard — the child inheriting some other subsystem's mutex mid-hold —
/// manifests as a child that never heartbeats, which the stall detector
/// reaps and retries like any other hang (DESIGN.md §3h).
SandboxOutcome run_sandboxed(const ProgramInput& input,
                             const DriverOptions& opts, ResultCache* cache,
                             uint32_t lane);

/// Supervisor-side driver: runs every input whose `done` flag is false
/// through the worker pool (at most `jobs` live workers), delivering
/// finished reports into `sink` and appending journal-worthy ones to
/// `journal`. `keys[i]` is input i's journal key. Must be called with no
/// other threads alive in the process (workers are plain forks).
void run_supervised(const std::vector<ProgramInput>& inputs,
                    const std::vector<uint64_t>& keys,
                    const std::vector<bool>& done, const DriverOptions& opts,
                    unsigned jobs, ReportSink& sink, JournalWriter& journal);

}  // namespace synat::driver
