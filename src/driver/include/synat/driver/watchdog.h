// Deadline enforcement for analysis tasks (DESIGN.md §3c).
//
// One background thread sleeps until the earliest registered deadline and
// trips the corresponding ExecBudget's cancellation flag. The watchdog
// never interrupts anything itself: the analysis thread notices the flag at
// its next cooperative check and unwinds with BudgetExceeded. This keeps
// the analysis hot loops free of clock reads (the budget's amortized
// self-check is only a fallback for embedders with no watchdog).
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "synat/support/budget.h"

namespace synat::driver {

class Watchdog {
 public:
  Watchdog();
  /// Joins the background thread. Safe on every path — including stack
  /// unwinding after run() threw mid-batch — and idempotent with stop().
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stops and joins the background thread early; any still-registered
  /// budget is cancelled ("shutdown") so no task waits on a deadline that
  /// can never trip. Idempotent; called by the destructor.
  void stop() noexcept;

  /// RAII registration of one task's budget. Arms `budget`'s deadline
  /// `delay_ms` from construction and registers it with the watchdog; the
  /// destructor deregisters it (the budget must outlive the Scope). A null
  /// watchdog or a zero delay is a no-op.
  class Scope {
   public:
    Scope(Watchdog* dog, ExecBudget& budget, uint64_t delay_ms);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Watchdog* dog_ = nullptr;
    ExecBudget* budget_ = nullptr;
  };

 private:
  struct Entry {
    ExecBudget* budget;
    uint64_t deadline_ns;
  };

  void add(ExecBudget* budget, uint64_t deadline_ns);
  void remove(ExecBudget* budget);
  void loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace synat::driver
