// Report model for the batch driver: plain-data summaries of one analysis
// run, aggregated by a ReportSink into deterministic JSON / SARIF / text.
//
// Everything here is decoupled from the AST so reports outlive the Program
// they were computed from (Programs are per-task and per-thread; reports are
// cached across tasks and runs). All ordering is by task/procedure index,
// never by pointer or hash order, so documents are byte-stable across
// --jobs settings.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "synat/obs/events.h"
#include "synat/obs/metrics.h"
#include "synat/obs/provenance.h"

namespace synat::driver {

/// Build version, reported by `synat serve` status and `--cache-stats`.
inline constexpr std::string_view kSynatVersion = "0.6.0";
/// Version of the "synat-batch-report" JSON schema emitted by to_json.
inline constexpr int kReportSchemaVersion = 5;

/// One annotated source line of a variant listing: the statement head with
/// its inferred atomicity type (the paper's Figure 3 presentation).
struct LineReport {
  uint32_t line = 0;     ///< 1-based source line (0 if synthesized)
  std::string atom;      ///< "B" "R" "L" "A" "N"
  std::string text;      ///< one-line statement head
};

/// One maximal atomic block of a variant body (paper Section 6.4).
struct BlockReport {
  std::string atom;      ///< composed atomicity of the block
  size_t units = 0;      ///< flattened statements merged into the block
};

/// One exceptional variant of a procedure.
struct VariantReport {
  std::string tag;       ///< "Deq'2", or the proc name for the sole variant
  std::string atomicity; ///< of the variant body
  std::vector<LineReport> lines;
  std::vector<BlockReport> blocks;
  /// Derivation records for this variant (per-event mover classes, the
  /// step-6 composition, atomic-block cuts). Empty unless the run collected
  /// provenance (DESIGN.md §3f).
  std::vector<obs::ProvenanceRecord> prov;
};

/// Per-procedure verdict; the unit stored in the memoization cache.
struct ProcReport {
  std::string name;
  uint32_t line = 0;  ///< 1-based source line of the declaration
  bool atomic = false;
  std::string atomicity;   ///< join over variant bodies
  bool no_variants = false;
  bool bailed_out = false;
  uint64_t key = 0;        ///< content-address this report is cached under
  std::vector<VariantReport> variants;
  /// Procedure-level derivation records (step-0 variant/purity facts and
  /// the step-7 verdict). Empty unless the run collected provenance.
  std::vector<obs::ProvenanceRecord> prov;

  /// Graceful degradation (DESIGN.md §3c): the analysis of this procedure
  /// was cut short (parse failure, deadline, variant budget) and
  /// `atomicity` is "unknown". Degraded reports are never cached.
  bool degraded = false;
  std::string degrade_kind;    ///< "parse" "deadline" "max-variants"
  std::string degrade_reason;  ///< human-readable detail
};

struct DiagReport {
  std::string severity;  ///< "error" "warning" "note"
  uint32_t line = 0, column = 0;
  std::string message;
};

enum class ProgramStatus : uint8_t {
  // Order matters: ReportSink::fail_program keeps the numerically largest
  // (worst) status when a program fails more than once.
  Ok,             ///< parsed and analyzed (possibly with degraded procs)
  Degraded,       ///< an isolated worker died (crash/OOM/stall); no verdict
  ParseError,     ///< front-end rejected the source
  LoadError,      ///< the input could not be read at all
  InternalError,  ///< an analysis stage threw (a synat bug)
};

std::string_view to_string(ProgramStatus s);

struct ProgramReport {
  std::string name;        ///< file path or corpus:<name> spec
  std::string fingerprint; ///< hex FNV-1a of printed program + options
  ProgramStatus status = ProgramStatus::Ok;
  std::vector<DiagReport> diagnostics;
  /// One entry per original procedure, in declaration order. Entries are
  /// shared with the cache (immutable once published).
  std::vector<std::shared_ptr<const ProcReport>> procs;

  bool all_atomic() const;
};

/// Power-of-two latency histogram: bucket i counts durations in
/// [2^i, 2^(i+1)) nanoseconds. Fixed 40 buckets cover ~18 minutes.
struct LatencyHistogram {
  static constexpr size_t kBuckets = 40;
  uint64_t count[kBuckets] = {};
  uint64_t total_ns = 0;
  uint64_t samples = 0;

  void record(uint64_t ns);
  void merge(const LatencyHistogram& other);
};

/// Names the pipeline stages the driver times.
enum class Stage : uint8_t { Parse, Analyze, Report, COUNT };
std::string_view to_string(Stage s);

struct Metrics {
  size_t programs = 0;
  size_t procedures = 0;
  size_t variants = 0;
  size_t parse_errors = 0;
  size_t load_errors = 0;
  size_t internal_errors = 0;
  size_t degraded = 0;        ///< procedures reported with ProcReport::degraded
  size_t crashed = 0;         ///< programs whose isolated worker died
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_rejected = 0;  ///< corrupt/stale snapshot entries skipped
  /// Journal counters are surfaced here (and on the CLI's stderr) but
  /// deliberately kept out of every rendered document: a `--resume` run
  /// must be byte-identical to the uninterrupted run it completes.
  size_t journal_replayed = 0;  ///< programs served from the journal
  size_t journal_rejected = 0;  ///< journals/records rejected as corrupt/stale
  size_t jobs = 0;
  LatencyHistogram stage[static_cast<size_t>(Stage::COUNT)];
  /// Registry delta for this run (obs counters/gauges/histograms), filled
  /// by BatchDriver::run. The deterministic counters feed the report's
  /// "counters" section (RenderOptions::counters); the rest only reach the
  /// Prometheus exporter.
  obs::MetricsSnapshot telemetry;
};

/// The documented exit-code convention, as one explicit precedence order:
/// 0 ok < 1 not-atomic/degraded < 2 usage < 3 parse/load < 4 internal.
/// Everything that combines codes — BatchReport::exit_code() and the CLI's
/// escalation paths — must go through these, never ad-hoc comparisons.
int exit_code_severity(int code);
int combine_exit_codes(int a, int b);

struct BatchReport {
  std::vector<ProgramReport> programs;
  Metrics metrics;

  size_t procs_not_atomic() const;
  /// Driver exit-code convention: 0 ok, 1 some procedure not atomic or
  /// degraded (including crashed workers), 3 parse/load errors, 4 internal
  /// errors; the highest-severity code wins (combine_exit_codes).
  int exit_code() const;
};

struct RenderOptions {
  /// Include the per-stage wall-time histograms in the metrics block.
  /// Off by default so default output is byte-deterministic across runs.
  bool timings = false;
  /// Include the deterministic obs counters (schema v4 "counters" section).
  /// Off by default for the same reason --timings is: a --resume run must
  /// stay byte-identical to the uninterrupted run, and journal counters
  /// necessarily differ between the two.
  bool counters = false;
  /// Include the "provenance" section (schema v5): structured derivation
  /// records per procedure and variant. Requires the run to have collected
  /// them (InferOptions::provenance); renders empty arrays otherwise.
  bool provenance = false;
};

/// Seeds a wide event (obs/events.h) with program `pr`'s verdict fields:
/// name, fingerprint, status, atomic, per-program exit code, and the
/// procedure/variant tallies. This is the shared core of batch and serve
/// event emission — both paths build their line from the same assembled
/// ProgramReport, which is what keeps one program's event byte-identical
/// across execution modes under the virtual clock.
obs::Event program_event(const ProgramReport& pr);

/// Deterministic renderers (pure functions of the report).
std::string to_json(const BatchReport& report, const RenderOptions& opts = {});
std::string to_sarif(const BatchReport& report);
std::string to_text(const BatchReport& report);
/// Human-readable derivation trees for `synat explain`: per-event mover
/// class → per-statement atomicity → verdict, citing the recorded theorems.
/// When `proc_filter` is non-empty only that procedure is rendered.
std::string to_explain(const BatchReport& report,
                       const std::string& proc_filter = {});

/// Thread-safe collector: workers publish per-program and per-procedure
/// results by index; finish() assembles the deterministic BatchReport.
class ReportSink {
 public:
  explicit ReportSink(size_t num_programs);

  /// Called once, under the sink lock, the first time program `i` becomes
  /// complete: all of its procedure slots are filled, or it failed. The
  /// journal hooks in here; replayed programs (set_program) never notify.
  using CompletionFn = std::function<void(size_t, const ProgramReport&)>;
  void set_on_complete(CompletionFn fn);

  /// Declares program `i`'s identity and procedure count (parse stage).
  void open_program(size_t i, std::string name, std::string fingerprint,
                    size_t num_procs);
  /// Publishes a failed program (parse, load, internal error, or a crashed
  /// isolated worker — ProgramStatus::Degraded).
  void fail_program(size_t i, std::string name, ProgramStatus status,
                    std::vector<DiagReport> diags);
  /// Appends diagnostics to program `i` without failing it (used for the
  /// contained errors of a recovered program whose status stays Ok).
  void add_diagnostics(size_t i, std::vector<DiagReport> diags);
  /// Publishes procedure `p` of program `i` (analysis stage).
  void set_proc(size_t i, size_t p, std::shared_ptr<const ProcReport> report);
  /// Publishes a whole program at once: a journal replay or a decoded
  /// worker result. Does not fire the completion callback.
  void set_program(size_t i, ProgramReport report);
  void add_stage_time(Stage s, uint64_t ns);
  /// Accumulates `ns` against program `i`'s own stage tally (the wide
  /// event's parse/analyze/report fields) as well as the batch histogram.
  void add_stage_time(size_t i, Stage s, uint64_t ns);
  /// Per-program accumulated stage wall times (ns), indexed by Stage.
  /// Consumed by the driver's event emission; valid after finish() too.
  std::array<uint64_t, static_cast<size_t>(Stage::COUNT)> program_stage_ns(
      size_t i) const;

  /// Assembles the final report. Call after the pool is idle.
  BatchReport finish(const Metrics& counters, size_t jobs);

 private:
  void mark_complete_locked(size_t i);

  mutable std::mutex mu_;
  std::vector<ProgramReport> programs_;
  std::vector<size_t> procs_pending_;  ///< unfilled slots per open program
  std::vector<bool> completed_;        ///< completion callback already fired
  std::vector<std::array<uint64_t, static_cast<size_t>(Stage::COUNT)>>
      stage_ns_;                       ///< per-program stage tallies
  CompletionFn on_complete_;
  Metrics metrics_;
};

}  // namespace synat::driver
