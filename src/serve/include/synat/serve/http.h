// Minimal HTTP/1.1 GET shim for the serve socket (DESIGN.md §3h). The
// daemon speaks newline-delimited JSON-RPC, but operational tooling wants
// plain HTTP: a stock Prometheus scrapes /metrics, and orchestrators probe
// /healthz and /readyz. Rather than a second listener, the connection
// reader sniffs the first line — "GET " or "HEAD " can never begin a JSON
// frame — answers the one request, and closes (Connection: close), so the
// shim needs no keep-alive, chunking, or header parsing.
//
// Routes:
//   /metrics  200 text/plain; version=0.0.4 (Prometheus text exposition)
//   /slo      200 application/json: rolling availability/latency SLO
//             windows with error-budget burn (DESIGN.md §3i)
//   /buildz   200 application/json: version, git describe, schema
//             versions, compiled feature flags
//   /healthz  200 while the daemon is up and not draining, else 503
//   /readyz   200 while accepting analysis work (not draining, admission
//             queue below its cap, availability error budget not
//             exhausted), else 503
//   anything else: 404; non-GET/HEAD methods: 405; malformed line: 400
//
// Pure functions over the request line so the fuzz harness (targets.h
// run_rpc) can drive the dispatcher byte-for-byte without sockets.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace synat::serve {

/// True when `line` opens an HTTP request this shim handles ("GET " /
/// "HEAD " verbatim — HTTP methods are case-sensitive). Other HTTP verbs
/// return false here and fall through to the JSON-RPC decoder, whose
/// kErrParse reply is the correct answer for a protocol we don't speak.
bool is_http_request(std::string_view line);

/// State the responses depend on, sampled at dispatch time.
struct HttpProbeState {
  bool draining = false;       ///< shutdown/drain began
  bool overloaded = false;     ///< admission queue at its cap
  bool slo_exhausted = false;  ///< availability error budget burned through
};

/// Body producers for the content routes. Each is invoked only when its
/// route is hit, so probe endpoints never pay for a registry snapshot or
/// an SLO window scan. A null handler renders that route as an empty body.
struct HttpHandlers {
  std::function<std::string()> metrics;  ///< /metrics (Prometheus text)
  std::function<std::string()> slo;      ///< /slo (JSON)
  std::function<std::string()> buildz;   ///< /buildz (JSON)
};

/// Builds the complete HTTP/1.1 response (status line, headers, body) for
/// one request line (without its terminator). Total: every input maps to
/// some valid response.
std::string handle_http_request(std::string_view request_line,
                                const HttpHandlers& handlers,
                                const HttpProbeState& state);

/// The /buildz document: version, git describe (SYNAT_GIT_DESCRIBE, baked
/// in by the build), on-disk schema versions (report/cache/journal), and
/// compiled feature flags. Pure, so the fuzz harness and tests can pin it.
std::string build_info_json();

}  // namespace synat::serve
