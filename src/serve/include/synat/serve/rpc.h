// JSON-RPC 2.0 framing for `synat serve`: one request or response per
// line (newline-delimited). This header is the protocol surface — request
// decoding with the standard error-code discrimination, and single-line
// response encoding. It knows nothing about methods or analysis; that is
// Service's job (service.h).
#pragma once

#include <string>
#include <string_view>

#include "synat/serve/json.h"

namespace synat::serve {

// Standard JSON-RPC 2.0 error codes...
inline constexpr int kErrParse = -32700;          ///< line is not JSON
inline constexpr int kErrInvalidRequest = -32600; ///< JSON, but not a request
inline constexpr int kErrMethodNotFound = -32601;
inline constexpr int kErrInvalidParams = -32602;
inline constexpr int kErrInternal = -32603;
// ...plus the daemon's server-defined range (-32000 to -32099):
/// The bounded request queue is full — the 429 analogue. The request was
/// not started; retry after in-flight work drains.
inline constexpr int kErrOverloaded = -32003;
/// The daemon is draining for shutdown and accepts no new analysis work.
inline constexpr int kErrShuttingDown = -32002;
/// The program's content fingerprint is quarantined: its last K sandboxed
/// executions all died (crash/hang/OOM), so the daemon refuses to fork for
/// it until the quarantine TTL expires (quarantine.h). Only issued with
/// --sandbox.
inline constexpr int kErrQuarantined = -32004;

struct RpcRequest {
  JsonValue id;        ///< String, Number or Null; meaningful iff has_id
  bool has_id = false; ///< absent id = notification: execute, never reply
  std::string method;
  JsonValue params;    ///< Object/Array as sent, Null when absent
};

/// code == 0 means success.
struct RpcError {
  int code = 0;
  std::string message;
};

/// Decodes one request line. kErrParse when the line is not valid JSON;
/// kErrInvalidRequest when it is JSON but not a JSON-RPC 2.0 request
/// (wrong "jsonrpc", missing/non-string "method", malformed "id" or
/// "params"). On kErrInvalidRequest, `out.id` is still populated when the
/// request carried a usable id, so the error response can echo it.
RpcError decode_request(std::string_view line, RpcRequest& out,
                        const JsonLimits& limits = {});

/// Response frames: single-line JSON, no trailing newline.
std::string encode_result(const JsonValue& id, JsonValue result);
/// Pass id == nullptr when the request's id is unknown (encodes id:null,
/// as JSON-RPC prescribes for undecodable requests).
std::string encode_error(const JsonValue* id, int code,
                         std::string_view message);

}  // namespace synat::serve
