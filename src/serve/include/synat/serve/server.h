// The `synat serve` transport: a long-lived daemon accepting many
// concurrent clients over a unix-domain socket or TCP, speaking
// newline-delimited JSON-RPC 2.0 (rpc.h) and dispatching to a shared
// Service (service.h). Connections whose first line is an HTTP GET/HEAD
// are answered by the HTTP shim (http.h: /metrics, /slo, /buildz,
// /healthz, /readyz) and closed.
//
// Lifecycle: serve() binds, accepts, and blocks until a shutdown RPC or
// SIGTERM/SIGINT, then drains gracefully — stop accepting, let in-flight
// analysis requests finish and their replies flush, unblock connection
// readers, persist the result-cache snapshot and trace file. A second
// signal during the drain is not special: the drain is already as fast as
// the in-flight work allows.
//
// Concurrency: one reader thread per connection; request execution happens
// on the Service's pool, so a slow analysis never blocks other clients or
// other requests on the same connection. Replies are written under a
// per-connection mutex (they may complete out of order; JSON-RPC ids are
// the correlation mechanism).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "synat/serve/service.h"

namespace synat::serve {

struct ServerOptions {
  /// Listen address: a path (anything containing '/') binds a unix-domain
  /// socket (an existing socket file is replaced); otherwise "host:port"
  /// binds TCP ("127.0.0.1:9123"; empty host means loopback).
  std::string listen;
  ServiceOptions service;
  /// Result-cache snapshot: loaded before accepting (warm start), saved
  /// after the drain. Empty disables persistence.
  std::string cache_file;
  /// Crash-only recovery (--snapshot-interval-s): with a cache_file set,
  /// also snapshot the cache every this many seconds while serving, so a
  /// SIGKILL loses at most one interval of warm cache and the restarted
  /// daemon resumes warm. 0 keeps snapshot-on-drain only. Writes are
  /// atomic (tmp + rename, cache.h), so a kill mid-snapshot never
  /// corrupts the previous one.
  unsigned snapshot_interval_s = 0;
  /// Chrome trace-event JSON written after the drain (per-request lanes).
  /// Empty disables tracing.
  std::string trace_out;
  /// Flight-recorder postmortem sink (--postmortem): opened before
  /// accepting and kept open for the process lifetime so the fatal-signal
  /// path (support/crash.h) can dump the last-N event ring without
  /// allocating or opening files. Also rewritten on worker deaths and
  /// quarantine trips. Empty disables incident dumps.
  std::string postmortem_path;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, accepts, and blocks until shutdown; returns the process exit
  /// code (0 clean shutdown, 2 bad listen address / bind failure).
  int serve();

  /// Thread-safe shutdown trigger (tests; the signal handler and the
  /// shutdown RPC use the same path). Idempotent.
  void request_stop();

  Service& service() { return service_; }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
  };

  int bind_listen(std::string* err);
  void reader_loop(std::shared_ptr<Conn> conn);

  ServerOptions opts_;
  Service service_;
  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;  ///< self-pipe: signals + shutdown RPC
  bool unix_socket_ = false;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
};

}  // namespace synat::serve
