// The `synat serve` method layer: decodes JSON-RPC requests, runs analysis
// methods on a thread pool against a shared hot result cache, and produces
// single-line response frames. Transport-agnostic — Server (server.h) feeds
// it lines from sockets, tests and the bench feed it lines directly.
//
// Methods:
//   analyze    {program, name?, provenance?, no_variants?, no_windows?,
//               no_conds?, counted?, max_paths?, max_variants?}
//              → {report, exit_code, cache_hits, procedures_reanalyzed}
//              `report` is the full schema-v5 batch JSON document,
//              byte-identical to `synat batch --format json` on the same
//              input and options (ServerDeterminism).
//   explain    analyze params + {proc?} → {explanation, exit_code}
//   status     {} → {version, schema_version, uptime_ms, cache_entries,
//                    options_fingerprint, in_flight, jobs, sandbox,
//                    quarantine_entries, latency_ns{p50,p95,p99}, slo{...}}
//   metrics    {} → {content_type, prometheus}  (Prometheus 0.0.4 text)
//   invalidate {} → {invalidated}               (drops the result cache)
//   shutdown   {} → {ok}; marks the service draining and fires the
//              shutdown hook so the owning server exits its accept loop.
//
// Concurrency/backpressure: analyze/explain are queued on the pool;
// at most `max_queue` may be queued or running — beyond that the request
// is refused immediately with kErrOverloaded (the 429 analogue), bounding
// both memory and latency under saturation. Cheap methods (status,
// metrics, invalidate, shutdown) are answered inline on the calling
// thread and never queue. After drain() begins, analysis methods are
// refused with kErrShuttingDown while in-flight work completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "synat/driver/cache.h"
#include "synat/driver/thread_pool.h"
#include "synat/obs/slo.h"
#include "synat/serve/quarantine.h"
#include "synat/serve/rpc.h"

namespace synat::driver {
struct ProgramInput;  // driver.h; only named in a private declaration here
}
namespace synat::obs {
class EventLog;  // events.h; the sink is owned by the server/CLI
}

namespace synat::serve {

struct ServiceOptions {
  unsigned jobs = 0;            ///< pool workers; 0 = hardware concurrency
  size_t max_queue = 64;        ///< queued+running analysis request cap
  size_t max_request_bytes = 8u << 20;

  /// Sandboxed execution (--sandbox): each analyze/explain runs in a forked
  /// one-shot worker (driver/worker.h run_sandboxed) under the per-request
  /// budgets below, so a crash/hang/OOM degrades that request — never the
  /// daemon. The worker inherits the hot cache via fork and ships back what
  /// it computed (CacheDelta), so sandboxing keeps the cache warm.
  bool sandbox = false;
  uint64_t sandbox_deadline_ms = 10'000;  ///< per-request deadline (0 = off)
  size_t sandbox_max_rss_mb = 0;          ///< per-worker RLIMIT_AS (0 = off)
  unsigned sandbox_retries = 1;           ///< re-forks after a worker death
  unsigned quarantine_threshold = 3;      ///< consecutive deaths to trip
  uint64_t quarantine_ttl_ms = 60'000;    ///< how long a trip blocks forks

  /// Wide-event sink (obs/events.h): one line per analyze/explain RPC,
  /// appended after the reply is produced. Not owned; may be null.
  obs::EventLog* events = nullptr;

  /// SLO objectives (DESIGN.md §3i), tracked over rolling real-time
  /// windows regardless of the virtual clock.
  uint64_t slo_window_ms = 60'000;
  double slo_availability = 0.99;       ///< fraction that must produce verdicts
  uint64_t slo_latency_ms = 1'000;      ///< "fast enough" threshold
  double slo_latency_objective = 0.99;  ///< fraction that must be fast
};

class Service {
 public:
  /// Called with one complete response frame (no trailing newline).
  /// Notifications (requests without an id) produce no callback. May be
  /// invoked from a pool worker thread after handle() returned.
  using Reply = std::function<void(std::string)>;

  explicit Service(ServiceOptions opts);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Decodes and dispatches one request line. Thread-safe: transports may
  /// call this concurrently from many connection readers.
  void handle(std::string line, Reply reply);

  /// Stops accepting analysis work and blocks until in-flight requests
  /// (and their replies) finish. Idempotent.
  void drain();

  /// True once a shutdown request was received or drain() began.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Invoked (once) when a shutdown RPC is accepted, from the handling
  /// thread; the owning transport should leave its accept loop and drain.
  void set_shutdown_hook(std::function<void()> hook);

  /// The shared result cache (snapshot load/save is the owner's business).
  driver::ResultCache& cache() { return cache_; }

  uint64_t uptime_ms() const;
  unsigned jobs() const { return jobs_; }
  size_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  /// True while the admission queue is at its cap — the /readyz signal.
  bool overloaded() const { return in_flight() >= opts_.max_queue; }
  bool sandboxed() const { return opts_.sandbox; }
  Quarantine& quarantine() { return quarantine_; }

  /// Rolling SLO status (availability + latency burn) rendered as the /slo
  /// JSON document; also embedded in the status RPC.
  std::string slo_json() const;
  /// True while the availability error budget is spent — flips /readyz.
  bool slo_exhausted() const;
  obs::SloTracker& slo() { return slo_; }

 private:
  /// Per-request observability: the wide event under construction and the
  /// request's SLO disposition, filled by the analyze paths and flushed by
  /// finish_obs() once the reply is handed to the transport.
  struct RequestObs {
    obs::Event ev;
    bool slo_ok = true;
  };

  std::string dispatch(const RpcRequest& req, uint32_t lane,
                       RequestObs* robs);
  std::string do_analyze(const RpcRequest& req, bool explain, uint32_t lane,
                         RequestObs* robs);
  std::string do_analyze_sandboxed(const RpcRequest& req, bool explain,
                                   driver::ProgramInput input, bool provenance,
                                   const std::string& proc_filter,
                                   uint32_t lane, RequestObs* robs);
  /// Stamps the request's real-clock duration, records the SLO sample and
  /// the latency percentile source, and appends the wide event (if a sink
  /// is configured).
  void finish_obs(RequestObs robs, uint64_t start_real_ns);
  std::string do_status(const RpcRequest& req);
  std::string do_metrics(const RpcRequest& req);
  std::string do_invalidate(const RpcRequest& req);
  std::string do_shutdown(const RpcRequest& req);

  ServiceOptions opts_;
  unsigned jobs_ = 1;
  driver::ResultCache cache_;
  Quarantine quarantine_;
  obs::SloTracker slo_;
  std::unique_ptr<driver::ThreadPool> pool_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> next_request_{0};
  std::function<void()> shutdown_hook_;
  std::atomic<bool> hook_fired_{false};
  uint64_t start_ns_ = 0;
};

}  // namespace synat::serve
