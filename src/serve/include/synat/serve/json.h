// Minimal JSON document model + parser for the `synat serve` RPC layer.
//
// The driver's JsonWriter is a streaming pretty-printer for reports; the
// daemon additionally needs to *read* untrusted request bodies and emit
// single-line response frames, so this header provides the other half: a
// small value tree, a strict recursive-descent parser with hard resource
// limits (depth, size — requests come from arbitrary clients and feed a
// fuzz target), and a compact encoder whose output never contains a
// newline, which is what makes newline-delimited framing trivial.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace synat::serve {

/// Resource bounds enforced during parsing. Exceeding either is a parse
/// error, not a crash: the decoder is the daemon's attack surface.
struct JsonLimits {
  size_t max_depth = 64;         ///< nesting of arrays/objects
  size_t max_bytes = 8u << 20;   ///< refuse documents larger than this
};

class JsonValue {
 public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  /// Original number token when parsed (or set by make_number for
  /// integers); the encoder re-emits it verbatim so ids and large counts
  /// round-trip exactly, without double-formatting artifacts.
  std::string num_raw;
  std::string str;
  std::vector<JsonValue> items;                              ///< Array
  std::vector<std::pair<std::string, JsonValue>> members;    ///< Object

  static JsonValue make_null() { return {}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(int64_t n);
  static JsonValue make_number(uint64_t n);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Object member by key (first occurrence), or nullptr.
  const JsonValue* get(std::string_view key) const;

  /// Builder conveniences; `add` asserts nothing — calling them on the
  /// wrong kind simply switches the value into that kind.
  JsonValue& add(std::string key, JsonValue v);  ///< object member, in order
  JsonValue& push(JsonValue v);                  ///< array element
};

struct JsonParse {
  bool ok = false;
  JsonValue value;
  std::string error;  ///< "offset N: message" when !ok
};

/// Parses exactly one JSON value (plus surrounding whitespace); trailing
/// garbage is an error. Accepts the full RFC 8259 grammar including
/// \uXXXX escapes with surrogate pairs.
JsonParse parse_json(std::string_view text, const JsonLimits& limits = {});

/// Compact single-line encoding: no spaces, no newlines. Control
/// characters in strings are escaped (\n, \t, ... or \u00XX), so the
/// output is always safe as one newline-delimited frame.
std::string encode_json(const JsonValue& v);
void encode_json(const JsonValue& v, std::string& out);

}  // namespace synat::serve
