// Per-program quarantine circuit breaker for sandboxed serve (DESIGN.md
// §3h). A program whose sandboxed execution keeps dying — every fork
// attempt crashed, hung, or OOMed — is a repeat offender: re-forking it on
// every request would let one hostile input monopolize the daemon's fork
// bandwidth. After `threshold` consecutive failed executions of the same
// content fingerprint the entry trips, and further requests short-circuit
// to kErrQuarantined (-32004) without forking at all, until `ttl_ms`
// elapses. Any successful execution resets the entry (the "consecutive"
// in the contract).
//
// The state machine per fingerprint:
//
//     (absent) --death--> counting(n) --death at n==threshold--> tripped
//     counting --success--> (absent)
//     tripped  --check after ttl--> (absent)   [one free retry]
//
// Time is passed in by the caller (milliseconds on any monotonic clock) so
// the tests can drive the TTL with a fake clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace synat::serve {

class Quarantine {
 public:
  struct Options {
    unsigned threshold = 3;     ///< consecutive failed executions to trip
    uint64_t ttl_ms = 60'000;   ///< how long a tripped entry blocks forks
    size_t max_entries = 4096;  ///< bound on tracked fingerprints
  };

  explicit Quarantine(Options opts) : opts_(opts) {}

  /// True while `fp` is tripped. A tripped entry past its TTL is erased
  /// (the offender gets a fresh fork) and reports false.
  bool check(uint64_t fp, uint64_t now_ms);

  /// Records one failed sandboxed execution (all fork attempts died).
  /// Returns true when this death tripped the breaker.
  bool record_death(uint64_t fp, uint64_t now_ms);

  /// A successful execution clears the consecutive-death count.
  void record_success(uint64_t fp);

  /// Tracked fingerprints (counting + tripped), for status reporting.
  size_t size() const;

 private:
  struct Entry {
    unsigned deaths = 0;
    uint64_t until_ms = 0;  ///< 0 = counting; nonzero = tripped until then
  };

  Options opts_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace synat::serve
