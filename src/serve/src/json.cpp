#include "synat/serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace synat::serve {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind = Kind::Bool;
  v.boolean = b;
  return v;
}

JsonValue JsonValue::make_number(int64_t n) {
  JsonValue v;
  v.kind = Kind::Number;
  v.number = static_cast<double>(n);
  v.num_raw = std::to_string(n);
  return v;
}

JsonValue JsonValue::make_number(uint64_t n) {
  JsonValue v;
  v.kind = Kind::Number;
  v.number = static_cast<double>(n);
  v.num_raw = std::to_string(n);
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind = Kind::Number;
  v.number = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind = Kind::String;
  v.str = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind = Kind::Array;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind = Kind::Object;
  return v;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

JsonValue& JsonValue::add(std::string key, JsonValue v) {
  kind = Kind::Object;
  members.emplace_back(std::move(key), std::move(v));
  return *this;
}

JsonValue& JsonValue::push(JsonValue v) {
  kind = Kind::Array;
  items.push_back(std::move(v));
  return *this;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonParse run() {
    JsonParse out;
    skip_ws();
    if (!value(out.value)) {
      out.error = error_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after value");
      out.error = error_;
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  bool fail(std::string_view msg) {
    if (error_.empty())
      error_ = "offset " + std::to_string(pos_) + ": " + std::string(msg);
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JsonValue::Kind::String; return string(out.str);
      case 't':
        out = JsonValue::make_bool(true);
        return literal("true");
      case 'f':
        out = JsonValue::make_bool(false);
        return literal("false");
      case 'n':
        out = JsonValue::make_null();
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    if (++depth_ > limits_.max_depth) return fail("nesting too deep");
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    if (++depth_ > limits_.max_depth) return fail("nesting too deep");
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool hex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<uint32_t>(c - 'A' + 10);
      else return fail("invalid \\u escape");
    }
    return true;
  }

  void append_utf8(std::string& s, uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening '"'
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("unpaired surrogate");
            pos_ += 2;
            uint32_t lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape");
      }
    }
  }

  bool number(JsonValue& out) {
    size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') return fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        return fail("invalid number: digits required after '.'");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        return fail("invalid number: digits required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    out.kind = JsonValue::Kind::Number;
    out.num_raw = std::string(text_.substr(start, pos_ - start));
    out.number = std::strtod(out.num_raw.c_str(), nullptr);
    if (!std::isfinite(out.number))
      return fail("number out of range");
    return true;
  }

  std::string_view text_;
  const JsonLimits& limits_;
  size_t pos_ = 0;
  size_t depth_ = 0;
  std::string error_;
};

}  // namespace

JsonParse parse_json(std::string_view text, const JsonLimits& limits) {
  if (text.size() > limits.max_bytes) {
    JsonParse out;
    out.error = "document exceeds " + std::to_string(limits.max_bytes) +
                " byte limit";
    return out;
  }
  return Parser(text, limits).run();
}

// ---------------------------------------------------------------------------
// Encoder

namespace {

void encode_string(std::string_view s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void encode_json(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::Null: out += "null"; break;
    case JsonValue::Kind::Bool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Kind::Number:
      if (!v.num_raw.empty()) {
        out += v.num_raw;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v.number);
        out += buf;
      }
      break;
    case JsonValue::Kind::String: encode_string(v.str, out); break;
    case JsonValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) out += ',';
        first = false;
        encode_json(item, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, val] : v.members) {
        if (!first) out += ',';
        first = false;
        encode_string(key, out);
        out += ':';
        encode_json(val, out);
      }
      out += '}';
      break;
    }
  }
}

std::string encode_json(const JsonValue& v) {
  std::string out;
  encode_json(v, out);
  return out;
}

}  // namespace synat::serve
