#include "synat/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "synat/obs/export.h"
#include "synat/obs/metrics.h"
#include "synat/obs/recorder.h"
#include "synat/obs/trace.h"
#include "synat/serve/http.h"
#include "synat/serve/rpc.h"
#include "synat/support/crash.h"

namespace synat::serve {

namespace {

// Self-pipe write end for the async-signal-safe SIGTERM/SIGINT handler.
// One daemon per process: serve() is the CLI's terminal call.
volatile sig_atomic_t g_wake_fd = -1;

void on_signal(int) {
  int fd = g_wake_fd;
  if (fd >= 0) {
    char b = 1;
    // The pipe is non-blocking; a full pipe means a wakeup is already
    // pending, which is all we need.
    [[maybe_unused]] ssize_t n = write(fd, &b, 1);
  }
}

uint64_t steady_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool send_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone; the reply is undeliverable, not an error
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.service) {}

Server::~Server() {
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_rd_ >= 0) close(wake_rd_);
  if (wake_wr_ >= 0) close(wake_wr_);
}

void Server::request_stop() {
  int fd = wake_wr_;
  if (fd >= 0) {
    char b = 1;
    [[maybe_unused]] ssize_t n = write(fd, &b, 1);
  }
}

int Server::bind_listen(std::string* err) {
  if (opts_.listen.empty()) {
    *err = "no listen address";
    return -1;
  }
  if (opts_.listen.find('/') != std::string::npos) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.listen.size() >= sizeof(addr.sun_path)) {
      *err = "unix socket path too long: " + opts_.listen;
      return -1;
    }
    std::memcpy(addr.sun_path, opts_.listen.c_str(), opts_.listen.size() + 1);
    int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      *err = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    // A stale socket file from a previous daemon would make bind fail;
    // replacing it is the conventional unix-daemon behavior.
    unlink(opts_.listen.c_str());
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        listen(fd, 64) < 0) {
      *err = "bind " + opts_.listen + ": " + std::strerror(errno);
      close(fd);
      return -1;
    }
    unix_socket_ = true;
    return fd;
  }

  size_t colon = opts_.listen.rfind(':');
  if (colon == std::string::npos) {
    *err = "listen address must be a socket path or host:port, got '" +
           opts_.listen + "'";
    return -1;
  }
  std::string host = opts_.listen.substr(0, colon);
  std::string port = opts_.listen.substr(colon + 1);
  if (host.empty()) host = "127.0.0.1";
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  if (int rc = getaddrinfo(host.c_str(), port.c_str(), &hints, &res); rc != 0) {
    *err = "resolve " + opts_.listen + ": " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && listen(fd, 64) == 0)
      break;
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) *err = "bind " + opts_.listen + ": " + std::strerror(errno);
  return fd;
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  const size_t max_line = opts_.service.max_request_bytes + 4096;
  std::string buf;
  char chunk[64 * 1024];
  bool first_line = true;
  for (;;) {
    ssize_t n = recv(conn->fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, or shutdown() during drain
    buf.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl; (nl = buf.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string line = buf.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (first_line && is_http_request(line)) {
        // HTTP shim (http.h): a scraper or probe, not a JSON-RPC client.
        // Answer the request line, ignore the header block that follows,
        // and close — the shim is strictly one exchange per connection.
        HttpHandlers handlers;
        handlers.metrics = [] {
          return obs::to_prometheus(obs::registry().snapshot());
        };
        handlers.slo = [this] { return service_.slo_json(); };
        handlers.buildz = [] { return build_info_json(); };
        std::string body = handle_http_request(
            line, handlers,
            {service_.draining(), service_.overloaded(),
             service_.slo_exhausted()});
        {
          std::lock_guard<std::mutex> lock(conn->write_mu);
          send_all(conn->fd, body.data(), body.size());
        }
        shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      first_line = false;
      service_.handle(std::move(line), [conn](std::string body) {
        body += '\n';
        std::lock_guard<std::mutex> lock(conn->write_mu);
        send_all(conn->fd, body.data(), body.size());
      });
    }
    buf.erase(0, start);
    if (buf.size() > max_line) {
      // A frame longer than any valid request: reject and drop the
      // connection rather than buffer unboundedly.
      std::string body =
          encode_error(nullptr, kErrInvalidRequest, "request line too long") +
          "\n";
      std::lock_guard<std::mutex> lock(conn->write_mu);
      send_all(conn->fd, body.data(), body.size());
      break;
    }
  }
  shutdown(conn->fd, SHUT_RDWR);
}

int Server::serve() {
  std::string err;
  listen_fd_ = bind_listen(&err);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "synat serve: %s\n", err.c_str());
    return 2;
  }

  int pipefd[2];
  if (pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
    std::fprintf(stderr, "synat serve: pipe: %s\n", std::strerror(errno));
    return 2;
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  g_wake_fd = wake_wr_;
  service_.set_shutdown_hook([this] { request_stop(); });

  struct sigaction sa{}, old_term{}, old_int{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, &old_term);
  sigaction(SIGINT, &sa, &old_int);

  // Arm the flight recorder's incident sink before accepting: the fd must
  // already be open when a fatal signal arrives (the handler cannot open
  // files), and worker-death dumps can happen on the very first request.
  bool crash_armed = false;
  if (!opts_.postmortem_path.empty()) {
    int pfd = open(opts_.postmortem_path.c_str(),
                   O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
    if (pfd < 0) {
      std::fprintf(stderr, "synat serve: warning: cannot open %s: %s\n",
                   opts_.postmortem_path.c_str(), std::strerror(errno));
    } else {
      obs::recorder().set_postmortem_fd(pfd);
      support::crash::arm([](int sig) {
        obs::Recorder::instance().dump_incident("fatal_signal", sig);
      });
      crash_armed = true;
    }
  }

  if (!opts_.cache_file.empty()) service_.cache().load(opts_.cache_file);
  std::fprintf(stderr, "synat serve: listening on %s (%u jobs)\n",
               opts_.listen.c_str(), service_.jobs());

  // Crash-only snapshot cycle: the accept loop doubles as the snapshot
  // timer, so there is no extra thread to coordinate during the drain.
  const uint64_t snap_interval_ms =
      uint64_t{opts_.snapshot_interval_s} * 1000;
  const bool periodic_snapshots =
      !opts_.cache_file.empty() && snap_interval_ms > 0;
  uint64_t next_snap_ms =
      periodic_snapshots ? steady_ms() + snap_interval_ms : 0;

  for (;;) {
    int timeout = -1;
    if (periodic_snapshots) {
      uint64_t now = steady_ms();
      timeout = next_snap_ms > now
                    ? static_cast<int>(std::min<uint64_t>(
                          next_snap_ms - now, 3'600'000))
                    : 0;
    }
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    int rc = poll(fds, 2, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (periodic_snapshots && steady_ms() >= next_snap_ms) {
      static obs::Counter& snapshots =
          obs::registry().counter("synat_serve_snapshots_total", false);
      if (service_.cache().save(opts_.cache_file))
        snapshots.inc();
      else
        std::fprintf(stderr,
                     "synat serve: warning: could not snapshot cache to %s\n",
                     opts_.cache_file.c_str());
      next_snap_ms = steady_ms() + snap_interval_ms;
    }
    if (rc == 0) continue;
    if (fds[1].revents != 0) break;  // signal or shutdown RPC
    if ((fds[0].revents & POLLIN) == 0) continue;
    int cfd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(std::move(conn)); });
  }

  // Graceful drain. Order matters:
  //  1. stop accepting (close the listen socket, remove the socket file);
  //  2. wait for queued/in-flight analysis to finish — their replies are
  //     written by the pool workers, so clients see every response to a
  //     request that was admitted before the shutdown;
  //  3. only then unblock the connection readers and join them;
  //  4. persist the cache and trace.
  std::fprintf(stderr, "synat serve: draining\n");
  close(listen_fd_);
  listen_fd_ = -1;
  if (unix_socket_) unlink(opts_.listen.c_str());
  service_.drain();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& t : readers_) t.join();
  for (auto& conn : conns_) close(conn->fd);
  readers_.clear();
  conns_.clear();

  sigaction(SIGTERM, &old_term, nullptr);
  sigaction(SIGINT, &old_int, nullptr);
  g_wake_fd = -1;
  if (crash_armed) {
    support::crash::disarm();
    int pfd = obs::recorder().postmortem_fd();
    obs::recorder().set_postmortem_fd(-1);
    if (pfd >= 0) close(pfd);
  }

  if (!opts_.cache_file.empty() &&
      !service_.cache().save(opts_.cache_file))
    std::fprintf(stderr, "synat serve: warning: could not save cache to %s\n",
                 opts_.cache_file.c_str());
  if (!opts_.trace_out.empty()) {
    std::vector<obs::SpanRecord> spans = obs::Tracer::instance().drain();
    std::string trace =
        obs::to_chrome_trace(spans, obs::Tracer::instance().lane_names());
    std::string werr;
    if (!obs::write_file(opts_.trace_out, trace, &werr))
      std::fprintf(stderr, "synat serve: warning: %s\n", werr.c_str());
  }
  std::fprintf(stderr, "synat serve: stopped\n");
  return 0;
}

}  // namespace synat::serve
