#include "synat/serve/http.h"

#include "synat/driver/cache.h"
#include "synat/driver/journal.h"
#include "synat/driver/report.h"

namespace synat::serve {

namespace {

std::string make_response(std::string_view status, std::string_view type,
                          std::string_view body, bool head) {
  std::string out;
  out.reserve(128 + (head ? 0 : body.size()));
  out += "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  // HEAD advertises the entity headers (Content-Length of what GET would
  // send) but omits the body.
  if (!head) out += body;
  return out;
}

std::string call(const std::function<std::string()>& fn) {
  return fn ? fn() : std::string();
}

}  // namespace

bool is_http_request(std::string_view line) {
  return line.substr(0, 4) == "GET " || line.substr(0, 5) == "HEAD ";
}

std::string handle_http_request(std::string_view request_line,
                                const HttpHandlers& handlers,
                                const HttpProbeState& state) {
  // Request line shape: METHOD SP request-target SP HTTP-version. Anything
  // that does not split into exactly those three parts is a 400.
  size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos)
    return make_response("400 Bad Request", "text/plain", "bad request\n",
                         false);
  size_t sp2 = request_line.find(' ', sp1 + 1);
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target =
      sp2 == std::string_view::npos
          ? request_line.substr(sp1 + 1)
          : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version =
      sp2 == std::string_view::npos ? std::string_view{}
                                    : request_line.substr(sp2 + 1);
  const bool head = method == "HEAD";
  if (!head && method != "GET")
    return make_response("405 Method Not Allowed", "text/plain",
                         "only GET and HEAD\n", false);
  if (version.substr(0, 5) != "HTTP/" || target.empty() || target[0] != '/')
    return make_response("400 Bad Request", "text/plain", "bad request\n",
                         head);
  // Query strings are ignored, not rejected: probes often append one.
  target = target.substr(0, target.find('?'));
  if (target == "/metrics")
    return make_response("200 OK", "text/plain; version=0.0.4",
                         call(handlers.metrics), head);
  if (target == "/slo")
    return make_response("200 OK", "application/json", call(handlers.slo),
                         head);
  if (target == "/buildz")
    return make_response("200 OK", "application/json", call(handlers.buildz),
                         head);
  if (target == "/healthz") {
    return state.draining
               ? make_response("503 Service Unavailable", "text/plain",
                               "draining\n", head)
               : make_response("200 OK", "text/plain", "ok\n", head);
  }
  if (target == "/readyz") {
    if (state.draining)
      return make_response("503 Service Unavailable", "text/plain",
                           "draining\n", head);
    if (state.overloaded)
      return make_response("503 Service Unavailable", "text/plain",
                           "overloaded\n", head);
    if (state.slo_exhausted)
      return make_response("503 Service Unavailable", "text/plain",
                           "slo error budget exhausted\n", head);
    return make_response("200 OK", "text/plain", "ready\n", head);
  }
  return make_response("404 Not Found", "text/plain", "not found\n", head);
}

#ifndef SYNAT_GIT_DESCRIBE
#define SYNAT_GIT_DESCRIBE "unknown"
#endif

std::string build_info_json() {
  std::string out = "{\"version\":\"";
  out += driver::kSynatVersion;
  out += "\",\"git\":\"" SYNAT_GIT_DESCRIBE "\",\"schemas\":{\"report\":";
  out += std::to_string(driver::kReportSchemaVersion);
  out += ",\"cache\":";
  out += std::to_string(driver::kCacheSchemaVersion);
  out += ",\"journal\":";
  out += std::to_string(driver::kJournalSchemaVersion);
  out += "},\"features\":{\"fault_injection\":";
#ifdef SYNAT_FAULT_INJECTION
  out += "true";
#else
  out += "false";
#endif
  out += ",\"fuzz\":";
#ifdef SYNAT_FUZZ_ENABLED
  out += "true";
#else
  out += "false";
#endif
  out += "}}";
  return out;
}

}  // namespace synat::serve
