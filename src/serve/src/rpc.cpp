#include "synat/serve/rpc.h"

namespace synat::serve {

RpcError decode_request(std::string_view line, RpcRequest& out,
                        const JsonLimits& limits) {
  JsonParse parsed = parse_json(line, limits);
  if (!parsed.ok) return {kErrParse, "parse error: " + parsed.error};
  JsonValue& doc = parsed.value;
  if (!doc.is_object()) return {kErrInvalidRequest, "request must be an object"};

  // Populate the id first: even an invalid request should echo a usable id.
  if (const JsonValue* id = doc.get("id")) {
    if (!id->is_string() && !id->is_number() && !id->is_null())
      return {kErrInvalidRequest, "id must be a string, number or null"};
    out.id = *id;
    out.has_id = true;
  }

  const JsonValue* version = doc.get("jsonrpc");
  if (version == nullptr || !version->is_string() || version->str != "2.0")
    return {kErrInvalidRequest, "jsonrpc must be the string \"2.0\""};

  const JsonValue* method = doc.get("method");
  if (method == nullptr || !method->is_string() || method->str.empty())
    return {kErrInvalidRequest, "method must be a non-empty string"};
  out.method = method->str;

  if (const JsonValue* params = doc.get("params")) {
    if (!params->is_object() && !params->is_array())
      return {kErrInvalidRequest, "params must be an object or array"};
    out.params = *params;
  }
  return {};
}

std::string encode_result(const JsonValue& id, JsonValue result) {
  JsonValue doc = JsonValue::make_object();
  doc.add("jsonrpc", JsonValue::make_string("2.0"));
  doc.add("id", id);
  doc.add("result", std::move(result));
  return encode_json(doc);
}

std::string encode_error(const JsonValue* id, int code,
                         std::string_view message) {
  JsonValue doc = JsonValue::make_object();
  doc.add("jsonrpc", JsonValue::make_string("2.0"));
  doc.add("id", id != nullptr ? *id : JsonValue::make_null());
  JsonValue err = JsonValue::make_object();
  err.add("code", JsonValue::make_number(static_cast<int64_t>(code)));
  err.add("message", JsonValue::make_string(std::string(message)));
  doc.add("error", std::move(err));
  return encode_json(doc);
}

}  // namespace synat::serve
