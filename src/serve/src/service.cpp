#include "synat/serve/service.h"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "synat/driver/driver.h"
#include "synat/driver/worker.h"
#include "synat/obs/events.h"
#include "synat/obs/export.h"
#include "synat/obs/metrics.h"
#include "synat/obs/recorder.h"
#include "synat/obs/trace.h"
#include "synat/support/hash.h"

namespace synat::serve {

namespace {

/// Wall-adjacent monotonic milliseconds for the quarantine TTL and SLO
/// windows. Not the obs clock: a virtual-clock test run must still see
/// real TTL decay and real SLO time.
uint64_t steady_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Real steady-clock nanoseconds for SLO latency samples — never the
/// virtual clock (quantiles of a virtual clock would be fiction).
uint64_t real_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The display name a refused request would have analyzed under, for its
/// wide event (accepted requests take the name from the assembled report).
std::string request_name(const JsonValue& params) {
  if (params.is_object()) {
    const JsonValue* name = params.get("name");
    if (name != nullptr && name->is_string()) return name->str;
  }
  return "rpc";
}

std::string hex64(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4)
    s[static_cast<size_t>(i)] = digits[v & 0xf];
  return s;
}

/// Reads the analyze/explain params into a ProgramInput + render settings.
/// The option names mirror the `synat batch` flags one-to-one so a client
/// can reproduce any CLI run over RPC.
RpcError parse_analyze_params(const JsonValue& params,
                              driver::ProgramInput& input, bool& provenance,
                              std::string& proc_filter) {
  if (!params.is_object())
    return {kErrInvalidParams, "params must be an object"};
  const JsonValue* program = params.get("program");
  if (program == nullptr || !program->is_string())
    return {kErrInvalidParams, "params.program must be a string of SYNL source"};
  input.source = program->str;
  input.name = "rpc";
  if (const JsonValue* name = params.get("name")) {
    if (!name->is_string())
      return {kErrInvalidParams, "params.name must be a string"};
    input.name = name->str;
  }
  auto flag = [&params](const char* key, bool& out) -> bool {
    const JsonValue* v = params.get(key);
    if (v == nullptr) return true;
    if (!v->is_bool()) return false;
    out = v->boolean;
    return true;
  };
  bool no_variants = false, no_windows = false, no_conds = false;
  if (!flag("provenance", provenance))
    return {kErrInvalidParams, "params.provenance must be a boolean"};
  if (!flag("no_variants", no_variants))
    return {kErrInvalidParams, "params.no_variants must be a boolean"};
  if (!flag("no_windows", no_windows))
    return {kErrInvalidParams, "params.no_windows must be a boolean"};
  if (!flag("no_conds", no_conds))
    return {kErrInvalidParams, "params.no_conds must be a boolean"};
  input.opts.variant_opts.disable = no_variants;
  input.opts.use_window_rule = !no_windows;
  input.opts.use_local_conditions = !no_conds;
  input.opts.provenance = provenance;
  if (const JsonValue* counted = params.get("counted")) {
    if (!counted->is_array())
      return {kErrInvalidParams, "params.counted must be an array of strings"};
    for (const JsonValue& c : counted->items) {
      if (!c.is_string())
        return {kErrInvalidParams, "params.counted entries must be strings"};
      input.opts.counted_cas.push_back(c.str);
    }
  }
  auto count = [&params](const char* key, size_t& out) -> bool {
    const JsonValue* v = params.get(key);
    if (v == nullptr) return true;
    if (!v->is_number() || v->number < 0) return false;
    out = static_cast<size_t>(v->number);
    return true;
  };
  if (!count("max_paths", input.opts.variant_opts.max_paths))
    return {kErrInvalidParams, "params.max_paths must be a non-negative number"};
  if (!count("max_variants", input.opts.variant_opts.max_variants))
    return {kErrInvalidParams,
            "params.max_variants must be a non-negative number"};
  if (const JsonValue* proc = params.get("proc")) {
    if (!proc->is_string())
      return {kErrInvalidParams, "params.proc must be a string"};
    proc_filter = proc->str;
  }
  return {};
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(opts),
      quarantine_(Quarantine::Options{opts.quarantine_threshold,
                                      opts.quarantine_ttl_ms,
                                      /*max_entries=*/4096}),
      slo_(obs::SloTracker::Options{
          opts.slo_window_ms, opts.slo_availability,
          opts.slo_latency_ms * 1'000'000, opts.slo_latency_objective}) {
  jobs_ = opts_.jobs == 0
              ? std::max(1u, std::thread::hardware_concurrency())
              : opts_.jobs;
  pool_ = std::make_unique<driver::ThreadPool>(jobs_);
  start_ns_ = obs::now_ns();
}

Service::~Service() { drain(); }

uint64_t Service::uptime_ms() const {
  return (obs::now_ns() - start_ns_) / 1'000'000;
}

void Service::set_shutdown_hook(std::function<void()> hook) {
  shutdown_hook_ = std::move(hook);
}

void Service::drain() {
  draining_.store(true, std::memory_order_release);
  pool_->wait_idle();
}

void Service::handle(std::string line, Reply reply) {
  static obs::Counter& requests =
      obs::registry().counter("synat_serve_requests_total", false);
  static obs::Counter& invalid =
      obs::registry().counter("synat_serve_invalid_total", false);
  static obs::Counter& rejected =
      obs::registry().counter("synat_serve_rejected_total", false);
  static obs::Gauge& in_flight_gauge =
      obs::registry().gauge("synat_serve_in_flight");
  requests.inc();

  const uint64_t seq = next_request_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t req_start = obs::timing_enabled() ? obs::now_ns() : 0;
  const uint64_t start_real = real_now_ns();

  RpcRequest req;
  RpcError err;
  {
    obs::SpanScope decode_span(obs::StageId::RpcDecode);
    if (line.size() > opts_.max_request_bytes) {
      err = {kErrInvalidRequest,
             "request exceeds " + std::to_string(opts_.max_request_bytes) +
                 " bytes"};
    } else {
      JsonLimits limits;
      limits.max_bytes = opts_.max_request_bytes;
      err = decode_request(line, req, limits);
    }
  }

  // Per-request lane tracing: the whole request lifetime becomes one span
  // in its own lane named after the request, so a trace of a busy daemon
  // reads like a swimlane diagram of overlapping requests.
  auto finish_request = [seq, req_start, method = req.method] {
    if (req_start == 0) return;
    uint64_t dur = obs::now_ns() - req_start;
    uint32_t flags = obs::flags();
    if (flags & obs::kMetricsFlag)
      obs::registry().stage_histogram(obs::StageId::RpcRequest).observe(dur);
    if (flags & obs::kTraceFlag) {
      uint32_t lane = static_cast<uint32_t>(1 + seq);
      obs::Tracer::instance().inject(
          lane, {{static_cast<uint32_t>(obs::StageId::RpcRequest), lane, 0,
                  req_start, dur}});
      obs::Tracer::instance().set_lane_name(
          lane, "rpc #" + std::to_string(seq) +
                    (method.empty() ? "" : " " + method));
    }
  };
  if (err.code != 0) {
    // An undecodable line cannot be identified as a notification, so it
    // always gets a response (JSON-RPC prescribes id:null).
    invalid.inc();
    if (reply)
      reply(encode_error(req.has_id ? &req.id : nullptr, err.code,
                         err.message));
    finish_request();
    return;
  }

  // Notifications (no id) execute but never produce a response frame.
  auto respond = [reply = std::move(reply), has_id = req.has_id](
                     std::string body) {
    if (has_id && reply) reply(std::move(body));
  };

  if (req.method == "analyze" || req.method == "explain") {
    // A refused request still gets a wide event and an SLO sample: load
    // shedding is exactly the kind of incident the event log must narrate.
    auto refuse = [this, start_real](const JsonValue& params, int code,
                                     const char* kind) {
      RequestObs robs;
      robs.ev.name = request_name(params);
      robs.ev.status = "error";
      robs.ev.error_code = code;
      robs.ev.error_kind = kind;
      robs.slo_ok = false;
      finish_obs(std::move(robs), start_real);
    };
    if (draining()) {
      respond(encode_error(&req.id, kErrShuttingDown,
                           "server is shutting down"));
      refuse(req.params, kErrShuttingDown, "shutting_down");
      finish_request();
      return;
    }
    // Admission control before the queue: fetch_add is the reservation, so
    // concurrent arrivals over the cap are refused without ever queueing —
    // bounded memory and bounded latency under saturation.
    size_t admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (admitted >= opts_.max_queue) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected.inc();
      respond(encode_error(&req.id, kErrOverloaded,
                           "server overloaded: " +
                               std::to_string(opts_.max_queue) +
                               " requests already queued or running"));
      refuse(req.params, kErrOverloaded, "overloaded");
      finish_request();
      return;
    }
    in_flight_gauge.set(admitted + 1);
    pool_->submit([this, seq, start_real, req = std::move(req),
                   respond = std::move(respond), finish_request]() mutable {
      RequestObs robs;
      robs.ev.name = request_name(req.params);
      std::string body;
      {
        obs::SpanScope exec_span(obs::StageId::RpcExecute);
        body = dispatch(req, static_cast<uint32_t>(1 + seq), &robs);
      }
      // Release the admission slot before the reply leaves: a client that
      // observes its response must also observe the slot free (status right
      // after a reply reports in_flight 0, no reservation still in limbo).
      size_t now = in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      obs::registry().gauge("synat_serve_in_flight").set(now);
      respond(std::move(body));
      finish_request();
      finish_obs(std::move(robs), start_real);
    });
    return;
  }

  // Cheap methods answer inline on the calling thread: they must stay
  // responsive (status/metrics are the probes) even when the pool is
  // saturated with analysis work.
  std::string body;
  {
    obs::SpanScope exec_span(obs::StageId::RpcExecute);
    body = dispatch(req, static_cast<uint32_t>(1 + seq), nullptr);
  }
  if (body.empty()) {
    invalid.inc();
    body = encode_error(req.has_id ? &req.id : nullptr, kErrMethodNotFound,
                        "unknown method '" + req.method + "'");
  }
  respond(std::move(body));
  finish_request();
  // The shutdown hook fires only after the reply was handed to the
  // transport: firing it from do_shutdown() would race the server's drain
  // (which shuts the connections down) against the reply still being
  // written, and the client could lose the {"ok":true} frame.
  if (req.method == "shutdown" && !hook_fired_.exchange(true) &&
      shutdown_hook_)
    shutdown_hook_();
}

std::string Service::dispatch(const RpcRequest& req, uint32_t lane,
                              RequestObs* robs) {
  if (req.method == "analyze")
    return do_analyze(req, /*explain=*/false, lane, robs);
  if (req.method == "explain")
    return do_analyze(req, /*explain=*/true, lane, robs);
  if (req.method == "status") return do_status(req);
  if (req.method == "metrics") return do_metrics(req);
  if (req.method == "invalidate") return do_invalidate(req);
  if (req.method == "shutdown") return do_shutdown(req);
  return {};  // handle() turns this into kErrMethodNotFound
}

std::string Service::do_analyze(const RpcRequest& req, bool explain,
                                uint32_t lane, RequestObs* robs) {
  static obs::Counter& serve_hits =
      obs::registry().counter("synat_serve_cache_hits_total", false);
  static obs::Counter& serve_misses =
      obs::registry().counter("synat_serve_cache_misses_total", false);
  static obs::Counter& reanalyzed =
      obs::registry().counter("synat_serve_procedures_reanalyzed_total", false);

  driver::ProgramInput input;
  bool provenance = explain;  // explain needs the derivation records
  std::string proc_filter;
  if (RpcError err =
          parse_analyze_params(req.params, input, provenance, proc_filter);
      err.code != 0) {
    // Invalid params are the client's fault: the event records the refusal
    // but the request still counts as served for the availability SLO.
    if (robs != nullptr) {
      robs->ev.status = "error";
      robs->ev.error_code = err.code;
      robs->ev.error_kind = "invalid_params";
    }
    return encode_error(&req.id, err.code, err.message);
  }
  if (explain) input.opts.provenance = true;

  if (opts_.sandbox)
    return do_analyze_sandboxed(req, explain, std::move(input), provenance,
                                proc_filter, lane, robs);

  driver::DriverOptions dopts;
  dopts.jobs = 1;  // index-addressed assembly makes jobs irrelevant to bytes
  dopts.use_cache = true;
  driver::BatchDriver drv(dopts, &cache_);
  driver::BatchReport report;
  try {
    report = drv.run({std::move(input)});
  } catch (const std::exception& e) {
    if (robs != nullptr) {
      robs->ev.status = "internal_error";
      robs->ev.error_code = kErrInternal;
      robs->ev.error_kind = "exception";
      robs->slo_ok = false;
    }
    return encode_error(&req.id, kErrInternal, e.what());
  }
  serve_hits.inc(report.metrics.cache_hits);
  serve_misses.inc(report.metrics.cache_misses);
  reanalyzed.inc(report.metrics.cache_misses);
  if (robs != nullptr && !report.programs.empty()) {
    robs->ev = driver::program_event(report.programs[0]);
    robs->ev.cache_hits = report.metrics.cache_hits;
    robs->ev.cache_misses = report.metrics.cache_misses;
    robs->slo_ok =
        report.metrics.crashed == 0 && report.metrics.internal_errors == 0;
  }

  JsonValue result = JsonValue::make_object();
  if (explain) {
    result.add("explanation",
               JsonValue::make_string(driver::to_explain(report, proc_filter)));
  } else {
    // ServerDeterminism: the rendered document must be byte-identical to
    // `synat batch --format json` on the same input, which runs with a
    // cold per-invocation cache. The daemon's whole point is a hot cache,
    // so its live hit/miss/rejected numbers are moved to the RPC envelope
    // and zeroed in the document before rendering.
    uint64_t hits = report.metrics.cache_hits;
    uint64_t misses = report.metrics.cache_misses;
    report.metrics.cache_hits = 0;
    report.metrics.cache_misses = 0;
    report.metrics.cache_rejected = 0;
    driver::RenderOptions ropts;
    ropts.provenance = provenance;
    result.add("report", JsonValue::make_string(driver::to_json(report, ropts)));
    result.add("cache_hits", JsonValue::make_number(hits));
    result.add("procedures_reanalyzed", JsonValue::make_number(misses));
  }
  result.add("exit_code",
             JsonValue::make_number(static_cast<int64_t>(report.exit_code())));
  return encode_result(req.id, std::move(result));
}

std::string Service::do_analyze_sandboxed(const RpcRequest& req, bool explain,
                                          driver::ProgramInput input,
                                          bool provenance,
                                          const std::string& proc_filter,
                                          uint32_t lane, RequestObs* robs) {
  static obs::Counter& serve_hits =
      obs::registry().counter("synat_serve_cache_hits_total", false);
  static obs::Counter& serve_misses =
      obs::registry().counter("synat_serve_cache_misses_total", false);
  static obs::Counter& reanalyzed =
      obs::registry().counter("synat_serve_procedures_reanalyzed_total", false);
  static obs::Counter& worker_crashes =
      obs::registry().counter("synat_serve_worker_crashes_total", false);
  static obs::Counter& worker_timeouts =
      obs::registry().counter("synat_serve_worker_timeouts_total", false);
  static obs::Counter& worker_ooms =
      obs::registry().counter("synat_serve_worker_oom_kills_total", false);
  static obs::Counter& worker_retries =
      obs::registry().counter("synat_serve_worker_retries_total", false);
  static obs::Counter& quarantined =
      obs::registry().counter("synat_serve_quarantined_total", false);

  // The quarantine key is the same pair a result depends on: the program
  // text and the analysis options. Two requests for the same source with
  // different options fork (and die) independently.
  const uint64_t fp = Hasher()
                          .mix(input.source)
                          .mix(driver::options_fingerprint(input.opts))
                          .value();
  if (quarantine_.check(fp, steady_ms())) {
    quarantined.inc();
    if (robs != nullptr) {
      robs->ev.status = "error";
      robs->ev.quarantined = true;
      robs->ev.error_code = kErrQuarantined;
      robs->ev.error_kind = "quarantined";
      robs->slo_ok = false;
    }
    obs::recorder().note_event("quarantine_refusal", input.name.c_str());
    return encode_error(&req.id, kErrQuarantined,
                        "program quarantined: repeated worker deaths; "
                        "retry after the quarantine TTL");
  }

  driver::DriverOptions dopts;
  dopts.jobs = 1;
  dopts.use_cache = true;
  dopts.deadline_ms = opts_.sandbox_deadline_ms;
  dopts.max_rss_mb = opts_.sandbox_max_rss_mb;
  dopts.retries = opts_.sandbox_retries;
  driver::SandboxOutcome out;
  {
    obs::SpanScope sandbox_span(obs::StageId::RpcSandbox);
    out = driver::run_sandboxed(input, dopts, &cache_, lane);
  }
  worker_crashes.inc(out.deaths_crash);
  worker_timeouts.inc(out.deaths_timeout);
  worker_ooms.inc(out.deaths_oom);
  worker_retries.inc(out.retries);
  if (out.ok) {
    quarantine_.record_success(fp);
  } else {
    // Incident path: note the death (and a trip, if this one tripped the
    // breaker) in the flight-recorder ring, then dump a postmortem — the
    // ring at this moment holds the request context leading up to it.
    obs::Recorder& rec = obs::recorder();
    rec.note_event("worker_death", out.reason.c_str());
    const bool tripped = quarantine_.record_death(fp, steady_ms());
    if (tripped) rec.note_event("quarantine_trip", input.name.c_str());
    rec.dump_incident(tripped ? "quarantine_trip" : "worker_death");
  }

  // Reassemble the one-program document exactly the way BatchDriver does,
  // so a degraded sandbox reply renders the same "kind":"crash" entry (and
  // exit code 1) as `synat batch --isolate` on a crashing worker, and a
  // healthy one stays byte-identical to `synat batch --format json`.
  driver::ReportSink sink(1);
  if (out.ok) {
    sink.set_program(0, std::move(out.report));
  } else {
    sink.fail_program(0, input.name, driver::ProgramStatus::Degraded,
                      {{"error", 0, 0, out.reason}});
  }
  driver::BatchReport report = sink.finish(driver::Metrics{}, 1);

  serve_hits.inc(out.cache_hits);
  serve_misses.inc(out.cache_misses);
  reanalyzed.inc(out.cache_misses);
  if (robs != nullptr && !report.programs.empty()) {
    robs->ev = driver::program_event(report.programs[0]);
    robs->ev.cache_hits = out.cache_hits;
    robs->ev.cache_misses = out.cache_misses;
    robs->ev.retries = out.retries;
    robs->ev.deaths_crash = out.deaths_crash;
    robs->ev.deaths_timeout = out.deaths_timeout;
    robs->ev.deaths_oom = out.deaths_oom;
    if (!out.ok) robs->slo_ok = false;
  }

  JsonValue result = JsonValue::make_object();
  if (explain) {
    result.add("explanation",
               JsonValue::make_string(driver::to_explain(report, proc_filter)));
  } else {
    driver::RenderOptions ropts;
    ropts.provenance = provenance;
    result.add("report", JsonValue::make_string(driver::to_json(report, ropts)));
    result.add("cache_hits", JsonValue::make_number(out.cache_hits));
    result.add("procedures_reanalyzed",
               JsonValue::make_number(out.cache_misses));
  }
  result.add("exit_code",
             JsonValue::make_number(static_cast<int64_t>(report.exit_code())));
  return encode_result(req.id, std::move(result));
}

std::string Service::do_status(const RpcRequest& req) {
  JsonValue result = JsonValue::make_object();
  result.add("version",
             JsonValue::make_string(std::string(driver::kSynatVersion)));
  result.add("schema_version", JsonValue::make_number(static_cast<int64_t>(
                                   driver::kReportSchemaVersion)));
  result.add("uptime_ms", JsonValue::make_number(uptime_ms()));
  result.add("cache_entries",
             JsonValue::make_number(static_cast<uint64_t>(cache_.size())));
  result.add("options_fingerprint",
             JsonValue::make_string(
                 hex64(driver::options_fingerprint(atomicity::InferOptions{}))));
  result.add("in_flight",
             JsonValue::make_number(static_cast<uint64_t>(in_flight())));
  result.add("jobs", JsonValue::make_number(static_cast<uint64_t>(jobs_)));
  result.add("sandbox", JsonValue::make_bool(opts_.sandbox));
  result.add("quarantine_entries",
             JsonValue::make_number(static_cast<uint64_t>(quarantine_.size())));
  // RPC latency percentiles (real wall clock; inherently nondeterministic)
  // and the rolling SLO window — `status` is the operator's one-stop probe.
  const obs::Log2Histogram& lat =
      obs::registry().log2_histogram("synat_serve_rpc_request_latency_seconds");
  JsonValue latency = JsonValue::make_object();
  latency.add("count", JsonValue::make_number(lat.count()));
  latency.add("p50", JsonValue::make_number(lat.quantile_ns(0.5)));
  latency.add("p95", JsonValue::make_number(lat.quantile_ns(0.95)));
  latency.add("p99", JsonValue::make_number(lat.quantile_ns(0.99)));
  result.add("latency_ns", std::move(latency));
  const obs::SloTracker::Status s = slo_.status(steady_ms());
  JsonValue slo = JsonValue::make_object();
  slo.add("window_ms", JsonValue::make_number(s.window_ms));
  slo.add("total", JsonValue::make_number(s.total));
  slo.add("errors", JsonValue::make_number(s.errors));
  slo.add("slow", JsonValue::make_number(s.slow));
  slo.add("availability", JsonValue::make_number(s.availability));
  slo.add("availability_burn", JsonValue::make_number(s.availability_burn));
  slo.add("availability_exhausted",
          JsonValue::make_bool(s.availability_exhausted));
  slo.add("latency_ok", JsonValue::make_number(s.latency_ok));
  slo.add("latency_burn", JsonValue::make_number(s.latency_burn));
  slo.add("latency_exhausted", JsonValue::make_bool(s.latency_exhausted));
  result.add("slo", std::move(slo));
  return encode_result(req.id, std::move(result));
}

std::string Service::do_metrics(const RpcRequest& req) {
  JsonValue result = JsonValue::make_object();
  result.add("content_type",
             JsonValue::make_string("text/plain; version=0.0.4"));
  result.add("prometheus", JsonValue::make_string(
                               obs::to_prometheus(obs::registry().snapshot())));
  return encode_result(req.id, std::move(result));
}

std::string Service::do_invalidate(const RpcRequest& req) {
  size_t n = cache_.size();
  cache_.clear();
  JsonValue result = JsonValue::make_object();
  result.add("invalidated", JsonValue::make_number(static_cast<uint64_t>(n)));
  return encode_result(req.id, std::move(result));
}

std::string Service::do_shutdown(const RpcRequest& req) {
  draining_.store(true, std::memory_order_release);
  // The shutdown hook is fired by handle(), after the reply is delivered.
  JsonValue result = JsonValue::make_object();
  result.add("ok", JsonValue::make_bool(true));
  return encode_result(req.id, std::move(result));
}

void Service::finish_obs(RequestObs robs, uint64_t start_real_ns) {
  const uint64_t dur = real_now_ns() - start_real_ns;
  robs.ev.dur_ns = dur;
  static obs::Log2Histogram& latency = obs::registry().log2_histogram(
      "synat_serve_rpc_request_latency_seconds");
  latency.observe(dur);
  slo_.record(robs.slo_ok, dur, steady_ms());
  if (opts_.events != nullptr) opts_.events->append(std::move(robs.ev));
}

std::string Service::slo_json() const {
  const obs::SloTracker::Status s = slo_.status(steady_ms());
  auto frac = [](double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return std::string(buf);
  };
  std::string out = "{\"schema\":\"synat-slo\",\"v\":1,\"window_ms\":";
  out += std::to_string(s.window_ms);
  out += ",\"total\":" + std::to_string(s.total);
  out += ",\"errors\":" + std::to_string(s.errors);
  out += ",\"slow\":" + std::to_string(s.slow);
  out += ",\"availability\":{\"objective\":" + frac(s.availability_objective);
  out += ",\"value\":" + frac(s.availability);
  out += ",\"burn\":" + frac(s.availability_burn);
  out += ",\"exhausted\":";
  out += s.availability_exhausted ? "true" : "false";
  out += "},\"latency\":{\"objective\":" + frac(s.latency_objective);
  out += ",\"threshold_ns\":" + std::to_string(s.latency_threshold_ns);
  out += ",\"value\":" + frac(s.latency_ok);
  out += ",\"burn\":" + frac(s.latency_burn);
  out += ",\"exhausted\":";
  out += s.latency_exhausted ? "true" : "false";
  out += "}}";
  return out;
}

bool Service::slo_exhausted() const { return slo_.exhausted(steady_ms()); }

}  // namespace synat::serve
