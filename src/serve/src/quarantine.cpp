#include "synat/serve/quarantine.h"

namespace synat::serve {

bool Quarantine::check(uint64_t fp, uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end() || it->second.until_ms == 0) return false;
  if (now_ms >= it->second.until_ms) {
    // TTL elapsed: the offender earns one fresh fork. If it dies again the
    // count restarts from zero — decay, not a permanent blacklist.
    entries_.erase(it);
    return false;
  }
  return true;
}

bool Quarantine::record_death(uint64_t fp, uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) {
    if (entries_.size() >= opts_.max_entries) {
      // Bounded memory beats perfect memory for an accelerator: evicting
      // an arbitrary entry only means some offender re-earns its trip.
      entries_.erase(entries_.begin());
    }
    it = entries_.emplace(fp, Entry{}).first;
  }
  Entry& e = it->second;
  if (e.until_ms != 0) return false;  // already tripped
  if (++e.deaths >= opts_.threshold) {
    e.until_ms = now_ms + opts_.ttl_ms;
    return true;
  }
  return false;
}

void Quarantine::record_success(uint64_t fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  // A tripped entry stays tripped until its TTL: a success can only happen
  // here via a racing request that forked before the trip, and "quarantined
  // for the TTL" is the contract the tests pin down.
  if (it != entries_.end() && it->second.until_ms == 0) entries_.erase(it);
}

size_t Quarantine::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace synat::serve
