// Low-overhead span tracer: fixed-capacity per-thread ring buffers of
// completed spans, drained into one deterministic, lane-sorted list at
// export time.
//
// Concurrency model: each thread appends to its own ring with no
// synchronization on the hot path (registration of a new thread's ring and
// the drain itself take the registry mutex). Rings of exited threads are
// retained until the next drain, so a ThreadPool torn down before export
// loses nothing. When a ring is full the oldest span is overwritten and
// the drop is counted — tracing must never turn a batch run into an
// allocation storm.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "synat/obs/obs.h"

namespace synat::obs {

/// One completed span. `lane` 0 is the current process; merged worker
/// telemetry is injected under per-worker lanes (see Tracer::inject).
struct SpanRecord {
  uint32_t stage = 0;  ///< StageId
  uint32_t lane = 0;
  uint32_t tid = 0;    ///< small sequential per-process thread ordinal
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

class Tracer {
 public:
  /// Spans a single ring holds before wrapping; per thread.
  static constexpr size_t kRingCapacity = 1 << 15;

  static Tracer& instance();

  /// Appends a completed span to the calling thread's ring. Callers gate on
  /// obs::flags() themselves (see SpanScope); record() assumes tracing is
  /// wanted.
  void record(StageId stage, uint64_t start_ns, uint64_t dur_ns);

  /// Injects already-collected spans (decoded worker telemetry) under
  /// `lane`; their tids are preserved as the worker's own thread ordinals.
  void inject(uint32_t lane, const std::vector<SpanRecord>& spans);

  /// Human-readable lane name ("worker corpus:nfq_prime") for exporters.
  void set_lane_name(uint32_t lane, std::string name);
  std::vector<std::pair<uint32_t, std::string>> lane_names() const;

  /// Moves every recorded span (all threads, all lanes) out of the tracer,
  /// sorted by (lane, tid, start, stage, dur) so the result — and any
  /// document rendered from it — is deterministic for a deterministic
  /// schedule. Rings of exited threads are pruned.
  std::vector<SpanRecord> drain();

  /// Spans overwritten because a ring was full (lifetime count).
  uint64_t dropped() const;

  /// Drops every buffered span and lane name; used by forked workers to
  /// shed the spans copied from the parent, and by tests.
  void reset();

 private:
  struct Ring {
    std::vector<SpanRecord> spans;  ///< capacity kRingCapacity, append order
    size_t next = 0;                ///< overwrite cursor once full
    uint32_t tid = 0;
    bool retired = false;  ///< owning thread exited
  };
  struct ThreadSlot;  // thread_local registrar

  Ring& local_ring();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::vector<SpanRecord> injected_;
  std::vector<std::pair<uint32_t, std::string>> lanes_;
  uint32_t next_tid_ = 0;
  std::atomic<uint64_t> dropped_{0};
};

/// RAII span covering one pipeline or driver stage. Construction reads the
/// flag word once; when no flag is set, neither constructor nor destructor
/// touches a clock or any shared state.
class SpanScope {
 public:
  explicit SpanScope(StageId stage)
      : stage_(stage), flags_(obs::flags()),
        start_(flags_ != 0 ? now_ns() : 0) {}
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  StageId stage_;
  uint32_t flags_;
  uint64_t start_;
};

}  // namespace synat::obs
