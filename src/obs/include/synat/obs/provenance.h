// Verdict provenance: structured justifications for classification
// decisions (DESIGN.md §3f).
//
// The inference algorithm (paper Section 5.4) is a derivation: Steps 1–7
// assign each action a mover class by citing Theorems 3.1–3.3, 5.1 and
// 5.3–5.5, and the variant/purity machinery (Sections 4–5.2) decides what
// those steps even see. A `ProvenanceRecord` captures one step of that
// derivation — which rule fired (or which premise failed), on what subject,
// at which source location, and, for conflicts, the witness on the other
// side. Records are plain data: deterministic to produce, stable to order,
// cheap to ship over a SYNF frame, and renderable as a derivation tree
// (`synat explain`).
//
// The obs layer owns only the record type and its metric accounting;
// emission lives with the analyses (src/analysis, src/atomicity) and
// transport/rendering with the driver.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace synat::obs {

/// One step of a classification derivation.
///
/// `step` keys into the paper's numbering: 0 for pre-inference facts
/// (variant generation, pure-loop purity), 1–5 for the per-event mover
/// assignment, 6 for the statement-level atomicity propagation, and 7 for
/// the per-procedure verdict (join over variants).
struct ProvenanceRecord {
  uint32_t step = 0;       ///< inference step 0–7
  std::string theorem;     ///< "3.1".."5.5", or "" when no theorem applies
  std::string rule;        ///< stable machine keyword, e.g. "window-exclusion"
  std::string subject;     ///< what was classified, e.g. "SC(Ready, 1)"
  uint32_t line = 0;       ///< subject source line (1-based, 0 = unknown)
  uint32_t column = 0;     ///< subject source column (1-based, 0 = unknown)
  std::string atom;        ///< resulting class "B"/"L"/"R"/"A"/"N", or ""
  std::string detail;      ///< human-readable sentence for `synat explain`
  std::string witness;     ///< conflicting access on the other side, or ""
  uint32_t witness_line = 0;
  uint32_t witness_column = 0;

  friend bool operator==(const ProvenanceRecord&,
                         const ProvenanceRecord&) = default;
};

/// Short title for a step number, for rendering ("step 4 (commutativity)").
std::string_view provenance_step_title(uint32_t step);

/// Metric series name for one record:
/// `synat_provenance_records{step="4",theorem="5.5"}` (theorem "" renders
/// as `none`). The labeled name is a plain registry counter — the
/// Prometheus exporter splits labels off before applying its `_total`
/// suffix rule.
std::string provenance_counter_name(const ProvenanceRecord& r);

/// Bumps the labeled counter for each record. Call once per record at the
/// point it becomes part of a reported result (so totals are identical
/// across Program- and Procedure-granularity runs).
void count_provenance(const std::vector<ProvenanceRecord>& records);

}  // namespace synat::obs
