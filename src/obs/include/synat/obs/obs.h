// Unified observability layer (DESIGN.md §3e): stage identifiers, the
// process-wide enable flags, and the monotonic clock shared by the span
// tracer and the metrics registry.
//
// Everything here is built to be compiled in unconditionally and cost
// nothing when disabled: a SpanScope whose flags are off performs exactly
// one relaxed atomic load and no clock read; counters are single relaxed
// atomic increments and are always on (they feed the JSON report's
// deterministic counters section and cost nanoseconds per driver-level
// event, never inside an analysis hot loop).
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace synat::obs {

/// Every span the system emits names one of these stages. The first seven
/// are the paper's pipeline (parse → CFG/liveness → purity §4 → exceptional
/// variants §5.2 → mover classification Thms 3.1-5.5 → atomicity inference
/// §5.4 → block partitioning §6.4); the rest are batch-driver stages.
enum class StageId : uint8_t {
  // Pipeline stages (category "pipeline").
  Parse,
  CfgLiveness,
  Purity,
  Variants,
  Movers,
  Infer,
  Blocks,
  // Driver stages (category "driver").
  Analyze,        ///< whole per-procedure analysis task
  Report,         ///< report assembly from analysis results
  CacheLookup,
  CacheStore,
  Schedule,       ///< batch setup: keys, fingerprints, journal open
  Dispatch,       ///< supervisor: fork + request write for one worker
  JournalAppend,
  JournalReplay,
  // Serve stages (category "serve"): the `synat serve` daemon.
  RpcDecode,      ///< request line parse + JSON-RPC validation
  RpcExecute,     ///< method execution (analysis runs inside)
  RpcRequest,     ///< whole request lifetime: decode, queue wait, execute
  RpcSandbox,     ///< sandboxed execution: fork, worker attempts, reap
  COUNT
};

inline constexpr size_t kNumStages = static_cast<size_t>(StageId::COUNT);

std::string_view stage_name(StageId s);      ///< "parse", "cfg_liveness", ...
std::string_view stage_category(StageId s);  ///< "pipeline", "driver", "serve"

/// Observability flags, one process-wide atomic word.
enum : uint32_t {
  kTraceFlag = 1u << 0,    ///< collect spans into the per-thread rings
  kMetricsFlag = 1u << 1,  ///< record span durations into stage histograms
};

namespace detail {
extern std::atomic<uint32_t> g_flags;
}

inline uint32_t flags() {
  return detail::g_flags.load(std::memory_order_relaxed);
}
inline bool timing_enabled() { return flags() != 0; }
void set_flags(uint32_t flags);
void enable(uint32_t flag);

/// Monotonic nanoseconds. When the environment variable
/// SYNAT_OBS_VIRTUAL_CLOCK is set (checked once), this is a process-global
/// counter advancing 1µs per read instead of a real clock, which makes
/// span timestamps — and therefore whole trace/metrics documents —
/// byte-deterministic under `--jobs 1`.
uint64_t now_ns();

/// Whether the virtual clock is active (test/CI hook).
bool virtual_clock();

}  // namespace synat::obs
