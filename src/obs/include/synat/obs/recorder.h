// Always-on flight recorder (DESIGN.md §3i): a bounded, lock-light ring of
// the last N preformatted frames — wide-event lines, serve-stage span
// edges, and free-form notes — kept in memory at all times so the daemon's
// final moments can be dumped from the fatal-signal path.
//
// Write path: one atomic fetch_add to claim a slot, a memcpy, and a
// release-store of the frame length. No locks, no allocation, no clock.
// Readers (the dump paths) tolerate torn frames: a frame whose length is 0
// is mid-write and skipped; a frame overwritten during the dump yields one
// garbled line in the postmortem, never UB — the renderer treats unparsable
// lines as raw text.
//
// Dump path: dump_incident() rewinds the pre-opened postmortem fd and
// writes a header line plus the ring oldest-first, using only write/lseek/
// ftruncate/fsync — async-signal-safe, so support/crash.h can call it from
// a SIGSEGV handler. The latest incident wins the file (quarantine trips
// and worker-death dumps are overwritten by a later fatal dump, which is
// the one you want).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace synat::obs {

class Recorder {
 public:
  static constexpr size_t kFrameBytes = 512;  ///< max frame payload
  static constexpr size_t kFrames = 256;      ///< ring depth (last N)

  static Recorder& instance();

  /// Copies one preformatted line (a rendered event, or any single-line
  /// JSON record) into the ring; truncated to kFrameBytes - 1.
  void note(std::string_view line);

  /// Records a serve-stage span edge as a {"rec":"span",...} frame.
  void note_span(uint32_t stage, uint64_t start_ns, uint64_t dur_ns);

  /// Records a free-form incident marker as {"rec":"note","what":...}.
  void note_event(const char* what, const char* detail);

  /// Pre-opens the postmortem sink. The fd stays open for the process
  /// lifetime (the fatal-signal path cannot open files); -1 disables dumps.
  void set_postmortem_fd(int fd);
  int postmortem_fd() const;

  /// Rewrites the postmortem file with a header ({"rec":"postmortem",
  /// "reason":...,"signal":...}) and the ring oldest-first. Async-signal-
  /// safe; `reason` must be a literal or otherwise signal-safe string.
  /// Returns false when no fd is armed.
  bool dump_incident(const char* reason, int signal = 0);

  /// Frames ever recorded (monotonic; min(captured, kFrames) are live).
  uint64_t captured() const;

  /// Clears the ring (tests). Does not touch the postmortem fd.
  void reset();

 private:
  Recorder() = default;

  struct Frame {
    std::atomic<uint32_t> len{0};
    char data[kFrameBytes];
  };

  Frame frames_[kFrames];
  std::atomic<uint64_t> head_{0};
  std::atomic<int> fd_{-1};
};

inline Recorder& recorder() { return Recorder::instance(); }

}  // namespace synat::obs
