// Wide events (DESIGN.md §3i): one canonical structured JSON line per unit
// of work — per program in `synat batch`, per analysis RPC in `synat
// serve` — carrying the verdict, stage latencies, cache traffic, sandbox
// outcome, and error state in one flat record. The line is what an
// operator greps, tails, and feeds to dashboards; everything else in the
// observability layer aggregates, this narrates.
//
// Determinism contract: the renderer emits keys in one fixed order, and
// under SYNAT_OBS_VIRTUAL_CLOCK the log canonicalizes every
// schedule-dependent field (timestamps become the sequence number; stage
// latencies and cache traffic become zero). Events are appended from the
// assembled report in input order, never from worker completion order, so
// the event log for one input set is byte-identical across `--jobs 1`,
// `--jobs N`, `--isolate`, and a serve daemon fed the same requests —
// pinned by test and by the CI events job.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace synat::obs {

/// One wide event. Every field is always rendered (possibly zero/empty) so
/// consumers can require a fixed shape (tools/events_schema.json).
struct Event {
  uint64_t seq = 0;      ///< assigned by EventLog::append
  uint64_t ts_ns = 0;    ///< completion time; == seq under the virtual clock
  std::string name;      ///< program/request name ("corpus:foo", a path)
  std::string fingerprint;  ///< program content fingerprint (hex), if known
  /// Verdict: ok | degraded | parse_error | load_error | internal_error,
  /// matching the report's program status; "error" for an RPC that was
  /// refused before analysis (overloaded, quarantined, shutting down).
  std::string status = "ok";
  bool atomic = false;      ///< every procedure proved atomic
  int exit_code = 0;        ///< per-program severity (report.h exit codes)
  uint64_t procs = 0;
  uint64_t procs_not_atomic = 0;
  uint64_t variants = 0;
  uint64_t dur_ns = 0;      ///< end-to-end latency of this unit of work
  uint64_t parse_ns = 0;    ///< per-program stage latencies (0 if unknown,
  uint64_t analyze_ns = 0;  ///<   e.g. under --isolate where stages run in
  uint64_t report_ns = 0;   ///<   the worker)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t retries = 0;        ///< sandbox re-forks after a worker death
  uint64_t deaths_crash = 0;   ///< sandbox outcome tallies (0 in-process)
  uint64_t deaths_timeout = 0;
  uint64_t deaths_oom = 0;
  bool quarantined = false;  ///< request short-circuited by the breaker
  int error_code = 0;        ///< JSON-RPC error code for status "error"
  std::string error_kind;    ///< short error tag ("overloaded", "crash", ...)
};

/// Renders one event as a single JSON line (no trailing newline), keys in
/// the fixed schema order.
std::string render_event(const Event& e);

struct EventLogOptions {
  /// Sink file; empty keeps the log ring-only (events still reach the
  /// flight recorder, nothing touches disk).
  std::string path;
  /// Size-based rotation: when the current file would exceed this, it is
  /// renamed to `path + ".1"` (replacing any previous rotation) and a
  /// fresh file is started. 0 disables rotation.
  uint64_t max_bytes = 64ull << 20;
  /// Mirror every rendered line into the flight recorder ring.
  bool mirror_recorder = true;
};

/// Append-only wide-event sink. Thread-safe; one instance per batch run or
/// daemon. append() assigns the sequence number, applies virtual-clock
/// canonicalization, renders, writes, and mirrors into the Recorder.
class EventLog {
 public:
  explicit EventLog(EventLogOptions opts);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Canonicalizes (under the virtual clock), renders, and writes `e`.
  void append(Event e);

  uint64_t lines() const;
  const std::string& path() const { return opts_.path; }

 private:
  void rotate_locked();

  EventLogOptions opts_;
  mutable std::mutex mu_;
  std::FILE* f_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t lines_ = 0;
};

}  // namespace synat::obs
