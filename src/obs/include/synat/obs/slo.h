// Rolling SLO windows (DESIGN.md §3i): availability and latency objectives
// over a sliced time window, with error-budget burn — the `/slo` endpoint's
// substance and the signal that flips `/readyz` when the availability
// budget is exhausted.
//
// The window is a circular array of fixed-width slices (window / kSlices);
// record() drops counts into the slice owning `now_ms`, lazily reclaiming
// slices that have aged out. Time is passed in by the caller (milliseconds
// on any monotonic clock) so tests drive the window with a fake clock —
// the same convention as serve's Quarantine. SLO numbers are wall-clock
// facts and deliberately ignore the virtual clock: callers feed real
// steady-clock durations even in canonical-event runs.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

namespace synat::obs {

class SloTracker {
 public:
  static constexpr size_t kSlices = 60;

  struct Options {
    uint64_t window_ms = 60'000;
    /// Fraction of requests that must succeed (produce a verdict).
    double availability_objective = 0.99;
    /// A request slower than this counts against the latency objective.
    uint64_t latency_threshold_ns = 1'000'000'000;
    double latency_objective = 0.99;
  };

  struct Status {
    uint64_t window_ms = 0;
    uint64_t total = 0;
    uint64_t errors = 0;
    uint64_t slow = 0;
    double availability = 1.0;
    double availability_objective = 0.99;
    /// error_fraction / (1 - objective): 1.0 means the whole error budget
    /// for the window is spent; > 1.0 means burning faster than allowed.
    double availability_burn = 0.0;
    bool availability_exhausted = false;
    double latency_ok = 1.0;
    double latency_objective = 0.99;
    uint64_t latency_threshold_ns = 0;
    double latency_burn = 0.0;
    bool latency_exhausted = false;
  };

  explicit SloTracker(Options opts);

  /// Records one finished request: `ok` = the service produced a verdict
  /// (load shedding, quarantine, worker death, and internal errors are
  /// not-ok; a clean parse-error or not-atomic verdict is ok).
  void record(bool ok, uint64_t dur_ns, uint64_t now_ms);

  Status status(uint64_t now_ms) const;

  /// True while the availability error budget for the window is spent —
  /// the `/readyz` 503 condition.
  bool exhausted(uint64_t now_ms) const;

 private:
  struct Slice {
    uint64_t start_ms = 0;
    uint64_t total = 0;
    uint64_t errors = 0;
    uint64_t slow = 0;
  };

  Slice& slice_for_locked(uint64_t now_ms);

  Options opts_;
  uint64_t slice_ms_ = 1000;
  mutable std::mutex mu_;
  std::array<Slice, kSlices> slices_{};
};

}  // namespace synat::obs
