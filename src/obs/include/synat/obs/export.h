// Exporters for the observability layer: Chrome trace-event JSON
// (chrome://tracing / Perfetto "traceEvents" array) and Prometheus text
// exposition 0.0.4. Both renderings are pure functions of their inputs and
// emit keys in a fixed order, so a deterministic span list (drained under
// `--jobs 1`, or any run under the virtual clock) yields a byte-identical
// document modulo the normalized timestamp base.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synat/obs/metrics.h"
#include "synat/obs/trace.h"

namespace synat::obs {

/// Renders spans as a complete-event ("ph":"X") Chrome trace. Lanes map to
/// trace pids (lane 0 = supervisor/in-process run, lane N = worker N) and
/// span tids to trace tids; process_name/thread_sort_index metadata events
/// label the lanes from `lanes`. Timestamps are re-based to the earliest
/// span start, so two runs with identical relative timing render
/// identically regardless of absolute clock values.
std::string to_chrome_trace(
    const std::vector<SpanRecord>& spans,
    const std::vector<std::pair<uint32_t, std::string>>& lanes);

/// Renders a snapshot in Prometheus text exposition format. Counters gain
/// a "_total" suffix if missing; nondeterministic counters carry
/// "(nondeterministic)" in their HELP line so CI comparators can skip them.
/// Histograms render cumulative `_bucket{le="..."}` series with bounds in
/// seconds; log2 summaries render as `summary` families with p50/p95/p99
/// quantiles in seconds.
std::string to_prometheus(const MetricsSnapshot& snap);

/// Appends `s` as a JSON string literal (quotes included) with the minimal
/// escaping the exporters share. obs cannot use the driver's JsonWriter
/// (driver links against obs, not the other way around).
void append_json_escaped(std::string& out, std::string_view s);

/// Writes `content` to `path` (binary, truncate). Returns false and fills
/// `err` on failure.
bool write_file(const std::string& path, const std::string& content,
                std::string* err);

}  // namespace synat::obs
