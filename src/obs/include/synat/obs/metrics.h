// Process-wide metrics registry: counters, gauges, and fixed-bound
// histograms, unifying the driver's formerly scattered stderr counters
// (cache hits/rejections, journal replay, worker retries, watchdog trips)
// behind one exportable surface.
//
// Hot-path cost is one relaxed atomic RMW per event. Metric objects are
// created once (under the registry mutex) and never move or die, so call
// sites cache a reference in a function-local static. Every metric is
// tagged deterministic or not: deterministic values are pure functions of
// the inputs and options for a given execution mode (procedure counts,
// cache hits, journal replays), nondeterministic ones depend on wall-clock
// scheduling (heartbeats, watchdog trips, ring-buffer drops). Only the
// deterministic set is rendered into the JSON report, which keeps the
// byte-determinism contract of `synat batch --jobs N` intact.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "synat/obs/obs.h"

namespace synat::obs {

class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// In-place zeroing (Registry::reset) — cached references stay valid.
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Duration histogram with fixed bucket bounds (ns): 1µs, 10µs, 100µs,
/// 1ms, 10ms, 100ms, 1s, 10s, +Inf. Fixed bounds keep every exporter and
/// the worker-telemetry merge trivially well defined.
class Histogram {
 public:
  static constexpr size_t kBuckets = 9;
  static const uint64_t kBounds[kBuckets - 1];  ///< upper bounds, last is +Inf

  void observe(uint64_t ns) {
    size_t b = 0;
    while (b < kBuckets - 1 && ns > kBounds[b]) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add(const uint64_t counts[kBuckets], uint64_t sum_ns) {
    for (size_t i = 0; i < kBuckets; ++i)
      buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
    sum_ns_.fetch_add(sum_ns, std::memory_order_relaxed);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t count() const {
    uint64_t n = 0;
    for (size_t i = 0; i < kBuckets; ++i) n += bucket(i);
    return n;
  }
  /// In-place zeroing (Registry::reset) — cached references stay valid.
  void reset() {
    for (size_t i = 0; i < kBuckets; ++i)
      buckets_[i].store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_ns_{0};
};

// Point-in-time samples; the unit of export, wire transfer, and merging.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
  bool deterministic = true;
};
struct GaugeSample {
  std::string name;
  uint64_t value = 0;
};
struct HistogramSample {
  std::string name;
  uint64_t buckets[Histogram::kBuckets] = {};
  uint64_t sum_ns = 0;
  uint64_t count() const {
    uint64_t n = 0;
    for (uint64_t b : buckets) n += b;
    return n;
  }
};

/// A full registry snapshot (all vectors sorted by name) or, equally, a
/// delta between two snapshots — the difference is only how it was made.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// this − base, per metric name (names missing from base count from 0).
  /// Gauges are carried over as-is: a gauge is a level, not an increment.
  MetricsSnapshot delta_from(const MetricsSnapshot& base) const;
};

class Registry {
 public:
  static Registry& instance();

  /// Get-or-create by name. The deterministic flag is fixed at creation;
  /// later calls with a different flag keep the original.
  Counter& counter(std::string_view name, bool deterministic = true);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// The per-stage duration histogram ("synat_pipeline_parse_duration_ns",
  /// "synat_driver_dispatch_duration_ns", ...). Array-indexed: hot path.
  Histogram& stage_histogram(StageId s) { return *stage_hist_[static_cast<size_t>(s)]; }

  MetricsSnapshot snapshot() const;
  /// Adds a delta (decoded worker telemetry) into this registry's
  /// counters and histograms; gauges are not merged.
  void merge(const MetricsSnapshot& delta);
  /// Zeroes every registered metric (forked workers shed inherited counts;
  /// tests isolate themselves). Registered names survive.
  void reset();

 private:
  Registry();

  struct CounterEntry {
    Counter c;
    bool deterministic = true;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CounterEntry>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  Histogram* stage_hist_[kNumStages] = {};
};

inline Registry& registry() { return Registry::instance(); }

}  // namespace synat::obs
