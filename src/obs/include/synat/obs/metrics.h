// Process-wide metrics registry: counters, gauges, and fixed-bound
// histograms, unifying the driver's formerly scattered stderr counters
// (cache hits/rejections, journal replay, worker retries, watchdog trips)
// behind one exportable surface.
//
// Hot-path cost is one relaxed atomic RMW per event. Metric objects are
// created once (under the registry mutex) and never move or die, so call
// sites cache a reference in a function-local static. Every metric is
// tagged deterministic or not: deterministic values are pure functions of
// the inputs and options for a given execution mode (procedure counts,
// cache hits, journal replays), nondeterministic ones depend on wall-clock
// scheduling (heartbeats, watchdog trips, ring-buffer drops). Only the
// deterministic set is rendered into the JSON report, which keeps the
// byte-determinism contract of `synat batch --jobs N` intact.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "synat/obs/obs.h"

namespace synat::obs {

class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// In-place zeroing (Registry::reset) — cached references stay valid.
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Duration histogram with fixed bucket bounds (ns): 1µs, 10µs, 100µs,
/// 1ms, 10ms, 100ms, 1s, 10s, +Inf. Fixed bounds keep every exporter and
/// the worker-telemetry merge trivially well defined.
class Histogram {
 public:
  static constexpr size_t kBuckets = 9;
  static const uint64_t kBounds[kBuckets - 1];  ///< upper bounds, last is +Inf

  void observe(uint64_t ns) {
    size_t b = 0;
    while (b < kBuckets - 1 && ns > kBounds[b]) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void add(const uint64_t counts[kBuckets], uint64_t sum_ns) {
    for (size_t i = 0; i < kBuckets; ++i)
      buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
    sum_ns_.fetch_add(sum_ns, std::memory_order_relaxed);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t count() const {
    uint64_t n = 0;
    for (size_t i = 0; i < kBuckets; ++i) n += bucket(i);
    return n;
  }
  /// In-place zeroing (Registry::reset) — cached references stay valid.
  void reset() {
    for (size_t i = 0; i < kBuckets; ++i)
      buckets_[i].store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_ns_{0};
};

/// High-resolution latency histogram: log2 buckets subdivided 32 ways
/// (values below 32ns are exact; above, the top 5 bits after the leading
/// one select the sub-bucket), giving ~3% relative quantile error across
/// the full uint64 nanosecond range in 1920 fixed buckets. This is the
/// percentile source for serve/driver latency (p50/p95/p99 in `/metrics`
/// and the status RPC); quantiles of wall-clock latency are inherently
/// nondeterministic and never enter the report.
class Log2Histogram {
 public:
  static constexpr uint32_t kSubBits = 5;
  static constexpr uint32_t kSub = 1u << kSubBits;  // 32 sub-buckets
  static constexpr uint32_t kBuckets = kSub + (64 - kSubBits) * kSub;  // 1920

  static uint32_t bucket_index(uint64_t ns) {
    if (ns < kSub) return static_cast<uint32_t>(ns);
    uint32_t h = 63 - static_cast<uint32_t>(__builtin_clzll(ns));
    uint32_t sub = static_cast<uint32_t>(ns >> (h - kSubBits)) & (kSub - 1);
    return ((h - kSubBits + 1) << kSubBits) | sub;
  }

  /// Inclusive upper bound (ns) of bucket `idx` — the value quantiles
  /// report, so a quantile is exact to within one sub-bucket's width.
  static uint64_t bucket_bound(uint32_t idx) {
    if (idx < kSub) return idx;
    uint32_t h = (idx >> kSubBits) + kSubBits - 1;
    uint64_t sub = idx & (kSub - 1);
    return (uint64_t{1} << h) + ((sub + 1) << (h - kSubBits)) - 1;
  }

  void observe(uint64_t ns) {
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t bucket(uint32_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Value (ns) at quantile q in [0,1]: the bound of the first bucket whose
  /// cumulative count reaches q * count. 0 when empty.
  uint64_t quantile_ns(double q) const;

  void add_bucket(uint32_t idx, uint64_t n) {
    if (idx >= kBuckets || n == 0) return;
    buckets_[idx].fetch_add(n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_sum(uint64_t sum_ns) {
    sum_ns_.fetch_add(sum_ns, std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> count_{0};
};

// Point-in-time samples; the unit of export, wire transfer, and merging.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
  bool deterministic = true;
};
struct GaugeSample {
  std::string name;
  uint64_t value = 0;
};
struct HistogramSample {
  std::string name;
  uint64_t buckets[Histogram::kBuckets] = {};
  uint64_t sum_ns = 0;
  uint64_t count() const {
    uint64_t n = 0;
    for (uint64_t b : buckets) n += b;
    return n;
  }
};
/// Sparse sample of a Log2Histogram: only occupied buckets, index-sorted.
struct Log2Sample {
  std::string name;
  std::vector<std::pair<uint32_t, uint64_t>> buckets;  ///< (index, count)
  uint64_t sum_ns = 0;
  uint64_t count = 0;
  uint64_t quantile_ns(double q) const;
};

/// A full registry snapshot (all vectors sorted by name) or, equally, a
/// delta between two snapshots — the difference is only how it was made.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<Log2Sample> summaries;

  /// this − base, per metric name (names missing from base count from 0).
  /// Gauges are carried over as-is: a gauge is a level, not an increment.
  MetricsSnapshot delta_from(const MetricsSnapshot& base) const;
};

class Registry {
 public:
  static Registry& instance();

  /// Get-or-create by name. The deterministic flag is fixed at creation;
  /// later calls with a different flag keep the original.
  Counter& counter(std::string_view name, bool deterministic = true);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  Log2Histogram& log2_histogram(std::string_view name);

  /// The per-stage duration histogram
  /// ("synat_pipeline_parse_duration_seconds",
  /// "synat_driver_dispatch_duration_seconds", ...; observed in ns,
  /// exported in seconds). Array-indexed: hot path.
  Histogram& stage_histogram(StageId s) { return *stage_hist_[static_cast<size_t>(s)]; }

  MetricsSnapshot snapshot() const;
  /// Adds a delta (decoded worker telemetry) into this registry's
  /// counters and histograms; gauges are not merged.
  void merge(const MetricsSnapshot& delta);
  /// Zeroes every registered metric (forked workers shed inherited counts;
  /// tests isolate themselves). Registered names survive.
  void reset();

 private:
  Registry();

  struct CounterEntry {
    Counter c;
    bool deterministic = true;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CounterEntry>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Log2Histogram>, std::less<>>
      summaries_;
  Histogram* stage_hist_[kNumStages] = {};
};

inline Registry& registry() { return Registry::instance(); }

}  // namespace synat::obs
