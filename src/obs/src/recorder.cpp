#include "synat/obs/recorder.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "synat/obs/obs.h"

namespace synat::obs {

namespace {

// Async-signal-safe unsigned decimal formatter (snprintf is not on the
// POSIX safe list). Returns the number of characters written.
size_t format_u64(char* buf, uint64_t v) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

bool write_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = write(fd, data, len);
    if (n < 0) return false;  // EINTR aside, there is no retry in a handler
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Recorder& Recorder::instance() {
  static Recorder* r = new Recorder();  // leaked: usable during teardown
  return *r;
}

void Recorder::note(std::string_view line) {
  size_t len = line.size();
  if (len > kFrameBytes - 1) len = kFrameBytes - 1;
  Frame& f = frames_[head_.fetch_add(1, std::memory_order_relaxed) % kFrames];
  // len 0 marks the frame mid-write; readers skip it. The release store of
  // the real length publishes the copied bytes.
  f.len.store(0, std::memory_order_release);
  std::memcpy(f.data, line.data(), len);
  f.len.store(static_cast<uint32_t>(len), std::memory_order_release);
}

void Recorder::note_span(uint32_t stage, uint64_t start_ns, uint64_t dur_ns) {
  char buf[160];
  std::string_view name = stage_name(static_cast<StageId>(stage));
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"rec\":\"span\",\"stage\":\"%.*s\",\"start_ns\":%llu"
                        ",\"dur_ns\":%llu}",
                        static_cast<int>(name.size()), name.data(),
                        static_cast<unsigned long long>(start_ns),
                        static_cast<unsigned long long>(dur_ns));
  if (n > 0) note(std::string_view(buf, static_cast<size_t>(n)));
}

void Recorder::note_event(const char* what, const char* detail) {
  char buf[kFrameBytes];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"rec\":\"note\",\"what\":\"%s\",\"detail\":\"%s\"}",
                        what, detail);
  if (n > 0) note(std::string_view(buf, static_cast<size_t>(n)));
}

void Recorder::set_postmortem_fd(int fd) {
  fd_.store(fd, std::memory_order_release);
}

int Recorder::postmortem_fd() const {
  return fd_.load(std::memory_order_acquire);
}

bool Recorder::dump_incident(const char* reason, int signal) {
  int fd = postmortem_fd();
  if (fd < 0) return false;
  // Latest incident wins: rewind and truncate, then header + ring.
  if (lseek(fd, 0, SEEK_SET) < 0) return false;
  [[maybe_unused]] int rc = ftruncate(fd, 0);

  char header[192];
  size_t n = 0;
  const char* prefix = "{\"rec\":\"postmortem\",\"schema\":\"synat-postmortem\""
                       ",\"v\":1,\"reason\":\"";
  std::memcpy(header + n, prefix, std::strlen(prefix));
  n += std::strlen(prefix);
  size_t rlen = std::strlen(reason);
  if (rlen > 64) rlen = 64;
  std::memcpy(header + n, reason, rlen);
  n += rlen;
  const char* mid = "\",\"signal\":";
  std::memcpy(header + n, mid, std::strlen(mid));
  n += std::strlen(mid);
  n += format_u64(header + n, static_cast<uint64_t>(signal < 0 ? 0 : signal));
  const char* suffix = ",\"frames\":";
  std::memcpy(header + n, suffix, std::strlen(suffix));
  n += std::strlen(suffix);
  uint64_t total = head_.load(std::memory_order_relaxed);
  uint64_t live = total < kFrames ? total : kFrames;
  n += format_u64(header + n, live);
  header[n++] = '}';
  header[n++] = '\n';
  if (!write_all(fd, header, n)) return false;

  uint64_t first = total < kFrames ? 0 : total - kFrames;
  for (uint64_t i = first; i < total; ++i) {
    const Frame& f = frames_[i % kFrames];
    uint32_t len = f.len.load(std::memory_order_acquire);
    if (len == 0 || len >= kFrameBytes) continue;  // mid-write or torn
    write_all(fd, f.data, len);
    write_all(fd, "\n", 1);
  }
  fsync(fd);
  return true;
}

uint64_t Recorder::captured() const {
  return head_.load(std::memory_order_relaxed);
}

void Recorder::reset() {
  head_.store(0, std::memory_order_relaxed);
  for (Frame& f : frames_) f.len.store(0, std::memory_order_relaxed);
}

}  // namespace synat::obs
