#include "synat/obs/events.h"

#include <cinttypes>
#include <cstdio>

#include "synat/obs/export.h"
#include "synat/obs/obs.h"
#include "synat/obs/recorder.h"

namespace synat::obs {

namespace {

void append_u64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_field(std::string& out, const char* key, uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  append_u64(out, v);
}

void append_field(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

void append_field(std::string& out, const char* key, const std::string& v) {
  out += ",\"";
  out += key;
  out += "\":";
  append_json_escaped(out, v);
}

}  // namespace

std::string render_event(const Event& e) {
  std::string out;
  out.reserve(320);
  out += "{\"schema\":\"synat-event\",\"v\":1,\"seq\":";
  append_u64(out, e.seq);
  append_field(out, "ts_ns", e.ts_ns);
  append_field(out, "name", e.name);
  append_field(out, "fingerprint", e.fingerprint);
  append_field(out, "status", e.status);
  append_field(out, "atomic", e.atomic);
  out += ",\"exit_code\":";
  append_u64(out, static_cast<uint64_t>(e.exit_code < 0 ? 0 : e.exit_code));
  append_field(out, "procs", e.procs);
  append_field(out, "procs_not_atomic", e.procs_not_atomic);
  append_field(out, "variants", e.variants);
  append_field(out, "dur_ns", e.dur_ns);
  append_field(out, "parse_ns", e.parse_ns);
  append_field(out, "analyze_ns", e.analyze_ns);
  append_field(out, "report_ns", e.report_ns);
  append_field(out, "cache_hits", e.cache_hits);
  append_field(out, "cache_misses", e.cache_misses);
  append_field(out, "retries", e.retries);
  append_field(out, "deaths_crash", e.deaths_crash);
  append_field(out, "deaths_timeout", e.deaths_timeout);
  append_field(out, "deaths_oom", e.deaths_oom);
  append_field(out, "quarantined", e.quarantined);
  // JSON-RPC error codes are negative (-32003 and friends); render signed.
  out += ",\"error_code\":";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", e.error_code);
  out += buf;
  append_field(out, "error_kind", e.error_kind);
  out += '}';
  return out;
}

EventLog::EventLog(EventLogOptions opts) : opts_(std::move(opts)) {
  if (!opts_.path.empty()) {
    f_ = std::fopen(opts_.path.c_str(), "wb");
    if (f_ == nullptr)
      std::fprintf(stderr, "synat: warning: cannot open event log %s\n",
                   opts_.path.c_str());
  }
}

EventLog::~EventLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_ != nullptr) std::fclose(f_);
  f_ = nullptr;
}

void EventLog::rotate_locked() {
  std::fclose(f_);
  f_ = nullptr;
  std::string rotated = opts_.path + ".1";
  if (std::rename(opts_.path.c_str(), rotated.c_str()) != 0) {
    std::fprintf(stderr, "synat: warning: cannot rotate event log to %s\n",
                 rotated.c_str());
  }
  f_ = std::fopen(opts_.path.c_str(), "wb");
  bytes_ = 0;
}

void EventLog::append(Event e) {
  std::string line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    e.seq = next_seq_++;
    if (virtual_clock()) {
      // Canonical mode: every schedule-dependent field collapses to a pure
      // function of the input order, making the whole log byte-comparable
      // across execution modes.
      e.ts_ns = e.seq;
      e.dur_ns = e.parse_ns = e.analyze_ns = e.report_ns = 0;
      e.cache_hits = e.cache_misses = 0;
    } else if (e.ts_ns == 0) {
      e.ts_ns = now_ns();  // completion time, unless the caller stamped one
    }
    line = render_event(e);
    line += '\n';
    if (f_ != nullptr) {
      if (opts_.max_bytes > 0 && bytes_ > 0 &&
          bytes_ + line.size() > opts_.max_bytes)
        rotate_locked();
      if (f_ != nullptr) {
        std::fwrite(line.data(), 1, line.size(), f_);
        std::fflush(f_);  // the log must survive a crash one line later
        bytes_ += line.size();
      }
    }
    ++lines_;
  }
  if (opts_.mirror_recorder) {
    // Mirror without the newline; the ring stores one frame per line.
    recorder().note(std::string_view(line.data(), line.size() - 1));
  }
}

uint64_t EventLog::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

}  // namespace synat::obs
