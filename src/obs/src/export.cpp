#include "synat/obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace synat::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

namespace {

// Nanoseconds rendered as microseconds with fixed 3-decimal precision:
// exact, locale-independent, and byte-stable (no floating point).
void append_us(std::string& out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out += buf;
}

void append_u64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// Nanoseconds rendered as seconds with fixed 9-decimal precision: exact,
// locale-independent, and byte-stable — the unit Prometheus conventions
// expect for duration series.
void append_seconds(std::string& out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%09" PRIu64, ns / 1'000'000'000,
                ns % 1'000'000'000);
  out += buf;
}

// The fixed Histogram bounds (1µs..10s in ns) as exact decimal seconds.
const char* const kBoundSeconds[Histogram::kBuckets - 1] = {
    "0.000001", "0.00001", "0.0001", "0.001",
    "0.01",     "0.1",     "1",      "10",
};

}  // namespace

std::string to_chrome_trace(
    const std::vector<SpanRecord>& spans,
    const std::vector<std::pair<uint32_t, std::string>>& lanes) {
  uint64_t base = UINT64_MAX;
  for (const auto& s : spans) base = std::min(base, s.start_ns);
  if (base == UINT64_MAX) base = 0;

  std::string out;
  out.reserve(128 + spans.size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto lanes_sorted = lanes;
  std::sort(lanes_sorted.begin(), lanes_sorted.end());
  for (const auto& [lane, name] : lanes_sorted) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":";
    append_u64(out, lane);
    out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
    append_json_escaped(out, name);
    out += "}},{\"ph\":\"M\",\"pid\":";
    append_u64(out, lane);
    out += ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":";
    append_u64(out, lane);
    out += "}}";
  }
  for (const auto& s : spans) {
    if (!first) out += ',';
    first = false;
    const auto stage = static_cast<StageId>(s.stage);
    out += "{\"ph\":\"X\",\"name\":\"";
    out += stage_name(stage);
    out += "\",\"cat\":\"";
    out += stage_category(stage);
    out += "\",\"pid\":";
    append_u64(out, s.lane);
    out += ",\"tid\":";
    append_u64(out, s.tid);
    out += ",\"ts\":";
    append_us(out, s.start_ns - base);
    out += ",\"dur\":";
    append_us(out, s.dur_ns);
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  // Counter names may carry Prometheus labels (`name{k="v"}`); the `_total`
  // suffix and the HELP/TYPE header apply to the base name only, and the
  // header is emitted once per base (labeled variants of one family are
  // adjacent: snapshots are name-sorted).
  std::string prev_base;
  for (const auto& c : snap.counters) {
    size_t brace = c.name.find('{');
    std::string base =
        brace == std::string::npos ? c.name : c.name.substr(0, brace);
    std::string labels =
        brace == std::string::npos ? std::string() : c.name.substr(brace);
    const std::string_view suffix = "_total";
    if (base.size() < suffix.size() ||
        base.compare(base.size() - suffix.size(), suffix.size(), suffix) != 0)
      base += suffix;
    if (base != prev_base) {
      out += "# HELP " + base + " synat counter";
      if (!c.deterministic) out += " (nondeterministic)";
      out += "\n# TYPE " + base + " counter\n";
      prev_base = base;
    }
    out += base + labels + ' ';
    append_u64(out, c.value);
    out += '\n';
  }
  for (const auto& g : snap.gauges) {
    out += "# HELP " + g.name + " synat gauge\n# TYPE " + g.name +
           " gauge\n" + g.name + ' ';
    append_u64(out, g.value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    out += "# HELP " + h.name +
           " synat duration histogram (seconds; sums nondeterministic)\n";
    out += "# TYPE " + h.name + " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      cum += h.buckets[i];
      out += h.name + "_bucket{le=\"";
      if (i < Histogram::kBuckets - 1)
        out += kBoundSeconds[i];
      else
        out += "+Inf";
      out += "\"} ";
      append_u64(out, cum);
      out += '\n';
    }
    out += h.name + "_sum ";
    append_seconds(out, h.sum_ns);
    out += '\n' + h.name + "_count ";
    append_u64(out, cum);
    out += '\n';
  }
  for (const auto& s : snap.summaries) {
    // Quantiles of wall-clock latency: by nature schedule-dependent, so
    // the whole family is flagged for the CI comparator.
    out += "# HELP " + s.name +
           " synat latency quantiles (seconds) (nondeterministic)\n";
    out += "# TYPE " + s.name + " summary\n";
    for (double q : {0.5, 0.95, 0.99}) {
      char label[16];
      std::snprintf(label, sizeof(label), "%g", q);
      out += s.name + "{quantile=\"" + label + "\"} ";
      append_seconds(out, s.quantile_ns(q));
      out += '\n';
    }
    out += s.name + "_sum ";
    append_seconds(out, s.sum_ns);
    out += '\n' + s.name + "_count ";
    append_u64(out, s.count);
    out += '\n';
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content,
                std::string* err) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  f.flush();
  if (!f) {
    if (err) *err = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace synat::obs
