#include "synat/obs/provenance.h"

#include "synat/obs/metrics.h"

namespace synat::obs {

std::string_view provenance_step_title(uint32_t step) {
  switch (step) {
    case 0: return "variants & purity";
    case 1: return "local actions & locks";
    case 2: return "synchronization discipline";
    case 3: return "local conditions";
    case 4: return "commutativity";
    case 5: return "default";
    case 6: return "atomicity propagation";
    case 7: return "verdict";
    default: return "unknown";
  }
}

std::string provenance_counter_name(const ProvenanceRecord& r) {
  std::string name = "synat_provenance_records{step=\"";
  name += std::to_string(r.step);
  name += "\",theorem=\"";
  name += r.theorem.empty() ? std::string("none") : r.theorem;
  name += "\"}";
  return name;
}

void count_provenance(const std::vector<ProvenanceRecord>& records) {
  if (records.empty()) return;
  Registry& reg = registry();
  for (const ProvenanceRecord& r : records)
    reg.counter(provenance_counter_name(r)).inc();
}

}  // namespace synat::obs
