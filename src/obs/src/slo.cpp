#include "synat/obs/slo.h"

namespace synat::obs {

SloTracker::SloTracker(Options opts) : opts_(opts) {
  slice_ms_ = opts_.window_ms / kSlices;
  if (slice_ms_ == 0) slice_ms_ = 1;
}

SloTracker::Slice& SloTracker::slice_for_locked(uint64_t now_ms) {
  uint64_t aligned = now_ms - now_ms % slice_ms_;
  Slice& s = slices_[(now_ms / slice_ms_) % kSlices];
  if (s.start_ms != aligned) {
    // The slice last held counts from a full window ago; reclaim it.
    s = Slice{};
    s.start_ms = aligned;
  }
  return s;
}

void SloTracker::record(bool ok, uint64_t dur_ns, uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Slice& s = slice_for_locked(now_ms);
  ++s.total;
  if (!ok) ++s.errors;
  if (dur_ns > opts_.latency_threshold_ns) ++s.slow;
}

SloTracker::Status SloTracker::status(uint64_t now_ms) const {
  Status st;
  st.window_ms = opts_.window_ms;
  st.availability_objective = opts_.availability_objective;
  st.latency_objective = opts_.latency_objective;
  st.latency_threshold_ns = opts_.latency_threshold_ns;
  uint64_t oldest = now_ms >= opts_.window_ms ? now_ms - opts_.window_ms : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slice& s : slices_) {
      // A slice counts while any part of it overlaps the window.
      if (s.total == 0 || s.start_ms + slice_ms_ <= oldest ||
          s.start_ms > now_ms)
        continue;
      st.total += s.total;
      st.errors += s.errors;
      st.slow += s.slow;
    }
  }
  if (st.total == 0) return st;  // empty window: budgets are untouched
  double total = static_cast<double>(st.total);
  st.availability = 1.0 - static_cast<double>(st.errors) / total;
  double avail_budget = 1.0 - opts_.availability_objective;
  st.availability_burn =
      avail_budget > 0.0
          ? (static_cast<double>(st.errors) / total) / avail_budget
          : (st.errors > 0 ? 1.0 : 0.0);
  st.availability_exhausted = st.availability_burn >= 1.0;
  st.latency_ok = 1.0 - static_cast<double>(st.slow) / total;
  double lat_budget = 1.0 - opts_.latency_objective;
  st.latency_burn =
      lat_budget > 0.0 ? (static_cast<double>(st.slow) / total) / lat_budget
                       : (st.slow > 0 ? 1.0 : 0.0);
  st.latency_exhausted = st.latency_burn >= 1.0;
  return st;
}

bool SloTracker::exhausted(uint64_t now_ms) const {
  return status(now_ms).availability_exhausted;
}

}  // namespace synat::obs
