#include "synat/obs/metrics.h"

#include <algorithm>

namespace synat::obs {

const uint64_t Histogram::kBounds[Histogram::kBuckets - 1] = {
    1'000,          // 1µs
    10'000,         // 10µs
    100'000,        // 100µs
    1'000'000,      // 1ms
    10'000'000,     // 10ms
    100'000'000,    // 100ms
    1'000'000'000,  // 1s
    10'000'000'000, // 10s
};

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: usable during teardown
  return *r;
}

Registry::Registry() {
  // Eagerly register the well-known metric set so every run exports the
  // same names regardless of which code paths fired; the JSON counters
  // section and cross-mode comparisons then never see present-vs-absent
  // differences.
  static constexpr struct {
    const char* name;
    bool deterministic;
  } kCounters[] = {
      {"synat_programs_total", true},
      {"synat_procs_analyzed_total", true},
      {"synat_variants_generated_total", true},
      {"synat_parse_recovered_total", true},
      {"synat_degraded_total", true},
      {"synat_cache_hits_total", true},
      {"synat_cache_misses_total", true},
      {"synat_cache_rejected_total", true},
      {"synat_cache_inserts_total", true},
      {"synat_journal_appended_total", true},
      {"synat_journal_replayed_total", true},
      {"synat_journal_rejected_total", true},
      {"synat_worker_dispatches_total", true},
      {"synat_worker_results_total", true},
      {"synat_worker_retries_total", true},
      {"synat_worker_crashes_total", true},
      {"synat_watchdog_arms_total", true},
      {"synat_watchdog_trips_total", false},
      {"synat_worker_heartbeats_total", false},
      {"synat_trace_spans_dropped_total", false},
      // Serve counters are non-deterministic by design: their values depend
      // on client arrival order, so they are exported live (Prometheus /
      // status RPC) but never enter the report's deterministic counters
      // section.
      {"synat_serve_requests_total", false},
      {"synat_serve_invalid_total", false},
      {"synat_serve_rejected_total", false},
      {"synat_serve_cache_hits_total", false},
      {"synat_serve_cache_misses_total", false},
      {"synat_serve_procedures_reanalyzed_total", false},
      {"synat_serve_worker_crashes_total", false},
      {"synat_serve_worker_timeouts_total", false},
      {"synat_serve_worker_oom_kills_total", false},
      {"synat_serve_worker_retries_total", false},
      {"synat_serve_quarantined_total", false},
      {"synat_serve_snapshots_total", false},
  };
  for (const auto& c : kCounters) counter(c.name, c.deterministic);
  gauge("synat_jobs");
  gauge("synat_serve_in_flight");
  for (size_t i = 0; i < kNumStages; ++i) {
    const auto s = static_cast<StageId>(i);
    std::string name = "synat_";
    name += stage_category(s);
    name += '_';
    name += stage_name(s);
    name += "_duration_seconds";
    stage_hist_[i] = &histogram(name);
  }
  // Percentile sources (p50/p95/p99 in /metrics and the status RPC):
  // per-RPC latency in serve, per-program latency in the batch driver.
  log2_histogram("synat_serve_rpc_request_latency_seconds");
  log2_histogram("synat_driver_program_latency_seconds");
}

uint64_t Log2Histogram::quantile_ns(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (uint32_t i = 0; i < kBuckets; ++i) {
    cum += bucket(i);
    if (cum >= target) return bucket_bound(i);
  }
  return bucket_bound(kBuckets - 1);
}

uint64_t Log2Sample::quantile_ns(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (const auto& [idx, n] : buckets) {
    cum += n;
    if (cum >= target) return Log2Histogram::bucket_bound(idx);
  }
  return buckets.empty() ? 0 : Log2Histogram::bucket_bound(buckets.back().first);
}

Counter& Registry::counter(std::string_view name, bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto entry = std::make_unique<CounterEntry>();
    entry->deterministic = deterministic;
    it = counters_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second->c;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

Log2Histogram& Registry::log2_histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = summaries_.find(name);
  if (it == summaries_.end())
    it = summaries_
             .emplace(std::string(name), std::make_unique<Log2Histogram>())
             .first;
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, entry] : counters_)
    snap.counters.push_back({name, entry->c.value(), entry->deterministic});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) s.buckets[i] = h->bucket(i);
    s.sum_ns = h->sum_ns();
    snap.histograms.push_back(std::move(s));
  }
  snap.summaries.reserve(summaries_.size());
  for (const auto& [name, h] : summaries_) {
    Log2Sample s;
    s.name = name;
    for (uint32_t i = 0; i < Log2Histogram::kBuckets; ++i)
      if (uint64_t n = h->bucket(i); n != 0) s.buckets.emplace_back(i, n);
    s.sum_ns = h->sum_ns();
    s.count = h->count();
    snap.summaries.push_back(std::move(s));
  }
  // std::map iteration is already name-sorted; the ordering contract of
  // MetricsSnapshot is kept explicit here for delta_from and exporters.
  return snap;
}

void Registry::merge(const MetricsSnapshot& delta) {
  for (const auto& c : delta.counters)
    if (c.value != 0) counter(c.name, c.deterministic).inc(c.value);
  for (const auto& h : delta.histograms)
    histogram(h.name).add(h.buckets, h.sum_ns);
  for (const auto& s : delta.summaries) {
    Log2Histogram& h = log2_histogram(s.name);
    for (const auto& [idx, n] : s.buckets) h.add_bucket(idx, n);
    h.add_sum(s.sum_ns);
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : counters_) {
    (void)name;
    entry->c.reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->set(0);
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h->reset();
  }
  for (auto& [name, h] : summaries_) {
    (void)name;
    h->reset();
  }
}

MetricsSnapshot MetricsSnapshot::delta_from(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  out.gauges = gauges;
  auto base_counter = [&](const std::string& name) -> uint64_t {
    auto it = std::lower_bound(
        base.counters.begin(), base.counters.end(), name,
        [](const CounterSample& c, const std::string& n) { return c.name < n; });
    return (it != base.counters.end() && it->name == name) ? it->value : 0;
  };
  out.counters.reserve(counters.size());
  for (const auto& c : counters) {
    uint64_t b = base_counter(c.name);
    out.counters.push_back({c.name, c.value >= b ? c.value - b : 0,
                            c.deterministic});
  }
  auto base_hist = [&](const std::string& name) -> const HistogramSample* {
    auto it = std::lower_bound(base.histograms.begin(), base.histograms.end(),
                               name,
                               [](const HistogramSample& h, const std::string& n) {
                                 return h.name < n;
                               });
    return (it != base.histograms.end() && it->name == name) ? &*it : nullptr;
  };
  out.histograms.reserve(histograms.size());
  for (const auto& h : histograms) {
    HistogramSample s;
    s.name = h.name;
    const HistogramSample* b = base_hist(h.name);
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t bv = b ? b->buckets[i] : 0;
      s.buckets[i] = h.buckets[i] >= bv ? h.buckets[i] - bv : 0;
    }
    uint64_t bs = b ? b->sum_ns : 0;
    s.sum_ns = h.sum_ns >= bs ? h.sum_ns - bs : 0;
    out.histograms.push_back(std::move(s));
  }
  auto base_summary = [&](const std::string& name) -> const Log2Sample* {
    auto it = std::lower_bound(base.summaries.begin(), base.summaries.end(),
                               name,
                               [](const Log2Sample& s, const std::string& n) {
                                 return s.name < n;
                               });
    return (it != base.summaries.end() && it->name == name) ? &*it : nullptr;
  };
  out.summaries.reserve(summaries.size());
  for (const auto& s : summaries) {
    Log2Sample d;
    d.name = s.name;
    const Log2Sample* b = base_summary(s.name);
    for (const auto& [idx, n] : s.buckets) {
      uint64_t bn = 0;
      if (b != nullptr) {
        auto it = std::lower_bound(
            b->buckets.begin(), b->buckets.end(), idx,
            [](const std::pair<uint32_t, uint64_t>& p, uint32_t i) {
              return p.first < i;
            });
        if (it != b->buckets.end() && it->first == idx) bn = it->second;
      }
      if (n > bn) {
        d.buckets.emplace_back(idx, n - bn);
        d.count += n - bn;
      }
    }
    uint64_t bs = b ? b->sum_ns : 0;
    d.sum_ns = s.sum_ns >= bs ? s.sum_ns - bs : 0;
    out.summaries.push_back(std::move(d));
  }
  return out;
}

}  // namespace synat::obs
