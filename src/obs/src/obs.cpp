#include "synat/obs/obs.h"

#include <chrono>
#include <cstdlib>

namespace synat::obs {

namespace detail {
std::atomic<uint32_t> g_flags{0};
}  // namespace detail

void set_flags(uint32_t flags) {
  detail::g_flags.store(flags, std::memory_order_relaxed);
}

void enable(uint32_t flag) {
  detail::g_flags.fetch_or(flag, std::memory_order_relaxed);
}

std::string_view stage_name(StageId s) {
  switch (s) {
    case StageId::Parse: return "parse";
    case StageId::CfgLiveness: return "cfg_liveness";
    case StageId::Purity: return "purity";
    case StageId::Variants: return "variants";
    case StageId::Movers: return "movers";
    case StageId::Infer: return "infer";
    case StageId::Blocks: return "blocks";
    case StageId::Analyze: return "analyze";
    case StageId::Report: return "report";
    case StageId::CacheLookup: return "cache_lookup";
    case StageId::CacheStore: return "cache_store";
    case StageId::Schedule: return "schedule";
    case StageId::Dispatch: return "dispatch";
    case StageId::JournalAppend: return "journal_append";
    case StageId::JournalReplay: return "journal_replay";
    case StageId::RpcDecode: return "rpc_decode";
    case StageId::RpcExecute: return "rpc_execute";
    case StageId::RpcRequest: return "rpc_request";
    case StageId::RpcSandbox: return "rpc_sandbox";
    case StageId::COUNT: break;
  }
  return "unknown";
}

std::string_view stage_category(StageId s) {
  if (static_cast<uint8_t>(s) < static_cast<uint8_t>(StageId::Analyze))
    return "pipeline";
  if (static_cast<uint8_t>(s) < static_cast<uint8_t>(StageId::RpcDecode))
    return "driver";
  return "serve";
}

namespace {

std::atomic<uint64_t> g_virtual_now{0};

bool detect_virtual_clock() {
  const char* v = std::getenv("SYNAT_OBS_VIRTUAL_CLOCK");
  return v != nullptr && *v != '\0' && *v != '0';
}

}  // namespace

bool virtual_clock() {
  static const bool on = detect_virtual_clock();
  return on;
}

uint64_t now_ns() {
  if (virtual_clock()) {
    // 1µs per read: spans get nonzero, strictly ordered durations.
    return g_virtual_now.fetch_add(1000, std::memory_order_relaxed);
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace synat::obs
