#include "synat/obs/trace.h"

#include <algorithm>

#include "synat/obs/metrics.h"
#include "synat/obs/recorder.h"

namespace synat::obs {

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: usable during thread teardown
  return *t;
}

// Registers the calling thread's ring on first use and marks it retired on
// thread exit; the tracer keeps the shared_ptr alive until the next drain.
struct Tracer::ThreadSlot {
  std::shared_ptr<Ring> ring;
  ~ThreadSlot() {
    if (!ring) return;
    std::lock_guard<std::mutex> lock(Tracer::instance().mu_);
    ring->retired = true;
  }
};

Tracer::Ring& Tracer::local_ring() {
  thread_local ThreadSlot slot;
  if (!slot.ring) {
    auto ring = std::make_shared<Ring>();
    ring->spans.reserve(256);
    std::lock_guard<std::mutex> lock(mu_);
    ring->tid = next_tid_++;
    rings_.push_back(ring);
    slot.ring = std::move(ring);
  }
  return *slot.ring;
}

void Tracer::record(StageId stage, uint64_t start_ns, uint64_t dur_ns) {
  Ring& ring = local_ring();
  SpanRecord rec;
  rec.stage = static_cast<uint32_t>(stage);
  rec.lane = 0;
  rec.tid = ring.tid;
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  if (ring.spans.size() < kRingCapacity) {
    ring.spans.push_back(rec);
  } else {
    ring.spans[ring.next] = rec;
    ring.next = (ring.next + 1) % kRingCapacity;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::inject(uint32_t lane, const std::vector<SpanRecord>& spans) {
  std::lock_guard<std::mutex> lock(mu_);
  injected_.reserve(injected_.size() + spans.size());
  for (SpanRecord rec : spans) {
    rec.lane = lane;
    injected_.push_back(rec);
  }
}

void Tracer::set_lane_name(uint32_t lane, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [l, n] : lanes_) {
    if (l == lane) {
      n = std::move(name);
      return;
    }
  }
  lanes_.emplace_back(lane, std::move(name));
}

std::vector<std::pair<uint32_t, std::string>> Tracer::lane_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto lanes = lanes_;
  std::sort(lanes.begin(), lanes.end());
  return lanes;
}

std::vector<SpanRecord> Tracer::drain() {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& ring : rings_) {
      // Rotate so wrapped rings come out in append order.
      for (size_t i = 0; i < ring->spans.size(); ++i)
        out.push_back(ring->spans[(ring->next + i) % ring->spans.size()]);
      ring->spans.clear();
      ring->next = 0;
    }
    rings_.erase(std::remove_if(rings_.begin(), rings_.end(),
                                [](const std::shared_ptr<Ring>& r) {
                                  return r->retired;
                                }),
                 rings_.end());
    out.insert(out.end(), injected_.begin(), injected_.end());
    injected_.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.stage != b.stage) return a.stage < b.stage;
              return a.dur_ns < b.dur_ns;
            });
  return out;
}

uint64_t Tracer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) {
    ring->spans.clear();
    ring->next = 0;
  }
  rings_.erase(std::remove_if(rings_.begin(), rings_.end(),
                              [](const std::shared_ptr<Ring>& r) {
                                return r->retired;
                              }),
               rings_.end());
  injected_.clear();
  lanes_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

SpanScope::~SpanScope() {
  if (flags_ == 0) return;
  const uint64_t end = now_ns();
  const uint64_t dur = end > start_ ? end - start_ : 0;
  if (flags_ & kMetricsFlag)
    registry().stage_histogram(stage_).observe(dur);
  if (flags_ & kTraceFlag)
    Tracer::instance().record(stage_, start_, dur);
  // Serve-stage edges feed the flight recorder so a postmortem shows what
  // the daemon was doing when it died. Only the serve category (a handful
  // of spans per RPC) is mirrored — pipeline/driver stages fire thousands
  // of times per batch and would wash the ring out instantly.
  if (stage_category(stage_) == "serve")
    Recorder::instance().note_span(static_cast<uint32_t>(stage_), start_, dur);
}

}  // namespace synat::obs
