// Location liveness queries for purity condition (ii) of Section 4.
//
// A pure local update to location v requires that, on every CFG path from
// the end of the loop body to the procedure's exit points, the next access
// to v (if any) is a write, and that on paths with no access, v is
// procedure-local (so the value written in the deleted iteration cannot be
// observed). This is exactly "v is dead at the loop head" under a liveness
// relation where:
//   - a value Read of v, or of a proper prefix of v (which lets the pointer
//     escape and the field be reached another way), is a use;
//   - a Write of v or of a proper prefix of v (re-pointing the base) is a
//     kill;
//   - base reads (address computation, Event::is_base) are not uses;
//   - LL/VL/SC/CAS touching v are conservatively uses;
//   - reaching Exit without any access is a use iff v's root is a
//     thread-local variable (its value survives the call).
//
// Queries are intended for local actions only (plain local variables and
// paths rooted at unique references), where syntactic path identity is
// sound: such locations have no aliases by construction.
#pragma once

#include "synat/cfg/cfg.h"

namespace synat::cfg {

/// True if `query` may be used (read before any write) on some path starting
/// at the successors of `point`.
bool live_after(const Program& prog, const Cfg& cfg, EventId point,
                const AccessPath& query);

/// Relationship between an event and a queried location.
enum class AccessEffect : uint8_t { None, Use, Kill };

/// Classifies what `ev` does to `query` under the rules above. Exposed for
/// tests and the purity analysis.
AccessEffect access_effect(const Event& ev, const AccessPath& query);

}  // namespace synat::cfg
