// Events: the "actions" of the paper at CFG granularity.
//
// Each CFG node is one primitive evaluation event. The paper's notion of
// action (Section 3.3) maps onto event kinds as follows:
//   R(v)   -> Read            (also LL / VL, which are global reads)
//   W(v)   -> Write           (also the write half of SC / CAS)
//   acq(v) -> Acquire
//   rel(v) -> Release
// plus structural pseudo-events (Entry, Exit, LoopHead, Join) that perform
// no action and are ignored by the mover analysis.
//
// Reads and writes carry an AccessPath describing the accessed location
// (root variable plus field/index selectors); whether an access is a local
// or global action is decided later by the escape/uniqueness analyses, not
// here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synat/synl/ast.h"

namespace synat::cfg {

using synl::ExprId;
using synl::ProcId;
using synl::Program;
using synl::StmtId;
using synl::VarId;

struct EventId {
  uint32_t idx = UINT32_MAX;
  constexpr EventId() = default;
  constexpr explicit EventId(uint32_t i) : idx(i) {}
  constexpr bool valid() const { return idx != UINT32_MAX; }
  friend constexpr bool operator==(EventId, EventId) = default;
  friend constexpr auto operator<=>(EventId, EventId) = default;
};

/// One selector step of an access path.
struct Selector {
  enum Kind : uint8_t { Field, Index } kind = Field;
  synat::Symbol field;  ///< valid iff kind == Field

  friend bool operator==(const Selector&, const Selector&) = default;
};

/// The location accessed by a read/write/LL/SC/VL/CAS event:
/// root variable followed by zero or more .field / [*] selectors.
/// Array indices are abstracted to [*]; the alias analysis treats all
/// indices of the same array as potentially equal.
struct AccessPath {
  VarId root;
  std::vector<Selector> sels;

  bool is_plain_var() const { return sels.empty(); }
  /// The final selector's field, or the invalid symbol for plain vars /
  /// index accesses.
  synat::Symbol last_field() const {
    if (sels.empty() || sels.back().kind != Selector::Field) return {};
    return sels.back().field;
  }
  friend bool operator==(const AccessPath&, const AccessPath&) = default;

  std::string str(const Program& prog) const;
};

enum class EventKind : uint8_t {
  // Structural pseudo-events.
  Entry,     ///< procedure entry
  Exit,      ///< procedure exit (all returns & fallthrough converge here)
  LoopHead,  ///< top of a loop (stmt = the Loop)
  Join,      ///< merge point after an if
  // Actions.
  Read,     ///< read of path
  Write,    ///< write of path
  LL,       ///< LL(path); a global read that also sets the link
  VL,       ///< VL(path); a global read of the link state
  SC,       ///< SC(path, v); write if successful
  CAS,      ///< CAS(path, e, n); read + conditional write
  New,      ///< object allocation
  Acquire,  ///< lock acquire (synchronized entry); path = lock expr root
  Release,  ///< lock release (synchronized exit)
  Assume,   ///< TRUE(e) constraint; no memory action itself (its reads are
            ///< separate events), used by local-condition inference
};

std::string_view to_string(EventKind k);

constexpr bool is_action(EventKind k) {
  return k >= EventKind::Read && k <= EventKind::Release;
}

/// Kind of CFG edge; branch edges record which way an `if` went so path
/// analyses can collect branch constraints.
enum class EdgeKind : uint8_t { Fall, True, False, Back };

struct Edge {
  EventId to;
  EdgeKind kind = EdgeKind::Fall;
};

struct Event {
  EventKind kind = EventKind::Join;
  StmtId stmt;   ///< statement that generated this event
  ExprId expr;   ///< expression for Read/Write/LL/SC/VL/CAS/New/Assume;
                 ///< for Write from an Assign this is the LHS location
  AccessPath path;  ///< for Read/Write/LL/SC/VL/CAS and lock Acquire/Release
  bool must_succeed = false;  ///< SC/CAS lexically inside a TRUE(...)
  bool is_base = false;  ///< Read performed only to compute an address
                         ///< (the base pointer of a field/array access)
  StmtId loop;   ///< innermost enclosing Loop statement, if any

  bool is_action() const { return cfg::is_action(kind); }
};

}  // namespace synat::cfg

template <>
struct std::hash<synat::cfg::EventId> {
  size_t operator()(synat::cfg::EventId id) const noexcept {
    return std::hash<uint32_t>{}(id.idx);
  }
};
