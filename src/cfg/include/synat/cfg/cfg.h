// Per-procedure control-flow graph over events (see event.h).
//
// Construction walks the AST in evaluation order: for every statement the
// events of its sub-expressions appear in left-to-right post-order before
// the statement's own effect event. `synchronized` bodies are bracketed by
// Acquire/Release, and jumps (break / continue / return) that leave
// synchronized blocks get the intervening Release events inserted on the
// jump path, preserving the matched-pair property the paper's Theorem 4.1
// relies on.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "synat/cfg/event.h"

namespace synat::cfg {

struct LoopInfo {
  StmtId stmt;           ///< the Loop statement
  EventId head;          ///< LoopHead node
  StmtId parent;         ///< enclosing Loop statement, if any
  std::vector<EventId> back_sources;  ///< nodes with a Back edge to head
  std::vector<EventId> members;       ///< all nodes strictly inside the loop
};

class Cfg {
 public:
  EventId entry() const { return entry_; }
  EventId exit() const { return exit_; }
  ProcId proc() const { return proc_; }

  const Event& node(EventId id) const { return nodes_[id.idx]; }
  Event& node(EventId id) { return nodes_[id.idx]; }
  size_t num_nodes() const { return nodes_.size(); }

  const std::vector<Edge>& succs(EventId id) const { return succs_[id.idx]; }
  const std::vector<Edge>& preds(EventId id) const { return preds_[id.idx]; }

  const std::vector<LoopInfo>& loops() const { return loops_; }
  const LoopInfo* loop_info(StmtId loop) const {
    auto it = loop_index_.find(loop);
    return it == loop_index_.end() ? nullptr : &loops_[it->second];
  }

  /// True if `n` is inside loop `loop` (directly or in a nested loop).
  bool in_loop(EventId n, StmtId loop) const;

  /// All event ids in creation order (a valid traversal universe; creation
  /// order is not a topological order because of back edges).
  std::vector<EventId> all_nodes() const;

  /// Forward reachability from `from`, optionally restricted to nodes for
  /// which `within` returns true (edges to outside nodes are not followed).
  template <class Pred>
  std::unordered_set<EventId> reachable(EventId from, Pred within) const {
    std::unordered_set<EventId> seen;
    std::vector<EventId> work{from};
    if (!within(from)) return seen;
    seen.insert(from);
    while (!work.empty()) {
      EventId n = work.back();
      work.pop_back();
      for (const Edge& e : succs(n)) {
        if (!within(e.to) || seen.count(e.to)) continue;
        seen.insert(e.to);
        work.push_back(e.to);
      }
    }
    return seen;
  }

  /// Backward reachability (same contract as `reachable`).
  template <class Pred>
  std::unordered_set<EventId> reachable_back(EventId from, Pred within) const {
    std::unordered_set<EventId> seen;
    std::vector<EventId> work{from};
    if (!within(from)) return seen;
    seen.insert(from);
    while (!work.empty()) {
      EventId n = work.back();
      work.pop_back();
      for (const Edge& e : preds(n)) {
        if (!within(e.to) || seen.count(e.to)) continue;
        seen.insert(e.to);
        work.push_back(e.to);
      }
    }
    return seen;
  }

  std::string dump(const Program& prog) const;

 private:
  friend class CfgBuilder;
  EventId add_node(Event ev) {
    nodes_.push_back(std::move(ev));
    succs_.emplace_back();
    preds_.emplace_back();
    return EventId(static_cast<uint32_t>(nodes_.size() - 1));
  }
  void add_edge(EventId from, EventId to, EdgeKind kind) {
    succs_[from.idx].push_back({to, kind});
    preds_[to.idx].push_back({from, kind});
  }

  ProcId proc_;
  EventId entry_, exit_;
  std::vector<Event> nodes_;
  std::vector<std::vector<Edge>> succs_;
  std::vector<std::vector<Edge>> preds_;
  std::vector<LoopInfo> loops_;
  std::unordered_map<StmtId, size_t> loop_index_;
};

/// Builds the CFG for one procedure. The program must have passed sema.
Cfg build_cfg(const Program& prog, ProcId proc);

}  // namespace synat::cfg
