#include "synat/cfg/liveness.h"

#include <vector>

namespace synat::cfg {

namespace {

/// True if `a` is a proper prefix of `b` (same root, fewer selectors, all
/// matching; Index matches Index).
bool proper_prefix(const AccessPath& a, const AccessPath& b) {
  if (a.root != b.root || a.sels.size() >= b.sels.size()) return false;
  for (size_t i = 0; i < a.sels.size(); ++i) {
    if (!(a.sels[i] == b.sels[i])) return false;
  }
  return true;
}

bool same_path(const AccessPath& a, const AccessPath& b) { return a == b; }

}  // namespace

AccessEffect access_effect(const Event& ev, const AccessPath& query) {
  if (!ev.path.root.valid()) return AccessEffect::None;
  switch (ev.kind) {
    case EventKind::Read:
      if (ev.is_base) return AccessEffect::None;
      if (same_path(ev.path, query) || proper_prefix(ev.path, query))
        return AccessEffect::Use;
      return AccessEffect::None;
    case EventKind::Write:
      if (same_path(ev.path, query) || proper_prefix(ev.path, query))
        return AccessEffect::Kill;
      return AccessEffect::None;
    case EventKind::LL:
    case EventKind::VL:
    case EventKind::SC:
    case EventKind::CAS:
      // Conservative: any non-blocking primitive on the location (or a
      // prefix) keeps it live. SC/CAS may fail, so they are not kills.
      if (same_path(ev.path, query) || proper_prefix(ev.path, query))
        return AccessEffect::Use;
      return AccessEffect::None;
    default:
      return AccessEffect::None;
  }
}

bool live_after(const Program& prog, const Cfg& cfg, EventId point,
                const AccessPath& query) {
  const bool exit_is_use =
      query.root.valid() &&
      prog.var(query.root).kind == synl::VarKind::ThreadLocal;

  std::vector<bool> visited(cfg.num_nodes(), false);
  std::vector<EventId> work;
  auto push = [&](EventId n) {
    if (!visited[n.idx]) {
      visited[n.idx] = true;
      work.push_back(n);
    }
  };
  for (const Edge& e : cfg.succs(point)) push(e.to);

  while (!work.empty()) {
    EventId n = work.back();
    work.pop_back();
    const Event& ev = cfg.node(n);
    if (n == cfg.exit()) {
      if (exit_is_use) return true;
      continue;
    }
    switch (access_effect(ev, query)) {
      case AccessEffect::Use:
        return true;
      case AccessEffect::Kill:
        continue;  // this path is satisfied; do not explore past the write
      case AccessEffect::None:
        break;
    }
    for (const Edge& e : cfg.succs(n)) push(e.to);
  }
  return false;
}

}  // namespace synat::cfg
