#include "synat/cfg/cfg.h"

#include <string>

#include "synat/obs/trace.h"
#include "synat/synl/printer.h"

namespace synat::cfg {

std::string AccessPath::str(const Program& prog) const {
  std::string out = root.valid()
                        ? std::string(prog.syms().name(prog.var(root).name))
                        : std::string("<?>");
  for (const Selector& s : sels) {
    if (s.kind == Selector::Field) {
      out += '.';
      out += prog.syms().name(s.field);
    } else {
      out += "[*]";
    }
  }
  return out;
}

std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::Entry: return "entry";
    case EventKind::Exit: return "exit";
    case EventKind::LoopHead: return "loophead";
    case EventKind::Join: return "join";
    case EventKind::Read: return "read";
    case EventKind::Write: return "write";
    case EventKind::LL: return "LL";
    case EventKind::VL: return "VL";
    case EventKind::SC: return "SC";
    case EventKind::CAS: return "CAS";
    case EventKind::New: return "new";
    case EventKind::Acquire: return "acquire";
    case EventKind::Release: return "release";
    case EventKind::Assume: return "assume";
  }
  return "?";
}

bool Cfg::in_loop(EventId n, StmtId loop) const {
  const LoopInfo* info = loop_info(loop);
  if (!info) return false;
  for (EventId m : info->members)
    if (m == n) return true;
  return false;
}

std::vector<EventId> Cfg::all_nodes() const {
  std::vector<EventId> out;
  out.reserve(nodes_.size());
  for (uint32_t i = 0; i < nodes_.size(); ++i) out.push_back(EventId(i));
  return out;
}

std::string Cfg::dump(const Program& prog) const {
  std::string out;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const Event& ev = nodes_[i];
    out += 'n' + std::to_string(i) + ": " + std::string(to_string(ev.kind));
    if (ev.path.root.valid()) out += ' ' + ev.path.str(prog);
    if (ev.must_succeed) out += " [must-succeed]";
    out += " ->";
    for (const Edge& e : succs_[i]) {
      out += " n" + std::to_string(e.to.idx);
      switch (e.kind) {
        case EdgeKind::True: out += "(T)"; break;
        case EdgeKind::False: out += "(F)"; break;
        case EdgeKind::Back: out += "(back)"; break;
        case EdgeKind::Fall: break;
      }
    }
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Builder

using synl::Expr;
using synl::ExprKind;
using synl::Stmt;
using synl::StmtKind;

// Not in an anonymous namespace: Cfg befriends this exact class name.
class CfgBuilder {
 public:
  CfgBuilder(const Program& prog, ProcId proc) : prog_(prog), proc_(proc) {}

  Cfg build() {
    cfg_.proc_ = proc_;
    cfg_.entry_ = cfg_.add_node(make_event(EventKind::Entry, StmtId(), ExprId()));
    cfg_.exit_ = cfg_.add_node(make_event(EventKind::Exit, StmtId(), ExprId()));
    Frontier end = build_stmt(prog_.proc(proc_).body,
                              {{cfg_.entry_, EdgeKind::Fall}});
    connect_all(end, cfg_.exit_, EdgeKind::Fall);
    return std::move(cfg_);
  }

 private:
  /// Dangling out-edges waiting for their destination.
  using Frontier = std::vector<std::pair<EventId, EdgeKind>>;

  struct SyncCtx {
    ExprId lock;
    StmtId stmt;
  };
  struct LoopCtx {
    StmtId stmt;
    EventId head;
    size_t sync_depth;      ///< sync_stack_ size at loop entry
    Frontier breaks;        ///< edges that exit the loop via break
  };

  Event make_event(EventKind kind, StmtId stmt, ExprId expr) {
    Event ev;
    ev.kind = kind;
    ev.stmt = stmt;
    ev.expr = expr;
    if (!loop_stack_.empty()) ev.loop = loop_stack_.back().stmt;
    return ev;
  }

  void connect_all(const Frontier& f, EventId to, EdgeKind override_kind) {
    for (auto [from, kind] : f) {
      EdgeKind k = override_kind == EdgeKind::Back ? EdgeKind::Back : kind;
      cfg_.add_edge(from, to, k);
    }
  }

  /// Appends a node, wiring the frontier into it; returns the new frontier.
  Frontier chain(const Frontier& f, Event ev) {
    EventId id = cfg_.add_node(std::move(ev));
    for (auto [from, kind] : f) cfg_.add_edge(from, id, kind);
    note_loop_member(id);
    return {{id, EdgeKind::Fall}};
  }

  void note_loop_member(EventId id) {
    // Record membership in every enclosing loop.
    for (LoopCtx& ctx : loop_stack_) {
      cfg_.loops_[cfg_.loop_index_.at(ctx.stmt)].members.push_back(id);
    }
  }

  /// AccessPath for a Location expression (x | x.fd | x[e], possibly
  /// chained). Returns an empty path when the expression is not rooted in a
  /// variable (parse-error recovery).
  AccessPath path_of(ExprId id) const {
    AccessPath path;
    std::vector<Selector> rev;
    ExprId cur = id;
    while (cur.valid()) {
      const Expr& e = prog_.expr(cur);
      if (e.kind == ExprKind::VarRef) {
        path.root = e.var;
        break;
      }
      if (e.kind == ExprKind::Field) {
        rev.push_back({Selector::Field, e.name});
        cur = e.a;
      } else if (e.kind == ExprKind::Index) {
        rev.push_back({Selector::Index, {}});
        cur = e.a;
      } else {
        break;  // not a location
      }
    }
    path.sels.assign(rev.rbegin(), rev.rend());
    return path;
  }

  /// Emits the address-computation events of a location (reads of the base
  /// pointer chain and index expressions) WITHOUT the final read of the
  /// location itself. Used for assignment targets and LL/SC/VL/CAS operands.
  /// Base-chain reads are flagged is_base: they fetch a pointer only to
  /// dereference it, so the liveness analysis does not treat them as value
  /// uses (paper Section 4, condition (ii)).
  Frontier emit_location_base(ExprId id, StmtId stmt, Frontier f) {
    const Expr& e = prog_.expr(id);
    switch (e.kind) {
      case ExprKind::VarRef:
        return f;  // the variable's address needs no evaluation
      case ExprKind::Field:
        return emit_location_read(e.a, stmt, std::move(f));
      case ExprKind::Index: {
        f = emit_location_read(e.a, stmt, std::move(f));
        return emit_expr(e.b, stmt, std::move(f), 0);  // index is a value use
      }
      default:
        return f;  // error recovery
    }
  }

  /// Emits a read of location `id` flagged as a base (address) read,
  /// preceded by its own base reads.
  Frontier emit_location_read(ExprId id, StmtId stmt, Frontier f) {
    const Expr& e = prog_.expr(id);
    if (!synl::is_location_kind(e.kind)) {
      return emit_expr(id, stmt, std::move(f), 0);  // error recovery
    }
    f = emit_location_base(id, stmt, std::move(f));
    Event ev = make_event(EventKind::Read, stmt, id);
    ev.path = path_of(id);
    ev.is_base = true;
    return chain(std::move(f), std::move(ev));
  }

  /// Emits evaluation events for `id`. `assume_polarity` is +1 when the
  /// expression appears positively inside a TRUE(...) (so an SC/CAS here
  /// must succeed), -1 when negated, 0 when not inside an assumption.
  Frontier emit_expr(ExprId id, StmtId stmt, Frontier f, int assume_polarity) {
    if (!id.valid()) return f;
    const Expr& e = prog_.expr(id);
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
      case ExprKind::NullLit:
        return f;
      case ExprKind::VarRef:
      case ExprKind::Field:
      case ExprKind::Index: {
        f = emit_location_base(id, stmt, std::move(f));
        Event ev = make_event(EventKind::Read, stmt, id);
        ev.path = path_of(id);
        return chain(std::move(f), std::move(ev));
      }
      case ExprKind::Unary:
        return emit_expr(e.a, stmt, std::move(f),
                         e.un_op == synl::UnOp::Not ? -assume_polarity
                                                    : assume_polarity);
      case ExprKind::Binary: {
        // Conjunction preserves polarity (TRUE(a && b) assumes both);
        // everything else is neutral for the success analysis.
        int child = e.bin_op == synl::BinOp::And ? assume_polarity : 0;
        f = emit_expr(e.a, stmt, std::move(f), child);
        return emit_expr(e.b, stmt, std::move(f), child);
      }
      case ExprKind::LL:
      case ExprKind::VL: {
        f = emit_location_base(e.a, stmt, std::move(f));
        Event ev = make_event(
            e.kind == ExprKind::LL ? EventKind::LL : EventKind::VL, stmt, id);
        ev.path = path_of(e.a);
        ev.must_succeed = assume_polarity > 0;
        return chain(std::move(f), std::move(ev));
      }
      case ExprKind::SC: {
        f = emit_location_base(e.a, stmt, std::move(f));
        f = emit_expr(e.b, stmt, std::move(f), 0);
        Event ev = make_event(EventKind::SC, stmt, id);
        ev.path = path_of(e.a);
        ev.must_succeed = assume_polarity > 0;
        return chain(std::move(f), std::move(ev));
      }
      case ExprKind::CAS: {
        f = emit_location_base(e.a, stmt, std::move(f));
        f = emit_expr(e.b, stmt, std::move(f), 0);
        f = emit_expr(e.c, stmt, std::move(f), 0);
        Event ev = make_event(EventKind::CAS, stmt, id);
        ev.path = path_of(e.a);
        ev.must_succeed = assume_polarity > 0;
        return chain(std::move(f), std::move(ev));
      }
      case ExprKind::New: {
        Event ev = make_event(EventKind::New, stmt, id);
        return chain(std::move(f), std::move(ev));
      }
      case ExprKind::Call:
        SYNAT_ASSERT(false, "procedure call reached CFG construction; "
                            "inline_calls must run first");
    }
    return f;
  }

  /// Emits Release events for every synchronized block entered after
  /// `down_to` (used when a jump leaves those blocks).
  Frontier emit_releases(Frontier f, size_t down_to, StmtId jump_stmt) {
    for (size_t i = sync_stack_.size(); i > down_to; --i) {
      Event ev = make_event(EventKind::Release, jump_stmt, sync_stack_[i - 1].lock);
      ev.path = path_of(sync_stack_[i - 1].lock);
      f = chain(std::move(f), std::move(ev));
    }
    return f;
  }

  LoopCtx* find_loop(StmtId target) {
    for (auto it = loop_stack_.rbegin(); it != loop_stack_.rend(); ++it) {
      if (it->stmt == target) return &*it;
    }
    return nullptr;
  }

  Frontier build_stmt(StmtId id, Frontier f) {
    if (!id.valid()) return f;
    const Stmt& s = prog_.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign: {
        f = emit_expr(s.e2, id, std::move(f), 0);
        f = emit_location_base(s.e1, id, std::move(f));
        Event ev = make_event(EventKind::Write, id, s.e1);
        ev.path = path_of(s.e1);
        return chain(std::move(f), std::move(ev));
      }
      case StmtKind::ExprStmt:
        return emit_expr(s.e1, id, std::move(f), 0);
      case StmtKind::Block: {
        for (StmtId child : s.stmts) f = build_stmt(child, std::move(f));
        return f;
      }
      case StmtKind::If: {
        f = emit_expr(s.e1, id, std::move(f), 0);
        // Materialize a branch point so True/False edges have one source.
        Event ev = make_event(EventKind::Join, id, s.e1);
        Frontier at_branch = chain(std::move(f), std::move(ev));
        EventId branch = at_branch[0].first;
        Frontier out = build_stmt(s.s1, {{branch, EdgeKind::True}});
        if (s.s2.valid()) {
          Frontier out2 = build_stmt(s.s2, {{branch, EdgeKind::False}});
          out.insert(out.end(), out2.begin(), out2.end());
        } else {
          out.push_back({branch, EdgeKind::False});
        }
        return out;
      }
      case StmtKind::Local: {
        f = emit_expr(s.e1, id, std::move(f), 0);
        Event ev = make_event(EventKind::Write, id, ExprId());
        ev.path.root = s.var;
        f = chain(std::move(f), std::move(ev));
        return build_stmt(s.s1, std::move(f));
      }
      case StmtKind::Loop: {
        Event head_ev = make_event(EventKind::LoopHead, id, ExprId());
        Frontier at_head = chain(std::move(f), std::move(head_ev));
        EventId head = at_head[0].first;

        LoopInfo info;
        info.stmt = id;
        info.head = head;
        info.parent = loop_stack_.empty() ? StmtId() : loop_stack_.back().stmt;
        info.members.push_back(head);
        cfg_.loop_index_[id] = cfg_.loops_.size();
        cfg_.loops_.push_back(std::move(info));

        loop_stack_.push_back({id, head, sync_stack_.size(), {}});
        Frontier body_end = build_stmt(s.s1, {{head, EdgeKind::Fall}});
        // Normal termination: fall back to the head. The dangling edge's
        // branch kind is preserved (analyses need to know whether the back
        // edge was the True or False leg of an if); back edges are
        // identified through LoopInfo::back_sources, not the edge kind.
        size_t li = cfg_.loop_index_.at(id);
        for (auto [from, kind] : body_end) {
          cfg_.add_edge(from, head, kind);
          cfg_.loops_[li].back_sources.push_back(from);
        }
        Frontier after = std::move(loop_stack_.back().breaks);
        loop_stack_.pop_back();
        return after;
      }
      case StmtKind::Return: {
        f = emit_expr(s.e1, id, std::move(f), 0);
        f = emit_releases(std::move(f), 0, id);
        connect_all(f, cfg_.exit_, EdgeKind::Fall);
        return {};
      }
      case StmtKind::Break: {
        LoopCtx* ctx = find_loop(s.jump_target);
        if (!ctx) return {};  // malformed; sema reported it
        f = emit_releases(std::move(f), ctx->sync_depth, id);
        for (auto edge : f) ctx->breaks.push_back(edge);
        return {};
      }
      case StmtKind::Continue: {
        LoopCtx* ctx = find_loop(s.jump_target);
        if (!ctx) return {};
        f = emit_releases(std::move(f), ctx->sync_depth, id);
        size_t li = cfg_.loop_index_.at(ctx->stmt);
        for (auto [from, kind] : f) {
          cfg_.add_edge(from, ctx->head, kind);
          cfg_.loops_[li].back_sources.push_back(from);
        }
        return {};
      }
      case StmtKind::Skip:
        return f;
      case StmtKind::Synchronized: {
        f = emit_expr(s.e1, id, std::move(f), 0);
        Event acq = make_event(EventKind::Acquire, id, s.e1);
        acq.path = path_of(s.e1);
        f = chain(std::move(f), std::move(acq));
        sync_stack_.push_back({s.e1, id});
        f = build_stmt(s.s1, std::move(f));
        sync_stack_.pop_back();
        Event rel = make_event(EventKind::Release, id, s.e1);
        rel.path = path_of(s.e1);
        return chain(std::move(f), std::move(rel));
      }
      case StmtKind::Assume: {
        f = emit_expr(s.e1, id, std::move(f), +1);
        Event ev = make_event(EventKind::Assume, id, s.e1);
        f = chain(std::move(f), std::move(ev));
        // TRUE(false) marks an infeasible branch (used by the variant
        // generator for jumps into deleted iterations): dead end.
        const Expr& e = prog_.expr(s.e1);
        if (e.kind == ExprKind::BoolLit && !e.bool_value) return {};
        return f;
      }
      case StmtKind::Assert:
        return emit_expr(s.e1, id, std::move(f), 0);
    }
    return f;
  }

  const Program& prog_;
  ProcId proc_;
  Cfg cfg_;
  std::vector<SyncCtx> sync_stack_;
  std::vector<LoopCtx> loop_stack_;
};

Cfg build_cfg(const Program& prog, ProcId proc) {
  obs::SpanScope span(obs::StageId::CfgLiveness);
  return CfgBuilder(prog, proc).build();
}

}  // namespace synat::cfg
