#include "synat/analysis/matching.h"

#include "synat/analysis/expr_util.h"

namespace synat::analysis {

using cfg::Edge;
using cfg::Event;
using cfg::EventKind;
using synl::ExprKind;
using synl::Stmt;
using synl::StmtKind;

MatchingAnalysis::MatchingAnalysis(const Program& prog, const Cfg& cfg)
    : prog_(prog), cfg_(cfg) {
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    EventId id(i);
    switch (cfg.node(id).kind) {
      case EventKind::SC:
      case EventKind::VL:
        match_ll(id);
        break;
      case EventKind::CAS:
        match_read(id);
        break;
      default:
        break;
    }
  }
}

std::vector<EventId> MatchingAnalysis::matched_by(EventId ll) const {
  std::vector<EventId> out;
  for (const auto& [prim, mi] : info_) {
    for (EventId m : mi.matches) {
      if (m == ll) {
        out.push_back(prim);
        break;
      }
    }
  }
  return out;
}

void MatchingAnalysis::match_ll(EventId start) {
  const cfg::AccessPath& path = cfg_.node(start).path;
  MatchInfo mi;
  mi.complete = true;

  std::vector<bool> visited(cfg_.num_nodes(), false);
  std::vector<EventId> work;
  auto push = [&](EventId n) {
    if (!visited[n.idx]) {
      visited[n.idx] = true;
      work.push_back(n);
    }
  };
  for (const Edge& e : cfg_.preds(start)) push(e.to);

  std::vector<bool> matched(cfg_.num_nodes(), false);
  while (!work.empty()) {
    EventId n = work.back();
    work.pop_back();
    const Event& ev = cfg_.node(n);
    if (ev.kind == EventKind::LL && ev.path == path) {
      if (!matched[n.idx]) {
        matched[n.idx] = true;
        mi.matches.push_back(n);
      }
      continue;  // do not go past the matching LL
    }
    if (n == cfg_.entry()) {
      mi.complete = false;  // a path from entry reaches the SC/VL with no LL
      continue;
    }
    for (const Edge& e : cfg_.preds(n)) push(e.to);
  }
  info_[start] = std::move(mi);
}

void MatchingAnalysis::match_read(EventId cas) {
  const Event& cas_ev = cfg_.node(cas);
  const synl::Expr& e = prog_.expr(cas_ev.expr);
  MatchInfo mi;
  mi.complete = true;

  // The expected value must be a variable whose defining reads we can find.
  if (!e.b.valid() || prog_.expr(e.b).kind != ExprKind::VarRef) {
    mi.complete = false;
    info_[cas] = std::move(mi);
    return;
  }
  synl::VarId x = prog_.expr(e.b).var;
  const cfg::AccessPath& target = cas_ev.path;

  std::vector<bool> visited(cfg_.num_nodes(), false);
  std::vector<EventId> work;
  auto push = [&](EventId n) {
    if (!visited[n.idx]) {
      visited[n.idx] = true;
      work.push_back(n);
    }
  };
  for (const Edge& edge : cfg_.preds(cas)) push(edge.to);

  std::vector<bool> matched(cfg_.num_nodes(), false);
  while (!work.empty()) {
    EventId n = work.back();
    work.pop_back();
    const Event& ev = cfg_.node(n);
    if (ev.kind == EventKind::Write && ev.path.is_plain_var() &&
        ev.path.root == x) {
      // Is this write saving a read of the CAS target? (`x := v`)
      const Stmt& s = prog_.stmt(ev.stmt);
      synl::ExprId rhs = s.kind == StmtKind::Assign ? s.e2 : s.e1;
      if (rhs.valid() && reads_exactly(prog_, rhs, target)) {
        // The matching read action is the Read(v) event of this statement,
        // which immediately precedes the write in the event chain.
        EventId read_ev;
        for (const Edge& p : cfg_.preds(n)) {
          const Event& pe = cfg_.node(p.to);
          if (pe.kind == EventKind::Read && pe.stmt == ev.stmt &&
              pe.path == target) {
            read_ev = p.to;
            break;
          }
        }
        if (read_ev.valid()) {
          if (!matched[read_ev.idx]) {
            matched[read_ev.idx] = true;
            mi.matches.push_back(read_ev);
          }
        } else {
          mi.complete = false;
        }
      } else {
        // x was overwritten with something else: no matching read on this
        // path.
        mi.complete = false;
      }
      continue;  // definition of x found; stop this path
    }
    if (n == cfg_.entry()) {
      mi.complete = false;
      continue;
    }
    for (const Edge& edge : cfg_.preds(n)) push(edge.to);
  }
  info_[cas] = std::move(mi);
}

}  // namespace synat::analysis
