#include "synat/analysis/localcond.h"

#include "synat/analysis/expr_util.h"

namespace synat::analysis {

using cfg::Event;
using cfg::EventKind;
using synl::Expr;
using synl::ExprKind;
using synl::Stmt;
using synl::StmtKind;

std::string_view to_string(Pred p) {
  switch (p) {
    case Pred::True: return "true";
    case Pred::EqNull: return "== null";
    case Pred::NeNull: return "!= null";
  }
  return "?";
}

namespace {

/// Canonicalizes `e` as a null-ness predicate over `lvar`, or Pred::True.
Pred pred_of(const Program& prog, synl::ExprId id, VarId lvar) {
  if (!id.valid()) return Pred::True;
  const Expr& e = prog.expr(id);
  switch (e.kind) {
    case ExprKind::Unary:
      if (e.un_op == synl::UnOp::Not)
        return negate(pred_of(prog, e.a, lvar));
      return Pred::True;
    case ExprKind::Binary: {
      if (e.bin_op != synl::BinOp::Eq && e.bin_op != synl::BinOp::Ne)
        return Pred::True;
      auto is_lvar = [&](synl::ExprId x) {
        return x.valid() && prog.expr(x).kind == ExprKind::VarRef &&
               prog.expr(x).var == lvar;
      };
      auto is_null = [&](synl::ExprId x) {
        return x.valid() && prog.expr(x).kind == ExprKind::NullLit;
      };
      bool matches = (is_lvar(e.a) && is_null(e.b)) ||
                     (is_null(e.a) && is_lvar(e.b));
      if (!matches) return Pred::True;
      return e.bin_op == synl::BinOp::Eq ? Pred::EqNull : Pred::NeNull;
    }
    default:
      return Pred::True;
  }
}

}  // namespace

LocalCondAnalysis::LocalCondAnalysis(const Program& prog, const Cfg& cfg)
    : prog_(prog), cfg_(cfg) {
  synl::for_each_stmt(prog, prog.proc(cfg.proc()).body, [&](StmtId sid) {
    if (prog.stmt(sid).kind == StmtKind::Local) analyze_block(sid);
  });
}

void LocalCondAnalysis::analyze_block(StmtId local_stmt) {
  const Stmt& s = prog_.stmt(local_stmt);
  LocalBlock block;
  block.stmt = local_stmt;
  block.lvar = s.var;

  // Initializer shape: LL(loc) or a plain location read.
  const Expr& init = prog_.expr(s.e1);
  if (init.kind == ExprKind::LL) {
    block.svar = path_of_expr(prog_, init.a);
    block.reads_svar = block.svar.root.valid();
    block.init_is_ll = true;
  } else if (synl::is_location_kind(init.kind)) {
    block.svar = path_of_expr(prog_, s.e1);
    block.reads_svar = block.svar.root.valid();
  }

  // Walk the body: updates of lvar, conditions, successful SCs on svar.
  synl::for_each_stmt(prog_, s.s1, [&](StmtId sid) {
    const Stmt& inner = prog_.stmt(sid);
    if (inner.kind == StmtKind::Assign) {
      AccessPath lhs = path_of_expr(prog_, inner.e1);
      if (lhs.is_plain_var() && lhs.root == block.lvar)
        block.lvar_updated = true;
    }
    if (inner.kind == StmtKind::Assume) {
      Pred p = pred_of(prog_, inner.e1, block.lvar);
      if (p != Pred::True) {
        // Conjoin; conflicting conditions on one path are dead code —
        // keep the first one found.
        if (block.cond == Pred::True) block.cond = p;
      }
    }
  });

  // Collect the block's events and find a TRUE-guarded SC on svar.
  for (uint32_t i = 0; i < cfg_.num_nodes(); ++i) {
    EventId id(i);
    const Event& ev = cfg_.node(id);
    if (!ev.stmt.valid()) continue;
    // An event belongs to the block if its statement is the Local itself or
    // is nested inside its body.
    bool inside = false;
    if (ev.stmt == local_stmt) inside = true;
    synl::for_each_stmt(prog_, s.s1, [&](StmtId sid) {
      if (sid == ev.stmt) inside = true;
    });
    if (!inside) continue;
    block.events.push_back(id);
    if (ev.kind == EventKind::SC && ev.must_succeed &&
        block.reads_svar && ev.path == block.svar) {
      block.has_successful_sc = true;
    }
  }

  index_[local_stmt] = blocks_.size();
  blocks_.push_back(std::move(block));
}

}  // namespace synat::analysis
