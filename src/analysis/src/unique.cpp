#include "synat/analysis/unique.h"

#include "synat/analysis/expr_util.h"

namespace synat::analysis {

using cfg::Edge;
using cfg::EdgeKind;
using cfg::Event;
using cfg::EventKind;
using synl::Expr;
using synl::ExprKind;
using synl::Stmt;
using synl::StmtKind;
using synl::VarKind;

UniqueAnalysis::UniqueAnalysis(const Program& prog, const Cfg& cfg)
    : prog_(prog), cfg_(cfg) {
  const synl::ProcInfo& p = prog.proc(cfg.proc());
  auto consider = [&](VarId v) {
    if (!prog.is_ref_like(prog.var(v).type)) return;
    if (check_candidate(v)) working_.insert(v);
  };
  // Thread-locals are the canonical working copies; procedure locals
  // qualify too when they satisfy the same discipline.
  for (VarId v : prog.threadlocals()) consider(v);
  for (VarId v : p.locals) consider(v);
}

std::vector<EventId> UniqueAnalysis::post_success(EventId publish) const {
  return post_success_edges(prog_, cfg_, publish);
}

bool UniqueAnalysis::check_candidate(VarId v) const {
  std::vector<EventId> publishes;
  std::vector<EventId> retirement_writes;  // filled by the forward check

  // Pass 1: classify every event involving v.
  for (uint32_t i = 0; i < cfg_.num_nodes(); ++i) {
    EventId id(i);
    const Event& ev = cfg_.node(id);
    switch (ev.kind) {
      case EventKind::SC:
      case EventKind::CAS: {
        const Expr& e = prog_.expr(ev.expr);
        bool publishes_v = mentions_as_value(prog_, e.b, v) ||
                           (ev.kind == EventKind::CAS &&
                            mentions_as_value(prog_, e.c, v));
        if (!publishes_v) break;
        // Must publish into a global-rooted location (condition 1).
        if (!ev.path.root.valid() ||
            prog_.var(ev.path.root).kind == VarKind::Local ||
            prog_.var(ev.path.root).kind == VarKind::Param) {
          // Publishing into a location reached from a local pointer still
          // escapes to shared state (e.g. SC(t.Next, node)); that is a leak
          // without retirement, so v is not a working copy... unless the
          // target is itself provably unescaped, which we do not track
          // here.
          if (!ev.path.is_plain_var()) return false;
        }
        publishes.push_back(id);
        break;
      }
      case EventKind::Write: {
        if (ev.path.root == v && !ev.path.is_plain_var()) break;  // deref write: fine
        if (ev.path.root != v) {
          // v stored elsewhere by plain assignment: escapes without the
          // SC discipline.
          synl::ExprId rhs;
          const Stmt& s = prog_.stmt(ev.stmt);
          if (s.kind == StmtKind::Assign) rhs = s.e2;
          if (s.kind == StmtKind::Local) rhs = s.e1;
          if (rhs.valid() && mentions_as_value(prog_, rhs, v)) return false;
        }
        break;
      }
      case EventKind::Read: {
        // Returning v hands the reference to the environment.
        if (!ev.is_base && ev.path.is_plain_var() && ev.path.root == v &&
            ev.stmt.valid() && prog_.stmt(ev.stmt).kind == StmtKind::Return)
          return false;
        break;
      }
      default:
        break;
    }
  }

  // Pass 2 (condition 2): after each publication's success, the first event
  // touching v on every path must be a plain write to v (the retirement).
  for (EventId pub : publishes) {
    std::vector<bool> visited(cfg_.num_nodes(), false);
    std::vector<EventId> work = post_success(pub);
    for (EventId n : work) visited[n.idx] = true;
    while (!work.empty()) {
      EventId n = work.back();
      work.pop_back();
      const Event& ev = cfg_.node(n);
      bool touches_v = ev.path.root == v;
      if (touches_v && ev.kind == EventKind::Write && ev.path.is_plain_var()) {
        retirement_writes.push_back(n);
        continue;  // retired; this path is fine
      }
      if (touches_v) return false;  // deref or value-read before retirement
      if (n == cfg_.exit()) {
        // Reaching exit without retirement: for a thread-local, the
        // published (now shared) reference would still be in v at the next
        // call. Not a working copy.
        if (prog_.var(v).kind == VarKind::ThreadLocal) return false;
        continue;
      }
      for (const Edge& e : cfg_.succs(n)) {
        if (!visited[e.to.idx]) {
          visited[e.to.idx] = true;
          work.push_back(e.to);
        }
      }
    }
  }

  // Pass 3 (condition 3): every non-`new` plain assignment to v is one of
  // the retirements discovered above (or a reset like `prv.version[g] := 0`
  // which is a deref write, not a plain assignment).
  for (uint32_t i = 0; i < cfg_.num_nodes(); ++i) {
    EventId id(i);
    const Event& ev = cfg_.node(id);
    if (ev.kind != EventKind::Write || !ev.path.is_plain_var() ||
        ev.path.root != v)
      continue;
    const Stmt& s = prog_.stmt(ev.stmt);
    synl::ExprId rhs = s.kind == StmtKind::Assign ? s.e2 : s.e1;
    if (rhs.valid() && prog_.expr(rhs).kind == ExprKind::New) continue;
    bool is_retirement = false;
    for (EventId r : retirement_writes)
      if (r == id) is_retirement = true;
    if (!is_retirement) return false;
  }

  return true;
}

}  // namespace synat::analysis
