#include "synat/analysis/expr_util.h"

#include "synat/cfg/cfg.h"

namespace synat::analysis {

using synl::Expr;
using synl::ExprKind;
using synl::TypeId;
using synl::TypeKind;

namespace {

/// Walks `e`; `as_value` says whether this position is a value position.
bool mentions(const Program& prog, ExprId id, VarId v, bool as_value) {
  if (!id.valid()) return false;
  const Expr& e = prog.expr(id);
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NullLit:
    case ExprKind::New:
      return false;
    case ExprKind::VarRef:
      return as_value && e.var == v;
    case ExprKind::Field:
      // Reading a.fd uses `a` only as a base pointer; the *field value*
      // flows, not the pointer itself.
      return mentions(prog, e.a, v, /*as_value=*/false);
    case ExprKind::Index:
      return mentions(prog, e.a, v, false) || mentions(prog, e.b, v, true);
    case ExprKind::Unary:
      return mentions(prog, e.a, v, as_value);
    case ExprKind::Binary:
      // Comparisons and arithmetic never let a reference escape, but a
      // reference compared is still only inspected, not stored; treat both
      // operands as non-escaping value positions for refs. We keep it
      // conservative for non-comparison operators (no refs flow there in
      // well-typed code anyway).
      if (e.bin_op == synl::BinOp::Eq || e.bin_op == synl::BinOp::Ne) {
        return mentions(prog, e.a, v, false) || mentions(prog, e.b, v, false);
      }
      return mentions(prog, e.a, v, true) || mentions(prog, e.b, v, true);
    case ExprKind::LL:
    case ExprKind::VL:
      return mentions(prog, e.a, v, false);
    case ExprKind::SC:
      return mentions(prog, e.a, v, false) || mentions(prog, e.b, v, true);
    case ExprKind::CAS:
      return mentions(prog, e.a, v, false) || mentions(prog, e.b, v, true) ||
             mentions(prog, e.c, v, true);
    case ExprKind::Call:
      // Conservative: a call could do anything with its arguments.
      for (ExprId arg : e.args) {
        if (mentions(prog, arg, v, true)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace

bool mentions_as_value(const Program& prog, ExprId root, VarId v) {
  return mentions(prog, root, v, /*as_value=*/true);
}

AccessPath path_of_expr(const Program& prog, ExprId id) {
  AccessPath path;
  std::vector<cfg::Selector> rev;
  ExprId cur = id;
  while (cur.valid()) {
    const Expr& e = prog.expr(cur);
    if (e.kind == ExprKind::VarRef) {
      path.root = e.var;
      break;
    }
    if (e.kind == ExprKind::Field) {
      rev.push_back({cfg::Selector::Field, e.name});
      cur = e.a;
    } else if (e.kind == ExprKind::Index) {
      rev.push_back({cfg::Selector::Index, {}});
      cur = e.a;
    } else {
      break;
    }
  }
  path.sels.assign(rev.rbegin(), rev.rend());
  return path;
}

bool reads_exactly(const Program& prog, ExprId id, const AccessPath& path) {
  const Expr& e = prog.expr(id);
  ExprId loc = id;
  if (e.kind == ExprKind::LL) loc = e.a;
  if (!synl::is_location_kind(prog.expr(loc).kind)) return false;
  return path_of_expr(prog, loc) == path;
}

namespace {

TypeId walk_type(const Program& prog, const AccessPath& path, size_t nsels) {
  if (!path.root.valid()) return TypeId();
  TypeId t = prog.var(path.root).type;
  for (size_t i = 0; i < nsels; ++i) {
    if (!t.valid()) return TypeId();
    const synl::TypeNode& node = prog.type(t);
    const cfg::Selector& sel = path.sels[i];
    if (sel.kind == cfg::Selector::Field) {
      if (node.kind != TypeKind::Ref) return TypeId();
      const synl::ClassInfo& c = prog.cls(node.cls);
      int idx = c.field_index(sel.field);
      if (idx < 0) return TypeId();
      t = c.fields[static_cast<size_t>(idx)].type;
    } else {
      if (node.kind != TypeKind::Array) return TypeId();
      t = node.elem;
    }
  }
  return t;
}

bool types_definitely_differ(const Program& prog, TypeId a, TypeId b) {
  if (!a.valid() || !b.valid()) return false;
  const synl::TypeNode& ta = prog.type(a);
  const synl::TypeNode& tb = prog.type(b);
  if (ta.kind == TypeKind::Unknown || tb.kind == TypeKind::Unknown) return false;
  if (ta.kind != tb.kind) return true;
  if (ta.kind == TypeKind::Ref) return ta.cls != tb.cls;
  if (ta.kind == TypeKind::Array)
    return types_definitely_differ(prog, ta.elem, tb.elem);
  return false;
}

}  // namespace

TypeId path_prefix_type(const Program& prog, const AccessPath& path) {
  if (path.sels.empty()) return TypeId();
  return walk_type(prog, path, path.sels.size() - 1);
}

TypeId path_type(const Program& prog, const AccessPath& path) {
  return walk_type(prog, path, path.sels.size());
}

std::vector<cfg::EventId> post_success_edges(const Program& prog,
                                             const cfg::Cfg& cfg,
                                             cfg::EventId e) {
  const cfg::Event& ev = cfg.node(e);
  auto all_succs = [&] {
    std::vector<cfg::EventId> out;
    for (const cfg::Edge& s : cfg.succs(e)) out.push_back(s.to);
    return out;
  };
  if (ev.must_succeed) return all_succs();

  // `if (SC(...)) ...` — find the branch node deciding on this primitive
  // and follow only the success edge.
  if (!ev.stmt.valid() || prog.stmt(ev.stmt).kind != synl::StmtKind::If)
    return all_succs();
  ExprId cond = prog.stmt(ev.stmt).e1;
  bool negated = false;
  while (cond.valid() && prog.expr(cond).kind == ExprKind::Unary &&
         prog.expr(cond).un_op == synl::UnOp::Not) {
    negated = !negated;
    cond = prog.expr(cond).a;
  }
  if (cond != ev.expr) return all_succs();
  // Walk forward to the branch (Join) node for this if.
  cfg::EventId n = e;
  while (true) {
    const auto& ss = cfg.succs(n);
    if (ss.size() != 1) break;
    n = ss[0].to;
    const cfg::Event& cur = cfg.node(n);
    if (cur.kind == cfg::EventKind::Join && cur.stmt == ev.stmt) {
      std::vector<cfg::EventId> out;
      cfg::EdgeKind want = negated ? cfg::EdgeKind::False : cfg::EdgeKind::True;
      for (const cfg::Edge& s : cfg.succs(n))
        if (s.kind == want) out.push_back(s.to);
      return out;
    }
    if (cur.is_action()) break;  // something else runs first; give up
  }
  return all_succs();
}

bool may_alias(const Program& prog, const AccessPath& a, const AccessPath& b) {
  if (!a.root.valid() || !b.root.valid()) return true;  // unknown: be safe

  // Plain variables occupy their own storage: they alias only themselves,
  // and never alias heap locations.
  if (a.sels.empty() || b.sels.empty()) {
    return a.sels.empty() && b.sels.empty() && a.root == b.root;
  }

  const cfg::Selector& sa = a.sels.back();
  const cfg::Selector& sb = b.sels.back();
  if (sa.kind != sb.kind) return false;
  if (sa.kind == cfg::Selector::Field) {
    if (sa.field != sb.field) return false;
    // Same field name: require the holding classes to possibly coincide.
    if (types_definitely_differ(prog, path_prefix_type(prog, a),
                                path_prefix_type(prog, b)))
      return false;
    return true;
  }
  // Array elements: compare element types.
  return !types_definitely_differ(prog, path_type(prog, a), path_type(prog, b));
}

}  // namespace synat::analysis
