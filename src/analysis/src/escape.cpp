#include "synat/analysis/escape.h"

#include "synat/analysis/expr_util.h"

namespace synat::analysis {

using cfg::Event;
using cfg::EventKind;
using synl::Stmt;
using synl::StmtKind;
using synl::VarKind;

namespace {

/// RHS expression of the write performed by a statement, if any.
synl::ExprId write_rhs(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign: return s.e2;
    case StmtKind::Local: return s.e1;
    default: return synl::ExprId();
  }
}

}  // namespace

EscapeAnalysis::EscapeAnalysis(const Program& prog, const Cfg& cfg)
    : prog_(prog), cfg_(cfg) {
  const synl::ProcInfo& p = prog.proc(cfg.proc());
  auto consider = [&](VarId v) {
    if (prog.is_ref_like(prog.var(v).type)) analyze_var(v);
  };
  for (VarId v : p.params) consider(v);
  for (VarId v : p.locals) consider(v);
  for (VarId v : prog.threadlocals()) consider(v);
}

bool EscapeAnalysis::is_fresh_var(VarId v) const {
  auto it = fresh_.find(v);
  return it != fresh_.end() && it->second;
}

bool EscapeAnalysis::unescaped_at(EventId e, VarId v) const {
  if (!is_fresh_var(v)) return false;
  auto it = escaped_after_.find(v);
  if (it == escaped_after_.end()) return false;
  return !it->second[e.idx];
}

void EscapeAnalysis::analyze_var(VarId v) {
  // Freshness: every write of the plain variable stores a `new`.
  bool fresh = false;
  bool saw_nonfresh_def = false;
  std::vector<EventId> leaks;

  for (uint32_t i = 0; i < cfg_.num_nodes(); ++i) {
    EventId id(i);
    const Event& ev = cfg_.node(id);
    switch (ev.kind) {
      case EventKind::Write: {
        const Stmt& s = prog_.stmt(ev.stmt);
        if (ev.path.is_plain_var() && ev.path.root == v) {
          synl::ExprId rhs = write_rhs(s);
          if (rhs.valid() && prog_.expr(rhs).kind == synl::ExprKind::New) {
            fresh = true;
          } else {
            saw_nonfresh_def = true;
          }
        } else {
          // Writing v's value somewhere else leaks it — including into a
          // local copy (the copy could escape later; we do not track it).
          synl::ExprId rhs = write_rhs(s);
          if (rhs.valid() && mentions_as_value(prog_, rhs, v)) leaks.push_back(id);
        }
        break;
      }
      case EventKind::SC: {
        const synl::Expr& e = prog_.expr(ev.expr);
        if (mentions_as_value(prog_, e.b, v)) leaks.push_back(id);
        break;
      }
      case EventKind::CAS: {
        const synl::Expr& e = prog_.expr(ev.expr);
        if (mentions_as_value(prog_, e.b, v) || mentions_as_value(prog_, e.c, v))
          leaks.push_back(id);
        break;
      }
      case EventKind::Read: {
        // Returning v leaks it to the environment.
        if (!ev.is_base && ev.path.is_plain_var() && ev.path.root == v &&
            ev.stmt.valid() &&
            prog_.stmt(ev.stmt).kind == StmtKind::Return) {
          leaks.push_back(id);
        }
        break;
      }
      default:
        break;
    }
  }

  // Parameters and threadlocals start with unknown contents, so they are
  // only fresh if reassigned before use; we keep it simple and require
  // locals (whose declaration initializes them).
  if (prog_.var(v).kind != VarKind::Local) fresh = false;

  fresh_[v] = fresh && !saw_nonfresh_def;
  if (!fresh_[v]) return;

  // Escaped set: forward closure from the successors of each leak. SC/CAS
  // leaks only publish on success, so only their success continuations are
  // seeded (a failed SC in a retry loop does not shared-ify the object).
  std::vector<bool> escaped(cfg_.num_nodes(), false);
  std::vector<EventId> work;
  for (EventId l : leaks) {
    const Event& lev = cfg_.node(l);
    std::vector<EventId> seeds;
    if (lev.kind == EventKind::SC || lev.kind == EventKind::CAS) {
      seeds = post_success_edges(prog_, cfg_, l);
    } else {
      for (const cfg::Edge& e : cfg_.succs(l)) seeds.push_back(e.to);
    }
    for (EventId s : seeds) {
      if (!escaped[s.idx]) {
        escaped[s.idx] = true;
        work.push_back(s);
      }
    }
  }
  while (!work.empty()) {
    EventId n = work.back();
    work.pop_back();
    for (const cfg::Edge& e : cfg_.succs(n)) {
      if (!escaped[e.to.idx]) {
        escaped[e.to.idx] = true;
        work.push_back(e.to);
      }
    }
  }
  escaped_after_[v] = std::move(escaped);
}

}  // namespace synat::analysis
