#include "synat/analysis/purity.h"

#include "synat/cfg/liveness.h"
#include "synat/obs/trace.h"
#include "synat/synl/printer.h"

namespace synat::analysis {

using cfg::Edge;
using cfg::EdgeKind;
using cfg::Event;
using cfg::EventKind;
using synl::ExprKind;
using synl::StmtKind;
using synl::VarKind;

PurityAnalysis::PurityAnalysis(const Program& prog, const Cfg& cfg,
                               const MatchingAnalysis& matching,
                               const EscapeAnalysis& escape,
                               const UniqueAnalysis& unique)
    : prog_(prog), cfg_(cfg), matching_(matching), escape_(escape),
      unique_(unique) {
  obs::SpanScope span(obs::StageId::Purity);
  for (const cfg::LoopInfo& info : cfg.loops()) analyze_loop(info);
}

bool PurityAnalysis::is_local_action(EventId e) const {
  const Event& ev = cfg_.node(e);
  if (!ev.path.root.valid()) return false;
  VarKind k = prog_.var(ev.path.root).kind;
  if (ev.path.is_plain_var()) {
    // Unshared variables: everything except globals.
    return k != VarKind::Global;
  }
  if (k == VarKind::Global) return false;  // dereference of a shared pointer
  // Dereference through a local pointer: local action iff the pointer is a
  // verified unique reference (working copy) or the object is a fresh,
  // not-yet-escaped allocation at this point.
  return unique_.is_working_copy(ev.path.root) ||
         escape_.unescaped_at(e, ev.path.root);
}

namespace {

/// True branch? False branch? Finds the success-edge kind for an SC/CAS
/// that is (possibly negated) the condition of its `if` statement; returns
/// false if the pattern does not apply.
bool success_edge_kind(const Program& prog, const Cfg& cfg, EventId e,
                       EventId& branch_out, EdgeKind& kind_out) {
  const Event& ev = cfg.node(e);
  if (!ev.stmt.valid() || prog.stmt(ev.stmt).kind != StmtKind::If) return false;
  synl::ExprId cond = prog.stmt(ev.stmt).e1;
  bool negated = false;
  while (cond.valid() && prog.expr(cond).kind == ExprKind::Unary &&
         prog.expr(cond).un_op == synl::UnOp::Not) {
    negated = !negated;
    cond = prog.expr(cond).a;
  }
  if (cond != ev.expr) return false;
  // The branch node directly follows the last event of the condition.
  if (cfg.succs(e).size() != 1) return false;
  EventId b = cfg.succs(e)[0].to;
  const Event& bev = cfg.node(b);
  if (bev.kind != EventKind::Join || bev.stmt != ev.stmt) return false;
  branch_out = b;
  kind_out = negated ? EdgeKind::False : EdgeKind::True;
  return true;
}

}  // namespace

void PurityAnalysis::analyze_loop(const cfg::LoopInfo& info) {
  LoopPurity result;
  result.loop = info.stmt;

  std::vector<bool> member(cfg_.num_nodes(), false);
  for (EventId m : info.members) member[m.idx] = true;
  auto within = [&](EventId n) { return member[n.idx]; };

  // S1: reachable from the loop head staying inside the loop.
  auto s1 = cfg_.reachable(info.head, within);
  // S2: can reach a normal-termination point (a back-edge source of this
  // loop) staying inside the loop.
  std::unordered_set<EventId> s2;
  for (EventId src : info.back_sources) {
    auto part = cfg_.reachable_back(src, within);
    s2.insert(part.begin(), part.end());
  }

  for (EventId n : s1) {
    if (!s2.count(n)) continue;
    const Event& ev = cfg_.node(n);
    if (!ev.is_action()) continue;
    result.normal_events.insert(n);
  }

  // Pre-compute SC/CAS-as-read for primitives in the normal set.
  for (EventId n : result.normal_events) {
    const Event& ev = cfg_.node(n);
    if (ev.kind != EventKind::SC && ev.kind != EventKind::CAS) continue;
    if (ev.must_succeed) continue;
    EventId branch;
    EdgeKind success;
    if (!success_edge_kind(prog_, cfg_, n, branch, success)) continue;
    bool success_in_normal = false;
    for (const Edge& e : cfg_.succs(branch)) {
      if (e.kind != success) continue;
      if (s2.count(e.to)) success_in_normal = true;
    }
    if (!success_in_normal) sc_as_read_.insert(n);
  }

  auto impure = [&](EventId n, const char* condition, const std::string& why) {
    uint32_t line = cfg_.node(n).stmt.valid()
                        ? prog_.stmt(cfg_.node(n).stmt).loc.line
                        : 0;
    ImpureReason r;
    r.condition = condition;
    r.message = why + " at " + cfg_.node(n).path.str(prog_) + " (" +
                std::string(to_string(cfg_.node(n).kind)) + ", line " +
                std::to_string(line) + ")";
    r.line = line;
    result.reasons.push_back(std::move(r));
  };

  for (EventId n : result.normal_events) {
    const Event& ev = cfg_.node(n);
    switch (ev.kind) {
      case EventKind::Read:
      case EventKind::VL:
      case EventKind::New:
      case EventKind::Acquire:   // matched pairs: deletable per Theorem 4.1
      case EventKind::Release:
      case EventKind::Assume:
        break;
      case EventKind::LL: {
        // Condition (iii): all matching SCs in the loop, LL on every path.
        for (EventId sc : matching_.matched_by(n)) {
          if (!member[sc.idx]) {
            impure(n, "iii", "LL matched by an SC outside the loop");
            continue;
          }
          // BFS from the head, not expanding past LL(path) nodes; if the SC
          // is reached, some path to it lacks the LL.
          std::vector<bool> seen(cfg_.num_nodes(), false);
          std::vector<EventId> work{info.head};
          seen[info.head.idx] = true;
          bool ll_free_path = false;
          while (!work.empty() && !ll_free_path) {
            EventId cur = work.back();
            work.pop_back();
            const Event& cev = cfg_.node(cur);
            if (cur != info.head && cev.kind == EventKind::LL &&
                cev.path == ev.path)
              continue;  // barrier
            if (cur == sc) {
              ll_free_path = true;
              break;
            }
            for (const Edge& e : cfg_.succs(cur)) {
              if (member[e.to.idx] && !seen[e.to.idx]) {
                seen[e.to.idx] = true;
                work.push_back(e.to);
              }
            }
          }
          if (ll_free_path)
            impure(n, "iii", "matching SC reachable without re-executing the LL");
        }
        break;
      }
      case EventKind::Write: {
        if (!is_local_action(n)) {
          impure(n, "i", "global write in a normally terminating iteration");
          break;
        }
        if (cfg::live_after(prog_, cfg_, info.head, ev.path)) {
          impure(n, "ii", "local update live at the end of the loop body");
        }
        break;
      }
      case EventKind::SC:
      case EventKind::CAS: {
        if (sc_as_read_.count(n)) break;  // success branch never normal
        if (is_local_action(n)) {
          // SC/CAS on an unshared location behaves like a conditional local
          // write; require deadness like any other local update.
          if (cfg::live_after(prog_, cfg_, info.head, ev.path))
            impure(n, "ii",
                   "local SC/CAS update live at the end of the loop body");
          break;
        }
        impure(n, "i", "SC/CAS update in a normally terminating iteration");
        break;
      }
      default:
        break;
    }
  }

  result.pure = result.reasons.empty();
  results_[info.stmt] = std::move(result);
}

}  // namespace synat::analysis
