// Local conditions of local blocks (paper Section 5.3).
//
// A local block `local lvar := e in stmt` has a local condition p(lvar) if
// lvar is not updated in stmt and p(lvar) holds throughout stmt's
// execution. Conditions are harvested from the TRUE(...) statements inside
// the block that depend only on lvar; after exceptional-variant generation
// those assumptions are unconditional on the block's single path, which is
// where Theorem 5.5 is applied.
//
// We canonicalize the predicates that appear in the paper's algorithms:
// null-ness tests of the block variable. Everything else yields the trivial
// condition `true` (which never enables Theorem 5.5).
//
// A block is additionally an *LL-SC block on svar* when its initializer is
// LL(svar) and its body contains a successful (TRUE-guarded) SC on svar.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "synat/cfg/cfg.h"

namespace synat::analysis {

using cfg::AccessPath;
using cfg::Cfg;
using cfg::EventId;
using synl::Program;
using synl::StmtId;
using synl::VarId;

enum class Pred : uint8_t {
  True,    ///< no usable condition
  EqNull,  ///< lvar == null
  NeNull,  ///< lvar != null
};

constexpr Pred negate(Pred p) {
  switch (p) {
    case Pred::True: return Pred::True;
    case Pred::EqNull: return Pred::NeNull;
    case Pred::NeNull: return Pred::EqNull;
  }
  return Pred::True;
}

std::string_view to_string(Pred p);

struct LocalBlock {
  StmtId stmt;        ///< the Local statement
  VarId lvar;
  AccessPath svar;    ///< location read by the initializer (if any)
  bool reads_svar = false;   ///< initializer is a read or LL of svar
  bool init_is_ll = false;   ///< initializer is LL(svar)
  bool lvar_updated = false; ///< condition (i) violated
  bool has_successful_sc = false;  ///< body contains TRUE-guarded SC on svar
  Pred cond = Pred::True;
  /// Events belonging to this block (initializer + body).
  std::vector<EventId> events;

  bool is_llsc_block() const {
    return init_is_ll && has_successful_sc && !lvar_updated;
  }
  bool is_plain_local_block() const {
    return reads_svar && !init_is_ll && !lvar_updated;
  }
};

class LocalCondAnalysis {
 public:
  LocalCondAnalysis(const Program& prog, const Cfg& cfg);

  const std::vector<LocalBlock>& blocks() const { return blocks_; }
  const LocalBlock* block_for(StmtId local_stmt) const {
    auto it = index_.find(local_stmt);
    return it == index_.end() ? nullptr : &blocks_[it->second];
  }

 private:
  void analyze_block(StmtId local_stmt);

  const Program& prog_;
  const Cfg& cfg_;
  std::vector<LocalBlock> blocks_;
  std::unordered_map<StmtId, size_t> index_;
};

}  // namespace synat::analysis
