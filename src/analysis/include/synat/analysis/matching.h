// Matching-LL and matching-read resolution (paper Section 5.2).
//
// For each SC(v, val) or VL(v) event, its matching LL *expressions* are
// found by a backward DFS over the CFG starting at the event and not going
// past LL(v) nodes; every LL(v) reached is a match. For each CAS(v, e, n)
// whose expected value e is a variable x, the matching reads are the reads
// of v that were saved into x (statements `x := v` / `local x := v`),
// found by the same backward search not going past writes of x.
//
// `complete` records whether every backward path hits a match before
// reaching procedure entry: an SC with an incomplete match set may execute
// with no matching LL (and then must fail); a CAS may succeed without a
// matching read, in which case Theorem 5.3's CAS analogue does not apply.
#pragma once

#include <unordered_map>
#include <vector>

#include "synat/cfg/cfg.h"

namespace synat::analysis {

using cfg::Cfg;
using cfg::EventId;
using synl::Program;

struct MatchInfo {
  std::vector<EventId> matches;  ///< LL events (or reads for CAS)
  bool complete = false;         ///< a match lies on every backward path
};

class MatchingAnalysis {
 public:
  MatchingAnalysis(const Program& prog, const Cfg& cfg);

  /// Match info for an SC/VL/CAS event; null if `e` is not such an event.
  const MatchInfo* info(EventId e) const {
    auto it = info_.find(e);
    return it == info_.end() ? nullptr : &it->second;
  }

  /// True if `ll` is a matching LL (or matching read) of `primitive`.
  bool is_match(EventId primitive, EventId ll) const {
    const MatchInfo* mi = info(primitive);
    if (!mi) return false;
    for (EventId m : mi->matches)
      if (m == ll) return true;
    return false;
  }

  /// All SC/VL/CAS events for which `ll` is a match.
  std::vector<EventId> matched_by(EventId ll) const;

 private:
  void match_ll(EventId sc_or_vl);
  void match_read(EventId cas);

  const Program& prog_;
  const Cfg& cfg_;
  std::unordered_map<EventId, MatchInfo> info_;
};

}  // namespace synat::analysis
