// One-stop per-procedure analysis bundle.
//
// Runs, in dependency order: CFG construction, escape analysis, uniqueness
// (working copy) analysis, matching-LL/matching-read resolution, pure-loop
// analysis, and local-condition inference. The atomicity inference
// (synat/atomicity) consumes one ProcAnalysis per exceptional variant.
#pragma once

#include <memory>

#include "synat/analysis/escape.h"
#include "synat/analysis/localcond.h"
#include "synat/analysis/matching.h"
#include "synat/analysis/purity.h"
#include "synat/analysis/unique.h"
#include "synat/cfg/cfg.h"

namespace synat::analysis {

class ProcAnalysis {
 public:
  ProcAnalysis(const Program& prog, synl::ProcId proc)
      : prog_(prog),
        proc_(proc),
        cfg_(cfg::build_cfg(prog, proc)),
        escape_(prog, cfg_),
        unique_(prog, cfg_),
        matching_(prog, cfg_),
        purity_(prog, cfg_, matching_, escape_, unique_),
        localcond_(prog, cfg_) {}

  ProcAnalysis(const ProcAnalysis&) = delete;
  ProcAnalysis& operator=(const ProcAnalysis&) = delete;

  const Program& prog() const { return prog_; }
  synl::ProcId proc() const { return proc_; }
  const Cfg& cfg() const { return cfg_; }
  const EscapeAnalysis& escape() const { return escape_; }
  const UniqueAnalysis& unique() const { return unique_; }
  const MatchingAnalysis& matching() const { return matching_; }
  const PurityAnalysis& purity() const { return purity_; }
  const LocalCondAnalysis& localcond() const { return localcond_; }

 private:
  const Program& prog_;
  synl::ProcId proc_;
  Cfg cfg_;
  EscapeAnalysis escape_;
  UniqueAnalysis unique_;
  MatchingAnalysis matching_;
  PurityAnalysis purity_;
  LocalCondAnalysis localcond_;
};

}  // namespace synat::analysis
