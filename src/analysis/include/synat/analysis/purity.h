// Pure-loop analysis (paper Section 4).
//
// A loop is pure if every action that can occur in a *normally terminating*
// iteration of its body is pure with respect to the loop:
//   (i)  global actions must not perform updates;
//   (ii) local updates must be dead at the end of the loop body (liveness
//        over access paths, cfg/liveness.h) and invisible outside the
//        procedure;
//   (iii) each LL(v) executable under normal termination must have all of
//        its matching SC(v,·) inside the loop, with an LL(v) on every path
//        from the loop entry to that SC.
// Special case: an SC/CAS that is the test of an `if` whose success branch
// cannot execute under normal termination is treated as a read.
//
// Lock acquire/release pairs are permitted in normally terminating
// iterations: the CFG builder guarantees they are matched on every path
// (Theorem 4.1's proof relies on exactly this).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "synat/analysis/escape.h"
#include "synat/analysis/matching.h"
#include "synat/analysis/unique.h"
#include "synat/cfg/cfg.h"

namespace synat::analysis {

using synl::StmtId;

/// One broken purity premise: which of the Section 4 conditions failed
/// ("i" global updates, "ii" live local updates, "iii" LL/SC containment),
/// where, and a rendered explanation. Structured so the provenance layer
/// can cite the exact premise instead of re-parsing a message.
struct ImpureReason {
  std::string condition;  ///< "i", "ii", or "iii"
  std::string message;    ///< human-readable, includes path/kind/line
  uint32_t line = 0;      ///< source line of the offending event (0 unknown)
};

struct LoopPurity {
  StmtId loop;
  bool pure = false;
  /// Action events that can occur in a normally terminating iteration.
  std::unordered_set<EventId> normal_events;
  /// Broken purity premises (empty when pure).
  std::vector<ImpureReason> reasons;
};

class PurityAnalysis {
 public:
  PurityAnalysis(const Program& prog, const Cfg& cfg,
                 const MatchingAnalysis& matching, const EscapeAnalysis& escape,
                 const UniqueAnalysis& unique);

  bool is_pure(StmtId loop) const {
    const LoopPurity* p = result(loop);
    return p && p->pure;
  }
  const LoopPurity* result(StmtId loop) const {
    auto it = results_.find(loop);
    return it == results_.end() ? nullptr : &it->second;
  }

  /// True if the SC/CAS at `e` counts as a read under normal termination of
  /// its innermost loop (success branch unreachable from normal paths).
  bool treated_as_read(EventId e) const { return sc_as_read_.count(e) != 0; }

  /// True if the event is a *local action*: an access to an unshared
  /// variable or a dereference of a unique / unescaped reference
  /// (Theorem 3.1). Exposed because the mover assignment uses the same
  /// classification.
  bool is_local_action(EventId e) const;

 private:
  void analyze_loop(const cfg::LoopInfo& info);

  const Program& prog_;
  const Cfg& cfg_;
  const MatchingAnalysis& matching_;
  const EscapeAnalysis& escape_;
  const UniqueAnalysis& unique_;
  std::unordered_map<StmtId, LoopPurity> results_;
  std::unordered_set<EventId> sc_as_read_;
};

}  // namespace synat::analysis
