// Shared syntactic helpers over SYNL expressions used by the escape,
// uniqueness and local-condition analyses.
#pragma once

#include "synat/cfg/cfg.h"
#include "synat/synl/ast.h"

namespace synat::analysis {

using cfg::AccessPath;
using synl::ExprId;
using synl::Program;
using synl::VarId;

/// True if `root` mentions variable `v` as a *value* — i.e. a VarRef(v)
/// occurs somewhere other than the base-pointer position of a field/array
/// access or of a non-blocking primitive's target location. `x := v` and
/// `SC(g, v)` mention v as a value; `v.fd := 0` and `SC(v.fd, e)` do not.
bool mentions_as_value(const Program& prog, ExprId root, VarId v);

/// True if the expression is exactly a read of `path`: a Location expression
/// (or LL of one) whose AccessPath equals `path`.
bool reads_exactly(const Program& prog, ExprId e, const AccessPath& path);

/// AccessPath of a Location expression (empty-rooted if not a location).
AccessPath path_of_expr(const Program& prog, ExprId e);

/// Static type of the object holding the location's final selector: the
/// type reached from the root variable's type through all but the last
/// selector. Returns the invalid TypeId when it cannot be computed.
synl::TypeId path_prefix_type(const Program& prog, const AccessPath& path);

/// Static type of the location itself (through all selectors).
synl::TypeId path_type(const Program& prog, const AccessPath& path);

/// True if the two locations may refer to the same memory cell, using the
/// paper's alias rule (Section 5.4): plain variables alias only themselves;
/// field accesses may alias iff they access the same field of the same
/// class; array elements may alias iff the arrays have the same element
/// type. Unknown types are treated conservatively (may alias when the
/// selector skeletons agree).
bool may_alias(const Program& prog, const AccessPath& a, const AccessPath& b);

/// Successor events of an SC/CAS event `e` that are reached only when the
/// primitive SUCCEEDS. TRUE(SC(...)) succeeds by construction; for
/// `if (SC(...)) ...` (possibly negated) only the success branch is
/// returned; any other shape conservatively returns all successors.
std::vector<cfg::EventId> post_success_edges(const Program& prog,
                                             const cfg::Cfg& cfg,
                                             cfg::EventId e);

}  // namespace synat::analysis
