// Simple flow-sensitive escape analysis (paper Sections 3.2 / 5.4 step 1).
//
// Determines, per reference-typed local variable v and per CFG event e,
// whether the object v refers to at e is certainly a fresh allocation that
// has not yet escaped the creating thread. Accesses through such a variable
// behave like accesses to unshared variables and are both-movers.
//
// v is a *fresh* variable if every assignment to v in the procedure is a
// `new C`. v has *escaped* at event e if e is reachable from any leak of v:
// storing v into the heap or a global, publishing it via SC/CAS, copying it
// into another variable (conservative), or returning it.
#pragma once

#include <unordered_map>
#include <vector>

#include "synat/cfg/cfg.h"

namespace synat::analysis {

using cfg::Cfg;
using cfg::EventId;
using synl::Program;
using synl::VarId;

class EscapeAnalysis {
 public:
  EscapeAnalysis(const Program& prog, const Cfg& cfg);

  /// True if, at event `e`, variable `v` certainly holds a reference to an
  /// object that has not escaped its creating thread.
  bool unescaped_at(EventId e, VarId v) const;

  /// True if every assignment to v is a fresh allocation.
  bool is_fresh_var(VarId v) const;

 private:
  void analyze_var(VarId v);

  const Program& prog_;
  const Cfg& cfg_;
  // For each analyzed var: escaped_after_[v][event] == true once a leak may
  // have happened before the event. Vars that are not fresh map to an empty
  // vector and always report escaped.
  std::unordered_map<VarId, std::vector<bool>> escaped_after_;
  std::unordered_map<VarId, bool> fresh_;
};

}  // namespace synat::analysis
