// Uniqueness analysis for working copies (paper Section 3.3 and [16]).
//
// Non-blocking algorithms in the Herlihy style keep a thread-private
// *working copy* of the shared object: read the shared reference with LL,
// copy its data into the private object, compute, then publish the private
// object with SC and retire the old shared copy into the private slot:
//
//     TRUE(SC(Q, prv));   // publish: prv's object becomes shared
//     prv := m;           // retire: the old shared copy becomes private
//
// The paper states that such a variable "effectively contains a unique
// reference", making every dereference through it a local action
// (both-mover, Theorem 3.1).
//
// This analysis recognizes the pattern: a candidate variable v (thread-local
// or local, reference-typed) is a working copy iff
//   (1) every statement that lets v's value escape is an SC/CAS publishing v
//       into a global-rooted location, and
//   (2) after each such publication (following only the success outcome),
//       the first event touching v on every path is a plain re-assignment
//       `v := m` (the retirement), and
//   (3) every non-`new` assignment to v is one of those retirements.
// Thread-local candidates are assumed to hold a unique reference initially
// (the standard setup for these algorithms; documented in DESIGN.md).
#pragma once

#include <unordered_set>

#include "synat/cfg/cfg.h"

namespace synat::analysis {

using cfg::Cfg;
using cfg::EventId;
using synl::Program;
using synl::VarId;

class UniqueAnalysis {
 public:
  UniqueAnalysis(const Program& prog, const Cfg& cfg);

  /// True if v is a verified working copy: dereferences through v are local
  /// actions everywhere in this procedure.
  bool is_working_copy(VarId v) const { return working_.count(v) != 0; }

  const std::unordered_set<VarId>& working_copies() const { return working_; }

 private:
  bool check_candidate(VarId v) const;
  /// Events reached only when the SC/CAS at `publish` succeeds.
  std::vector<EventId> post_success(EventId publish) const;

  const Program& prog_;
  const Cfg& cfg_;
  std::unordered_set<VarId> working_;
};

}  // namespace synat::analysis
