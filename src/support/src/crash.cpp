#include "synat/support/crash.h"

#include <signal.h>

#include <atomic>

namespace synat::support::crash {

namespace {

constexpr int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

std::atomic<DumpFn> g_dump{nullptr};
std::atomic<bool> g_dumping{false};

void on_fatal(int sig) {
  // One dump per process: a fault inside the dump (or a second crashing
  // thread) must not recurse — fall straight through to the default
  // disposition instead.
  if (!g_dumping.exchange(true, std::memory_order_acq_rel)) {
    DumpFn fn = g_dump.load(std::memory_order_acquire);
    if (fn != nullptr) fn(sig);
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

void arm(DumpFn fn) {
  g_dump.store(fn, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = on_fatal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESETHAND: the handler restores SIG_DFL itself after the dump,
  // and a second thread crashing mid-dump re-enters the guard instead.
  for (int sig : kSignals) sigaction(sig, &sa, nullptr);
}

void disarm() {
  g_dump.store(nullptr, std::memory_order_release);
  for (int sig : kSignals) signal(sig, SIG_DFL);
}

}  // namespace synat::support::crash
