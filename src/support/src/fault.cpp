#include "synat/support/fault.h"

#if defined(SYNAT_FAULT_INJECTION)

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>

namespace synat::support {

namespace {

bool name_matches(std::string_view target, std::string_view name) {
  if (name == target) return true;
  // "crash:nfq_prime" also matches "corpus:nfq_prime" and "dir/nfq_prime".
  if (name.size() > target.size()) {
    char sep = name[name.size() - target.size() - 1];
    if ((sep == ':' || sep == '/') && name.ends_with(target)) return true;
  }
  return false;
}

[[noreturn]] void inject_crash() {
  // Restore the default handler so the raise terminates the process even
  // under a sanitizer that installed its own SIGSEGV handler.
  signal(SIGSEGV, SIG_DFL);
  raise(SIGSEGV);
  _Exit(113);  // unreachable backstop
}

[[noreturn]] void inject_oom() {
  // Commit pages until the RLIMIT_AS cap makes allocation fail, then die
  // hard. The 16 GiB ceiling keeps an unlimited process from taking the
  // machine down if the hook fires outside a sandboxed worker.
  constexpr size_t kChunk = 8ull << 20;
  constexpr size_t kCeiling = 16ull << 30;
  for (size_t total = 0; total < kCeiling; total += kChunk) {
    void* p = std::malloc(kChunk);
    if (p == nullptr) break;
    std::memset(p, 0xab, kChunk);
  }
  std::abort();
}

}  // namespace

void maybe_inject_fault(std::string_view name, unsigned attempt) {
  const char* env = std::getenv("SYNAT_FAULT");
  if (env == nullptr || *env == '\0') return;
  // Comma-separated multi-spec ("crash:a,hang:b,oom:c"), so one daemon run
  // can exercise every fault class; each spec keeps the single-spec shape
  // mode:target[@K].
  std::string_view rest(env);
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view s = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    size_t colon = s.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view mode = s.substr(0, colon);
    std::string_view target = s.substr(colon + 1);
    unsigned max_attempt = ~0u;
    if (size_t at = target.rfind('@'); at != std::string_view::npos) {
      max_attempt = static_cast<unsigned>(
          std::strtoul(target.data() + at + 1, nullptr, 10));
      target = target.substr(0, at);
    }
    if (attempt > max_attempt || !name_matches(target, name)) continue;
    if (mode == "crash") inject_crash();
    if (mode == "hang") raise(SIGSTOP);
    if (mode == "oom") inject_oom();
  }
}

}  // namespace synat::support

#endif  // SYNAT_FAULT_INJECTION
