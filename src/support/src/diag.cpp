#include "synat/support/diag.h"

namespace synat {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string out(loc.str());
  out += ": ";
  out += to_string(severity);
  out += ": ";
  out += message;
  return out;
}

std::string DiagEngine::dump() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

void internal_error(const char* file, int line, const std::string& what) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) +
                      ": internal error: " + what);
}

}  // namespace synat
