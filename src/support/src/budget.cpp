#include "synat/support/budget.h"

#include <chrono>

namespace synat {

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ExecBudget::throw_tripped(const char* where) const {
  const char* reason = reason_.load(std::memory_order_acquire);
  if (reason == nullptr) reason = "cancelled";
  throw BudgetExceeded(reason, std::string(reason) + " budget tripped in " +
                                   where);
}

}  // namespace synat
