#include "synat/support/hash.h"

#include <array>

namespace synat {

namespace {

constexpr std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

uint32_t crc32(std::string_view bytes, uint32_t crc) {
  crc = ~crc;
  for (unsigned char c : bytes) crc = kCrcTable[(crc ^ c) & 0xff] ^ (crc >> 8);
  return ~crc;
}

}  // namespace synat
