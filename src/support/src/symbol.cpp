#include "synat/support/symbol.h"

#include "synat/support/diag.h"

namespace synat {

SymbolTable::SymbolTable() {
  names_.emplace_back();  // id 0: invalid/empty
}

Symbol SymbolTable::intern(std::string_view name) {
  if (name.empty()) return Symbol();
  if (auto it = index_.find(name); it != index_.end()) return Symbol(it->second);
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string(name), id);
  return Symbol(id);
}

Symbol SymbolTable::lookup(std::string_view name) const {
  if (auto it = index_.find(name); it != index_.end()) return Symbol(it->second);
  return Symbol();
}

std::string_view SymbolTable::name(Symbol s) const {
  SYNAT_ASSERT(s.id() < names_.size(), "symbol from a different table");
  return names_[s.id()];
}

}  // namespace synat
