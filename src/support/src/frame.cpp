#include "synat/support/frame.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "synat/support/hash.h"

namespace synat::support {

namespace {

constexpr char kFrameMagic[4] = {'S', 'Y', 'N', 'F'};

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (i * 8)) & 0xff));
}

uint32_t read_u32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (i * 8);
  return v;
}

bool write_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  std::string header;
  header.append(kFrameMagic, sizeof kFrameMagic);
  put_u32(header, static_cast<uint32_t>(type));
  put_u32(header, static_cast<uint32_t>(payload.size()));
  put_u32(header, crc32(payload));
  // One buffer per frame so a frame is written with at most a few write()
  // calls; interleaving with another writer is prevented by the caller's
  // mutex, not here.
  header.append(payload.data(), payload.size());
  return write_all(fd, header.data(), header.size());
}

FrameReader::Fill FrameReader::fill(int fd) {
  char chunk[4096];
  ssize_t n;
  do {
    n = ::read(fd, chunk, sizeof chunk);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return Fill::Eof;
  if (n < 0)
    return (errno == EAGAIN || errno == EWOULDBLOCK) ? Fill::Blocked
                                                     : Fill::Failed;
  // Compact the consumed prefix before growing so the buffer stays bounded
  // by one frame plus one read chunk.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(chunk, static_cast<size_t>(n));
  return Fill::Data;
}

FrameReader::Next FrameReader::next(FrameType& type, std::string& payload) {
  constexpr size_t kHeader = 16;
  if (buf_.size() - pos_ < kHeader) return Next::Need;
  const char* p = buf_.data() + pos_;
  if (std::memcmp(p, kFrameMagic, sizeof kFrameMagic) != 0)
    return Next::Corrupt;
  uint32_t raw_type = read_u32(p + 4);
  uint32_t len = read_u32(p + 8);
  uint32_t crc = read_u32(p + 12);
  if (len > kMaxFramePayload) return Next::Corrupt;
  if (buf_.size() - pos_ < kHeader + len) return Next::Need;
  std::string_view body(p + kHeader, len);
  if (crc32(body) != crc) return Next::Corrupt;
  type = static_cast<FrameType>(raw_type);
  payload.assign(body);
  pos_ += kHeader + len;
  return Next::Frame;
}

}  // namespace synat::support
