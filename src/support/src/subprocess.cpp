#include "synat/support/subprocess.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

namespace synat::support {

namespace {

/// Closes every fd above stderr except the two protocol ends, so a worker
/// cannot hold open a sibling's pipes (which would mask their EOFs) and its
/// fd table is predictable for rlimit purposes.
void close_other_fds(int keep1, int keep2) {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    for (int fd = 3; fd < 1024; ++fd)
      if (fd != keep1 && fd != keep2) ::close(fd);
    return;
  }
  int dir_fd = dirfd(dir);
  while (dirent* e = readdir(dir)) {
    char* end = nullptr;
    long fd = std::strtol(e->d_name, &end, 10);
    if (end == e->d_name || *end != '\0') continue;
    if (fd <= 2 || fd == keep1 || fd == keep2 || fd == dir_fd) continue;
    ::close(static_cast<int>(fd));
  }
  closedir(dir);
}

void apply_limits(const ChildLimits& limits) {
  if (limits.max_rss_mb > 0) {
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max = limits.max_rss_mb * 1024 * 1024;
    setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.cpu_seconds > 0) {
    rlimit rl{};
    rl.rlim_cur = limits.cpu_seconds;
    rl.rlim_max = limits.cpu_seconds + 1;  // SIGXCPU first, SIGKILL backstop
    setrlimit(RLIMIT_CPU, &rl);
  }
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Child spawn_child(const std::function<int(int, int)>& body,
                  const ChildLimits& limits) {
  int req[2], resp[2];
  if (pipe(req) != 0) return {};
  if (pipe(resp) != 0) {
    ::close(req[0]);
    ::close(req[1]);
    return {};
  }
  pid_t pid = fork();
  if (pid < 0) {
    for (int fd : {req[0], req[1], resp[0], resp[1]}) ::close(fd);
    return {};
  }
  if (pid == 0) {
    ::close(req[1]);
    ::close(resp[0]);
    // A worker whose supervisor died mid-write must die quietly, not
    // wedge; default SIGPIPE termination is the right containment.
    signal(SIGPIPE, SIG_DFL);
    close_other_fds(req[0], resp[1]);
    apply_limits(limits);
    int rc = 111;
    try {
      rc = body(req[0], resp[1]);
    } catch (...) {
      rc = 112;
    }
    _exit(rc);
  }
  ::close(req[0]);
  ::close(resp[1]);
  set_nonblocking(resp[0]);
  return {pid, req[1], resp[0]};
}

int wait_child(pid_t pid) {
  int status = 0;
  while (waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  return status;
}

std::string describe_wait_status(int status) {
  if (status < 0) return "unreaped";
  if (WIFEXITED(status))
    return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    int sig = WTERMSIG(status);
    const char* name = nullptr;
    switch (sig) {
      case SIGSEGV: name = "SIGSEGV"; break;
      case SIGABRT: name = "SIGABRT"; break;
      case SIGKILL: name = "SIGKILL"; break;
      case SIGBUS: name = "SIGBUS"; break;
      case SIGILL: name = "SIGILL"; break;
      case SIGFPE: name = "SIGFPE"; break;
      case SIGXCPU: name = "SIGXCPU"; break;
      case SIGTERM: name = "SIGTERM"; break;
      case SIGPIPE: name = "SIGPIPE"; break;
    }
    std::string out = name ? std::string(name) : std::string("signal");
    out += " (signal " + std::to_string(sig) + ")";
    return out;
  }
  return "status " + std::to_string(status);
}

bool exited_cleanly(int status) {
  return status >= 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

}  // namespace synat::support
