#include "synat/support/text.h"

#include <cctype>

namespace synat {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string pad_right(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string with_commas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace synat
