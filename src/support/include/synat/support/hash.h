// Hash combinators used by the model checker's state canonicalization and
// by analysis keys. FNV-1a based; not cryptographic, chosen for speed and
// determinism across runs (no pointer hashing).
#pragma once

#include <cstdint>
#include <string_view>

namespace synat {

inline constexpr uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

constexpr uint64_t hash_mix(uint64_t h, uint64_t v) {
  // Mix each byte of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

constexpr uint64_t hash_bytes(std::string_view bytes, uint64_t h = kFnvOffset) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to checksum cache
/// snapshot entries so corruption is detected per entry, not by a crash
/// halfway through decoding. Pass a previous value to continue a running
/// checksum.
uint32_t crc32(std::string_view bytes, uint32_t crc = 0);

/// Accumulating hasher for composite states.
class Hasher {
 public:
  Hasher& mix(uint64_t v) {
    h_ = hash_mix(h_, v);
    return *this;
  }
  Hasher& mix(std::string_view s) {
    h_ = hash_bytes(s, h_);
    h_ = hash_mix(h_, s.size());
    return *this;
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = kFnvOffset;
};

}  // namespace synat
