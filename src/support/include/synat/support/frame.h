// Length-prefixed, CRC-protected frame codec for the supervisor/worker
// pipes (DESIGN.md §3d). A frame is
//
//   [u32 magic "SYNF"][u32 type][u32 payload length][u32 CRC32(payload)]
//   [payload bytes]
//
// little-endian throughout, mirroring the cache snapshot encoding. The CRC
// covers only the payload: a corrupt frame is detected by the reader and
// reported as Corrupt rather than misframing the rest of the stream — the
// supervisor treats a corrupt response like a worker crash (retry, then
// degrade), never as data.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace synat::support {

enum class FrameType : uint32_t {
  Request = 1,     ///< supervisor → worker: one analysis task
  Result = 2,      ///< worker → supervisor: one encoded ProgramReport
  Heartbeat = 3,   ///< worker → supervisor: liveness while a task runs
  Telemetry = 4,   ///< worker → supervisor: spans + metric deltas (codec.h)
  Provenance = 5,  ///< worker → supervisor: derivation records (codec.h)
  CacheDelta = 6,  ///< worker → supervisor: new cache entries (codec.h)
};

/// Hard cap on a single frame's payload; anything larger is corruption.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

/// Writes one frame to `fd`, looping over partial writes and EINTR.
/// Returns false on any other write error (e.g. EPIPE after the peer
/// died); the caller decides whether that is fatal.
bool write_frame(int fd, FrameType type, std::string_view payload);

/// Incremental frame decoder over a byte stream. fill() pulls whatever the
/// fd has ready (usable with O_NONBLOCK + poll), next() extracts complete
/// frames from the buffer.
class FrameReader {
 public:
  enum class Fill : uint8_t {
    Data,     ///< read() returned bytes
    Eof,      ///< peer closed the pipe
    Blocked,  ///< nothing ready (EAGAIN)
    Failed,   ///< read error
  };
  Fill fill(int fd);

  enum class Next : uint8_t {
    Frame,    ///< one complete, checksum-verified frame extracted
    Need,     ///< buffer holds only a partial frame
    Corrupt,  ///< bad magic, oversized length, or CRC mismatch
  };
  Next next(FrameType& type, std::string& payload);

  /// Bytes buffered but not yet consumed (test hook).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

}  // namespace synat::support
