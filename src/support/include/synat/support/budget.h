// Cooperative execution budgets for fault isolation (DESIGN.md §3c).
//
// Long-running analysis stages (variant expansion, mover classification)
// poll an ExecBudget at their loop heads. A trip raises BudgetExceeded,
// which the batch driver catches at the task boundary and converts into a
// degraded per-procedure verdict; nothing below the driver ever reports a
// partially computed result as complete.
//
// The hot-path contract: check() is a single relaxed atomic load while the
// task is healthy. Deadlines are enforced two ways — a watchdog thread may
// flip the cancellation flag from outside (no clock reads on the analysis
// thread), and check() itself re-reads the clock every kSelfCheckPeriod
// calls so a deadline still trips when no watchdog is attached (fuzz
// replay, library embedders).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace synat {

/// Thrown when a cancellation point observes a tripped budget. `reason()`
/// is a short machine-readable slug ("deadline", "variant-budget", ...);
/// what() carries the human-readable detail.
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(std::string reason, const std::string& detail)
      : std::runtime_error(detail), reason_(std::move(reason)) {}
  const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// Monotonic clock in nanoseconds (steady_clock).
uint64_t steady_now_ns();

/// Cancellation token + deadline for one analysis task. One instance per
/// task; the analysis thread polls check(), any other thread may cancel().
class ExecBudget {
 public:
  /// How many check() calls pass between self-measured clock reads.
  static constexpr uint32_t kSelfCheckPeriod = 1024;

  /// Sets an absolute deadline `delay_ms` from now; 0 disables it.
  void arm_deadline_ms(uint64_t delay_ms) {
    deadline_ns_ = delay_ms == 0 ? 0 : steady_now_ns() + delay_ms * 1000000ull;
  }
  uint64_t deadline_ns() const { return deadline_ns_; }

  /// Trips the budget. Safe from any thread; first reason wins.
  void cancel(const char* reason) {
    const char* expected = nullptr;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_release,
                                    std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Cancellation point: throws BudgetExceeded when tripped. `where` names
  /// the polling loop for the exception detail.
  void check(const char* where) {
    if (cancelled_.load(std::memory_order_relaxed)) throw_tripped(where);
    if (deadline_ns_ != 0 &&
        tick_.fetch_add(1, std::memory_order_relaxed) % kSelfCheckPeriod == 0 &&
        steady_now_ns() > deadline_ns_) {
      cancel("deadline");
      throw_tripped(where);
    }
  }

 private:
  [[noreturn]] void throw_tripped(const char* where) const;

  std::atomic<bool> cancelled_{false};
  std::atomic<const char*> reason_{nullptr};
  std::atomic<uint32_t> tick_{0};
  uint64_t deadline_ns_ = 0;
};

}  // namespace synat
