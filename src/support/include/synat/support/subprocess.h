// Subprocess plumbing for the isolated batch driver (DESIGN.md §3d):
// spawning sandboxed worker processes connected by pipes, applying
// per-worker resource limits, and decoding how a worker died.
//
// Workers are created by plain fork(), not fork+exec: the supervisor is
// single-threaded at spawn time, so the child is a clean clone that already
// holds the batch inputs in memory. That keeps the worker protocol free of
// option re-serialization and — more importantly — lets any embedder of
// BatchDriver use isolation, not just the synat CLI (there is no worker
// executable to locate).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>

namespace synat::support {

/// Hard resource limits applied inside the child before its body runs.
/// Zero fields are left unlimited.
struct ChildLimits {
  uint64_t max_rss_mb = 0;   ///< address-space cap (RLIMIT_AS), in MiB
  uint64_t cpu_seconds = 0;  ///< CPU-time cap (RLIMIT_CPU); overrun → SIGXCPU/SIGKILL
};

struct Child {
  pid_t pid = -1;
  int to_child = -1;    ///< write end of the request pipe
  int from_child = -1;  ///< read end of the response pipe (O_NONBLOCK)

  bool valid() const { return pid > 0; }
};

/// Forks a child connected by two pipes. In the child: every inherited fd
/// except stdio and the two protocol ends is closed, `limits` is applied,
/// `body(request_read_fd, response_write_fd)` runs, and the child _exits
/// with its return value (never returning into the caller's stack — stdio
/// buffers inherited from the parent are not flushed twice). On fork or
/// pipe failure the returned Child has pid -1.
///
/// The caller must be single-threaded when this is invoked; `body` runs in
/// a full process clone and may itself create threads.
Child spawn_child(const std::function<int(int, int)>& body,
                  const ChildLimits& limits);

/// Blocking waitpid wrapper (EINTR-safe). Returns the raw wait status, or
/// -1 if the pid could not be reaped.
int wait_child(pid_t pid);

/// Human-readable classification of a wait status: "exit 0",
/// "exit 3", "signal 11 (SIGSEGV)", ...
std::string describe_wait_status(int status);

/// True iff the status is a clean zero exit.
bool exited_cleanly(int status);

}  // namespace synat::support
