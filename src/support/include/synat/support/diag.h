// Diagnostic accumulation for the SYNL front end and analyses.
//
// Analyses never throw on user-input (SYNL source) problems; they report
// through a DiagEngine and degrade conservatively. Internal invariant
// violations use SYNAT_ASSERT, which throws InternalError so tests can
// observe them.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "synat/support/source_loc.h"

namespace synat {

enum class Severity { Note, Warning, Error };

std::string_view to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  std::string str() const;
};

/// Collects diagnostics produced while processing one program.
class DiagEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message) {
    if (sev == Severity::Error) ++num_errors_;
    diags_.push_back({sev, loc, std::move(message)});
  }
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  bool has_errors() const { return num_errors_ != 0; }
  size_t num_errors() const { return num_errors_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// All diagnostics, one per line, for error messages and tests.
  std::string dump() const;

 private:
  std::vector<Diagnostic> diags_;
  size_t num_errors_ = 0;
};

/// Thrown when an internal invariant is violated (a synat bug, not a
/// problem with the analyzed program).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void internal_error(const char* file, int line, const std::string& what);

#define SYNAT_ASSERT(cond, what)                                      \
  do {                                                                \
    if (!(cond)) ::synat::internal_error(__FILE__, __LINE__, (what)); \
  } while (0)

}  // namespace synat
