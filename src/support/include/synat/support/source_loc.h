// Source positions and ranges for SYNL front-end diagnostics.
//
// Positions are 1-based (line, column) like most compilers; a default
// constructed SourceLoc is "unknown" and prints as "<unknown>".
#pragma once

#include <cstdint>
#include <string>

namespace synat {

/// A single point in a source buffer.
struct SourceLoc {
  uint32_t line = 0;    ///< 1-based; 0 means unknown
  uint32_t column = 0;  ///< 1-based; 0 means unknown

  constexpr bool valid() const { return line != 0; }

  friend constexpr bool operator==(SourceLoc, SourceLoc) = default;
  friend constexpr auto operator<=>(SourceLoc a, SourceLoc b) {
    if (auto c = a.line <=> b.line; c != 0) return c;
    return a.column <=> b.column;
  }

  std::string str() const {
    if (!valid()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// A half-open range [begin, end) in a source buffer.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  constexpr bool valid() const { return begin.valid(); }
  friend constexpr bool operator==(const SourceRange&, const SourceRange&) = default;

  std::string str() const {
    if (!valid()) return "<unknown>";
    return begin.str() + "-" + end.str();
  }
};

}  // namespace synat
