// Deterministic fault injection for the isolation test suite (DESIGN.md
// §3d). Compiled in only under -DSYNAT_FAULT_INJECTION=ON; release builds
// carry no hook at all.
//
// The injected fault is selected by the SYNAT_FAULT environment variable:
//
//   SYNAT_FAULT=crash:<name>       raise SIGSEGV when analyzing <name>
//   SYNAT_FAULT=hang:<name>        SIGSTOP the whole process (silences the
//                                  heartbeat pipe, so the supervisor's
//                                  stall detector must reap the worker)
//   SYNAT_FAULT=oom:<name>         allocate until the address-space rlimit
//                                  kills the allocation, then abort
//
// An optional @K suffix (crash:<name>@2) arms the fault only while the
// dispatch attempt is <= K, so retry-then-succeed paths are testable
// without timing dependence. <name> matches the program's display name
// exactly, or its corpus:/path basename. Several specs can be joined with
// commas (SYNAT_FAULT=crash:a,hang:b,oom:c) — the first matching spec
// fires — so a single daemon run can exercise every fault class, one per
// victim program (the serve chaos harness relies on this).
#pragma once

#include <cstdint>
#include <string_view>

namespace synat::support {

#if defined(SYNAT_FAULT_INJECTION)
/// Injects the configured fault if `name` (a program display name) matches
/// SYNAT_FAULT and `attempt` (1-based dispatch attempt) is still armed.
/// No-op when the variable is unset or names a different program.
void maybe_inject_fault(std::string_view name, unsigned attempt);
#else
inline void maybe_inject_fault(std::string_view, unsigned) {}
#endif

}  // namespace synat::support
