// Interned identifiers.
//
// All SYNL identifiers (variables, fields, procedure names, class names) are
// interned into a SymbolTable so the analyses can compare and hash names as
// 32-bit ids. A Symbol is only meaningful relative to the table that created
// it; each Program owns one table.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace synat {

/// An interned string id. Value 0 is reserved for the empty/invalid symbol.
class Symbol {
 public:
  constexpr Symbol() = default;

  constexpr bool valid() const { return id_ != 0; }
  constexpr uint32_t id() const { return id_; }

  friend constexpr bool operator==(Symbol, Symbol) = default;
  friend constexpr auto operator<=>(Symbol, Symbol) = default;

 private:
  friend class SymbolTable;
  constexpr explicit Symbol(uint32_t id) : id_(id) {}
  uint32_t id_ = 0;
};

/// Interns strings; owned by a Program.
class SymbolTable {
 public:
  SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  Symbol intern(std::string_view name);
  /// Returns the invalid symbol if `name` was never interned.
  Symbol lookup(std::string_view name) const;
  std::string_view name(Symbol s) const;
  size_t size() const { return names_.size(); }

 private:
  // Heterogeneous lookup so Symbol lookup by string_view does not allocate.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::vector<std::string> names_;  // index == id; names_[0] == ""
  std::unordered_map<std::string, uint32_t, Hash, std::equal_to<>> index_;
};

}  // namespace synat

template <>
struct std::hash<synat::Symbol> {
  size_t operator()(synat::Symbol s) const noexcept {
    return std::hash<uint32_t>{}(s.id());
  }
};
