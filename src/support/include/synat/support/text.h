// Small text utilities shared by the pretty printer, report emitters and
// corpus loader.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace synat {

/// Splits on `sep` keeping empty fields.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Pads `text` on the right with spaces to at least `width` columns.
std::string pad_right(std::string_view text, size_t width);

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Renders `n` with thousands separators ("4069080" -> "4,069,080").
std::string with_commas(uint64_t n);

}  // namespace synat
