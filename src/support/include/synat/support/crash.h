// Fatal-signal postmortem hook (DESIGN.md §3i): installs handlers for the
// crash signals (SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL) that invoke an
// async-signal-safe dump function exactly once, then restore the default
// disposition and re-raise so the process still dies with the original
// signal (wait status, core dumps, and supervisor accounting all see the
// truth).
//
// The dump function runs in signal context: it may only use async-signal-
// safe operations (write/lseek/ftruncate/fsync on a pre-opened fd — see
// obs::Recorder::dump_incident). A recursive fault inside the dump is
// caught by a re-entrancy guard and falls through to the default handler.
#pragma once

namespace synat::support::crash {

/// Async-signal-safe dump callback; receives the fatal signal number.
using DumpFn = void (*)(int signal);

/// Installs the fatal-signal handlers. Idempotent; the last `fn` wins.
void arm(DumpFn fn);

/// Restores the default disposition for every armed signal.
void disarm();

}  // namespace synat::support::crash
