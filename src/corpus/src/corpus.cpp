#include "synat/corpus/corpus.h"

#include "synat/support/diag.h"

namespace synat::corpus {

namespace {

// ---------------------------------------------------------------------------
// Figure 1: Michael & Scott's non-blocking FIFO queue using LL/SC/VL.
// The Enq/Deq loops update Tail and are therefore NOT pure; the analysis is
// expected to fail on this program (that is the paper's motivation for NFQ').
constexpr std::string_view kNfq = R"(
// Non-Blocking FIFO Queue (paper Figure 1)
class Node {
  int Value;
  Node Next;
}
global Node Head;
global Node Tail;

proc Enq(int value) {
  local node := new Node in {
    node.Value := value;
    node.Next := null;
    loop {
      local t := LL(Tail) in
      local next := LL(t.Next) in {
        if (!VL(Tail)) { continue; }
        if (next != null) {
          SC(Tail, next);
          continue;
        }
        if (SC(t.Next, node)) {
          return;
        }
      }
    }
  }
}

proc int Deq() {
  loop {
    local h := LL(Head) in
    local next := h.Next in {
      if (!VL(Head)) { continue; }
      if (next == null) { return 0 - 1; }   // EMPTY
      if (h == LL(Tail)) {
        SC(Tail, next);
        continue;
      }
      local value := next.Value in {
        if (SC(Head, next)) { return value; }
      }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Figure 2: NFQ'. All updates of Tail are delegated to UpdateTail, making
// every loop pure; the paper's Figure 3 lists the exceptional variants.
constexpr std::string_view kNfqPrime = R"(
// NFQ' (paper Figure 2)
class Node {
  int Value;
  Node Next;
}
global Node Head;
global Node Tail;

proc AddNode(int value) {
  local node := new Node in {
    node.Value := value;
    node.Next := null;
    loop {
      local t := LL(Tail) in
      local next := LL(t.Next) in {
        if (!VL(Tail)) { continue; }
        if (next != null) { continue; }
        if (SC(t.Next, node)) { return; }
      }
    }
  }
}

proc UpdateTail() {
  loop {
    local t := LL(Tail) in
    local next := t.Next in {
      if (!VL(Tail)) { continue; }
      if (next != null) {
        SC(Tail, next);
        return;
      }
    }
  }
}

proc int Deq() {
  loop {
    local h := LL(Head) in
    local next := h.Next in {
      if (!VL(Head)) { continue; }
      if (next == null) { return 0 - 1; }   // EMPTY
      if (h == LL(Tail)) { continue; }
      local value := next.Value in {
        if (SC(Head, next)) { return value; }
      }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Figure 4: Herlihy's small-object algorithm. `prv` is the thread's working
// copy; copy/computation are written out as field assignments.
constexpr std::string_view kHerlihySmall = R"(
// Herlihy's non-blocking algorithm for small objects (paper Figure 4)
class Node {
  int data;
}
global Node Q;
threadlocal Node prv;

proc Apply() {
  loop {
    local m := LL(Q) in {
      prv.data := m.data;            // copy(prv.data, m.data)
      if (!VL(Q)) { continue; }
      prv.data := prv.data + 1;      // computation(prv.data)
      if (SC(Q, prv)) {
        prv := m;
        break;
      }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Figure 5: Gao & Hesselink, simplified program 1 (copy everything).
// The copy loop is written in do-while form so the always-executed first
// copy is visible to the path-insensitive liveness analysis (DESIGN.md E4);
// with W >= 1 group this is the same program.
constexpr std::string_view kGhLargeV1 = R"(
// Gao-Hesselink large objects, simplified program 1 (paper Figure 5)
class Obj {
  int[] data;
}
global Obj SharedObj;
threadlocal Obj prvObj;

proc Apply(int g) {
  a2: loop {
    local m := LL(SharedObj) in
    local i := 1 in {
      loop {
        prvObj.data[i] := m.data[i];         // copy group i
        if (!VL(SharedObj)) { continue a2; }
        i := i + 1;
        if (i > 3) { break; }                // W = 3 groups
      }
      if (!VL(SharedObj)) { continue a2; }
      prvObj.data[g] := prvObj.data[g] + 1;  // compute(prvObj, g)
      if (SC(SharedObj, prvObj)) {
        prvObj := m;
        return;
      }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Figure 6: program 2 — copy only groups whose data differs. The guard
// reads prvObj.data[i] in normally terminating iterations, so the outer
// loop is NOT pure and the analysis does not prove atomicity directly
// (the paper argues equivalence with program 1 manually; see DESIGN.md).
constexpr std::string_view kGhLargeV2 = R"(
// Gao-Hesselink large objects, simplified program 2 (paper Figure 6)
class Obj {
  int[] data;
}
global Obj SharedObj;
threadlocal Obj prvObj;

proc Apply(int g) {
  a2: loop {
    local m := LL(SharedObj) in
    local i := 1 in {
      loop {
        if (prvObj.data[i] != m.data[i]) {
          prvObj.data[i] := m.data[i];
          if (!VL(SharedObj)) { continue a2; }
        }
        i := i + 1;
        if (i > 3) { break; }
      }
      if (!VL(SharedObj)) { continue a2; }
      prvObj.data[g] := prvObj.data[g] + 1;
      if (SC(SharedObj, prvObj)) {
        prvObj := m;
        return;
      }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Figure 7: the full program with version numbers (and the paper's added
// VL and version reset). Like program 2 it is not directly provable.
constexpr std::string_view kGhLargeV3 = R"(
// Gao-Hesselink large objects, full program (paper Figure 7)
class Obj {
  int[] data;
  int[] version;
}
global Obj SharedObj;
threadlocal Obj prvObj;

proc Apply(int g) {
  a2: loop {
    local m := LL(SharedObj) in
    local i := 1 in {
      loop {
        local newVersion := m.version[i] in {
          if (newVersion != prvObj.version[i]) {
            prvObj.data[i] := m.data[i];
            if (!VL(SharedObj)) { continue a2; }
            prvObj.version[i] := newVersion;
          }
        }
        i := i + 1;
        if (i > 3) { break; }
      }
      if (!VL(SharedObj)) { continue a2; }
      prvObj.data[g] := prvObj.data[g] + 1;       // compute(prvObj, g)
      prvObj.version[g] := prvObj.version[g] + 1;
      if (SC(SharedObj, prvObj)) {
        prvObj := m;
        return;
      } else {
        prvObj.version[g] := 0;
      }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Section 4: the semaphore Down example of a pure loop.
constexpr std::string_view kSemaphoreDown = R"(
// Semaphore Down (paper Section 4)
global int S;

proc Down() {
  loop {
    local tmp := LL(S) in {
      if (tmp > 0) {
        if (SC(S, tmp - 1)) { return; }
      }
    }
  }
}

proc Up() {
  loop {
    local tmp := LL(S) in {
      if (SC(S, tmp + 1)) { return; }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Treiber stack with an ABA counter on Top: exercises the CAS analogues of
// Theorems 5.3/5.4 (matching reads, counted targets).
constexpr std::string_view kTreiberStack = R"(
// Treiber stack; Top carries a modification counter (counted CAS target)
class Node {
  int value;
  Node next;
}
global Node Top;

proc Push(int v) {
  local n := new Node in {
    n.value := v;
    loop {
      local top := Top in {
        n.next := top;
        if (CAS(Top, top, n)) { return; }
      }
    }
  }
}

proc int Pop() {
  loop {
    local top := Top in {
      if (top == null) { return 0 - 1; }
      local next := top.next in {
        if (CAS(Top, top, next)) { return top.value; }
      }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Section 6.4: transcription of the allocation fast paths of Michael's
// lock-free memory allocator (PLDI'04, Figure 4). SYNL has no procedure
// calls, so each routine is a top-level procedure (the paper inlines; the
// block structure is identical either way). Pointers packed with tags in
// the original become counted integer words here: Active/Partial hold
// descriptor ids plus credits, Anchor packs avail/count/state/tag. Every
// CAS target carries a modification counter in the original, so all are
// listed as counted.
constexpr std::string_view kMichaelMalloc = R"(
// Michael's lock-free allocator, allocation routines (PLDI'04 Fig. 4)
class Heap {
  int Active;      // active descriptor + credits (tagged word)
  int Partial;     // partial descriptor list head (tagged word)
}
class Desc {
  int Anchor;      // packed avail/count/state/tag word
  int Superblock;  // base address of the superblock (read-only once set)
  int Maxcount;    // blocks per superblock (read-only once set)
}
global Heap H;
global Desc D;
global int DescAvail;  // lock-free descriptor free list (tagged word)

proc int MallocFromActive() {
  local oldactive := 0 in {
    loop {                                   // pop a credit from Active
      oldactive := H.Active;
      if (oldactive == 0) { return 0; }
      if (CAS(H.Active, oldactive, oldactive - 1)) { break; }
    }
    local addr := 0 in {
      loop {                                 // reserve block from anchor
        local oldanchor := D.Anchor in {
          addr := D.Superblock + oldanchor;
          if (CAS(D.Anchor, oldanchor, oldanchor + 1)) { break; }
        }
      }
      return addr;
    }
  }
}

proc int MallocFromPartial() {
  local desc := 0 in {
    loop {                                   // pop a partial descriptor
      desc := H.Partial;
      if (desc == 0) { return 0; }
      if (CAS(H.Partial, desc, 0)) { break; }
    }
    loop {                                   // acquire credits
      local oldanchor := D.Anchor in {
        if (oldanchor == 0) { return 0; }
        if (CAS(D.Anchor, oldanchor, oldanchor - 1)) { break; }
      }
    }
    local addr := 0 in {
      loop {                                 // reserve block
        local oldanchor := D.Anchor in {
          addr := D.Superblock + oldanchor;
          if (CAS(D.Anchor, oldanchor, oldanchor + 1)) { break; }
        }
      }
      return addr;
    }
  }
}

proc int DescAlloc() {
  loop {
    local old := DescAvail in {
      if (old != 0) {
        if (CAS(DescAvail, old, old - 1)) { return old; }
      } else {
        return 0;
      }
    }
  }
}

proc DescRetire(int desc) {
  loop {
    local old := DescAvail in {
      if (CAS(DescAvail, old, desc)) { return; }
    }
  }
}

proc int MallocFromNewSB(int sb) {
  local newdesc := new Desc in {
    newdesc.Superblock := sb;
    newdesc.Maxcount := 128;
    newdesc.Anchor := 1;
    local oldactive := 0 in {
      loop {                                 // install the new superblock
        oldactive := H.Active;
        if (oldactive != 0) { return 0; }    // someone else installed one
        if (CAS(H.Active, oldactive, 127)) { break; }
      }
      return newdesc.Superblock;
    }
  }
}

proc UpdateActive(int newcredits) {
  loop {                                     // publish leftover credits
    local oldactive := H.Active in {
      if (oldactive != 0) { break; }
      if (CAS(H.Active, oldactive, newcredits)) { return; }
    }
  }
  loop {                                     // else make superblock partial
    local oldpartial := H.Partial in {
      if (CAS(H.Partial, oldpartial, newcredits)) { return; }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Spin lock built from LL/SC (Section 1 mentions non-blocking
// synchronization implementing blocking objects). Both procedures are
// atomic: the acquire loop is pure with a single exceptional slice.
constexpr std::string_view kSpinlock = R"(
// Test-and-set spin lock via LL/SC
global int L;

proc Acquire() {
  loop {
    local v := LL(L) in {
      if (v == 0) {
        if (SC(L, 1)) { return; }
      }
    }
  }
}

proc Release() {
  loop {
    local v := LL(L) in {
      if (SC(L, 0)) { return; }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// The CAS-based Michael & Scott queue ([13]): like the LL/SC NFQ of
// Figure 1, its loops help-update Tail in normally terminating iterations,
// so they are impure and the analysis (correctly) does not prove the
// procedures atomic without the NFQ'-style restructuring.
constexpr std::string_view kNfqCas = R"(
// Michael & Scott queue, CAS flavor (helping updates keep the loops impure)
class Node {
  int Value;
  Node Next;
}
global Node Head;
global Node Tail;

proc Enq(int value) {
  local node := new Node in {
    node.Value := value;
    node.Next := null;
    loop {
      local t := Tail in
      local next := t.Next in {
        if (t == Tail) {
          if (next == null) {
            if (CAS(t.Next, next, node)) {
              CAS(Tail, t, node);
              return;
            }
          } else {
            CAS(Tail, t, next);   // help: impure update
          }
        }
      }
    }
  }
}

proc int Deq() {
  loop {
    local h := Head in
    local t := Tail in
    local next := h.Next in {
      if (h == Head) {
        if (h == t) {
          if (next == null) { return 0 - 1; }
          CAS(Tail, t, next);     // help: impure update
        } else {
          local value := next.Value in {
            if (CAS(Head, h, next)) { return value; }
          }
        }
      }
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Lock-based counter: the synchronized-statement path (Theorem 5.1).
constexpr std::string_view kLockedCounter = R"(
// Lock-based counter: atomic via Theorem 5.1
class LockObj {
  int dummy;
}
global LockObj M;
global int C;

proc Inc() {
  synchronized (M) {
    local t := C in {
      C := t + 1;
    }
  }
}

proc int Get() {
  synchronized (M) {
    local t := C in {
      return t;
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Negative control: unsynchronized read-modify-write. Must NOT be atomic.
constexpr std::string_view kRacyCounter = R"(
// Racy counter: Inc must NOT be proven atomic
global int C;

proc Inc() {
  local t := C in {
    C := t + 1;
  }
}

proc int Get() {
  local t := C in {
    return t;
  }
}
)";

// ---------------------------------------------------------------------------
// Model-checking drivers: the algorithm sources plus Init/TInit setup
// procedures (Table 2 and Section 6.3 substrates). Kept separate from the
// analysis entries so the atomicity tests are not polluted by setup code.
constexpr std::string_view kNfqPrimeMcInit = R"(
proc Init() {
  local dummy := new Node in {
    dummy.Next := null;
    Head := dummy;
    Tail := dummy;
  }
}
)";

// The paper's injected bug: AddNode without the `next != null` recheck, so
// a successful SC can overwrite an already-linked node and lose it.
constexpr std::string_view kNfqPrimeBug = R"(
// NFQ' with the AddNode recheck deleted (paper Table 2, row "incorrect")
class Node {
  int Value;
  Node Next;
}
global Node Head;
global Node Tail;

proc AddNode(int value) {
  local node := new Node in {
    node.Value := value;
    node.Next := null;
    loop {
      local t := LL(Tail) in
      local next := LL(t.Next) in {
        if (!VL(Tail)) { continue; }
        if (SC(t.Next, node)) { return; }
      }
    }
  }
}

proc UpdateTail() {
  loop {
    local t := LL(Tail) in
    local next := t.Next in {
      if (!VL(Tail)) { continue; }
      if (next != null) {
        SC(Tail, next);
        return;
      }
    }
  }
}

proc int Deq() {
  loop {
    local h := LL(Head) in
    local next := h.Next in {
      if (!VL(Head)) { continue; }
      if (next == null) { return 0 - 1; }
      if (h == LL(Tail)) { continue; }
      local value := next.Value in {
        if (SC(Head, next)) { return value; }
      }
    }
  }
}
)";

// Version numbers must start nonzero: Figure 7's `prvObj.version[g] := 0`
// reset relies on 0 never matching a published version. With all-zero
// initial versions a failed SC leaves stale data that is not re-copied
// (our model checker found this corner; see EXPERIMENTS.md E4).
constexpr std::string_view kGhMcInit = R"(
proc Init() {
  SharedObj := new Obj;
  local o := SharedObj in {
    o.version[1] := 1;
    o.version[2] := 1;
    o.version[3] := 1;
  }
}

proc TInit() {
  prvObj := new Obj;
}
)";

// The malloc driver of [Michael PLDI'04] Fig. 4, expressed with real calls
// (the front end inlines them, as the paper's Section 1 prescribes).
constexpr std::string_view kMichaelMallocDriver = R"(
proc int Malloc(int sb) {
  loop {
    local addr := MallocFromActive() in {
      if (addr != 0) { return addr; }
      local addr2 := MallocFromPartial() in {
        if (addr2 != 0) { return addr2; }
        local addr3 := MallocFromNewSB(sb) in {
          if (addr3 != 0) { return addr3; }
        }
      }
    }
  }
}
)";

const std::string& michael_malloc_full_source() {
  static const std::string src =
      std::string(kMichaelMalloc) + std::string(kMichaelMallocDriver);
  return src;
}

const std::string& nfq_prime_mc_source() {
  static const std::string src =
      std::string(kNfqPrime) + std::string(kNfqPrimeMcInit);
  return src;
}
const std::string& nfq_prime_bug_mc_source() {
  static const std::string src =
      std::string(kNfqPrimeBug) + std::string(kNfqPrimeMcInit);
  return src;
}
const std::string& gh_mc_source() {
  static const std::string src =
      std::string(kGhLargeV3) + std::string(kGhMcInit);
  return src;
}

const std::vector<Entry>& entries() {
  static const std::vector<Entry> kAll = {
      {"nfq", "Michael&Scott LL/SC queue (Fig. 1, impure loops)", kNfq, {}},
      {"nfq_prime", "NFQ' (Fig. 2) - AddNode/UpdateTail/Deq", kNfqPrime, {}},
      {"herlihy_small", "Herlihy small objects (Fig. 4)", kHerlihySmall, {}},
      {"gh_large_v1", "Gao-Hesselink program 1 (Fig. 5)", kGhLargeV1, {}},
      {"gh_large_v2", "Gao-Hesselink program 2 (Fig. 6)", kGhLargeV2, {}},
      {"gh_large_v3", "Gao-Hesselink full program (Fig. 7)", kGhLargeV3, {}},
      {"semaphore_down", "semaphore Down/Up (Sec. 4)", kSemaphoreDown, {}},
      {"treiber_stack", "Treiber stack, counted CAS", kTreiberStack, {"Top"}},
      {"michael_malloc",
       "Michael's allocator allocation routines (Sec. 6.4)",
       kMichaelMalloc,
       {"Heap.Active", "Heap.Partial", "Desc.Anchor", "DescAvail"}},
      {"michael_malloc_full",
       "allocator routines + the inlined Malloc driver (Sec. 6.4)",
       michael_malloc_full_source(),
       {"Heap.Active", "Heap.Partial", "Desc.Anchor", "DescAvail"}},
      {"spinlock", "LL/SC test-and-set spin lock", kSpinlock, {}},
      {"nfq_cas", "Michael&Scott queue, CAS flavor (impure loops)", kNfqCas,
       {"Head", "Tail", "Node.Next"}},
      {"locked_counter", "lock-based counter (Thm. 5.1)", kLockedCounter, {}},
      {"racy_counter", "racy counter (negative control)", kRacyCounter, {}},
      {"nfq_prime_mc", "NFQ' + Init, model-checking driver (Table 2)",
       nfq_prime_mc_source(), {}},
      {"nfq_prime_bug_mc",
       "incorrect AddNode + Init, model-checking driver (Table 2)",
       nfq_prime_bug_mc_source(), {}},
      {"gh_mc", "Gao-Hesselink + Init/TInit, model-checking driver (Sec 6.3)",
       gh_mc_source(), {}},
  };
  return kAll;
}

}  // namespace

const std::vector<Entry>& all() { return entries(); }

const Entry& get(std::string_view name) {
  for (const Entry& e : entries()) {
    if (e.name == name) return e;
  }
  SYNAT_ASSERT(false, "unknown corpus entry: " + std::string(name));
}

}  // namespace synat::corpus
