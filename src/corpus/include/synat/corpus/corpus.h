// Embedded SYNL sources for every algorithm the paper analyzes (Section 6)
// plus auxiliary calibration programs used by tests and benchmarks.
//
// Names:
//   nfq              - Michael&Scott LL/SC/VL FIFO queue, Figure 1 (loops
//                      impure: the analysis is expected NOT to prove it)
//   nfq_prime        - NFQ', Figure 2 (AddNode / UpdateTail / Deq)
//   herlihy_small    - Herlihy small-object algorithm, Figure 4
//   gh_large_v1      - Gao-Hesselink large objects, simplified program 1
//                      (Figure 5; copy loop in do-while form, see DESIGN.md)
//   gh_large_v2      - program 2 (Figure 6; not directly provable)
//   gh_large_v3      - full program with version numbers (Figure 7; not
//                      directly provable, matching the paper)
//   semaphore_down   - the pure-loop example of Section 4
//   treiber_stack    - CAS+counter stack exercising the CAS analogues
//   michael_malloc   - transcription of the allocation fast paths of
//                      Michael's lock-free allocator (Section 6.4)
//   locked_counter   - synchronized-block example (Theorem 5.1 path)
//   racy_counter     - negative control: must NOT be proven atomic
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace synat::corpus {

struct Entry {
  std::string_view name;
  std::string_view description;
  std::string_view source;
  /// CAS targets carrying modification counters (InferOptions::counted_cas).
  std::vector<std::string_view> counted_cas;
};

/// All corpus programs, in a stable order.
const std::vector<Entry>& all();

/// Lookup by name; throws InternalError for unknown names.
const Entry& get(std::string_view name);

}  // namespace synat::corpus
