// Quickstart: parse a SYNL program, run the atomicity inference, and print
// the annotated listing — the whole public API in ~40 lines.
//
//   $ ./quickstart            # analyzes the built-in example
//   $ ./quickstart file.synl  # analyzes your own program
#include <cstdio>
#include <fstream>
#include <sstream>

#include "synat/synat.h"

namespace {

constexpr const char* kExample = R"(
// A lock-free counter: the analysis proves Increment atomic because the
// loop is pure and its exceptional slice is R*;A;L*.
global int Counter;

proc int Increment() {
  loop {
    local current := LL(Counter) in {
      if (SC(Counter, current + 1)) { return current + 1; }
    }
  }
}

proc int Get() {
  local v := Counter in {
    return v;
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kExample;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  // 1. Parse + semantic analysis.
  synat::DiagEngine diags;
  synat::synl::Program prog = synat::synl::parse_and_check(source, diags);
  if (diags.has_errors()) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }

  // 2. Atomicity inference (Sections 4-5 of the paper): pure loops,
  //    exceptional variants, mover classification, type propagation.
  synat::atomicity::AtomicityResult result =
      synat::atomicity::infer_atomicity(prog, diags);

  // 3. Report: per-procedure verdicts with per-line atomicity types.
  std::printf("%s", result.full_listing(prog).c_str());

  // 4. Programmatic access to the verdicts.
  for (const synat::atomicity::ProcResult& pr : result.procs()) {
    std::printf("procedure %s: %s\n",
                std::string(prog.syms().name(prog.proc(pr.proc).name)).c_str(),
                pr.atomic ? "ATOMIC" : "not proved atomic");
  }
  return 0;
}
