// The runtime library in action: the non-blocking containers the paper's
// algorithms describe, exercised with real threads and checked for
// linearizability with the history tester.
#include <cstdio>
#include <thread>

#include "synat/runtime/allocator.h"
#include "synat/runtime/gh_large.h"
#include "synat/runtime/herlihy.h"
#include "synat/runtime/lintest.h"
#include "synat/runtime/msqueue.h"
#include "synat/runtime/treiber.h"

using namespace synat::runtime;

int main() {
  // --- MS queue (Section 6.1) with a linearizability check --------------
  {
    MSQueue<int> q;
    HistoryRecorder rec(3);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 4; ++i) {
          if (i % 2 == 0) {
            uint64_t inv = rec.invoke();
            q.enqueue(t * 10 + i);
            rec.respond(t, QueueSpec::kEnq, t * 10 + i, 0, inv);
          } else {
            uint64_t inv = rec.invoke();
            auto got = q.dequeue();
            rec.respond(t, QueueSpec::kDeq, 0, got ? *got : QueueSpec::kEmpty,
                        inv);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    bool ok = linearizable<QueueSpec>(rec.history());
    std::printf("MSQueue: %zu-op concurrent history linearizable: %s\n",
                rec.history().size(), ok ? "yes" : "NO");
  }

  // --- Herlihy small object (Section 6.2) -------------------------------
  {
    struct Account {
      int64_t balance = 0;
      int64_t transactions = 0;
    };
    HerlihyObject<Account> account(Account{});
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 500; ++i) {
          account.apply([&](Account& a) {
            a.balance += (t % 2 == 0) ? 7 : -7;
            a.transactions += 1;
            return a.balance;
          });
        }
      });
    }
    for (auto& th : threads) th.join();
    Account final = account.read();
    std::printf("HerlihyObject: balance=%lld transactions=%lld "
                "(expected 0 and 2000): %s\n",
                static_cast<long long>(final.balance),
                static_cast<long long>(final.transactions),
                final.balance == 0 && final.transactions == 2000 ? "ok" : "NO");
  }

  // --- GH large object (Section 6.3) ------------------------------------
  {
    GHLargeObject<int64_t, 3> stats;  // 3 groups, updated independently
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 400; ++i)
          stats.apply(static_cast<size_t>(t), [](int64_t& v) { return ++v; });
      });
    }
    for (auto& th : threads) th.join();
    std::printf("GHLargeObject: groups = %lld / %lld / %lld "
                "(expected 400 each): %s\n",
                static_cast<long long>(stats.read(0)),
                static_cast<long long>(stats.read(1)),
                static_cast<long long>(stats.read(2)),
                stats.read(0) == 400 && stats.read(1) == 400 &&
                        stats.read(2) == 400
                    ? "ok"
                    : "NO");
  }

  // --- Lock-free allocator (Section 6.4) --------------------------------
  {
    LockFreeAllocator alloc(48, 32);
    std::vector<std::thread> threads;
    std::atomic<int> allocated{0};
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        std::vector<void*> mine;
        for (int i = 0; i < 300; ++i) {
          mine.push_back(alloc.malloc());
          allocated.fetch_add(1);
          if (mine.size() > 6) {
            alloc.free(mine.back());
            mine.pop_back();
          }
        }
        for (void* p : mine) alloc.free(p);
      });
    }
    for (auto& th : threads) th.join();
    std::printf("LockFreeAllocator: %d allocations across %zu superblocks\n",
                allocated.load(), alloc.superblocks_allocated());
  }

  // --- Treiber stack ------------------------------------------------------
  {
    TreiberStack<int> s;
    for (int i = 0; i < 5; ++i) s.push(i);
    std::printf("TreiberStack: pop order");
    while (auto v = s.pop()) std::printf(" %d", *v);
    std::printf(" (expected 4 3 2 1 0)\n");
  }
  return 0;
}
