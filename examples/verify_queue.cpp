// End-to-end verification of NFQ' (the paper's Section 6.1 workflow):
//
//   1. run the static atomicity analysis on the queue's procedures;
//   2. feed the inferred atomic procedures to the model checker as
//      reduction hints and exhaustively check the queue's behavior with
//      concurrent producers (Table 2's experiment);
//   3. conclude linearizability via the paper's two-step argument: atomic
//      procedures + correct sequential behavior.
#include <cstdio>

#include "synat/corpus/corpus.h"
#include "synat/mc/mc.h"
#include "synat/mc/props.h"
#include "synat/synat.h"

using namespace synat;

int main() {
  // Step 1: static analysis of the queue's API procedures. (The analysis
  // runs on the pure algorithm; the model-checking driver adds an Init
  // procedure whose plain global writes are setup scaffolding outside the
  // SC discipline the analysis assumes for the API.)
  std::printf("--- step 1: atomicity analysis ---\n");
  std::vector<std::string> atomic_procs;
  {
    DiagEngine diags;
    synl::Program api =
        synl::parse_and_check(corpus::get("nfq_prime").source, diags);
    atomicity::AtomicityResult analysis =
        atomicity::infer_atomicity(api, diags);
    for (const atomicity::ProcResult& pr : analysis.procs()) {
      std::string name(api.syms().name(api.proc(pr.proc).name));
      std::printf("  %-12s %s\n", name.c_str(),
                  pr.atomic ? "atomic" : "NOT atomic");
      if (pr.atomic) atomic_procs.push_back(name);
    }
  }

  DiagEngine diags;
  synl::Program prog =
      synl::parse_and_check(corpus::get("nfq_prime_mc").source, diags);
  if (diags.has_errors()) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }

  // Step 2: model-check with the analysis-driven reduction.
  std::printf("\n--- step 2: model checking (atomic-block reduction) ---\n");
  interp::CompiledProgram cp = interp::compile_program(prog, diags);
  synl::ClassId node = prog.find_class(prog.syms().lookup("Node"));
  int value_f = prog.cls(node).field_index(prog.syms().lookup("Value"));
  int next_f = prog.cls(node).field_index(prog.syms().lookup("Next"));

  mc::Options opts;
  opts.atomic_procs = atomic_procs;
  mc::ModelChecker probe(cp, opts);
  opts.invariant = mc::queue_wellformed(probe, next_f);
  opts.final_check =
      mc::queue_final_contents(probe, value_f, next_f, {1, 2, 3});
  mc::ModelChecker checker(cp, opts);
  mc::RunSpec spec;
  spec.global_init = "Init";
  for (int i = 1; i <= 3; ++i)
    spec.threads.push_back({"AddNode", {mc::Value::of_int(i)}, "", {}});
  // K producers need K-1 Tail advances: one UpdateTail thread per extra
  // producer (each UpdateTail call returns after one successful advance).
  spec.threads.push_back({"UpdateTail", {}, "", {}});
  spec.threads.push_back({"UpdateTail", {}, "", {}});
  mc::Result r = checker.run(spec);
  std::printf("  3 producers + 2 UpdateTail: %s\n",
              r.error_found ? r.error.c_str() : "all states verified");
  std::printf("  %s\n", r.summary().c_str());
  if (r.final_states == 0)
    std::printf("  WARNING: no quiescent states reached\n");

  // Step 3: the conclusion the paper draws.
  std::printf("\n--- step 3: conclusion ---\n");
  bool linearizable =
      !r.error_found && r.final_states > 0 && atomic_procs.size() == 3;
  std::printf(
      "  procedures atomic + sequential behavior correct => NFQ' is\n"
      "  linearizable w.r.t. the FIFO queue specification: %s\n",
      linearizable ? "YES" : "not established");
  return linearizable ? 0 : 1;
}
