// Section 6.4 workflow: when procedures are not atomic as a whole, the
// analysis still partitions them into maximal atomic blocks that later
// verification can treat as single transitions. This example prints the
// partition of Michael's allocator routines.
#include <cstdio>

#include "synat/corpus/corpus.h"
#include "synat/synat.h"
#include "synat/synl/printer.h"

using namespace synat;

int main() {
  const corpus::Entry& entry = corpus::get("michael_malloc");
  DiagEngine diags;
  synl::Program prog = synl::parse_and_check(entry.source, diags);
  if (diags.has_errors()) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }
  atomicity::InferOptions opts;
  for (auto c : entry.counted_cas) opts.counted_cas.emplace_back(c);
  atomicity::AtomicityResult result =
      atomicity::infer_atomicity(prog, diags, opts);

  for (const atomicity::ProcResult& pr : result.procs()) {
    std::string name(prog.syms().name(prog.proc(pr.proc).name));
    std::printf("=== %s: %s ===\n", name.c_str(),
                pr.atomic ? "atomic (one block)" : "split into atomic blocks");
    // Show the worst-case variant's partition.
    const atomicity::VariantResult* worst = nullptr;
    size_t worst_blocks = 0;
    for (const atomicity::VariantResult& v : pr.variants) {
      size_t n = atomicity::partition_blocks(prog, v).blocks.size();
      if (n >= worst_blocks) {
        worst_blocks = n;
        worst = &v;
      }
    }
    if (!worst) continue;
    atomicity::BlockPartition part = atomicity::partition_blocks(prog, *worst);
    for (size_t b = 0; b < part.blocks.size(); ++b) {
      std::printf("  -- block %zu (%s) --\n", b + 1,
                  std::string(to_string(part.blocks[b].atom)).c_str());
      for (const atomicity::BlockUnit& u : part.blocks[b].units) {
        std::printf("    [%s] %s\n",
                    std::string(to_string(u.atom)).c_str(),
                    synl::stmt_head(prog, u.stmt).c_str());
      }
    }
    std::printf("\n");
  }

  atomicity::BlockSummary sum = atomicity::summarize_blocks(prog, result);
  std::printf("total: %zu procedures -> %zu atomic blocks\n", sum.total_procs,
              sum.total_blocks);
  return 0;
}
