#!/usr/bin/env python3
"""Compare two synat --metrics-out Prometheus dumps for the cross-mode
determinism contract: deterministic counters must be identical across
--jobs 1, --jobs N, and --isolate runs over the same inputs.

What is deliberately skipped, mirroring tests/driver/test_obs.cpp:

  * metrics whose HELP line carries "(nondeterministic)" — timing-dependent
    by design (heartbeats, watchdog trips, span drops);
  * synat_worker_* counters — the in-process driver never dispatches
    workers, so these legitimately differ between modes;
  * gauges (synat_jobs is the mode under test, not an invariant);
  * histogram _bucket and _sum series — wall-clock-dependent; only the
    synat_pipeline_*_duration_seconds_count totals are mode-invariant
    (driver stages like Schedule run once per isolated sub-driver too).

Usage: compare_metrics.py A.prom B.prom
"""

import sys


def parse(path):
    nondet = set()
    values = {}
    types = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if line.startswith("# HELP "):
                name = line.split(" ", 3)[2]
                if "(nondeterministic)" in line:
                    nondet.add(name)
            elif line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                types[name] = kind
            elif line and not line.startswith("#"):
                series, value = line.rsplit(" ", 1)
                values[series] = value
    return nondet, types, values


def comparable(series, nondet, types):
    base = series.split("{", 1)[0]
    if base.startswith("synat_worker_"):
        return False
    for family, kind in types.items():
        if base == family or base.startswith(family + "_"):
            if kind == "gauge":
                return False
            if kind == "histogram":
                return base == family + "_count" and \
                    family.startswith("synat_pipeline_")
    for family in nondet:
        if base == family or base == family + "_total":
            return False
    return True


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    a_nondet, a_types, a_values = parse(sys.argv[1])
    b_nondet, b_types, b_values = parse(sys.argv[2])
    nondet = a_nondet | b_nondet
    types = {**a_types, **b_types}

    keys_a = {k for k in a_values if comparable(k, nondet, types)}
    keys_b = {k for k in b_values if comparable(k, nondet, types)}

    failures = []
    for k in sorted(keys_a | keys_b):
        va, vb = a_values.get(k), b_values.get(k)
        if va != vb:
            failures.append(f"{k}: {va} != {vb}")
    if failures:
        for f in failures:
            print(f"compare_metrics: {f}", file=sys.stderr)
        print(f"compare_metrics: FAIL ({len(failures)} mismatch(es))",
              file=sys.stderr)
        return 1
    print(f"compare_metrics: OK ({len(keys_a | keys_b)} deterministic "
          f"series identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
