#!/usr/bin/env python3
"""Reference client for the `synat serve` daemon.

The wire protocol is newline-delimited JSON-RPC 2.0 over a unix-domain
socket or TCP (see src/serve/include/synat/serve/service.h for the method
surface). This module is both a library (used by the tests and CI) and a
small CLI:

    synat_client.py --connect /tmp/synat.sock status
    synat_client.py --connect 127.0.0.1:9123 analyze prog.synl [--provenance]
    synat_client.py --connect /tmp/synat.sock analyze -        # stdin
    synat_client.py --connect /tmp/synat.sock explain prog.synl [PROC]
    synat_client.py --connect /tmp/synat.sock metrics
    synat_client.py --connect /tmp/synat.sock invalidate
    synat_client.py --connect /tmp/synat.sock shutdown
    synat_client.py tail events.jsonl [-n 20] [--follow] [--grep error]

`analyze` prints the batch-report JSON document (byte-identical to
`synat batch --format json` on the same input) to stdout and exits with
the analysis exit code; the other commands print their result object.
"""

import argparse
import json
import os
import random
import socket
import sys
import time


class RpcError(Exception):
    """A JSON-RPC error response. `code` follows the spec (-32700 parse,
    -32600 invalid request, ...) plus synat's server-defined codes
    (-32003 overloaded, -32002 shutting down, -32004 quarantined)."""

    def __init__(self, code, message):
        super().__init__(f"RPC error {code}: {message}")
        self.code = code
        self.message = message


# Methods that are safe to resend after a dropped connection: they mutate
# nothing (status/metrics) or are pure functions of their params whose
# duplicate execution is absorbed by the daemon's result cache
# (analyze/explain). `invalidate` and `shutdown` are never resent — a lost
# reply does not prove the daemon missed the request, and executing either
# twice is not the same as executing it once.
_IDEMPOTENT = frozenset({"analyze", "explain", "status", "metrics"})


class Client:
    """One connection to a synat serve daemon. Not thread-safe; open one
    Client per thread (the daemon handles any number of connections).

    If the connection drops mid-call (daemon crashed, was restarted, or the
    socket was reset), idempotent requests are transparently resent over a
    fresh connection, up to `max_retries` reconnect attempts per call, with
    jittered exponential backoff between attempts so a herd of clients does
    not stampede a restarting daemon."""

    # A daemon that was just launched may not be accepting yet (its unix
    # socket path appears at bind(), a moment before listen()), so a
    # refused/absent endpoint is retried briefly before giving up.
    _CONNECT_RETRY_SECS = 2.0
    # Reconnect backoff: full jitter over an exponentially growing window,
    # base * 2^attempt capped at _BACKOFF_CAP seconds.
    _BACKOFF_BASE = 0.05
    _BACKOFF_CAP = 2.0

    def __init__(self, address, timeout=None, max_retries=3):
        self._address = address
        self._timeout = timeout
        self._max_retries = max_retries
        self._next_id = 0
        self._connect()

    def _connect(self):
        deadline = time.monotonic() + self._CONNECT_RETRY_SECS
        address = self._address
        while True:
            try:
                if "/" in address:
                    self._sock = socket.socket(socket.AF_UNIX,
                                               socket.SOCK_STREAM)
                    self._sock.settimeout(self._timeout)
                    self._sock.connect(address)
                else:
                    host, _, port = address.rpartition(":")
                    self._sock = socket.create_connection(
                        (host or "127.0.0.1", int(port)),
                        timeout=self._timeout)
                break
            except (ConnectionRefusedError, FileNotFoundError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def close(self):
        self._file.close()
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _reconnect(self, attempt):
        """Close the dead socket and reopen with full-jitter backoff."""
        try:
            self.close()
        except OSError:
            pass
        window = min(self._BACKOFF_CAP, self._BACKOFF_BASE * (1 << attempt))
        time.sleep(random.uniform(0, window))
        self._connect()

    def _call_once(self, method, params):
        self._next_id += 1
        req = {"jsonrpc": "2.0", "id": self._next_id, "method": method}
        if params is not None:
            req["params"] = params
        self._file.write(json.dumps(req) + "\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise EOFError("daemon closed the connection")
        resp = json.loads(line)
        if "error" in resp:
            raise RpcError(resp["error"]["code"], resp["error"]["message"])
        return resp["result"]

    def call(self, method, params=None):
        """One request/response round trip. Returns the result object;
        raises RpcError on an error response. If the connection drops and
        the method is idempotent, reconnects and resends (up to
        max_retries times); otherwise raises EOFError/OSError."""
        attempt = 0
        while True:
            try:
                return self._call_once(method, params)
            except TimeoutError:
                raise  # a slow daemon is not a dead one; never resend
            except (EOFError, ConnectionError, OSError):
                if method not in _IDEMPOTENT or attempt >= self._max_retries:
                    raise
                self._reconnect(attempt)
                attempt += 1

    def notify(self, method, params=None):
        """Fire-and-forget notification (no id, no response)."""
        req = {"jsonrpc": "2.0", "method": method}
        if params is not None:
            req["params"] = params
        self._file.write(json.dumps(req) + "\n")
        self._file.flush()

    # Convenience wrappers for the method surface.

    def analyze(self, program, name=None, **options):
        params = {"program": program, **options}
        if name is not None:
            params["name"] = name
        return self.call("analyze", params)

    def explain(self, program, name=None, proc=None, **options):
        params = {"program": program, **options}
        if name is not None:
            params["name"] = name
        if proc is not None:
            params["proc"] = proc
        return self.call("explain", params)

    def status(self):
        return self.call("status")

    def metrics(self):
        return self.call("metrics")

    def invalidate(self):
        return self.call("invalidate")

    def shutdown(self):
        return self.call("shutdown")


def _format_event(ev):
    """One human-scannable line per wide event (see DESIGN.md §3i)."""
    parts = [f"#{ev.get('seq', '?')}",
             str(ev.get("name", "?")),
             f"status={ev.get('status', '?')}"]
    if not ev.get("atomic", True):
        parts.append("NOT-ATOMIC")
    if ev.get("exit_code", 0) != 0:
        parts.append(f"exit={ev['exit_code']}")
    dur = ev.get("dur_ns", 0)
    if dur:
        parts.append(f"dur={dur / 1e6:.2f}ms")
    hits, misses = ev.get("cache_hits", 0), ev.get("cache_misses", 0)
    if hits or misses:
        parts.append(f"cache={hits}h/{misses}m")
    for k in ("retries", "deaths_crash", "deaths_timeout", "deaths_oom"):
        if ev.get(k):
            parts.append(f"{k}={ev[k]}")
    if ev.get("quarantined"):
        parts.append("QUARANTINED")
    if ev.get("error_kind"):
        parts.append(f"error={ev['error_kind']}({ev.get('error_code', 0)})")
    return "  ".join(parts)


def _tail_events(path, last_n, follow, grep):
    """Render a wide-event log (synat --events-out) as one line per event,
    optionally following it through rotations like `tail -F`."""

    def emit(line):
        line = line.strip()
        if not line:
            return
        if grep and grep not in line:
            return
        try:
            ev = json.loads(line)
        except json.JSONDecodeError:
            print(f"?  {line}")
            return
        print(_format_event(ev), flush=True)

    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        print(f"synat_client: {e}", file=sys.stderr)
        return 2
    for line in lines[-last_n:] if last_n >= 0 else lines:
        emit(line)
    if not follow:
        return 0

    f = open(path, encoding="utf-8")
    f.seek(0, os.SEEK_END)
    inode = os.fstat(f.fileno()).st_ino
    try:
        while True:
            line = f.readline()
            if line:
                if line.endswith("\n"):  # skip a partially written tail
                    emit(line)
                else:
                    f.seek(-len(line.encode("utf-8")), os.SEEK_CUR)
                    time.sleep(0.1)
                continue
            # EOF: watch for size-based rotation (the live file is renamed
            # to .1 and a fresh one is created at the same path).
            try:
                st = os.stat(path)
            except FileNotFoundError:
                time.sleep(0.2)
                continue
            if st.st_ino != inode:
                f.close()
                f = open(path, encoding="utf-8")
                inode = st.st_ino
                continue
            time.sleep(0.2)
    except KeyboardInterrupt:
        return 0
    finally:
        f.close()


def _read_program(spec):
    if spec == "-":
        return sys.stdin.read(), "<stdin>"
    with open(spec, "r", encoding="utf-8") as f:
        return f.read(), spec


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--connect",
                    help="unix socket path (contains '/') or host:port "
                         "(required for every command except tail)")
    ap.add_argument("--timeout", type=float, default=60.0)
    ap.add_argument("--max-retries", type=int, default=3,
                    help="reconnect+resend attempts for idempotent calls "
                         "after a dropped connection (default 3)")
    sub = ap.add_subparsers(dest="command", required=True)

    ana = sub.add_parser("analyze")
    ana.add_argument("program", help="SYNL file, or - for stdin")
    ana.add_argument("--provenance", action="store_true")
    ana.add_argument("--no-variants", action="store_true")
    ana.add_argument("--no-windows", action="store_true")
    ana.add_argument("--no-conds", action="store_true")
    ana.add_argument("--counted", action="append", default=[])

    exp = sub.add_parser("explain")
    exp.add_argument("program", help="SYNL file, or - for stdin")
    exp.add_argument("proc", nargs="?")

    for name in ("status", "metrics", "invalidate", "shutdown"):
        sub.add_parser(name)

    tail = sub.add_parser(
        "tail", help="render a --events-out wide-event log, one line each")
    tail.add_argument("file", help="events JSONL file")
    tail.add_argument("-n", "--lines", type=int, default=10,
                      help="show the last N events first (-1 for all)")
    tail.add_argument("-f", "--follow", action="store_true",
                      help="keep watching, following rotations")
    tail.add_argument("--grep",
                      help="only raw JSON lines containing this substring "
                           "(e.g. '\"quarantined\":true' or an error kind)")

    args = ap.parse_args(argv)
    if args.command == "tail":
        return _tail_events(args.file, args.lines, args.follow, args.grep)
    if not args.connect:
        ap.error(f"--connect is required for '{args.command}'")
    try:
        client = Client(args.connect, timeout=args.timeout,
                        max_retries=args.max_retries)
    except OSError as e:
        print(f"synat_client: cannot connect to {args.connect}: {e}",
              file=sys.stderr)
        return 2

    try:
        with client:
            if args.command == "analyze":
                source, name = _read_program(args.program)
                options = {}
                if args.provenance:
                    options["provenance"] = True
                if args.no_variants:
                    options["no_variants"] = True
                if args.no_windows:
                    options["no_windows"] = True
                if args.no_conds:
                    options["no_conds"] = True
                if args.counted:
                    options["counted"] = args.counted
                result = client.analyze(source, name=args.program
                                        if args.program != "-" else name,
                                        **options)
                sys.stdout.write(result["report"])
                return result["exit_code"]
            if args.command == "explain":
                source, _ = _read_program(args.program)
                result = client.explain(source, name=args.program,
                                        proc=args.proc)
                sys.stdout.write(result["explanation"])
                return result["exit_code"]
            if args.command == "metrics":
                sys.stdout.write(client.metrics()["prometheus"])
                return 0
            result = client.call(args.command)
            print(json.dumps(result, indent=2))
            return 0
    except RpcError as e:
        print(f"synat_client: {e}", file=sys.stderr)
        return 2
    except (EOFError, OSError) as e:
        print(f"synat_client: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
