#!/usr/bin/env python3
"""Chaos harness for the `synat serve` daemon (DESIGN.md §3h).

Drives a sandboxed daemon through the failure modes it claims to survive
and asserts, after each storm, that the daemon is still the same process,
still answers, and still produces byte-identical reports:

  1.  Request storm: concurrent clients mixing healthy programs with
      SYNAT_FAULT victims (crash / hang / OOM, injected inside the forked
      worker) and malformed sources. Every request must get a well-formed
      reply — a report, or an -32003/-32004 error, or a degraded
      "kind":"crash" report. The daemon must never die.
  2.  Worker murder: a thread SIGKILLs sandbox workers (children of the
      daemon, via /proc) mid-storm. Same invariants.
  3.  Quarantine: K consecutive worker deaths for one program short-circuit
      to -32004 without forking; after --quarantine-ttl the program is
      given a fresh chance (it forks — and dies — again).
  4.  Crash-only recovery: the daemon takes periodic cache snapshots; the
      harness SIGKILLs it mid-service, restarts it on the same socket and
      cache file, and requires a warm answer (procedures_reanalyzed == 0).
  5.  Client reconnect: synat_client.Client transparently resends an
      idempotent call across a daemon restart.
  6.  HTTP shim: GET /healthz, /readyz, /metrics, /slo and /buildz answer
      on the same socket as the JSON-RPC traffic. After a storm the SLO
      error budget is legitimately exhausted, so /readyz may answer 503
      with the SLO explanation — but /healthz must stay 200 (the process
      is alive; it is just failing its objectives).
  7.  SLO tracking: the storm's rejections and faults show up in /slo as
      errors and burn, and /readyz agrees with availability.exhausted.
  8.  Byte identity: after all of the above, serve reports are still
      byte-identical to `synat batch --format json`, and shutdown drains
      cleanly (daemon exit code 0).
  9.  Flight data: the daemon's --events-out log is schema-valid for every
      line (tools/validate_events.py), and the incident postmortems the
      worker deaths produced validate as synat-postmortem dumps.

Requires a binary built with -DSYNAT_FAULT_INJECTION=ON (the victim
programs are never harmed by a release binary, which the harness detects
and reports as a failure).

Usage:  chaos_serve.py --synat build/src/synat [--duration 10] [-v]
"""

import argparse
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from synat_client import Client, RpcError  # noqa: E402
import validate_events  # noqa: E402

# One healthy program everyone agrees on (also the warm-restart probe).
HEALTHY = "proc P() { skip; }\n"
# Victim names wired to SYNAT_FAULT specs in launch_daemon().
VICTIMS = {
    "victim_crash": "crash",
    "victim_hang": "hang",
    "victim_oom": "oom",
}
FAULT_SPEC = ",".join(f"{mode}:{name}" for name, mode in VICTIMS.items())
MALFORMED = "proc Broken( { this is not synl\n"

# Per-request budgets for the daemon under test: small enough that hang
# victims are reaped quickly (stall kill fires at deadline + 500 ms), large
# enough that healthy example programs never trip it.
DEADLINE_MS = 1500
MAX_RSS_MB = 512


class Failure(Exception):
    pass


def log(args, msg):
    if args.verbose:
        print(f"chaos: {msg}", flush=True)


def launch_daemon(args, sock, cache_file=None, snapshot_interval_s=None,
                  quarantine_threshold=3, quarantine_ttl_s=2,
                  events_out=None, postmortem=None):
    cmd = [args.synat, "serve", "--listen", sock, "--jobs", "4",
           "--sandbox", "--deadline-ms", str(DEADLINE_MS),
           "--max-rss-mb", str(MAX_RSS_MB), "--retries", "1",
           "--quarantine-threshold", str(quarantine_threshold),
           "--quarantine-ttl", str(quarantine_ttl_s)]
    if cache_file:
        cmd += ["--cache-file", cache_file]
    if snapshot_interval_s:
        cmd += ["--snapshot-interval-s", str(snapshot_interval_s)]
    if events_out:
        cmd += ["--events-out", events_out]
    if postmortem:
        cmd += ["--postmortem", postmortem]
    env = dict(os.environ, SYNAT_FAULT=FAULT_SPEC)
    proc = subprocess.Popen(cmd, env=env)
    deadline = time.monotonic() + 10
    while not os.path.exists(sock):
        if proc.poll() is not None or time.monotonic() >= deadline:
            raise Failure(f"daemon did not come up on {sock}")
        time.sleep(0.05)
    return proc


def daemon_children(pid):
    """PIDs of the daemon's forked sandbox workers, via /proc."""
    kids = []
    task_dir = f"/proc/{pid}/task"
    try:
        for tid in os.listdir(task_dir):
            try:
                with open(f"{task_dir}/{tid}/children") as f:
                    kids += [int(p) for p in f.read().split()]
            except (OSError, ValueError):
                pass
    except OSError:
        pass
    return kids


def classify_reply(result):
    """Returns a bucket name for a successful analyze result object."""
    doc = json.loads(result["report"])
    statuses = {p.get("status") for p in doc.get("programs", [])}
    if "degraded" in statuses:
        return "degraded"
    return "ok"


class Stats:
    def __init__(self):
        self.lock = threading.Lock()
        self.buckets = {}
        self.failures = []

    def bump(self, bucket):
        with self.lock:
            self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def fail(self, msg):
        with self.lock:
            self.failures.append(msg)


def storm_thread(args, sock, programs, stats, stop, seed):
    rng = random.Random(seed)
    try:
        client = Client(sock, timeout=60, max_retries=3)
    except OSError as e:
        stats.fail(f"storm client cannot connect: {e}")
        return
    with client:
        while not stop.is_set():
            name, source = rng.choice(programs)
            try:
                result = client.analyze(source, name=name)
                stats.bump(classify_reply(result))
            except RpcError as e:
                if e.code in (-32003, -32004):
                    stats.bump(str(e.code))
                elif e.code == -32002:
                    stats.bump("draining")  # shutdown raced the storm tail
                else:
                    stats.fail(f"unexpected RPC error for {name}: {e}")
            except Exception as e:  # noqa: BLE001 — anything else is a bug
                stats.fail(f"{type(e).__name__} for {name}: {e}")


def run_storm(args, sock, daemon, duration, kill_workers):
    """Concurrent mixed-traffic storm; returns the Stats. Asserts the
    daemon is the same live process afterwards."""
    examples = []
    synl_dir = os.path.join(args.repo, "examples", "synl")
    for fn in sorted(os.listdir(synl_dir)):
        if fn.endswith(".synl"):
            with open(os.path.join(synl_dir, fn)) as f:
                examples.append((fn, f.read()))
    programs = examples + [("healthy", HEALTHY), ("malformed", MALFORMED)]
    for name in VICTIMS:
        programs.append((name, f"// {name}\n" + HEALTHY.replace("P", "V")))

    stats = Stats()
    stop = threading.Event()
    threads = [threading.Thread(target=storm_thread,
                                args=(args, sock, programs, stats, stop, i))
               for i in range(6)]
    killer = None
    if kill_workers:
        def murder():
            while not stop.is_set():
                kids = daemon_children(daemon.pid)
                if kids:
                    victim = random.choice(kids)
                    try:
                        os.kill(victim, signal.SIGKILL)
                        stats.bump("workers_killed")
                    except OSError:
                        pass
                time.sleep(0.05)
        killer = threading.Thread(target=murder)
        killer.start()
    for t in threads:
        t.start()
    time.sleep(duration)
    stop.set()
    for t in threads:
        t.join()
    if killer:
        killer.join()

    if daemon.poll() is not None:
        raise Failure(f"daemon died during storm (exit {daemon.returncode})")
    if stats.failures:
        raise Failure("storm produced malformed replies:\n  " +
                      "\n  ".join(stats.failures[:10]))
    total = sum(stats.buckets.values())
    log(args, f"storm replies: {stats.buckets} ({total} total)")
    if stats.buckets.get("ok", 0) == 0:
        raise Failure("storm produced no successful replies")
    if kill_workers and stats.buckets.get("workers_killed", 0) == 0:
        raise Failure("worker-murder thread never found a worker to kill")
    # A fault build must actually degrade or quarantine victim requests.
    if (stats.buckets.get("degraded", 0) == 0 and
            stats.buckets.get("-32004", 0) == 0):
        raise Failure("no degraded/quarantined replies — is this a "
                      "-DSYNAT_FAULT_INJECTION=ON build?")
    return stats


def check_quarantine(args, sock, threshold, ttl_s):
    """K consecutive deaths trip -32004; the trip decays after the TTL."""
    source = "// quarantine probe\n" + HEALTHY
    with Client(sock, timeout=60) as client:
        deaths = 0
        for _ in range(threshold):
            try:
                result = client.analyze(source, name="victim_crash")
                if classify_reply(result) != "degraded":
                    raise Failure("fault build did not degrade the victim")
                deaths += 1
            except RpcError as e:
                raise Failure(f"victim analyze errored early: {e}")
        # Tripped: the next call must be refused fast, without forking.
        t0 = time.monotonic()
        try:
            client.analyze(source, name="victim_crash")
            raise Failure("expected -32004 after quarantine trip")
        except RpcError as e:
            if e.code != -32004:
                raise Failure(f"expected -32004, got {e}")
        fast_ms = (time.monotonic() - t0) * 1000
        # A forked+crashed+retried execution takes >= 2 fork round trips;
        # a quarantine short-circuit is pure map lookup. 250 ms is beyond
        # generous for the latter and well under the former under load.
        if fast_ms > 250:
            raise Failure(f"quarantined reply took {fast_ms:.0f} ms — "
                          "did the daemon fork anyway?")
        log(args, f"quarantine tripped after {deaths} deaths, "
                  f"refused in {fast_ms:.1f} ms")
        # After the TTL the program gets a fresh chance: it forks again
        # (and dies again), which reads as a degraded report, not -32004.
        time.sleep(ttl_s + 0.5)
        result = client.analyze(source, name="victim_crash")
        if classify_reply(result) != "degraded":
            raise Failure("post-TTL retry did not re-execute the victim")
        log(args, "quarantine TTL expired; victim re-executed")


def snapshot_count(sock):
    with Client(sock, timeout=60) as client:
        text = client.metrics()["prometheus"]
    for line in text.splitlines():
        if line.startswith("synat_serve_snapshots_total"):
            return float(line.split()[-1])
    return 0.0


def wait_for_snapshot(args, sock, after, timeout_s=15):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if snapshot_count(sock) > after:
            return
        time.sleep(0.3)
    raise Failure("daemon never took a cache snapshot")


def check_crash_recovery(args, sock, cache_file):
    """SIGKILL the daemon, restart on the same cache file, expect warm."""
    # A probe program no earlier phase has analyzed, so the first answer is
    # provably cold and only the snapshot can make the second one warm.
    probe = "proc WarmProbe() { skip; }\n"
    daemon = launch_daemon(args, sock, cache_file=cache_file,
                           snapshot_interval_s=1)
    try:
        with Client(sock, timeout=60) as client:
            first = client.analyze(probe, name="warm_probe")
            if first["procedures_reanalyzed"] == 0:
                raise Failure("cold analyze unexpectedly warm")
            report = first["report"]
            n0 = snapshot_count(sock)
        wait_for_snapshot(args, sock, n0)
    finally:
        daemon.send_signal(signal.SIGKILL)
        daemon.wait()
    log(args, "daemon SIGKILLed after snapshot; restarting")
    daemon = launch_daemon(args, sock, cache_file=cache_file,
                           snapshot_interval_s=1)
    try:
        with Client(sock, timeout=60) as client:
            warm = client.analyze(probe, name="warm_probe")
        if warm["procedures_reanalyzed"] != 0:
            raise Failure("restarted daemon was cold: reanalyzed "
                          f"{warm['procedures_reanalyzed']} procedures")
        if warm["report"] != report:
            raise Failure("warm report differs from pre-crash report")
        log(args, "restart served warm, identical report")
    finally:
        shutdown_clean(sock, daemon)


def check_client_reconnect(args, sock, cache_file):
    """A Client survives a daemon restart between (and during) calls."""
    daemon = launch_daemon(args, sock, cache_file=cache_file)
    client = Client(sock, timeout=60, max_retries=5)
    try:
        client.status()
        daemon.send_signal(signal.SIGKILL)
        daemon.wait()
        # Restart shortly after the client has begun retrying.
        def restart():
            time.sleep(0.3)
            launched.append(launch_daemon(args, sock, cache_file=cache_file))
        launched = []
        t = threading.Thread(target=restart)
        t.start()
        status = client.status()  # resent across the restart
        t.join()
        if "version" not in status:
            raise Failure("reconnected status reply malformed")
        result = client.analyze(HEALTHY, name="reconnect_probe")
        if classify_reply(result) != "ok":
            raise Failure("reconnected analyze degraded unexpectedly")
        log(args, "client resent idempotent calls across daemon restart")
    finally:
        client.close()
        shutdown_clean(sock, launched[0] if launched else daemon)


def http_get(sock_path, request):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(10)
    s.connect(sock_path)
    s.sendall(request.encode())
    chunks = []
    while True:
        b = s.recv(65536)
        if not b:
            break
        chunks.append(b)
    s.close()
    return b"".join(chunks).decode(errors="replace")


def check_http(args, sock):
    resp = http_get(sock, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
    if not resp.startswith("HTTP/1.1 200"):
        raise Failure(f"GET /healthz: unexpected response {resp[:80]!r}")
    # The storms just burned the SLO error budget, so a 503 here is the
    # feature working — but it must say so, and /healthz must stay 200.
    resp = http_get(sock, "GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n")
    if not resp.startswith("HTTP/1.1 200") and not (
            resp.startswith("HTTP/1.1 503") and "slo" in resp):
        raise Failure(f"GET /readyz: unexpected response {resp[:80]!r}")
    resp = http_get(sock, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
    if "synat_serve_requests_total" not in resp:
        raise Failure("GET /metrics missing serve counters")
    if "synat_serve_worker_crashes_total" not in resp:
        raise Failure("GET /metrics missing sandbox counters")
    if "synat_serve_rpc_request_latency_seconds" not in resp:
        raise Failure("GET /metrics missing RPC latency quantiles")
    resp = http_get(sock, "GET /buildz HTTP/1.1\r\nHost: x\r\n\r\n")
    if not resp.startswith("HTTP/1.1 200"):
        raise Failure(f"GET /buildz: unexpected response {resp[:80]!r}")
    build = json.loads(resp.split("\r\n\r\n", 1)[1])
    for key in ("version", "git", "schemas", "features"):
        if key not in build:
            raise Failure(f"/buildz missing {key!r}: {build}")
    resp = http_get(sock, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
    if not resp.startswith("HTTP/1.1 404"):
        raise Failure(f"GET /nope should 404, got {resp[:80]!r}")
    log(args, "HTTP shim: /healthz /readyz /metrics /buildz answered")


def check_slo(args, sock):
    """The storm's rejections and faults must be visible in /slo, and
    /readyz must agree with availability.exhausted."""
    resp = http_get(sock, "GET /slo HTTP/1.1\r\nHost: x\r\n\r\n")
    if not resp.startswith("HTTP/1.1 200"):
        raise Failure(f"GET /slo: unexpected response {resp[:80]!r}")
    slo = json.loads(resp.split("\r\n\r\n", 1)[1])
    if slo.get("schema") != "synat-slo":
        raise Failure(f"/slo schema field wrong: {slo}")
    for section in ("availability", "latency"):
        for key in ("objective", "value", "burn", "exhausted"):
            if key not in slo.get(section, {}):
                raise Failure(f"/slo missing {section}.{key}: {slo}")
    if slo["total"] == 0:
        raise Failure("/slo saw no requests after two storms")
    if slo["errors"] == 0:
        raise Failure("/slo counted no errors after the fault storms")
    if slo["availability"]["burn"] <= 0:
        raise Failure("fault-storm errors produced no error-budget burn")
    ready = http_get(sock, "GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n")
    exhausted = slo["availability"]["exhausted"]
    # Re-read: the window may roll between the two GETs, so only flag a
    # contradiction both samples agree on.
    slo2 = json.loads(http_get(
        sock, "GET /slo HTTP/1.1\r\nHost: x\r\n\r\n").split("\r\n\r\n", 1)[1])
    if exhausted and slo2["availability"]["exhausted"]:
        if not ready.startswith("HTTP/1.1 503"):
            raise Failure("SLO exhausted but /readyz still 200")
    elif not exhausted and not slo2["availability"]["exhausted"]:
        if not ready.startswith("HTTP/1.1 200"):
            raise Failure(f"SLO healthy but /readyz not 200: {ready[:80]!r}")
    log(args, f"slo: total={slo['total']} errors={slo['errors']} "
              f"burn={slo['availability']['burn']:.2f} "
              f"exhausted={exhausted}")


def check_flight_data(args, events_out, postmortem):
    """After the drain, the wide-event log and the incident postmortems
    must be schema-valid end to end."""
    schema = validate_events.load_schema()
    events, problems = validate_events.validate_file(events_out, schema,
                                                     postmortem=False)
    if problems:
        raise Failure("event log invalid:\n  " + "\n  ".join(problems[:5]))
    if events == 0:
        raise Failure("event log is empty after two storms")
    # Worker murder guarantees at least one incident dump was written.
    if not os.path.exists(postmortem):
        raise Failure("no postmortem dump despite worker deaths")
    frames, problems = validate_events.validate_file(postmortem, schema,
                                                     postmortem=True)
    if problems:
        raise Failure("postmortem invalid:\n  " + "\n  ".join(problems[:5]))
    log(args, f"flight data: {events} events, {frames} postmortem frames")


def check_byte_identity(args, sock):
    """Serve reports must match `synat batch --format json` byte for byte,
    even after the daemon survived a storm."""
    synl_dir = os.path.join(args.repo, "examples", "synl")
    with Client(sock, timeout=60) as client:
        for fn in sorted(os.listdir(synl_dir)):
            if not fn.endswith(".synl"):
                continue
            path = os.path.join(synl_dir, fn)
            with open(path) as f:
                source = f.read()
            served = client.analyze(source, name=path)["report"]
            batch = subprocess.run(
                [args.synat, "batch", "--format", "json", path],
                capture_output=True, text=True)
            if served != batch.stdout:
                raise Failure(f"{fn}: serve report differs from batch")
    log(args, "serve reports byte-identical to batch")


def shutdown_clean(sock, daemon):
    if daemon.poll() is not None:
        return daemon.returncode
    try:
        with Client(sock, timeout=60) as client:
            client.shutdown()
    except (OSError, EOFError, RpcError):
        pass
    try:
        rc = daemon.wait(timeout=30)
    except subprocess.TimeoutExpired:
        daemon.kill()
        raise Failure("daemon did not drain within 30 s of shutdown")
    return rc


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--synat", required=True, help="path to the synat binary "
                    "(built with -DSYNAT_FAULT_INJECTION=ON)")
    ap.add_argument("--repo", default=os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), help="repo root (for examples/synl)")
    ap.add_argument("--duration", type=float, default=8.0,
                    help="seconds per storm phase (default 8)")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)
    args.synat = os.path.abspath(args.synat)

    tmp = tempfile.mkdtemp(prefix="synat_chaos_")
    sock = os.path.join(tmp, "chaos.sock")
    cache_file = os.path.join(tmp, "chaos.cache")
    failures = 0

    def phase(name, fn):
        nonlocal failures
        print(f"chaos: === {name} ===", flush=True)
        try:
            fn()
            print(f"chaos: {name}: PASS", flush=True)
        except Failure as e:
            failures += 1
            print(f"chaos: {name}: FAIL: {e}", flush=True)

    # Phase 1+2: storm with fault victims, then with worker murder, against
    # one long-lived daemon; quarantine, HTTP and byte identity are checked
    # against the same (post-chaos) daemon to prove it is still coherent.
    events_out = os.path.join(tmp, "events.jsonl")
    postmortem = os.path.join(tmp, "incident.pm")
    daemon = launch_daemon(args, sock, cache_file=cache_file,
                           snapshot_interval_s=1,
                           quarantine_threshold=3, quarantine_ttl_s=2,
                           events_out=events_out, postmortem=postmortem)
    try:
        phase("fault storm",
              lambda: run_storm(args, sock, daemon, args.duration, False))
        phase("worker-murder storm",
              lambda: run_storm(args, sock, daemon, args.duration, True))
        phase("quarantine", lambda: check_quarantine(args, sock, 3, 2))
        phase("http shim", lambda: check_http(args, sock))
        phase("slo tracking", lambda: check_slo(args, sock))
        phase("byte identity", lambda: check_byte_identity(args, sock))
    finally:
        rc = shutdown_clean(sock, daemon)
        if rc != 0:
            failures += 1
            print(f"chaos: clean drain: FAIL: daemon exit {rc}", flush=True)
        else:
            print("chaos: clean drain: PASS", flush=True)
    phase("flight data",
          lambda: check_flight_data(args, events_out, postmortem))

    # Phases that manage their own daemon lifecycle.
    phase("crash recovery",
          lambda: check_crash_recovery(args, sock, cache_file))
    phase("client reconnect",
          lambda: check_client_reconnect(args, sock, cache_file))

    if failures:
        print(f"chaos: {failures} phase(s) FAILED", flush=True)
        return 1
    print("chaos: all phases passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
