#!/usr/bin/env python3
"""Validate a synat wide-event log (--events-out) or a postmortem dump
against tools/events_schema.json.

Every line must be a complete JSON object with exactly the schema's keys
in the schema's order (key order is part of the byte-identity contract;
see DESIGN.md §3i), with the right types and ranges. CI runs this over
the logs from every execution mode before comparing them byte-for-byte —
a canonical-but-wrong log should fail here, not in the diff.

    validate_events.py events.jsonl [more.jsonl ...]
    validate_events.py --postmortem dump.pm

--postmortem mode validates a flight-recorder dump instead: the first
line must be the synat-postmortem header, and each following frame must
be a note, a span, or a mirrored wide event (the ring holds all three).
Exit 0 when every line validates, 1 otherwise.
"""

import argparse
import json
import os
import sys

_SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "events_schema.json")


def load_schema():
    with open(_SCHEMA_PATH, encoding="utf-8") as f:
        return json.load(f)


def _type_ok(spec, value):
    if "const" in spec:
        return value == spec["const"]
    kind = spec.get("type")
    if kind == "integer":
        # bool is an int subclass in Python; a JSON true is not an integer.
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        return value >= spec.get("minimum", value)
    if kind == "boolean":
        return isinstance(value, bool)
    if kind == "string":
        return isinstance(value, str)
    return True


def check_event(line, schema):
    """Returns a list of problems with one rendered event line (empty when
    it validates). Checks key order, not just key presence."""
    try:
        pairs = json.loads(line, object_pairs_hook=list)
    except json.JSONDecodeError as e:
        return [f"not valid JSON: {e}"]
    if not isinstance(pairs, list):
        return ["not a JSON object"]
    keys = [k for k, _ in pairs]
    expected = list(schema["properties"].keys())
    if keys != expected:
        if sorted(keys) == sorted(expected):
            return [f"keys out of canonical order: {keys}"]
        missing = [k for k in expected if k not in keys]
        extra = [k for k in keys if k not in expected]
        problems = []
        if missing:
            problems.append(f"missing keys: {missing}")
        if extra:
            problems.append(f"unexpected keys: {extra}")
        return problems or [f"duplicate keys: {keys}"]
    problems = []
    for key, value in pairs:
        if not _type_ok(schema["properties"][key], value):
            problems.append(f"bad value for {key!r}: {value!r}")
    return problems


# Required string keys per flight-recorder frame kind, beyond "rec" itself.
_FRAME_KEYS = {"note": ("what", "detail"), "span": ("stage",)}


def check_postmortem_line(line, lineno, schema):
    """One frame of a postmortem dump: header first, then notes, spans, or
    mirrored wide events."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        return [f"not valid JSON: {e}"]
    if not isinstance(obj, dict):
        return ["not a JSON object"]
    rec = obj.get("rec")
    if lineno == 1:
        if rec != "postmortem" or obj.get("schema") != "synat-postmortem":
            return ["first line must be the synat-postmortem header"]
        problems = []
        if obj.get("v") != 1:
            problems.append(f"bad header version: {obj.get('v')!r}")
        for key, kind in (("reason", str), ("signal", int), ("frames", int)):
            if not isinstance(obj.get(key), kind):
                problems.append(f"bad header field {key!r}: {obj.get(key)!r}")
        return problems
    if rec == "postmortem":
        return ["duplicate postmortem header"]
    if rec == "note" or rec == "span":
        problems = [f"note missing {k!r}" if rec == "note" else
                    f"span missing {k!r}"
                    for k in _FRAME_KEYS[rec]
                    if not isinstance(obj.get(k), str)]
        if rec == "span":
            for k in ("start_ns", "dur_ns"):
                if not isinstance(obj.get(k), int):
                    problems.append(f"span missing {k!r}")
        return problems
    if rec is None and obj.get("schema") == "synat-event":
        return check_event(line, schema)
    return [f"unknown frame kind: rec={rec!r}"]


def validate_file(path, schema, postmortem):
    problems = []
    events = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                problems.append(f"{path}:{lineno}: blank line")
                continue
            if postmortem:
                errs = check_postmortem_line(line, lineno, schema)
            else:
                errs = check_event(line, schema)
            if errs:
                problems.extend(f"{path}:{lineno}: {e}" for e in errs)
            else:
                events += 1
    if postmortem and events == 0:
        problems.append(f"{path}: empty postmortem (no header)")
    return events, problems


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="JSONL event logs to validate")
    ap.add_argument("--postmortem", action="store_true",
                    help="validate flight-recorder dumps instead of "
                         "wide-event logs")
    args = ap.parse_args(argv)

    schema = load_schema()
    total, problems = 0, []
    for path in args.files:
        try:
            events, errs = validate_file(path, schema, args.postmortem)
        except OSError as e:
            problems.append(f"{path}: {e}")
            continue
        total += events
        problems.extend(errs)

    for p in problems[:50]:
        print(f"validate_events: {p}", file=sys.stderr)
    if len(problems) > 50:
        print(f"validate_events: ... and {len(problems) - 50} more",
              file=sys.stderr)
    if problems:
        print(f"validate_events: FAIL ({len(problems)} problem(s))",
              file=sys.stderr)
        return 1
    kind = "frame" if args.postmortem else "event"
    print(f"validate_events: OK ({total} {kind}(s) across "
          f"{len(args.files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
