#!/usr/bin/env python3
"""Gate on observability overhead using the E8/E9 driver-sweep bench.

Compares a freshly generated BENCH json (bench_analysis_perf with
SYNAT_BENCH_OUT set) against the checked-in baseline BENCH_driver.json:

  * serial_ms — the tracing- and provenance-DISABLED number
    (instrumentation compiled in, flags off) — must not regress more than
    --budget (default 5%) over the baseline; this is the "observability
    must cost nothing when off" gate;
  * obs_enabled_overhead from the fresh run — tracing+metrics ON vs off in
    the same process on the same machine — must also stay within budget;
  * events_overhead from the fresh run — the serial sweep with a wide-event
    log written to disk vs without — must stay within --budget, and the
    fresh run must record recorder_only_overhead (ring mirroring only, no
    disk; reported for trajectory — it should be indistinguishable from
    noise, which is the "always-on flight recorder costs nothing" claim);
  * the same serial_ms must additionally stay within --prov-budget
    (default 1%) of the baseline: provenance collection is branch-gated
    (InferOptions::provenance), so having it compiled in but disabled must
    be indistinguishable from not having it at all (DESIGN.md §3f). The
    fresh run must also record provenance_overhead (collection ON vs off,
    reported for trajectory, not gated — records are opt-in).

Wall-clock numbers only transfer between identical machines, so the
baseline comparison is skipped (exit 0, with a notice) when
hardware_concurrency differs between the two files; the machine-local
obs_enabled_overhead check still runs.

Usage: check_overhead.py FRESH.json BASELINE.json [--budget 0.05]
           [--prov-budget 0.01]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument("--budget", type=float, default=0.05)
    ap.add_argument("--prov-budget", type=float, default=0.01)
    args = ap.parse_args()

    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)
    with open(args.baseline, encoding="utf-8") as f:
        base = json.load(f)

    rc = 0

    on = fresh.get("obs_enabled_overhead")
    if on is None:
        print("check_overhead: fresh run lacks obs_enabled_overhead",
              file=sys.stderr)
        rc = 1
    elif on > args.budget:
        print(f"check_overhead: FAIL tracing-enabled overhead {on:.1%} "
              f"exceeds budget {args.budget:.0%}", file=sys.stderr)
        rc = 1
    else:
        print(f"check_overhead: tracing-enabled overhead {on:.1%} "
              f"within {args.budget:.0%}")

    ev = fresh.get("events_overhead")
    if ev is None:
        print("check_overhead: fresh run lacks events_overhead",
              file=sys.stderr)
        rc = 1
    elif ev > args.budget:
        print(f"check_overhead: FAIL wide-event log overhead {ev:.1%} "
              f"exceeds budget {args.budget:.0%}", file=sys.stderr)
        rc = 1
    else:
        print(f"check_overhead: wide-event log overhead {ev:.1%} "
              f"within {args.budget:.0%}")

    ring = fresh.get("recorder_only_overhead")
    if ring is None:
        print("check_overhead: fresh run lacks recorder_only_overhead",
              file=sys.stderr)
        rc = 1
    else:
        print(f"check_overhead: recorder-only (ring) overhead {ring:.1%} "
              "(trajectory only; expected to be noise)")

    prov = fresh.get("provenance_overhead")
    if prov is None:
        print("check_overhead: fresh run lacks provenance_overhead",
              file=sys.stderr)
        rc = 1
    else:
        print(f"check_overhead: provenance-enabled overhead {prov:.1%} "
              "(trajectory only; collection is opt-in)")

    hw_fresh = fresh.get("hardware_concurrency")
    hw_base = base.get("hardware_concurrency")
    if hw_fresh != hw_base:
        print(f"check_overhead: SKIP baseline comparison "
              f"(hardware_concurrency {hw_fresh} != baseline {hw_base}; "
              f"wall-clock numbers do not transfer)")
        return rc

    serial_fresh = fresh.get("serial_ms", 0.0)
    serial_base = base.get("serial_ms", 0.0)
    if serial_base <= 0:
        print("check_overhead: baseline serial_ms missing/zero",
              file=sys.stderr)
        return 1
    ratio = serial_fresh / serial_base - 1.0
    if ratio > args.budget:
        print(f"check_overhead: FAIL tracing-disabled serial sweep "
              f"{serial_fresh:.3f}ms is {ratio:+.1%} vs baseline "
              f"{serial_base:.3f}ms (budget {args.budget:.0%})",
              file=sys.stderr)
        return 1
    print(f"check_overhead: tracing-disabled serial sweep {ratio:+.1%} "
          f"vs baseline, within {args.budget:.0%}")
    # The provenance-disabled gate is tighter: with collection branch-gated
    # off, the sweep must sit within --prov-budget of the baseline.
    if ratio > args.prov_budget:
        print(f"check_overhead: FAIL provenance-disabled serial sweep "
              f"{ratio:+.1%} vs baseline exceeds prov budget "
              f"{args.prov_budget:.0%}", file=sys.stderr)
        return 1
    print(f"check_overhead: provenance-disabled serial sweep {ratio:+.1%} "
          f"vs baseline, within {args.prov_budget:.0%}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
