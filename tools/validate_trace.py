#!/usr/bin/env python3
"""Validate a synat --trace-out document against tools/trace_schema.json.

Self-contained: implements exactly the JSON-Schema subset the checked-in
schema uses (type, required, properties, items, enum, minimum), so CI does
not need the third-party jsonschema package. On top of the structural
check it enforces the trace semantics the ISSUE pins down:

  * every "X" event carries name/cat/tid/ts/dur;
  * with --require-pipeline-stages, all seven pipeline stage spans
    (parse, cfg_liveness, purity, variants, movers, infer, blocks) occur;
  * with --min-lanes N, at least N distinct pids (lanes) occur — the
    per-worker-lane check for --isolate runs.

Usage: validate_trace.py TRACE.json [--schema SCHEMA.json]
           [--require-pipeline-stages] [--min-lanes N]
"""

import argparse
import json
import os
import sys

PIPELINE_STAGES = {
    "parse", "cfg_liveness", "purity", "variants", "movers", "infer", "blocks",
}

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}


def validate(value, schema, path, errors):
    """Check `value` against the supported JSON-Schema subset."""
    t = schema.get("type")
    if t is not None and not TYPE_CHECKS[t](value):
        errors.append(f"{path}: expected {t}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__),
                                         "trace_schema.json"))
    ap.add_argument("--require-pipeline-stages", action="store_true")
    ap.add_argument("--min-lanes", type=int, default=1)
    args = ap.parse_args()

    with open(args.trace, encoding="utf-8") as f:
        trace = json.load(f)
    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    validate(trace, schema, "$", errors)

    events = trace.get("traceEvents", []) if isinstance(trace, dict) else []
    spans = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    for i, e in enumerate(spans):
        for key in ("name", "cat", "tid", "ts", "dur"):
            if key not in e:
                errors.append(f"X event {i}: missing {key!r}")

    stages = {e.get("name") for e in spans}
    lanes = {e.get("pid") for e in events if isinstance(e, dict)}

    if args.require_pipeline_stages:
        missing = PIPELINE_STAGES - stages
        if missing:
            errors.append(f"missing pipeline stage spans: {sorted(missing)}")
    if len(lanes) < args.min_lanes:
        errors.append(f"expected >= {args.min_lanes} lanes, got {len(lanes)}: "
                      f"{sorted(lanes)}")

    if errors:
        for e in errors[:50]:
            print(f"validate_trace: {e}", file=sys.stderr)
        print(f"validate_trace: FAIL ({len(errors)} error(s)) {args.trace}",
              file=sys.stderr)
        return 1
    print(f"validate_trace: OK {args.trace} "
          f"({len(spans)} spans, {len(lanes)} lane(s), "
          f"{len(stages & PIPELINE_STAGES)}/7 pipeline stages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
