#!/usr/bin/env python3
"""Compare the provenance sections of two synat JSON reports and print the
first divergence.

The driver guarantees that in-process, --jobs N and --isolate runs of the
same inputs produce identical derivations; this tool is the check. It walks
both reports' procedure- and variant-level provenance arrays in order and
reports the first record (or record count, or procedure set) that differs,
with enough context to see which mode diverged where. Non-provenance
report fields (timings, metrics) are deliberately ignored.

Exit codes: 0 identical provenance, 1 divergence, 2 usage/load error.

Usage: diff_provenance.py A.json B.json
"""

import json
import sys


def index_programs(report):
    progs = {}
    for prog in report.get("programs", []):
        procs = {}
        for proc in prog.get("procedures", []):
            procs[proc.get("name")] = {
                "provenance": proc.get("provenance", []),
                "variants": [(v.get("tag"), v.get("provenance", []))
                             for v in proc.get("variants", [])],
            }
        progs[prog.get("name")] = procs
    return progs


def first_diff(a, b, path):
    """Return a human-readable divergence between record lists, or None."""
    if len(a) != len(b):
        return f"{path}: {len(a)} record(s) vs {len(b)}"
    for i, (ra, rb) in enumerate(zip(a, b)):
        if ra != rb:
            keys = sorted(set(ra) | set(rb))
            fields = [f"  {k}: {ra.get(k)!r} vs {rb.get(k)!r}"
                      for k in keys if ra.get(k) != rb.get(k)]
            return "\n".join([f"{path}[{i}]:"] + fields)
    return None


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            a = index_programs(json.load(f))
        with open(sys.argv[2], encoding="utf-8") as f:
            b = index_programs(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"diff_provenance: {e}", file=sys.stderr)
        return 2

    if sorted(a) != sorted(b):
        print(f"diff_provenance: program sets differ: "
              f"{sorted(a)} vs {sorted(b)}", file=sys.stderr)
        return 1

    total = 0
    for name in sorted(a):
        if sorted(a[name]) != sorted(b[name]):
            print(f"diff_provenance: {name}: procedure sets differ: "
                  f"{sorted(a[name])} vs {sorted(b[name])}", file=sys.stderr)
            return 1
        for pname in sorted(a[name]):
            pa, pb = a[name][pname], b[name][pname]
            d = first_diff(pa["provenance"], pb["provenance"],
                           f"{name}:{pname}.provenance")
            if d:
                print(f"diff_provenance: {d}", file=sys.stderr)
                return 1
            total += len(pa["provenance"])
            if [t for t, _ in pa["variants"]] != [t for t, _ in pb["variants"]]:
                print(f"diff_provenance: {name}:{pname}: variant tags differ",
                      file=sys.stderr)
                return 1
            for (tag, va), (_, vb) in zip(pa["variants"], pb["variants"]):
                d = first_diff(va, vb, f"{name}:{pname}.{tag}.provenance")
                if d:
                    print(f"diff_provenance: {d}", file=sys.stderr)
                    return 1
                total += len(va)

    print(f"diff_provenance: identical ({total} record(s) in "
          f"{len(a)} program(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
