#!/usr/bin/env python3
"""Validate the provenance sections of a synat --format json --provenance
report against tools/provenance_schema.json.

Self-contained: implements exactly the JSON-Schema subset the checked-in
schema uses (type, required, properties, items, enum, minimum, maximum),
so CI does not need the third-party jsonschema package. On top of the
structural check it enforces the provenance semantics the ISSUE pins down:

  * the report is schema version >= 5 and at least one provenance record
    exists somewhere (unless --allow-empty);
  * every record with a witness_line also names the witness, and every
    step-4 "conflict" record carries a witness with a location — a
    conflict justification must point at both sides;
  * every "verdict" record sits at step 7 and every step-7 record is a
    verdict;
  * with --require-theorems 5.4,5.5 the named theorems must each be cited
    by some record; with --forbid-theorems they must not be (the ablation
    check: turning a rule off removes its citations, not the verdict).

Usage: validate_provenance.py REPORT.json [--schema SCHEMA.json]
           [--require-theorems T1,T2] [--forbid-theorems T1,T2]
           [--allow-empty]
"""

import argparse
import json
import os
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}


def validate(value, schema, path, errors):
    """Check `value` against the supported JSON-Schema subset."""
    t = schema.get("type")
    if t is not None and not TYPE_CHECKS[t](value):
        errors.append(f"{path}: expected {t}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if "maximum" in schema and isinstance(value, (int, float)):
        if value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def walk_records(report):
    """Yield (json_path, record) for every provenance record in the report."""
    for pi, prog in enumerate(report.get("programs", [])):
        for qi, proc in enumerate(prog.get("procedures", [])):
            base = f"$.programs[{pi}].procedures[{qi}]"
            for ri, rec in enumerate(proc.get("provenance", [])):
                yield f"{base}.provenance[{ri}]", rec
            for vi, var in enumerate(proc.get("variants", [])):
                for ri, rec in enumerate(var.get("provenance", [])):
                    yield f"{base}.variants[{vi}].provenance[{ri}]", rec


def check_semantics(path, rec, errors):
    if not isinstance(rec, dict):
        return
    if rec.get("witness_line", 0) > 0 and not rec.get("witness"):
        errors.append(f"{path}: witness_line set but witness is empty")
    if rec.get("rule") == "conflict" and rec.get("step") == 4:
        if not rec.get("witness") or rec.get("witness_line", 0) <= 0:
            errors.append(f"{path}: step-4 conflict without a located witness")
    if (rec.get("rule") == "verdict") != (rec.get("step") == 7):
        errors.append(f"{path}: verdict records and step 7 must coincide")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__),
                                         "provenance_schema.json"))
    ap.add_argument("--require-theorems", default="",
                    help="comma-separated theorems that must be cited")
    ap.add_argument("--forbid-theorems", default="",
                    help="comma-separated theorems that must not be cited")
    ap.add_argument("--allow-empty", action="store_true",
                    help="accept a report with no provenance records")
    args = ap.parse_args()

    with open(args.report, encoding="utf-8") as f:
        report = json.load(f)
    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    if report.get("version", 0) < 5:
        errors.append(f"$.version: {report.get('version')!r} < 5 "
                      "(provenance needs schema v5)")

    records = list(walk_records(report))
    if not records and not args.allow_empty:
        errors.append("no provenance records found "
                      "(was the report produced with --provenance?)")
    cited = set()
    for path, rec in records:
        validate(rec, schema, path, errors)
        check_semantics(path, rec, errors)
        if isinstance(rec, dict) and rec.get("theorem"):
            # all-excluded records cite a '+'-joined theorem list.
            cited.update(rec["theorem"].split("+"))

    for thm in filter(None, args.require_theorems.split(",")):
        if thm not in cited:
            errors.append(f"required theorem {thm} is never cited "
                          f"(cited: {sorted(cited)})")
    for thm in filter(None, args.forbid_theorems.split(",")):
        if thm in cited:
            errors.append(f"forbidden theorem {thm} is cited")

    if errors:
        for e in errors[:50]:
            print(f"validate_provenance: {e}", file=sys.stderr)
        print(f"validate_provenance: FAIL ({len(errors)} error(s)) "
              f"{args.report}", file=sys.stderr)
        return 1
    print(f"validate_provenance: OK {args.report} "
          f"({len(records)} record(s), theorems cited: "
          f"{','.join(sorted(cited)) or 'none'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
