// synat — command-line driver for the library.
//
//   synat corpus                          list the embedded corpus
//   synat analyze  <prog> [options]      atomicity inference + listing
//   synat variants <prog> [proc]         print exceptional variants
//   synat blocks   <prog>                atomic-block partition
//   synat cfg      <prog> <proc>         event-CFG dump
//   synat dot      <prog> <proc>         event-CFG in Graphviz dot
//   synat disasm   <prog>                bytecode disassembly
//   synat mc       <prog> [mc options]   explicit-state model checking
//
// <prog> is a file path or `corpus:<name>` (see `synat corpus`).
// analyze options: --no-variants --no-windows --no-conds --counted <k>
// mc options: --run Proc[:intarg] (repeatable) --init Proc --tinit Proc
//             --por --atomic Proc (repeatable) --arrays N --max-states N
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "synat/corpus/corpus.h"
#include "synat/mc/mc.h"
#include "synat/synat.h"
#include "synat/synl/printer.h"

using namespace synat;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: synat <corpus|analyze|variants|blocks|cfg|dot|disasm|mc> "
               "[args]\n(see the header of tools/synat_cli.cpp)\n");
  return 2;
}

bool load_source(const std::string& spec, std::string& out) {
  if (spec.rfind("corpus:", 0) == 0) {
    for (const corpus::Entry& e : corpus::all()) {
      if (e.name == spec.substr(7)) {
        out = std::string(e.source);
        return true;
      }
    }
    std::fprintf(stderr, "unknown corpus entry '%s'\n", spec.c_str() + 7);
    return false;
  }
  std::ifstream in(spec);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", spec.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

struct Parsed {
  DiagEngine diags;
  synl::Program prog;
};

bool parse(const std::string& spec, Parsed& p) {
  std::string source;
  if (!load_source(spec, source)) return false;
  p.prog = synl::parse_and_check(source, p.diags);
  if (p.diags.has_errors()) {
    std::fprintf(stderr, "%s", p.diags.dump().c_str());
    return false;
  }
  return true;
}

/// Counted-CAS defaults: if the program came from the corpus, use its
/// annotation; --counted adds more.
void default_counted(const std::string& spec,
                     atomicity::InferOptions& opts) {
  if (spec.rfind("corpus:", 0) != 0) return;
  for (const corpus::Entry& e : corpus::all()) {
    if (e.name == spec.substr(7)) {
      for (auto c : e.counted_cas) opts.counted_cas.emplace_back(c);
    }
  }
}

int cmd_corpus() {
  for (const corpus::Entry& e : corpus::all()) {
    std::printf("%-18s %s\n", std::string(e.name).c_str(),
                std::string(e.description).c_str());
  }
  return 0;
}

int cmd_analyze(const std::string& spec, int argc, char** argv) {
  Parsed p;
  if (!parse(spec, p)) return 1;
  atomicity::InferOptions opts;
  default_counted(spec, opts);
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--no-variants") opts.variant_opts.disable = true;
    else if (a == "--no-windows") opts.use_window_rule = false;
    else if (a == "--no-conds") opts.use_local_conditions = false;
    else if (a == "--counted" && i + 1 < argc) opts.counted_cas.emplace_back(argv[++i]);
    else { std::fprintf(stderr, "unknown option %s\n", a.c_str()); return 2; }
  }
  auto result = atomicity::infer_atomicity(p.prog, p.diags, opts);
  std::printf("%s", result.full_listing(p.prog).c_str());
  return result.all_atomic() ? 0 : 1;
}

int cmd_variants(const std::string& spec, int argc, char** argv) {
  Parsed p;
  if (!parse(spec, p)) return 1;
  atomicity::InferOptions opts;
  default_counted(spec, opts);
  auto result = atomicity::infer_atomicity(p.prog, p.diags, opts);
  for (const atomicity::ProcResult& pr : result.procs()) {
    std::string name(p.prog.syms().name(p.prog.proc(pr.proc).name));
    if (argc > 0 && name != argv[0]) continue;
    for (const atomicity::VariantResult& v : pr.variants) {
      std::printf("%s", synl::print_proc(p.prog, v.variant).c_str());
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_blocks(const std::string& spec) {
  Parsed p;
  if (!parse(spec, p)) return 1;
  atomicity::InferOptions opts;
  default_counted(spec, opts);
  auto result = atomicity::infer_atomicity(p.prog, p.diags, opts);
  atomicity::BlockSummary sum = atomicity::summarize_blocks(p.prog, result);
  for (auto [pid, blocks] : sum.per_proc) {
    std::printf("%-20s %zu block(s)%s\n",
                std::string(p.prog.syms().name(p.prog.proc(pid).name)).c_str(),
                blocks,
                result.result_for(pid)->atomic ? " [atomic]" : "");
  }
  std::printf("total: %zu procedures, %zu blocks\n", sum.total_procs,
              sum.total_blocks);
  return 0;
}

int cmd_cfg(const std::string& spec, const char* proc_name, bool dot) {
  Parsed p;
  if (!parse(spec, p)) return 1;
  synl::ProcId pid = p.prog.find_proc(proc_name);
  if (!pid.valid()) {
    std::fprintf(stderr, "no procedure '%s'\n", proc_name);
    return 1;
  }
  cfg::Cfg g = cfg::build_cfg(p.prog, pid);
  if (!dot) {
    std::printf("%s", g.dump(p.prog).c_str());
    return 0;
  }
  std::printf("digraph \"%s\" {\n  node [shape=box,fontname=monospace];\n",
              proc_name);
  for (uint32_t i = 0; i < g.num_nodes(); ++i) {
    const cfg::Event& ev = g.node(cfg::EventId(i));
    std::string label(to_string(ev.kind));
    if (ev.path.root.valid()) label += " " + ev.path.str(p.prog);
    if (ev.must_succeed) label += "!";
    std::printf("  n%u [label=\"%s\"];\n", i, label.c_str());
    for (const cfg::Edge& e : g.succs(cfg::EventId(i))) {
      const char* style = "";
      if (e.kind == cfg::EdgeKind::True) style = " [label=T,color=darkgreen]";
      if (e.kind == cfg::EdgeKind::False) style = " [label=F,color=red]";
      std::printf("  n%u -> n%u%s;\n", i, e.to.idx, style);
    }
  }
  std::printf("}\n");
  return 0;
}

int cmd_disasm(const std::string& spec) {
  Parsed p;
  if (!parse(spec, p)) return 1;
  interp::CompiledProgram cp = interp::compile_program(p.prog, p.diags);
  for (const interp::CompiledProc& proc : cp.procs)
    std::printf("%s\n", interp::disassemble(proc).c_str());
  return 0;
}

int cmd_mc(const std::string& spec, int argc, char** argv) {
  Parsed p;
  if (!parse(spec, p)) return 1;
  mc::Options opts;
  mc::RunSpec run;
  std::string tinit;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--run") {
      std::string s = next();
      mc::ThreadPlan plan;
      size_t colon = s.find(':');
      plan.proc = s.substr(0, colon == std::string::npos ? s.size() : colon);
      if (colon != std::string::npos)
        plan.args.push_back(mc::Value::of_int(std::atoll(s.c_str() + colon + 1)));
      run.threads.push_back(std::move(plan));
    } else if (a == "--init") {
      run.global_init = next();
    } else if (a == "--tinit") {
      tinit = next();
    } else if (a == "--por") {
      opts.por = true;
    } else if (a == "--atomic") {
      opts.atomic_procs.emplace_back(next());
    } else if (a == "--arrays") {
      opts.array_size = std::atoi(next());
    } else if (a == "--max-states") {
      opts.max_states = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown mc option %s\n", a.c_str());
      return 2;
    }
  }
  if (run.threads.empty()) {
    std::fprintf(stderr, "mc needs at least one --run Proc[:arg]\n");
    return 2;
  }
  for (mc::ThreadPlan& plan : run.threads) plan.init_proc = tinit;
  interp::CompiledProgram cp = interp::compile_program(p.prog, p.diags);
  mc::ModelChecker checker(cp, opts);
  mc::Result r = checker.run(run);
  std::printf("%s\n", r.summary().c_str());
  return r.error_found ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  if (cmd == "corpus") return cmd_corpus();
  if (argc < 3) return usage();
  std::string spec = argv[2];
  if (cmd == "analyze") return cmd_analyze(spec, argc - 3, argv + 3);
  if (cmd == "variants")
    return cmd_variants(spec, argc - 3, argv + 3);
  if (cmd == "blocks") return cmd_blocks(spec);
  if (cmd == "cfg" && argc >= 4) return cmd_cfg(spec, argv[3], false);
  if (cmd == "dot" && argc >= 4) return cmd_cfg(spec, argv[3], true);
  if (cmd == "disasm") return cmd_disasm(spec);
  if (cmd == "mc") return cmd_mc(spec, argc - 3, argv + 3);
  return usage();
}
