// synat — command-line driver for the library.
//
//   synat corpus                          list the embedded corpus
//   synat analyze  <prog> [options]      atomicity inference + listing
//   synat batch    [options] <progs...>  parallel batch analysis + report
//   synat explain  <prog> [proc] [opts]  derivation tree for every verdict
//   synat variants <prog> [proc]         print exceptional variants
//   synat blocks   <prog>                atomic-block partition
//   synat cfg      <prog> <proc>         event-CFG dump
//   synat dot      <prog> <proc>         event-CFG in Graphviz dot
//   synat disasm   <prog>                bytecode disassembly
//   synat mc       <prog> [mc options]   explicit-state model checking
//   synat serve    [serve options]       long-lived analysis daemon
//   synat postmortem <file>              render a flight-recorder dump
//
// <prog> is a file path, `corpus:<name>` (see `synat corpus`), or `-` for
// standard input (analyze/batch/explain).
// analyze options: --no-variants --no-windows --no-conds --counted <k>
// batch options: --all (whole corpus) --jobs N (0 = one per hardware
//                thread) --cache --cache-file FILE --format json|sarif|text
//                --timings --per-program -o FILE --deadline-ms N
//                --max-variants N --strict
//                --isolate (run each program in a sandboxed worker process;
//                a worker crash degrades that one program, exit 1)
//                --max-rss-mb N (per-worker address-space cap)
//                --retries N (re-dispatches of a crashed worker; default 1)
//                --journal FILE (write-ahead journal of finished programs)
//                --resume (replay FILE, re-analyzing only what is missing)
//                --trace-out FILE (Chrome trace-event JSON of every
//                pipeline/driver stage; per-worker lanes under --isolate)
//                --metrics-out FILE (Prometheus text exposition of the
//                run's counters/gauges/histograms)
//                --report-counters (schema v4 "counters" section in the
//                JSON report: the deterministic obs counters)
//                --provenance (collect derivation records and emit the
//                schema v5 "provenance" sections in the JSON report)
//                --no-variants --no-windows --no-conds (the analyze
//                ablation flags, applied to every input)
//                --cache-stats (print the result-cache summary — the same
//                fields as the serve `status` RPC — to stderr)
//                --events-out FILE (wide-event log: one canonical JSON line
//                per program, byte-identical across --jobs/--isolate under
//                SYNAT_OBS_VIRTUAL_CLOCK) --events-max-bytes N (size-based
//                rotation to FILE.1; default 64 MiB, 0 disables)
// serve options: --listen ADDR (required; a path binds a unix socket,
//                host:port binds TCP) --jobs N (analysis pool workers,
//                0 = one per hardware thread) --max-queue N (queued+running
//                request cap before -32003 rejections; default 64)
//                --cache-file FILE (warm-start snapshot, saved on shutdown)
//                --trace-out FILE (Chrome trace with per-request lanes,
//                written on shutdown)
//                --sandbox (run each analyze/explain in a forked one-shot
//                worker; crash/hang/OOM degrades the request, never the
//                daemon) --deadline-ms N --max-rss-mb N (per-request
//                budgets; sandbox only) --retries N (re-forks after a
//                worker death, default 1)
//                --quarantine-threshold K --quarantine-ttl SECS (K
//                consecutive failed sandboxed executions of one program
//                short-circuit to -32004 until the TTL expires)
//                --snapshot-interval-s N (with --cache-file: periodic
//                crash-only cache snapshots while serving)
//                --events-out FILE (wide-event log: one canonical JSON line
//                per analyze/explain RPC) --events-max-bytes N (rotation)
//                --postmortem FILE (flight-recorder incident dump: rewritten
//                with the last 256 events on worker deaths, quarantine
//                trips, and fatal signals; render with `synat postmortem`)
//                --slo-window-s N (rolling SLO window, default 60)
//                --slo-availability F (fraction of requests that must
//                produce verdicts, default 0.99) --slo-latency-ms N ("fast
//                enough" threshold, default 1000); when the availability
//                error budget is exhausted /readyz turns 503
//                The wire protocol is newline-delimited JSON-RPC 2.0:
//                methods analyze, explain, status, metrics, invalidate,
//                shutdown (see src/serve/include/synat/serve/service.h and
//                tools/synat_client.py); connections opening with an HTTP
//                GET/HEAD hit the shim instead (/metrics /slo /buildz
//                /healthz /readyz).
// explain options: --jobs N --isolate plus the analyze ablation flags
//                (--no-variants --no-windows --no-conds --counted <k>);
//                output is byte-identical across --jobs/--isolate modes
// mc options: --run Proc[:intarg] (repeatable) --init Proc --tinit Proc
//             --por --atomic Proc (repeatable) --arrays N --max-states N
//
// Exit codes (all commands): 0 success / all atomic; 1 analysis found a
// non-atomic procedure, a degraded (budget/deadline/recovered-parse)
// result, a crashed --isolate worker, or mc found an error; 2 usage error;
// 3 an input failed to load or parse (batch still analyzes the other
// inputs); 4 internal analyzer error. When several apply the highest-
// severity code wins — the precedence order (0 < 1 < 2 < 3 < 4) is
// implemented once, in driver::combine_exit_codes.
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "synat/corpus/corpus.h"
#include "synat/driver/driver.h"
#include "synat/mc/mc.h"
#include "synat/obs/events.h"
#include "synat/obs/export.h"
#include "synat/obs/metrics.h"
#include "synat/obs/trace.h"
#include "synat/serve/json.h"
#include "synat/serve/server.h"
#include "synat/synat.h"
#include "synat/synl/printer.h"

using namespace synat;

namespace {

// Exit-code convention, shared with driver::BatchReport::exit_code().
constexpr int kExitOk = 0;
constexpr int kExitNotAtomic = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParseError = 3;
constexpr int kExitInternalError = 4;

int usage() {
  std::fprintf(
      stderr,
      "usage: synat "
      "<corpus|analyze|batch|explain|variants|blocks|cfg|dot|disasm|mc|serve"
      "|postmortem> [args]\n(see the header of tools/synat_cli.cpp)\n");
  return kExitUsage;
}

bool load_source(const std::string& spec, std::string& out) {
  if (spec == "-") {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    out = ss.str();
    return true;
  }
  if (spec.rfind("corpus:", 0) == 0) {
    for (const corpus::Entry& e : corpus::all()) {
      if (e.name == spec.substr(7)) {
        out = std::string(e.source);
        return true;
      }
    }
    std::fprintf(stderr, "unknown corpus entry '%s'\n", spec.c_str() + 7);
    return false;
  }
  std::ifstream in(spec);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", spec.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

struct Parsed {
  DiagEngine diags;
  synl::Program prog;
};

bool parse(const std::string& spec, Parsed& p) {
  std::string source;
  if (!load_source(spec, source)) return false;
  p.prog = synl::parse_and_check(source, p.diags);
  if (p.diags.has_errors()) {
    std::fprintf(stderr, "%s", p.diags.dump().c_str());
    return false;
  }
  return true;
}

std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Counted-CAS defaults: if the program came from the corpus, use its
/// annotation; --counted adds more.
void default_counted(const std::string& spec,
                     atomicity::InferOptions& opts) {
  if (spec.rfind("corpus:", 0) != 0) return;
  for (const corpus::Entry& e : corpus::all()) {
    if (e.name == spec.substr(7)) {
      for (auto c : e.counted_cas) opts.counted_cas.emplace_back(c);
    }
  }
}

int cmd_corpus() {
  for (const corpus::Entry& e : corpus::all()) {
    std::printf("%-18s %s\n", std::string(e.name).c_str(),
                std::string(e.description).c_str());
  }
  return 0;
}

/// Default analysis options for a spec: corpus annotations for counted CAS.
atomicity::InferOptions spec_options(const std::string& spec) {
  atomicity::InferOptions opts;
  default_counted(spec, opts);
  return opts;
}

int cmd_batch(int argc, char** argv) {
  driver::DriverOptions dopts;
  driver::RenderOptions ropts;
  std::string format = "json";
  std::string out_path;
  std::string cache_file;
  std::string trace_out;
  std::string metrics_out;
  std::string events_out;
  uint64_t events_max_bytes = 64ull << 20;
  std::vector<std::string> specs;
  bool all = false;
  bool cache_stats = false;
  bool provenance = false;
  bool no_variants = false;
  bool no_windows = false;
  bool no_conds = false;
  size_t max_variants = 0;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--all") {
      all = true;
    } else if (a == "--jobs" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n > 1024) {
        std::fprintf(stderr, "--jobs expects a thread count, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      dopts.jobs = static_cast<unsigned>(n);
    } else if (a == "--deadline-ms" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--deadline-ms expects milliseconds, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      dopts.deadline_ms = n;
    } else if (a == "--max-variants" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--max-variants expects a count, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      max_variants = static_cast<size_t>(n);
    } else if (a == "--strict") {
      dopts.strict = true;
    } else if (a == "--isolate") {
      dopts.isolate = true;
    } else if (a == "--max-rss-mb" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--max-rss-mb expects MiB, got '%s'\n", argv[i]);
        return kExitUsage;
      }
      dopts.max_rss_mb = static_cast<unsigned>(n);
    } else if (a == "--retries" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n > 100) {
        std::fprintf(stderr, "--retries expects a count, got '%s'\n", argv[i]);
        return kExitUsage;
      }
      dopts.retries = static_cast<unsigned>(n);
    } else if (a == "--journal" && i + 1 < argc) {
      dopts.journal_path = argv[++i];
    } else if (a == "--resume") {
      dopts.resume = true;
    } else if (a == "--cache") {
      dopts.use_cache = true;
    } else if (a == "--cache-file" && i + 1 < argc) {
      dopts.use_cache = true;
      cache_file = argv[++i];
    } else if (a == "--cache-stats") {
      cache_stats = true;
    } else if (a == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "json" && format != "sarif" && format != "text") {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return kExitUsage;
      }
    } else if (a == "--timings") {
      dopts.collect_timings = true;
      ropts.timings = true;
    } else if (a == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (a == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (a == "--events-out" && i + 1 < argc) {
      events_out = argv[++i];
    } else if (a == "--events-max-bytes" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--events-max-bytes expects bytes, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      events_max_bytes = n;
    } else if (a == "--report-counters") {
      ropts.counters = true;
    } else if (a == "--provenance") {
      provenance = true;
      ropts.provenance = true;
    } else if (a == "--no-variants") {
      no_variants = true;
    } else if (a == "--no-windows") {
      no_windows = true;
    } else if (a == "--no-conds") {
      no_conds = true;
    } else if (a == "--per-program") {
      dopts.granularity = driver::Granularity::Program;
    } else if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a != "-" && !a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown batch option %s\n", a.c_str());
      return kExitUsage;
    } else {
      specs.push_back(a);
    }
  }
  std::vector<driver::ProgramInput> inputs;
  if (all) {
    for (const corpus::Entry& e : corpus::all()) {
      driver::ProgramInput in;
      in.name = "corpus:" + std::string(e.name);
      in.source = std::string(e.source);
      for (auto c : e.counted_cas) in.opts.counted_cas.emplace_back(c);
      inputs.push_back(std::move(in));
    }
  }
  for (const std::string& spec : specs) {
    driver::ProgramInput in;
    in.name = spec;
    if (!load_source(spec, in.source)) {
      // Keep the batch going: the driver reports this input as a load
      // error (exit 3) and still analyzes every other input.
      in.load_error = "cannot open input '" + spec + "'";
    }
    in.opts = spec_options(spec);
    inputs.push_back(std::move(in));
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "batch needs program specs or --all\n");
    return kExitUsage;
  }
  for (driver::ProgramInput& in : inputs) {
    in.opts.variant_opts.max_variants = max_variants;
    in.opts.provenance = provenance;
    if (no_variants) in.opts.variant_opts.disable = true;
    if (no_windows) in.opts.use_window_rule = false;
    if (no_conds) in.opts.use_local_conditions = false;
  }
  if (dopts.resume && dopts.journal_path.empty()) {
    std::fprintf(stderr, "--resume needs --journal FILE\n");
    return kExitUsage;
  }
  if (dopts.isolate && dopts.use_cache) {
    // Workers are separate address spaces; a shared in-memory cache cannot
    // exist, and saving the supervisor's (empty) cache would clobber a warm
    // snapshot on disk.
    std::fprintf(stderr,
                 "note: --isolate workers do not share the result cache; "
                 "ignoring --cache/--cache-file\n");
    dopts.use_cache = false;
    cache_file.clear();
  }
  // Observability flags must be set before the driver runs: --isolate
  // forks its workers from this process, and the flag word (like the rest
  // of the address space) is inherited at fork time.
  uint32_t obs_flags = 0;
  if (!trace_out.empty()) obs_flags |= obs::kTraceFlag;
  if (!metrics_out.empty()) obs_flags |= obs::kMetricsFlag;
  obs::set_flags(obs_flags);
  if (!trace_out.empty())
    obs::Tracer::instance().set_lane_name(0,
                                          dopts.isolate ? "supervisor" : "main");
  // The event sink outlives the driver: the driver appends the per-program
  // events from the assembled report after run() completes its workers.
  std::unique_ptr<obs::EventLog> events;
  if (!events_out.empty()) {
    obs::EventLogOptions eopts;
    eopts.path = events_out;
    eopts.max_bytes = events_max_bytes;
    events = std::make_unique<obs::EventLog>(std::move(eopts));
    dopts.events = events.get();
  }
  driver::BatchDriver drv(dopts);
  if (!cache_file.empty()) {
    drv.cache().load(cache_file);
    if (size_t n = drv.cache().rejected(); n > 0) {
      std::fprintf(stderr,
                   "warning: rejected %zu corrupt or stale cache snapshot "
                   "entr%s in %s; recomputing cold\n",
                   n, n == 1 ? "y" : "ies", cache_file.c_str());
      if (dopts.strict) {
        std::fprintf(stderr, "--strict: treating the corrupt cache snapshot "
                             "as an error\n");
        return kExitInternalError;
      }
    }
  }
  driver::BatchReport report = drv.run(inputs);
  if (!cache_file.empty()) drv.cache().save(cache_file);
  if (cache_stats) {
    // The same fields the serve `status` RPC reports, so a batch run and a
    // daemon are comparable; stderr keeps the stdout document deterministic.
    std::fprintf(stderr,
                 "cache-stats: version=%s schema_version=%d cache_entries=%zu "
                 "options_fingerprint=%s hits=%zu misses=%zu\n",
                 std::string(driver::kSynatVersion).c_str(),
                 driver::kReportSchemaVersion, drv.cache().size(),
                 hex64(driver::options_fingerprint(atomicity::InferOptions{}))
                     .c_str(),
                 drv.cache().hits(), drv.cache().misses());
  }
  // Journal traffic goes to stderr only: rendered documents must stay
  // byte-identical between a resumed run and an uninterrupted one.
  if (report.metrics.journal_replayed > 0)
    std::fprintf(stderr, "journal: replayed %zu finished program(s)\n",
                 report.metrics.journal_replayed);
  if (report.metrics.journal_rejected > 0)
    std::fprintf(stderr,
                 "warning: rejected %zu corrupt or stale journal record(s) "
                 "in %s; re-analyzing\n",
                 report.metrics.journal_rejected, dopts.journal_path.c_str());
  if (!trace_out.empty()) {
    std::vector<obs::SpanRecord> spans = obs::Tracer::instance().drain();
    std::string trace =
        obs::to_chrome_trace(spans, obs::Tracer::instance().lane_names());
    std::string err;
    if (!obs::write_file(trace_out, trace, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return kExitInternalError;
    }
  }
  if (!metrics_out.empty()) {
    // The exposition covers this run's registry delta (what the batch did),
    // not process-lifetime totals, so two runs of the same corpus export
    // comparable documents.
    std::string prom = obs::to_prometheus(report.metrics.telemetry);
    std::string err;
    if (!obs::write_file(metrics_out, prom, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return kExitInternalError;
    }
  }
  std::string doc = format == "json"    ? driver::to_json(report, ropts)
                    : format == "sarif" ? driver::to_sarif(report)
                                        : driver::to_text(report);
  if (out_path.empty()) {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return kExitInternalError;
    }
    out << doc;
  }
  int code = report.exit_code();
  // --strict escalates a rejected journal (like a rejected cache snapshot)
  // to an internal error; combine keeps whatever the report found if that
  // is already worse.
  if (dopts.strict && report.metrics.journal_rejected > 0)
    code = driver::combine_exit_codes(code, kExitInternalError);
  return code;
}

/// `synat explain <prog> [proc]` — run the batch driver with provenance
/// collection on and render the derivation tree. Deliberately goes through
/// BatchDriver (not infer_atomicity directly) so --jobs and --isolate
/// exercise the same paths as `synat batch`; the output is a pure function
/// of the report and therefore byte-identical across those modes.
int cmd_explain(const std::string& spec, int argc, char** argv) {
  driver::DriverOptions dopts;
  std::string proc_filter;
  atomicity::InferOptions iopts = spec_options(spec);
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--jobs" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n > 1024) {
        std::fprintf(stderr, "--jobs expects a thread count, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      dopts.jobs = static_cast<unsigned>(n);
    } else if (a == "--isolate") {
      dopts.isolate = true;
    } else if (a == "--no-variants") {
      iopts.variant_opts.disable = true;
    } else if (a == "--no-windows") {
      iopts.use_window_rule = false;
    } else if (a == "--no-conds") {
      iopts.use_local_conditions = false;
    } else if (a == "--counted" && i + 1 < argc) {
      iopts.counted_cas.emplace_back(argv[++i]);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown explain option %s\n", a.c_str());
      return kExitUsage;
    } else if (proc_filter.empty()) {
      proc_filter = a;
    } else {
      std::fprintf(stderr, "explain takes at most one procedure name\n");
      return kExitUsage;
    }
  }
  driver::ProgramInput in;
  in.name = spec;
  if (!load_source(spec, in.source))
    in.load_error = "cannot open input '" + spec + "'";
  in.opts = iopts;
  in.opts.provenance = true;
  driver::BatchDriver drv(dopts);
  driver::BatchReport report = drv.run({in});
  std::string doc = driver::to_explain(report, proc_filter);
  std::fwrite(doc.data(), 1, doc.size(), stdout);
  return report.exit_code();
}

int cmd_analyze(const std::string& spec, int argc, char** argv) {
  Parsed p;
  if (!parse(spec, p)) return kExitParseError;
  atomicity::InferOptions opts;
  default_counted(spec, opts);
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--no-variants") opts.variant_opts.disable = true;
    else if (a == "--no-windows") opts.use_window_rule = false;
    else if (a == "--no-conds") opts.use_local_conditions = false;
    else if (a == "--counted" && i + 1 < argc) opts.counted_cas.emplace_back(argv[++i]);
    else { std::fprintf(stderr, "unknown option %s\n", a.c_str()); return kExitUsage; }
  }
  auto result = atomicity::infer_atomicity(p.prog, p.diags, opts);
  std::printf("%s", result.full_listing(p.prog).c_str());
  return result.all_atomic() ? kExitOk : kExitNotAtomic;
}

int cmd_variants(const std::string& spec, int argc, char** argv) {
  Parsed p;
  if (!parse(spec, p)) return kExitParseError;
  atomicity::InferOptions opts;
  default_counted(spec, opts);
  auto result = atomicity::infer_atomicity(p.prog, p.diags, opts);
  for (const atomicity::ProcResult& pr : result.procs()) {
    std::string name(p.prog.syms().name(p.prog.proc(pr.proc).name));
    if (argc > 0 && name != argv[0]) continue;
    for (const atomicity::VariantResult& v : pr.variants) {
      std::printf("%s", synl::print_proc(p.prog, v.variant).c_str());
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_blocks(const std::string& spec) {
  Parsed p;
  if (!parse(spec, p)) return kExitParseError;
  atomicity::InferOptions opts;
  default_counted(spec, opts);
  auto result = atomicity::infer_atomicity(p.prog, p.diags, opts);
  atomicity::BlockSummary sum = atomicity::summarize_blocks(p.prog, result);
  for (auto [pid, blocks] : sum.per_proc) {
    std::printf("%-20s %zu block(s)%s\n",
                std::string(p.prog.syms().name(p.prog.proc(pid).name)).c_str(),
                blocks,
                result.result_for(pid)->atomic ? " [atomic]" : "");
  }
  std::printf("total: %zu procedures, %zu blocks\n", sum.total_procs,
              sum.total_blocks);
  return 0;
}

int cmd_cfg(const std::string& spec, const char* proc_name, bool dot) {
  Parsed p;
  if (!parse(spec, p)) return kExitParseError;
  synl::ProcId pid = p.prog.find_proc(proc_name);
  if (!pid.valid()) {
    std::fprintf(stderr, "no procedure '%s'\n", proc_name);
    return kExitUsage;
  }
  cfg::Cfg g = cfg::build_cfg(p.prog, pid);
  if (!dot) {
    std::printf("%s", g.dump(p.prog).c_str());
    return 0;
  }
  std::printf("digraph \"%s\" {\n  node [shape=box,fontname=monospace];\n",
              proc_name);
  for (uint32_t i = 0; i < g.num_nodes(); ++i) {
    const cfg::Event& ev = g.node(cfg::EventId(i));
    std::string label(to_string(ev.kind));
    if (ev.path.root.valid()) label += " " + ev.path.str(p.prog);
    if (ev.must_succeed) label += "!";
    std::printf("  n%u [label=\"%s\"];\n", i, label.c_str());
    for (const cfg::Edge& e : g.succs(cfg::EventId(i))) {
      const char* style = "";
      if (e.kind == cfg::EdgeKind::True) style = " [label=T,color=darkgreen]";
      if (e.kind == cfg::EdgeKind::False) style = " [label=F,color=red]";
      std::printf("  n%u -> n%u%s;\n", i, e.to.idx, style);
    }
  }
  std::printf("}\n");
  return 0;
}

int cmd_disasm(const std::string& spec) {
  Parsed p;
  if (!parse(spec, p)) return kExitParseError;
  interp::CompiledProgram cp = interp::compile_program(p.prog, p.diags);
  for (const interp::CompiledProc& proc : cp.procs)
    std::printf("%s\n", interp::disassemble(proc).c_str());
  return 0;
}

int cmd_mc(const std::string& spec, int argc, char** argv) {
  Parsed p;
  if (!parse(spec, p)) return kExitParseError;
  mc::Options opts;
  mc::RunSpec run;
  std::string tinit;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--run") {
      std::string s = next();
      mc::ThreadPlan plan;
      size_t colon = s.find(':');
      plan.proc = s.substr(0, colon == std::string::npos ? s.size() : colon);
      if (colon != std::string::npos)
        plan.args.push_back(mc::Value::of_int(std::atoll(s.c_str() + colon + 1)));
      run.threads.push_back(std::move(plan));
    } else if (a == "--init") {
      run.global_init = next();
    } else if (a == "--tinit") {
      tinit = next();
    } else if (a == "--por") {
      opts.por = true;
    } else if (a == "--atomic") {
      opts.atomic_procs.emplace_back(next());
    } else if (a == "--arrays") {
      opts.array_size = std::atoi(next());
    } else if (a == "--max-states") {
      opts.max_states = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown mc option %s\n", a.c_str());
      return kExitUsage;
    }
  }
  if (run.threads.empty()) {
    std::fprintf(stderr, "mc needs at least one --run Proc[:arg]\n");
    return kExitUsage;
  }
  for (mc::ThreadPlan& plan : run.threads) plan.init_proc = tinit;
  interp::CompiledProgram cp = interp::compile_program(p.prog, p.diags);
  mc::ModelChecker checker(cp, opts);
  mc::Result r = checker.run(run);
  std::printf("%s\n", r.summary().c_str());
  return r.error_found ? kExitNotAtomic : kExitOk;
}

int cmd_serve(int argc, char** argv) {
  serve::ServerOptions sopts;
  std::string events_out;
  uint64_t events_max_bytes = 64ull << 20;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--listen" && i + 1 < argc) {
      sopts.listen = argv[++i];
    } else if (a == "--jobs" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n > 1024) {
        std::fprintf(stderr, "--jobs expects a thread count, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.jobs = static_cast<unsigned>(n);
    } else if (a == "--max-queue" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--max-queue expects a count, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.max_queue = static_cast<size_t>(n);
    } else if (a == "--cache-file" && i + 1 < argc) {
      sopts.cache_file = argv[++i];
    } else if (a == "--trace-out" && i + 1 < argc) {
      sopts.trace_out = argv[++i];
    } else if (a == "--sandbox") {
      sopts.service.sandbox = true;
    } else if (a == "--deadline-ms" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--deadline-ms expects milliseconds, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.sandbox_deadline_ms = n;
    } else if (a == "--max-rss-mb" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--max-rss-mb expects megabytes, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.sandbox_max_rss_mb = static_cast<size_t>(n);
    } else if (a == "--retries" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n > 16) {
        std::fprintf(stderr, "--retries expects a small count, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.sandbox_retries = static_cast<unsigned>(n);
    } else if (a == "--quarantine-threshold" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n == 0) {
        std::fprintf(stderr,
                     "--quarantine-threshold expects a positive count, "
                     "got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.quarantine_threshold = static_cast<unsigned>(n);
    } else if (a == "--quarantine-ttl" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--quarantine-ttl expects seconds, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.quarantine_ttl_ms = uint64_t{n} * 1000;
    } else if (a == "--snapshot-interval-s" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr,
                     "--snapshot-interval-s expects seconds, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.snapshot_interval_s = static_cast<unsigned>(n);
    } else if (a == "--events-out" && i + 1 < argc) {
      events_out = argv[++i];
    } else if (a == "--events-max-bytes" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--events-max-bytes expects bytes, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      events_max_bytes = n;
    } else if (a == "--postmortem" && i + 1 < argc) {
      sopts.postmortem_path = argv[++i];
    } else if (a == "--slo-window-s" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n == 0) {
        std::fprintf(stderr,
                     "--slo-window-s expects positive seconds, got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.slo_window_ms = uint64_t{n} * 1000;
    } else if (a == "--slo-availability" && i + 1 < argc) {
      char* end = nullptr;
      double f = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || f <= 0.0 || f > 1.0) {
        std::fprintf(stderr,
                     "--slo-availability expects a fraction in (0,1], "
                     "got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.slo_availability = f;
    } else if (a == "--slo-latency-ms" && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n == 0) {
        std::fprintf(stderr,
                     "--slo-latency-ms expects positive milliseconds, "
                     "got '%s'\n",
                     argv[i]);
        return kExitUsage;
      }
      sopts.service.slo_latency_ms = n;
    } else {
      std::fprintf(stderr, "unknown serve option %s\n", a.c_str());
      return kExitUsage;
    }
  }
  if (sopts.listen.empty()) {
    std::fprintf(stderr, "serve needs --listen <socket-path|host:port>\n");
    return kExitUsage;
  }
  // The daemon's stage histograms back the live `metrics` RPC, so metrics
  // recording is always on; span tracing only when a trace file is wanted.
  uint32_t obs_flags = obs::kMetricsFlag;
  if (!sopts.trace_out.empty()) obs_flags |= obs::kTraceFlag;
  obs::set_flags(obs_flags);
  if (!sopts.trace_out.empty())
    obs::Tracer::instance().set_lane_name(0, "serve");
  // Stack-owned so it outlives the server: the service appends an event
  // after each reply, up to the end of the drain.
  std::unique_ptr<obs::EventLog> events;
  if (!events_out.empty()) {
    obs::EventLogOptions eopts;
    eopts.path = events_out;
    eopts.max_bytes = events_max_bytes;
    events = std::make_unique<obs::EventLog>(std::move(eopts));
    sopts.service.events = events.get();
  }
  serve::Server server(std::move(sopts));
  return server.serve();
}

/// `synat postmortem <file>` — human rendering of a flight-recorder
/// incident dump (recorder.h). The file is a header line plus the ring
/// oldest-first; frames that were overwritten mid-dump may be garbled, so
/// anything unparsable is shown raw rather than rejected.
int cmd_postmortem(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return kExitParseError;
  }
  auto str_of = [](const serve::JsonValue& v, const char* key) {
    const serve::JsonValue* m = v.get(key);
    return m != nullptr && m->is_string() ? m->str : std::string();
  };
  auto num_of = [](const serve::JsonValue& v, const char* key) -> long long {
    const serve::JsonValue* m = v.get(key);
    return m != nullptr && m->is_number()
               ? static_cast<long long>(m->number)
               : 0;
  };
  std::string line;
  size_t events_n = 0, notes_n = 0, spans_n = 0, raw_n = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    serve::JsonParse p = serve::parse_json(line);
    if (!p.ok || !p.value.is_object()) {
      std::printf("  ?      %s\n", line.c_str());
      ++raw_n;
      continue;
    }
    const serve::JsonValue& v = p.value;
    std::string rec = str_of(v, "rec");
    if (rec == "postmortem") {
      std::printf("postmortem: reason=%s signal=%lld frames=%lld\n",
                  str_of(v, "reason").c_str(), num_of(v, "signal"),
                  num_of(v, "frames"));
    } else if (rec == "note") {
      std::printf("  note   %s: %s\n", str_of(v, "what").c_str(),
                  str_of(v, "detail").c_str());
      ++notes_n;
    } else if (rec == "span") {
      std::printf("  span   %-10s start_ns=%lld dur_ns=%lld\n",
                  str_of(v, "stage").c_str(), num_of(v, "start_ns"),
                  num_of(v, "dur_ns"));
      ++spans_n;
    } else if (str_of(v, "schema") == "synat-event") {
      std::printf("  event  seq=%-4lld %-28s status=%s%s exit=%lld "
                  "dur_ns=%lld\n",
                  num_of(v, "seq"), str_of(v, "name").c_str(),
                  str_of(v, "status").c_str(),
                  v.get("quarantined") != nullptr &&
                          v.get("quarantined")->boolean
                      ? " quarantined"
                      : "",
                  num_of(v, "exit_code"), num_of(v, "dur_ns"));
      ++events_n;
    } else {
      std::printf("  ?      %s\n", line.c_str());
      ++raw_n;
    }
  }
  std::printf("-- %zu event(s), %zu note(s), %zu span(s), %zu raw frame(s)\n",
              events_n, notes_n, spans_n, raw_n);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    std::string cmd = argv[1];
    if (cmd == "corpus") return cmd_corpus();
    if (cmd == "batch") return cmd_batch(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
    if (argc < 3) return usage();
    std::string spec = argv[2];
    if (cmd == "postmortem") return cmd_postmortem(spec);
    if (cmd == "analyze") return cmd_analyze(spec, argc - 3, argv + 3);
    if (cmd == "explain") return cmd_explain(spec, argc - 3, argv + 3);
    if (cmd == "variants")
      return cmd_variants(spec, argc - 3, argv + 3);
    if (cmd == "blocks") return cmd_blocks(spec);
    if (cmd == "cfg" && argc >= 4) return cmd_cfg(spec, argv[3], false);
    if (cmd == "dot" && argc >= 4) return cmd_cfg(spec, argv[3], true);
    if (cmd == "disasm") return cmd_disasm(spec);
    if (cmd == "mc") return cmd_mc(spec, argc - 3, argv + 3);
    return usage();
  } catch (const InternalError& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternalError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInternalError;
  }
}
