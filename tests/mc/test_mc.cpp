#include <gtest/gtest.h>

#include "synat/corpus/corpus.h"
#include "synat/mc/mc.h"
#include "synat/mc/props.h"
#include "synat/synl/parser.h"

namespace synat::mc {
namespace {

using interp::CompiledProgram;
using synl::Program;

struct Fixture {
  DiagEngine diags;
  Program prog;
  CompiledProgram cp;

  explicit Fixture(std::string_view src)
      : prog(synl::parse_and_check(src, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
    cp = interp::compile_program(prog, diags);
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
  }
};

TEST(Canonical, AllocationOrderIrrelevant) {
  // Two schedules that allocate the "same" heap in different orders must
  // canonicalize identically.
  Fixture f(R"(
    class Node { int v; }
    global Node A;
    global Node B;
    proc SetA() { A := new Node; }
    proc SetB() { B := new Node; }
  )");
  interp::Interp in(f.cp);
  std::string err;

  interp::State s1 = in.initial_state(
      {{f.cp.find_index("SetA"), {}}, {f.cp.find_index("SetB"), {}}});
  ASSERT_EQ(in.run_thread(s1, 0, &err), interp::StepResult::Done);
  ASSERT_EQ(in.run_thread(s1, 1, &err), interp::StepResult::Done);

  interp::State s2 = in.initial_state(
      {{f.cp.find_index("SetA"), {}}, {f.cp.find_index("SetB"), {}}});
  ASSERT_EQ(in.run_thread(s2, 1, &err), interp::StepResult::Done);
  ASSERT_EQ(in.run_thread(s2, 0, &err), interp::StepResult::Done);

  ModelChecker mc(f.cp, {});
  EXPECT_EQ(mc.canonicalize(s1), mc.canonicalize(s2));
}

TEST(Canonical, GarbageIgnored) {
  Fixture f(R"(
    class Node { int v; }
    global Node G;
    proc WithGarbage() {
      local tmp := new Node in {
        G := new Node;
      }
    }
    proc Direct() { G := new Node; }
  )");
  interp::Interp in(f.cp);
  std::string err;
  interp::State s1 = in.initial_state({{f.cp.find_index("WithGarbage"), {}}});
  ASSERT_EQ(in.run_thread(s1, 0, &err), interp::StepResult::Done);
  interp::State s2 = in.initial_state({{f.cp.find_index("Direct"), {}}});
  ASSERT_EQ(in.run_thread(s2, 0, &err), interp::StepResult::Done);
  ModelChecker mc(f.cp, {});
  // The garbage `tmp` object must not differentiate the states.
  EXPECT_EQ(mc.canonicalize(s1), mc.canonicalize(s2));
}

TEST(Mc, CountsStatesOfTinyRace) {
  Fixture f(R"(
    global int X;
    proc Set(int v) { X := v; }
  )");
  Options opts;
  ModelChecker mc(f.cp, opts);
  RunSpec spec;
  spec.threads = {{"Set", {Value::of_int(1)}, "", {}},
                  {"Set", {Value::of_int(2)}, "", {}}};
  Result r = mc.run(spec);
  EXPECT_FALSE(r.error_found) << r.error;
  EXPECT_GT(r.states, 4u);
  EXPECT_EQ(r.final_states, 2u);  // X==1 and X==2 endings
}

TEST(Mc, FindsAssertionViolation) {
  Fixture f(R"(
    global int X;
    proc Inc() {
      local t := X in {
        X := t + 1;
      }
    }
    proc Check() {
      assert(X < 2);
    }
  )");
  Options opts;
  ModelChecker mc(f.cp, opts);
  RunSpec spec;
  spec.threads = {{"Inc", {}, "", {}}, {"Inc", {}, "", {}}, {"Check", {}, "", {}}};
  Result r = mc.run(spec);
  EXPECT_TRUE(r.error_found);
  EXPECT_NE(r.error.find("assertion"), std::string::npos);
}

TEST(Mc, RacyCounterLosesUpdate) {
  // The classic lost update: final X can be 1 with two increments.
  Fixture f(corpus::get("racy_counter").source);
  Options opts;
  ModelChecker mc(f.cp, opts);
  int slot = mc.global_slot("C");
  ASSERT_GE(slot, 0);
  opts.final_check = [slot](const State& s, const Interp&)
      -> std::optional<std::string> {
    if (s.globals[static_cast<size_t>(slot)].i != 2) return "lost update";
    return std::nullopt;
  };
  ModelChecker mc2(f.cp, opts);
  RunSpec spec;
  spec.threads = {{"Inc", {}, "", {}}, {"Inc", {}, "", {}}};
  Result r = mc2.run(spec);
  EXPECT_TRUE(r.error_found);
  EXPECT_NE(r.error.find("lost update"), std::string::npos);
}

TEST(Mc, LlScCounterNeverLosesUpdate) {
  Fixture f(R"(
    global int X;
    proc Inc() {
      loop {
        local a := LL(X) in {
          if (SC(X, a + 1)) { return; }
        }
      }
    }
  )");
  Options opts;
  {
    ModelChecker probe(f.cp, opts);
    int slot = probe.global_slot("X");
    opts.final_check = [slot](const State& s, const Interp&)
        -> std::optional<std::string> {
      if (s.globals[static_cast<size_t>(slot)].i != 2) return "lost update";
      return std::nullopt;
    };
  }
  ModelChecker mc(f.cp, opts);
  RunSpec spec;
  spec.threads = {{"Inc", {}, "", {}}, {"Inc", {}, "", {}}};
  Result r = mc.run(spec);
  EXPECT_FALSE(r.error_found) << r.error;
  EXPECT_GT(r.final_states, 0u);
}

TEST(Mc, LockedCounterCorrect) {
  // locked_counter needs the lock object allocated: extend with Init.
  std::string src = std::string(corpus::get("locked_counter").source) +
                    "\nproc Init() { M := new LockObj; }\n";
  Fixture f(src);
  Options opts;
  {
    ModelChecker probe(f.cp, opts);
    int slot = probe.global_slot("C");
    opts.final_check = [slot](const State& s, const Interp&)
        -> std::optional<std::string> {
      if (s.globals[static_cast<size_t>(slot)].i != 2) return "lost update";
      return std::nullopt;
    };
  }
  ModelChecker mc(f.cp, opts);
  RunSpec spec;
  spec.global_init = "Init";
  spec.threads = {{"Inc", {}, "", {}}, {"Inc", {}, "", {}}};
  Result r = mc.run(spec);
  EXPECT_FALSE(r.error_found) << r.error;
}

// ---------------------------------------------------------------------------
// Reductions

struct NfqHarness {
  Fixture f;
  int value_field = -1, next_field = -1;

  NfqHarness(std::string_view corpus_name)
      : f(corpus::get(corpus_name).source) {
    synl::ClassId node = f.prog.find_class(f.prog.syms().lookup("Node"));
    value_field = f.prog.cls(node).field_index(f.prog.syms().lookup("Value"));
    next_field = f.prog.cls(node).field_index(f.prog.syms().lookup("Next"));
  }

  Result run(bool por, bool atomic, std::multiset<int64_t> expected,
             int producers = 2) {
    Options opts;
    opts.por = por;
    if (atomic) opts.atomic_procs = {"AddNode", "UpdateTail", "Deq"};
    ModelChecker probe(f.cp, opts);
    opts.invariant = queue_wellformed(probe, next_field);
    opts.final_check =
        queue_final_contents(probe, value_field, next_field, expected);
    ModelChecker mc(f.cp, opts);
    RunSpec spec;
    spec.global_init = "Init";
    for (int i = 0; i < producers; ++i)
      spec.threads.push_back({"AddNode", {Value::of_int(i + 1)}, "", {}});
    spec.threads.push_back({"UpdateTail", {}, "", {}});
    return mc.run(spec);
  }
};

TEST(McNfq, CorrectQueuePassesAllConfigurations) {
  NfqHarness h("nfq_prime_mc");
  Result plain = h.run(false, false, {1, 2});
  EXPECT_FALSE(plain.error_found) << plain.error;
  EXPECT_GT(plain.final_states, 0u);

  Result por = h.run(true, false, {1, 2});
  EXPECT_FALSE(por.error_found) << por.error;

  Result atomic = h.run(false, true, {1, 2});
  EXPECT_FALSE(atomic.error_found) << atomic.error;

  // The reductions must actually reduce.
  EXPECT_LT(por.states, plain.states);
  EXPECT_LT(atomic.states, por.states);
}

TEST(McNfq, BuggyQueueCaughtWithAndWithoutAtomic) {
  NfqHarness h("nfq_prime_bug_mc");
  Result plain = h.run(false, false, {1, 2});
  EXPECT_TRUE(plain.error_found);
  Result atomic = h.run(false, true, {1, 2});
  EXPECT_TRUE(atomic.error_found);
}

TEST(McNfq, ReductionsPreserveFinalStateContents) {
  // With a single producer every configuration must agree that the queue
  // ends with exactly {1}.
  NfqHarness h("nfq_prime_mc");
  for (bool por : {false, true}) {
    for (bool atomic : {false, true}) {
      Result r = h.run(por, atomic, {1}, /*producers=*/1);
      EXPECT_FALSE(r.error_found)
          << "por=" << por << " atomic=" << atomic << ": " << r.error;
      EXPECT_GT(r.final_states, 0u);
    }
  }
}

TEST(McGh, AllConfigurationsAgreeOnOutcome) {
  Fixture f(corpus::get("gh_mc").source);
  for (bool por : {false, true}) {
    for (bool atomic : {false, true}) {
      Options opts;
      opts.array_size = 4;  // groups are indexed 1..3
      opts.por = por;
      if (atomic) opts.atomic_procs = {"Apply"};
      ModelChecker mc(f.cp, opts);
      RunSpec spec;
      spec.global_init = "Init";
      for (int g = 1; g <= 2; ++g)
        spec.threads.push_back(
            {"Apply", {Value::of_int(g)}, "TInit", {}});
      Result r = mc.run(spec);
      EXPECT_FALSE(r.error_found)
          << "por=" << por << " atomic=" << atomic << ": " << r.error;
      EXPECT_GT(r.final_states, 0u);
    }
  }
}

}  // namespace
}  // namespace synat::mc
