// Cross-validation of the paper's central claim: if the analysis proves
// the procedures of a program atomic, then every reachable quiescent state
// of the concurrent program is also reachable by executing the procedures
// serially (the definition of atomicity in Section 3.2).
//
// Serial executions are obtained from the model checker itself by declaring
// every procedure atomic (full-procedure transactions = serialized
// schedules), so this simultaneously exercises the reduction machinery.
// The racy counter provides the negative control: its lost-update final
// state must NOT be serially reachable.
#include <gtest/gtest.h>

#include <set>

#include "synat/corpus/corpus.h"
#include "synat/mc/mc.h"
#include "synat/synl/parser.h"

namespace synat::mc {
namespace {

struct Harness {
  DiagEngine diags;
  synl::Program prog;
  interp::CompiledProgram cp;

  explicit Harness(std::string_view corpus_name)
      : prog(synl::parse_and_check(corpus::get(corpus_name).source, diags)),
        cp(interp::compile_program(prog, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
  }

  /// Canonical final states of an exploration. `serialize` declares every
  /// procedure atomic, restricting schedules to serial ones.
  std::set<std::string> finals(const RunSpec& spec, bool serialize,
                               int array_size = 3) {
    Options opts;
    opts.array_size = array_size;
    if (serialize) {
      for (const interp::CompiledProc& p : cp.procs)
        opts.atomic_procs.push_back(p.name);
    }
    std::set<std::string> out;
    // final_check runs inside checker.run(); checker must outlive it.
    ModelChecker* checker_ptr = nullptr;
    opts.final_check = [&out, &checker_ptr](const State& s, const Interp&)
        -> std::optional<std::string> {
      out.insert(checker_ptr->canonicalize(s));
      return std::nullopt;
    };
    ModelChecker checker(cp, opts);
    checker_ptr = &checker;
    Result r = checker.run(spec);
    EXPECT_FALSE(r.error_found) << r.error;
    return out;
  }
};

bool subset(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const std::string& s : a)
    if (!b.count(s)) return false;
  return true;
}

void expect_serializable(std::string_view corpus_name, const RunSpec& spec,
                         int array_size = 3) {
  Harness h(corpus_name);
  auto concurrent = h.finals(spec, /*serialize=*/false, array_size);
  auto serial = h.finals(spec, /*serialize=*/true, array_size);
  EXPECT_FALSE(concurrent.empty());
  EXPECT_FALSE(serial.empty());
  EXPECT_TRUE(subset(concurrent, serial))
      << corpus_name << ": " << concurrent.size()
      << " concurrent finals vs " << serial.size() << " serial finals";
  // The serial schedules are a subset of all schedules, so serial finals
  // must also appear concurrently: the sets are equal for atomic programs.
  EXPECT_TRUE(subset(serial, concurrent));
}

TEST(Serializability, NfqPrimeProducers) {
  RunSpec spec;
  spec.global_init = "Init";
  spec.threads = {{"AddNode", {Value::of_int(1)}, "", {}},
                  {"AddNode", {Value::of_int(2)}, "", {}},
                  {"UpdateTail", {}, "", {}}};
  expect_serializable("nfq_prime_mc", spec);
}

TEST(Serializability, NfqPrimeProducerConsumer) {
  RunSpec spec;
  spec.global_init = "Init";
  spec.threads = {{"AddNode", {Value::of_int(7)}, "", {}},
                  {"Deq", {}, "", {}},
                  {"UpdateTail", {}, "", {}}};
  expect_serializable("nfq_prime_mc", spec);
}

TEST(Serializability, SemaphoreUpDown) {
  RunSpec spec;
  spec.threads = {{"Up", {}, "", {}}, {"Down", {}, "", {}}};
  expect_serializable("semaphore_down", spec);
}

TEST(Serializability, TreiberStack) {
  RunSpec spec;
  spec.threads = {{"Push", {Value::of_int(1)}, "", {}},
                  {"Push", {Value::of_int(2)}, "", {}},
                  {"Pop", {}, "", {}}};
  expect_serializable("treiber_stack", spec);
}

TEST(Serializability, GaoHesselink) {
  RunSpec spec;
  spec.global_init = "Init";
  spec.threads = {{"Apply", {Value::of_int(1)}, "TInit", {}},
                  {"Apply", {Value::of_int(2)}, "TInit", {}}};
  expect_serializable("gh_mc", spec, /*array_size=*/4);
}

TEST(Serializability, HerlihySmall) {
  // herlihy_small has no driver entry; build one inline.
  std::string src = std::string(corpus::get("herlihy_small").source) +
                    "\nproc Init() { Q := new Node; }"
                    "\nproc TInit() { prv := new Node; }\n";
  DiagEngine diags;
  synl::Program prog = synl::parse_and_check(src, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.dump();
  interp::CompiledProgram cp = interp::compile_program(prog, diags);

  auto finals = [&](bool serialize) {
    Options opts;
    if (serialize)
      for (const interp::CompiledProc& p : cp.procs)
        opts.atomic_procs.push_back(p.name);
    std::set<std::string> out;
    ModelChecker* cptr = nullptr;
    opts.final_check = [&out, &cptr](const State& s, const Interp&)
        -> std::optional<std::string> {
      out.insert(cptr->canonicalize(s));
      return std::nullopt;
    };
    ModelChecker checker(cp, opts);
    cptr = &checker;
    RunSpec spec;
    spec.global_init = "Init";
    spec.threads = {{"Apply", {}, "TInit", {}}, {"Apply", {}, "TInit", {}}};
    Result r = checker.run(spec);
    EXPECT_FALSE(r.error_found) << r.error;
    return out;
  };
  auto concurrent = finals(false);
  auto serial = finals(true);
  EXPECT_TRUE(subset(concurrent, serial));
  EXPECT_TRUE(subset(serial, concurrent));
}

TEST(Serializability, OriginalNfqSerializableDespiteAnalysisFailure) {
  // Figure 1's NFQ is a correct linearizable queue; the analysis merely
  // cannot prove it (incompleteness, paper Section 1). The state-space
  // check confirms its quiescent states match the serial ones.
  std::string src = std::string(corpus::get("nfq").source) +
                    R"(
proc Init() {
  local dummy := new Node in {
    dummy.Next := null;
    Head := dummy;
    Tail := dummy;
  }
}
)";
  DiagEngine diags;
  synl::Program prog = synl::parse_and_check(src, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.dump();
  interp::CompiledProgram cp = interp::compile_program(prog, diags);

  auto finals = [&](bool serialize) {
    Options opts;
    if (serialize)
      for (const interp::CompiledProc& p : cp.procs)
        opts.atomic_procs.push_back(p.name);
    std::set<std::string> out;
    ModelChecker* cptr = nullptr;
    opts.final_check = [&out, &cptr](const State& s, const Interp&)
        -> std::optional<std::string> {
      out.insert(cptr->canonicalize(s));
      return std::nullopt;
    };
    ModelChecker checker(cp, opts);
    cptr = &checker;
    RunSpec spec;
    spec.global_init = "Init";
    spec.threads = {{"Enq", {Value::of_int(1)}, "", {}},
                    {"Enq", {Value::of_int(2)}, "", {}},
                    {"Deq", {}, "", {}}};
    Result r = checker.run(spec);
    EXPECT_FALSE(r.error_found) << r.error;
    return out;
  };
  auto concurrent = finals(false);
  auto serial = finals(true);
  EXPECT_FALSE(concurrent.empty());
  EXPECT_TRUE(subset(concurrent, serial));
}

TEST(Serializability, PorPreservesFinalStates) {
  // The ample-set reduction must not change which quiescent states exist.
  Harness h("nfq_prime_mc");
  RunSpec spec;
  spec.global_init = "Init";
  spec.threads = {{"AddNode", {Value::of_int(1)}, "", {}},
                  {"AddNode", {Value::of_int(2)}, "", {}},
                  {"UpdateTail", {}, "", {}}};
  auto plain = h.finals(spec, false);

  Options opts;
  opts.por = true;
  std::set<std::string> por_finals;
  ModelChecker* cptr = nullptr;
  opts.final_check = [&por_finals, &cptr](const State& s, const Interp&)
      -> std::optional<std::string> {
    por_finals.insert(cptr->canonicalize(s));
    return std::nullopt;
  };
  ModelChecker checker(h.cp, opts);
  cptr = &checker;
  Result r = checker.run(spec);
  EXPECT_FALSE(r.error_found) << r.error;
  EXPECT_EQ(plain, por_finals);
}

TEST(Serializability, RacyCounterIsNotSerializable) {
  // Negative control: Inc is not atomic (the analysis refuses it), and the
  // lost-update final state is indeed not serially reachable.
  Harness h("racy_counter");
  RunSpec spec;
  spec.threads = {{"Inc", {}, "", {}}, {"Inc", {}, "", {}}};
  auto concurrent = h.finals(spec, false);
  auto serial = h.finals(spec, true);
  EXPECT_FALSE(subset(concurrent, serial));
  EXPECT_GT(concurrent.size(), serial.size());
}

TEST(Serializability, LockedCounterIsSerializable) {
  std::string src = std::string(corpus::get("locked_counter").source) +
                    "\nproc Init() { M := new LockObj; }\n";
  DiagEngine diags;
  synl::Program prog = synl::parse_and_check(src, diags);
  ASSERT_FALSE(diags.has_errors());
  interp::CompiledProgram cp = interp::compile_program(prog, diags);
  auto finals = [&](bool serialize) {
    Options opts;
    if (serialize)
      for (const interp::CompiledProc& p : cp.procs)
        opts.atomic_procs.push_back(p.name);
    std::set<std::string> out;
    ModelChecker* cptr = nullptr;
    opts.final_check = [&out, &cptr](const State& s, const Interp&)
        -> std::optional<std::string> {
      out.insert(cptr->canonicalize(s));
      return std::nullopt;
    };
    ModelChecker checker(cp, opts);
    cptr = &checker;
    RunSpec spec;
    spec.global_init = "Init";
    spec.threads = {{"Inc", {}, "", {}}, {"Inc", {}, "", {}}};
    Result r = checker.run(spec);
    EXPECT_FALSE(r.error_found) << r.error;
    return out;
  };
  EXPECT_EQ(finals(false), finals(true));
}

}  // namespace
}  // namespace synat::mc
