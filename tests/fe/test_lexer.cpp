#include <gtest/gtest.h>

#include "synat/synl/lexer.h"

namespace synat::synl {
namespace {

std::vector<Token> lex_ok(std::string_view src) {
  DiagEngine diags;
  auto toks = Lexer::tokenize(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.dump();
  return toks;
}

std::vector<Tok> kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const Token& t : lex_ok(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  auto toks = lex_ok("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::End);
}

TEST(Lexer, Keywords) {
  auto k = kinds("global threadlocal proc local in loop if else return");
  std::vector<Tok> expect = {Tok::KwGlobal, Tok::KwThreadLocal, Tok::KwProc,
                             Tok::KwLocal,  Tok::KwIn,          Tok::KwLoop,
                             Tok::KwIf,     Tok::KwElse,        Tok::KwReturn,
                             Tok::End};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, Primitives) {
  auto k = kinds("LL SC VL CAS TRUE assume");
  std::vector<Tok> expect = {Tok::KwLL,     Tok::KwSC,     Tok::KwVL,
                             Tok::KwCAS,    Tok::KwAssume, Tok::KwAssume,
                             Tok::End};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, IdentifiersWithPrimes) {
  // Variant names like Deq'2 lex as single identifiers.
  auto toks = lex_ok("Deq'2 next");
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "Deq'2");
  EXPECT_EQ(toks[1].text, "next");
}

TEST(Lexer, Numbers) {
  auto toks = lex_ok("0 42 123456");
  EXPECT_EQ(toks[0].int_value, 0);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 123456);
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto k = kinds(":= == != <= >= && || ++ -- < > = !");
  std::vector<Tok> expect = {Tok::Assign, Tok::EqEq,      Tok::NotEq,
                             Tok::Le,     Tok::Ge,        Tok::AndAnd,
                             Tok::OrOr,   Tok::PlusPlus,  Tok::MinusMinus,
                             Tok::Lt,     Tok::Gt,        Tok::Assign,
                             Tok::Not,    Tok::End};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, CommentsSkipped) {
  auto k = kinds("x // comment until eol\n y");
  std::vector<Tok> expect = {Tok::Ident, Tok::Ident, Tok::End};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, LineAndColumnTracking) {
  auto toks = lex_ok("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(Lexer, UnknownCharacterReportsError) {
  DiagEngine diags;
  auto toks = Lexer::tokenize("a @ b", diags);
  EXPECT_TRUE(diags.has_errors());
  // Lexing recovers: both identifiers still come through.
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, BracketsAndPunctuation) {
  auto k = kinds("( ) { } [ ] ; , . :");
  std::vector<Tok> expect = {Tok::LParen,   Tok::RParen, Tok::LBrace,
                             Tok::RBrace,   Tok::LBracket, Tok::RBracket,
                             Tok::Semi,     Tok::Comma,  Tok::Dot,
                             Tok::Colon,    Tok::End};
  EXPECT_EQ(k, expect);
}

}  // namespace
}  // namespace synat::synl
