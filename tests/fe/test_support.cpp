#include <gtest/gtest.h>

#include "synat/support/diag.h"
#include "synat/support/hash.h"
#include "synat/support/symbol.h"
#include "synat/support/text.h"

namespace synat {
namespace {

TEST(SymbolTable, InternReturnsStableIds) {
  SymbolTable t;
  Symbol a = t.intern("foo");
  Symbol b = t.intern("bar");
  Symbol a2 = t.intern("foo");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.name(a), "foo");
  EXPECT_EQ(t.name(b), "bar");
}

TEST(SymbolTable, EmptyStringIsInvalid) {
  SymbolTable t;
  Symbol e = t.intern("");
  EXPECT_FALSE(e.valid());
}

TEST(SymbolTable, LookupWithoutIntern) {
  SymbolTable t;
  EXPECT_FALSE(t.lookup("missing").valid());
  t.intern("present");
  EXPECT_TRUE(t.lookup("present").valid());
}

TEST(SymbolTable, ManySymbolsSurviveRehash) {
  SymbolTable t;
  std::vector<Symbol> syms;
  for (int i = 0; i < 1000; ++i) syms.push_back(t.intern("sym" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(t.name(syms[static_cast<size_t>(i)]), "sym" + std::to_string(i));
    EXPECT_EQ(t.lookup("sym" + std::to_string(i)), syms[static_cast<size_t>(i)]);
  }
}

TEST(Diag, CountsErrorsOnly) {
  DiagEngine d;
  d.warning({1, 1}, "w");
  d.note({1, 2}, "n");
  EXPECT_FALSE(d.has_errors());
  d.error({2, 1}, "e");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.num_errors(), 1u);
  EXPECT_EQ(d.diagnostics().size(), 3u);
}

TEST(Diag, DumpContainsLocations) {
  DiagEngine d;
  d.error({12, 7}, "boom");
  EXPECT_NE(d.dump().find("12:7"), std::string::npos);
  EXPECT_NE(d.dump().find("boom"), std::string::npos);
}

TEST(Diag, InternalErrorThrows) {
  EXPECT_THROW(internal_error("f.cpp", 3, "bad"), InternalError);
}

TEST(Hash, Deterministic) {
  Hasher h1, h2;
  h1.mix(42).mix("abc");
  h2.mix(42).mix("abc");
  EXPECT_EQ(h1.value(), h2.value());
}

TEST(Hash, OrderSensitive) {
  Hasher h1, h2;
  h1.mix(1).mix(2);
  h2.mix(2).mix(1);
  EXPECT_NE(h1.value(), h2.value());
}

TEST(Hash, LengthDisambiguation) {
  // "ab" + "c" must differ from "a" + "bc" (mix includes lengths).
  Hasher h1, h2;
  h1.mix("ab").mix("c");
  h2.mix("a").mix("bc");
  EXPECT_NE(h1.value(), h2.value());
}

TEST(Text, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Text, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(4069080), "4,069,080");
}

TEST(SourceLoc, OrderingAndPrinting) {
  SourceLoc a{1, 5}, b{2, 1};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.str(), "1:5");
  EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
}

}  // namespace
}  // namespace synat
