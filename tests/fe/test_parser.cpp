#include <gtest/gtest.h>

#include "synat/corpus/corpus.h"
#include "synat/synl/parser.h"
#include "synat/synl/printer.h"

namespace synat::synl {
namespace {

Program parse_ok(std::string_view src) {
  DiagEngine diags;
  Program p = parse_and_check(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.dump();
  return p;
}

TEST(Parser, MinimalProcedure) {
  Program p = parse_ok("proc F() { skip; }");
  ASSERT_EQ(p.num_procs(), 1u);
  EXPECT_TRUE(p.find_proc("F").valid());
}

TEST(Parser, GlobalsAndThreadLocals) {
  Program p = parse_ok(R"(
    global int X;
    threadlocal int Y;
    proc F() { skip; }
  )");
  EXPECT_EQ(p.globals().size(), 1u);
  EXPECT_EQ(p.threadlocals().size(), 1u);
  EXPECT_EQ(p.var(p.globals()[0]).kind, VarKind::Global);
  EXPECT_EQ(p.var(p.threadlocals()[0]).kind, VarKind::ThreadLocal);
}

TEST(Parser, ClassWithSelfReference) {
  Program p = parse_ok("class Node { int v; Node next; } proc F() { skip; }");
  ClassId c = p.find_class(p.syms().lookup("Node"));
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(p.cls(c).fields.size(), 2u);
  // The self-typed field points back at the same class.
  const TypeNode& ft = p.type(p.cls(c).fields[1].type);
  EXPECT_EQ(ft.kind, TypeKind::Ref);
  EXPECT_EQ(ft.cls, c);
}

TEST(Parser, ForwardClassReference) {
  Program p = parse_ok("class A { B b; } class B { int x; } proc F() { skip; }");
  ClassId b = p.find_class(p.syms().lookup("B"));
  ASSERT_TRUE(b.valid());
  EXPECT_TRUE(p.cls(b).defined);
}

TEST(Parser, DuplicateClassIsError) {
  DiagEngine diags;
  parse_and_check("class A { int x; } class A { int y; }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, LocalWithInAndSemicolonForms) {
  // The `;` form scopes the local over the rest of the block.
  Program p = parse_ok(R"(
    proc F() {
      local x := 1;
      local y := x + 1 in {
        skip;
      }
      return x;
    }
  )");
  const ProcInfo& f = p.proc(p.find_proc("F"));
  EXPECT_EQ(f.locals.size(), 2u);
}

TEST(Parser, WhileDesugarsToLoop) {
  Program p = parse_ok("proc F() { while (true) { skip; } }");
  bool found_loop = false;
  for_each_stmt(p, p.proc(p.find_proc("F")).body, [&](StmtId s) {
    if (p.stmt(s).kind == StmtKind::Loop) found_loop = true;
    EXPECT_NE(p.stmt(s).kind, StmtKind::Assign);
  });
  EXPECT_TRUE(found_loop);
}

TEST(Parser, LabeledLoopAndContinue) {
  Program p = parse_ok(R"(
    proc F() {
      outer: loop {
        loop {
          continue outer;
        }
      }
    }
  )");
  StmtId outer;
  for_each_stmt(p, p.proc(p.find_proc("F")).body, [&](StmtId s) {
    if (p.stmt(s).kind == StmtKind::Loop && p.stmt(s).label.valid()) outer = s;
  });
  ASSERT_TRUE(outer.valid());
  for_each_stmt(p, p.proc(p.find_proc("F")).body, [&](StmtId s) {
    if (p.stmt(s).kind == StmtKind::Continue) {
      EXPECT_EQ(p.stmt(s).jump_target, outer);
    }
  });
}

TEST(Parser, IncrementDesugarsToAssignment) {
  Program p = parse_ok("global int X; proc F() { X++; }");
  bool found = false;
  for_each_stmt(p, p.proc(p.find_proc("F")).body, [&](StmtId s) {
    if (p.stmt(s).kind == StmtKind::Assign) {
      found = true;
      EXPECT_EQ(p.expr(p.stmt(s).e2).kind, ExprKind::Binary);
    }
  });
  EXPECT_TRUE(found);
}

TEST(Parser, NonBlockingPrimitives) {
  Program p = parse_ok(R"(
    global int X;
    proc F() {
      local a := LL(X) in {
        if (VL(X)) {
          if (SC(X, a + 1)) { return; }
        }
        if (CAS(X, a, a + 2)) { return; }
      }
    }
  )");
  int lls = 0, scs = 0, vls = 0, cass = 0;
  for (size_t i = 0; i < p.num_exprs(); ++i) {
    switch (p.expr(ExprId(static_cast<uint32_t>(i))).kind) {
      case ExprKind::LL: ++lls; break;
      case ExprKind::SC: ++scs; break;
      case ExprKind::VL: ++vls; break;
      case ExprKind::CAS: ++cass; break;
      default: break;
    }
  }
  EXPECT_EQ(lls, 1);
  EXPECT_EQ(scs, 1);
  EXPECT_EQ(vls, 1);
  EXPECT_EQ(cass, 1);
}

TEST(Parser, SCTargetMustBeLocation) {
  DiagEngine diags;
  parse_and_check("proc F() { SC(1 + 2, 3); }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, AssignTargetMustBeLocation) {
  DiagEngine diags;
  parse_and_check("proc F() { 1 + 2 := 3; }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, PrecedenceAndAssociativity) {
  Program p = parse_ok("proc int F(int a, int b, int c) { return a + b * c; }");
  // Find the return expression: must be Add(a, Mul(b, c)).
  for (size_t i = 0; i < p.num_stmts(); ++i) {
    const Stmt& s = p.stmt(StmtId(static_cast<uint32_t>(i)));
    if (s.kind != StmtKind::Return || !s.e1.valid()) continue;
    const Expr& top = p.expr(s.e1);
    ASSERT_EQ(top.kind, ExprKind::Binary);
    EXPECT_EQ(top.bin_op, BinOp::Add);
    EXPECT_EQ(p.expr(top.b).bin_op, BinOp::Mul);
  }
}

TEST(Parser, SynchronizedStatement) {
  Program p = parse_ok(R"(
    class L { int d; }
    global L M;
    global int C;
    proc F() { synchronized (M) { C := C + 1; } }
  )");
  bool found = false;
  for_each_stmt(p, p.proc(p.find_proc("F")).body, [&](StmtId s) {
    if (p.stmt(s).kind == StmtKind::Synchronized) found = true;
  });
  EXPECT_TRUE(found);
}

// --- Error recovery (DESIGN.md §3c) ---------------------------------------

TEST(Recovery, BrokenProcIsStubbedHealthySiblingSurvives) {
  DiagEngine diags;
  FrontEnd fe = parse_and_recover(R"(
    global int X;
    proc Bad() { X := := 1; }
    proc Good() { X := X + 1; }
  )", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_TRUE(fe.contained);
  ASSERT_EQ(fe.prog.num_procs(), 2u);
  EXPECT_TRUE(fe.prog.proc(fe.prog.find_proc("Bad")).broken);
  EXPECT_FALSE(fe.prog.proc(fe.prog.find_proc("Good")).broken);
  // The healthy procedure's body is fully resolved and usable.
  bool has_assign = false;
  for_each_stmt(fe.prog, fe.prog.proc(fe.prog.find_proc("Good")).body,
                [&](StmtId s) {
                  if (fe.prog.stmt(s).kind == StmtKind::Assign)
                    has_assign = true;
                });
  EXPECT_TRUE(has_assign);
}

TEST(Recovery, BrokenCalleePropagatesToCaller) {
  DiagEngine diags;
  FrontEnd fe = parse_and_recover(R"(
    proc Bad() { 1 + ; }
    proc Caller() { Bad(); }
    proc Other() { skip; }
  )", diags);
  EXPECT_TRUE(fe.contained);
  EXPECT_TRUE(fe.prog.proc(fe.prog.find_proc("Bad")).broken);
  // A caller of a broken procedure cannot be analyzed soundly either.
  EXPECT_TRUE(fe.prog.proc(fe.prog.find_proc("Caller")).broken);
  EXPECT_FALSE(fe.prog.proc(fe.prog.find_proc("Other")).broken);
}

TEST(Recovery, ToplevelErrorsAreNotContained) {
  {
    DiagEngine diags;  // duplicate class: program-level damage
    FrontEnd fe =
        parse_and_recover("class A { int x; } class A { int y; }", diags);
    EXPECT_FALSE(fe.contained);
  }
  {
    DiagEngine diags;  // no procedure name to attach a stub to
    FrontEnd fe = parse_and_recover("proc ( ) { skip; }", diags);
    EXPECT_FALSE(fe.contained);
  }
  {
    DiagEngine diags;  // duplicate procedures: program-level damage
    FrontEnd fe =
        parse_and_recover("proc F() { skip; } proc F() { skip; }", diags);
    EXPECT_FALSE(fe.contained);
  }
}

TEST(Recovery, WhollyBrokenFileContainsButLeavesNoHealthyProc) {
  // Containment alone is not enough to analyze: the driver also requires a
  // healthy procedure, so this file still fails with a parse error there.
  DiagEngine diags;
  FrontEnd fe = parse_and_recover("proc P( {", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_TRUE(fe.contained);
  ASSERT_EQ(fe.prog.num_procs(), 1u);
  EXPECT_TRUE(fe.prog.proc(ProcId(0)).broken);
}

TEST(Recovery, DeepNestingIsReportedNotACrash) {
  std::string deep = "proc F() { ";
  for (int i = 0; i < 300; ++i) deep += "if (true) { ";
  deep += "skip; ";
  for (int i = 0; i < 300; ++i) deep += "} ";
  deep += "} proc G() { skip; }";
  DiagEngine diags;
  FrontEnd fe = parse_and_recover(deep, diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_TRUE(fe.contained);
  // A silently truncated AST would be unsound; the deep procedure must be
  // marked broken while its sibling survives.
  EXPECT_TRUE(fe.prog.proc(fe.prog.find_proc("F")).broken);
  EXPECT_FALSE(fe.prog.proc(fe.prog.find_proc("G")).broken);
}

TEST(Recovery, DeeplyNestedExpressionIsReportedNotACrash) {
  std::string deep = "proc F() { return " + std::string(5000, '(') + "1" +
                     std::string(5000, ')') + "; }";
  DiagEngine diags;
  parse_and_recover(deep, diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Recovery, LocalSemicolonOutsideBlockIsDiagnosedNotACrash) {
  DiagEngine diags;
  FrontEnd fe =
      parse_and_recover("global int C; proc F() { if (C > 0) local x := 1; }",
                        diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_TRUE(fe.contained);
  EXPECT_TRUE(fe.prog.proc(fe.prog.find_proc("F")).broken);
}

TEST(Recovery, ValidProgramIsUntouchedByRecoveryPath) {
  DiagEngine d1, d2;
  std::string_view src = corpus::get("nfq_prime").source;
  Program p1 = parse_and_check(src, d1);
  FrontEnd fe = parse_and_recover(src, d2);
  EXPECT_FALSE(d2.has_errors());
  EXPECT_TRUE(fe.contained);
  EXPECT_EQ(print_program(fe.prog), print_program(p1));
}

// --- Round-trip property: print(parse(print(p))) == print(p) -------------

class RoundTrip : public ::testing::TestWithParam<corpus::Entry> {};

TEST_P(RoundTrip, PrinterIsReparseFixpoint) {
  DiagEngine d1;
  Program p1 = parse_and_check(GetParam().source, d1);
  ASSERT_FALSE(d1.has_errors()) << d1.dump();
  std::string printed1 = print_program(p1);

  DiagEngine d2;
  Program p2 = parse_and_check(printed1, d2);
  ASSERT_FALSE(d2.has_errors()) << d2.dump() << "\n--- printed ---\n" << printed1;
  std::string printed2 = print_program(p2);
  EXPECT_EQ(printed1, printed2);
}

TEST_P(RoundTrip, ReparsePreservesShape) {
  DiagEngine d1, d2;
  Program p1 = parse_and_check(GetParam().source, d1);
  Program p2 = parse_and_check(print_program(p1), d2);
  ASSERT_FALSE(d2.has_errors()) << d2.dump();
  EXPECT_EQ(p1.num_procs(), p2.num_procs());
  EXPECT_EQ(p1.globals().size(), p2.globals().size());
  EXPECT_EQ(p1.threadlocals().size(), p2.threadlocals().size());
}

INSTANTIATE_TEST_SUITE_P(Corpus, RoundTrip,
                         ::testing::ValuesIn(corpus::all()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace synat::synl
