#include <gtest/gtest.h>

#include "synat/synl/parser.h"

namespace synat::synl {
namespace {

DiagEngine check(std::string_view src) {
  DiagEngine diags;
  parse_and_check(src, diags);
  return diags;
}

TEST(Sema, UndeclaredVariable) {
  EXPECT_TRUE(check("proc F() { x := 1; }").has_errors());
}

TEST(Sema, GlobalResolvesEverywhere) {
  EXPECT_FALSE(check("global int X; proc F() { X := 1; }").has_errors());
}

TEST(Sema, ParamResolution) {
  EXPECT_FALSE(check("proc F(int a) { return; }").has_errors());
  EXPECT_FALSE(check("proc int F(int a) { return a; }").has_errors());
}

TEST(Sema, LocalScopeEndsWithBlock) {
  EXPECT_TRUE(check(R"(
    proc F() {
      if (true) {
        local x := 1;
        skip;
      }
      return x;
    }
  )").has_errors());
}

TEST(Sema, ShadowingInNestedScopesAllowed) {
  EXPECT_FALSE(check(R"(
    proc F() {
      local x := 1 in {
        local x := 2 in {
          return x;
        }
      }
    }
  )").has_errors());
}

TEST(Sema, RedeclarationInSameScopeRejected) {
  EXPECT_TRUE(check(R"(
    proc F(int a, int a) { skip; }
  )").has_errors());
}

TEST(Sema, BreakOutsideLoop) {
  EXPECT_TRUE(check("proc F() { break; }").has_errors());
}

TEST(Sema, ContinueToUnknownLabel) {
  EXPECT_TRUE(check("proc F() { loop { continue missing; } }").has_errors());
}

TEST(Sema, UnknownField) {
  EXPECT_TRUE(check(R"(
    class Node { int v; }
    global Node N;
    proc F() { N.w := 1; }
  )").has_errors());
}

TEST(Sema, FieldOnNonReference) {
  EXPECT_TRUE(check("global int X; proc F() { X.f := 1; }").has_errors());
}

TEST(Sema, NullComparableWithRefs) {
  EXPECT_FALSE(check(R"(
    class Node { int v; }
    global Node N;
    proc F() { if (N == null) { return; } }
  )").has_errors());
}

TEST(Sema, NullNotComparableWithInt) {
  EXPECT_TRUE(check(R"(
    global int X;
    proc F() { if (X == null) { return; } }
  )").has_errors());
}

TEST(Sema, SCValueTypeChecked) {
  EXPECT_TRUE(check(R"(
    class Node { int v; }
    global int X;
    proc F() { SC(X, new Node); }
  )").has_errors());
}

TEST(Sema, LocalTypeInferredFromInit) {
  DiagEngine diags;
  Program p = parse_and_check(R"(
    class Node { int v; }
    global Node N;
    proc F() {
      local n := N in {
        n.v := 1;
      }
    }
  )", diags);
  ASSERT_FALSE(diags.has_errors()) << diags.dump();
  const ProcInfo& f = p.proc(p.find_proc("F"));
  ASSERT_EQ(f.locals.size(), 1u);
  EXPECT_EQ(p.type(p.var(f.locals[0]).type).kind, TypeKind::Ref);
}

TEST(Sema, LocalTypeFromLL) {
  DiagEngine diags;
  Program p = parse_and_check(R"(
    class Node { Node next; }
    global Node Head;
    proc F() {
      local h := LL(Head) in {
        local n := h.next in { skip; }
      }
    }
  )", diags);
  ASSERT_FALSE(diags.has_errors()) << diags.dump();
  // Both locals should be refs to Node, so h.next resolved.
  const ProcInfo& f = p.proc(p.find_proc("F"));
  ASSERT_EQ(f.locals.size(), 2u);
  for (VarId v : f.locals)
    EXPECT_EQ(p.type(p.var(v).type).kind, TypeKind::Ref);
}

TEST(Sema, DuplicateProcedures) {
  EXPECT_TRUE(check("proc F() { skip; } proc F() { skip; }").has_errors());
}

TEST(Sema, DuplicateGlobals) {
  EXPECT_TRUE(check("global int X; global int X; proc F() { skip; }").has_errors());
}

TEST(Sema, ArrayTypesAndIndexing) {
  EXPECT_FALSE(check(R"(
    class Obj { int[] data; }
    global Obj O;
    proc F(int i) { O.data[i] := O.data[i] + 1; }
  )").has_errors());
}

TEST(Sema, BoolArrayIndexRejected) {
  EXPECT_TRUE(check(R"(
    class Obj { int[] data; }
    global Obj O;
    proc F() { O.data[true] := 1; }
  )").has_errors());
}

}  // namespace
}  // namespace synat::synl
