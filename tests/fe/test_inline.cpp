#include <gtest/gtest.h>

#include "synat/interp/interp.h"
#include "synat/synl/inline.h"
#include "synat/synl/parser.h"
#include "synat/synl/printer.h"

namespace synat::synl {
namespace {

Program parse_ok(std::string_view src) {
  DiagEngine diags;
  Program p = parse_and_check(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.dump();
  return p;
}

/// Runs procedure `name` single-threaded and returns its result.
interp::Value run1(const Program& p, std::string_view name,
                   std::vector<interp::Value> args = {}) {
  DiagEngine diags;
  interp::CompiledProgram cp = interp::compile_program(p, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.dump();
  interp::Interp in(cp);
  interp::State s = in.initial_state({{cp.find_index(name), std::move(args)}});
  std::string err;
  EXPECT_EQ(in.run_thread(s, 0, &err), interp::StepResult::Done) << err;
  return s.threads[0].ret;
}

TEST(Inline, StatementCall) {
  Program p = parse_ok(R"(
    global int X;
    proc Bump() { X := X + 1; }
    proc F() {
      Bump();
      Bump();
    }
  )");
  // No Call expressions survive.
  for_each_expr_in_stmt(p, p.proc(p.find_proc("F")).body, [&](ExprId e) {
    EXPECT_NE(p.expr(e).kind, ExprKind::Call);
  });
  EXPECT_EQ(run1(p, "F").kind, interp::Value::Ref);  // unit/null return
}

TEST(Inline, ValueCallIntoLocal) {
  Program p = parse_ok(R"(
    proc int Twice(int v) { return v * 2; }
    proc int F(int a) {
      local t := Twice(a + 1) in {
        return t + 3;
      }
    }
  )");
  EXPECT_EQ(run1(p, "F", {interp::Value::of_int(5)}).i, 15);  // (5+1)*2+3
}

TEST(Inline, ValueCallIntoAssignment) {
  Program p = parse_ok(R"(
    global int G;
    proc int Plus(int a, int b) { return a + b; }
    proc F() {
      G := Plus(40, 2);
    }
  )");
  run1(p, "F");
  // Verified through the interpreter in ValueCallSemantics below; here we
  // check the structural property: the assignment became an expansion.
  bool has_loop = false;
  for_each_stmt(p, p.proc(p.find_proc("F")).body, [&](StmtId s) {
    if (p.stmt(s).kind == StmtKind::Loop) has_loop = true;
  });
  EXPECT_TRUE(has_loop);
}

TEST(Inline, ValueCallSemantics) {
  Program p = parse_ok(R"(
    global int G;
    proc int Plus(int a, int b) { return a + b; }
    proc int F() {
      G := Plus(40, 2);
      return G;
    }
  )");
  EXPECT_EQ(run1(p, "F").i, 42);
}

TEST(Inline, EarlyReturnInsideCallee) {
  Program p = parse_ok(R"(
    proc int Clamp(int v) {
      if (v > 10) { return 10; }
      return v;
    }
    proc int F(int a) {
      local c := Clamp(a) in {
        return c;
      }
    }
  )");
  EXPECT_EQ(run1(p, "F", {interp::Value::of_int(99)}).i, 10);
  EXPECT_EQ(run1(p, "F", {interp::Value::of_int(7)}).i, 7);
}

TEST(Inline, CalleeWithLoop) {
  Program p = parse_ok(R"(
    proc int Sum(int n) {
      local acc := 0 in
      local i := 0 in {
        while (i < n) {
          acc := acc + i;
          i := i + 1;
        }
        return acc;
      }
    }
    proc int F() {
      local s := Sum(5) in {
        return s;
      }
    }
  )");
  EXPECT_EQ(run1(p, "F").i, 10);
}

TEST(Inline, NestedCalls) {
  Program p = parse_ok(R"(
    proc int Inc(int v) { return v + 1; }
    proc int Inc2(int v) {
      local a := Inc(v) in
      local b := Inc(a) in {
        return b;
      }
    }
    proc int F() {
      local r := Inc2(40) in {
        return r;
      }
    }
  )");
  EXPECT_EQ(run1(p, "F").i, 42);
}

TEST(Inline, NameCollisionAvoided) {
  // Caller and callee both use `x`; the expansion must not capture.
  Program p = parse_ok(R"(
    proc int Sq(int x) { return x * x; }
    proc int F() {
      local x := 3 in
      local y := Sq(x + 1) in {
        return y + x;   // 16 + 3
      }
    }
  )");
  EXPECT_EQ(run1(p, "F").i, 19);
}

TEST(Inline, RecursionRejected) {
  DiagEngine diags;
  parse_and_check(R"(
    proc int F(int n) {
      local r := F(n - 1) in {
        return r;
      }
    }
  )", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.dump().find("recursive"), std::string::npos);
}

TEST(Inline, MutualRecursionRejected) {
  DiagEngine diags;
  parse_and_check(R"(
    proc A() { B(); }
    proc B() { A(); }
  )", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Inline, UnknownCalleeRejected) {
  DiagEngine diags;
  parse_and_check("proc F() { Missing(); }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Inline, ArgumentCountChecked) {
  DiagEngine diags;
  parse_and_check(R"(
    proc G(int a) { skip; }
    proc F() { G(1, 2); }
  )", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Inline, CallInExpressionPositionRejected) {
  DiagEngine diags;
  parse_and_check(R"(
    proc int G() { return 1; }
    proc int F() { return G() + 1; }
  )", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Inline, ShadowingArgumentRejected) {
  DiagEngine diags;
  parse_and_check(R"(
    proc int G(int a) { return a; }
    proc int F() {
      local x := 1 in
      local x := G(x) in {   // the argument refers to the outer x
        return x;
      }
    }
  )", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Inline, InlinedNonBlockingCalleeStaysAnalyzable) {
  // The inlined single-iteration loop must not confuse the analyses: the
  // expansion region is loop-shaped but has no back edges.
  Program p = parse_ok(R"(
    global int S;
    proc int Down() {
      loop {
        local tmp := LL(S) in {
          if (tmp > 0) {
            if (SC(S, tmp - 1)) { return tmp; }
          }
        }
      }
    }
    proc int Grab() {
      local got := Down() in {
        return got;
      }
    }
  )");
  // Grab compiles and runs (with S > 0).
  DiagEngine diags;
  interp::CompiledProgram cp = interp::compile_program(p, diags);
  interp::Interp in(cp);
  interp::State s = in.initial_state({{cp.find_index("Grab"), {}}});
  s.globals[0] = interp::Value::of_int(2);
  std::string err;
  ASSERT_EQ(in.run_thread(s, 0, &err), interp::StepResult::Done) << err;
  EXPECT_EQ(s.threads[0].ret.i, 2);
  EXPECT_EQ(s.globals[0].i, 1);
}

}  // namespace
}  // namespace synat::synl
