#include <gtest/gtest.h>

#include "synat/analysis/expr_util.h"
#include "synat/synl/parser.h"

namespace synat::analysis {
namespace {

using synl::Program;

struct Fixture {
  DiagEngine diags;
  Program prog;

  explicit Fixture(std::string_view src)
      : prog(synl::parse_and_check(src, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
  }

  synl::VarId var(std::string_view name) const {
    Symbol s = prog.syms().lookup(name);
    for (size_t i = 0; i < prog.num_vars(); ++i) {
      synl::VarId v(static_cast<uint32_t>(i));
      if (prog.var(v).name == s) return v;
    }
    return {};
  }

  /// The RHS expression of the first assignment in procedure F.
  synl::ExprId first_rhs() const {
    synl::ExprId out;
    synl::for_each_stmt(prog, prog.proc(prog.find_proc("F")).body,
                        [&](synl::StmtId sid) {
                          const synl::Stmt& s = prog.stmt(sid);
                          if (s.kind == synl::StmtKind::Assign && !out.valid())
                            out = s.e2;
                        });
    return out;
  }

  AccessPath path(std::string_view root, std::string_view field = {}) const {
    AccessPath p;
    p.root = var(root);
    if (!field.empty())
      p.sels.push_back({cfg::Selector::Field, prog.syms().lookup(field)});
    return p;
  }
};

TEST(MentionsAsValue, DirectReference) {
  Fixture f(R"(
    class Node { int v; }
    global Node G;
    proc F() {
      local n := new Node in {
        G := n;
      }
    }
  )");
  EXPECT_TRUE(mentions_as_value(f.prog, f.first_rhs(), f.var("n")));
}

TEST(MentionsAsValue, BasePointerDoesNotCount) {
  Fixture f(R"(
    class Node { int v; }
    global int G;
    proc F() {
      local n := new Node in {
        G := n.v;
      }
    }
  )");
  // Reading n.v dereferences n but does not let the reference escape.
  EXPECT_FALSE(mentions_as_value(f.prog, f.first_rhs(), f.var("n")));
}

TEST(MentionsAsValue, ComparisonDoesNotCount) {
  Fixture f(R"(
    class Node { int v; }
    global bool G;
    proc F() {
      local n := new Node in {
        G := n == null;
      }
    }
  )");
  EXPECT_FALSE(mentions_as_value(f.prog, f.first_rhs(), f.var("n")));
}

TEST(MayAlias, PlainVariables) {
  Fixture f("global int A; global int B; proc F() { A := B; }");
  EXPECT_TRUE(may_alias(f.prog, f.path("A"), f.path("A")));
  EXPECT_FALSE(may_alias(f.prog, f.path("A"), f.path("B")));
}

TEST(MayAlias, SameClassSameField) {
  Fixture f(R"(
    class Node { int v; Node next; }
    proc F(Node a, Node b) { a.v := b.v; }
  )");
  EXPECT_TRUE(may_alias(f.prog, f.path("a", "v"), f.path("b", "v")));
  EXPECT_FALSE(may_alias(f.prog, f.path("a", "v"), f.path("b", "next")));
}

TEST(MayAlias, DifferentClassesSameFieldName) {
  Fixture f(R"(
    class A { int v; }
    class B { int v; }
    proc F(A a, B b) { a.v := b.v; }
  )");
  EXPECT_FALSE(may_alias(f.prog, f.path("a", "v"), f.path("b", "v")));
}

TEST(MayAlias, VariableNeverAliasesHeap) {
  Fixture f(R"(
    class Node { Node Next; }
    global Node Tail;
    proc F(Node t) { Tail := t.Next; }
  )");
  EXPECT_FALSE(may_alias(f.prog, f.path("Tail"), f.path("t", "Next")));
}

TEST(MayAlias, ArrayElements) {
  Fixture f(R"(
    class Obj { int[] data; int[] version; }
    proc F(Obj a, Obj b) { a.data[0] := b.data[1]; }
  )");
  AccessPath ad = f.path("a", "data");
  ad.sels.push_back({cfg::Selector::Index, {}});
  AccessPath bd = f.path("b", "data");
  bd.sels.push_back({cfg::Selector::Index, {}});
  // Same element type: may alias (indices are abstracted).
  EXPECT_TRUE(may_alias(f.prog, ad, bd));
  // Field access never aliases an element access.
  EXPECT_FALSE(may_alias(f.prog, ad, f.path("a", "data")));
}

TEST(PathTypes, WalksSelectors) {
  Fixture f(R"(
    class Node { int v; Node next; }
    proc F(Node a) { a.v := 0; }
  )");
  AccessPath av = f.path("a", "v");
  synl::TypeId holder = path_prefix_type(f.prog, av);
  ASSERT_TRUE(holder.valid());
  EXPECT_EQ(f.prog.type(holder).kind, synl::TypeKind::Ref);
  synl::TypeId leaf = path_type(f.prog, av);
  ASSERT_TRUE(leaf.valid());
  EXPECT_EQ(f.prog.type(leaf).kind, synl::TypeKind::Int);
}

TEST(ReadsExactly, MatchesLocationAndLL) {
  Fixture f(R"(
    global int X;
    global int Y;
    proc F() {
      local a := X in {
        local b := LL(X) in { skip; }
      }
    }
  )");
  AccessPath x = f.path("X");
  AccessPath y = f.path("Y");
  // Find the two initializer expressions.
  std::vector<synl::ExprId> inits;
  synl::for_each_stmt(f.prog, f.prog.proc(f.prog.find_proc("F")).body,
                      [&](synl::StmtId sid) {
                        if (f.prog.stmt(sid).kind == synl::StmtKind::Local)
                          inits.push_back(f.prog.stmt(sid).e1);
                      });
  ASSERT_EQ(inits.size(), 2u);
  EXPECT_TRUE(reads_exactly(f.prog, inits[0], x));
  EXPECT_TRUE(reads_exactly(f.prog, inits[1], x));  // LL(X) counts
  EXPECT_FALSE(reads_exactly(f.prog, inits[0], y));
}

}  // namespace
}  // namespace synat::analysis
