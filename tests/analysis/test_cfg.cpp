#include <gtest/gtest.h>

#include "synat/cfg/cfg.h"
#include "synat/corpus/corpus.h"
#include "synat/synl/parser.h"

namespace synat::cfg {
namespace {

using synl::Program;

Program parse_ok(std::string_view src) {
  DiagEngine diags;
  Program p = synl::parse_and_check(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.dump();
  return p;
}

// --- structural invariants over the whole corpus --------------------------

class CfgInvariants : public ::testing::TestWithParam<corpus::Entry> {};

TEST_P(CfgInvariants, EdgesAreMirrored) {
  Program p = parse_ok(GetParam().source);
  for (size_t i = 0; i < p.num_procs(); ++i) {
    Cfg cfg = build_cfg(p, synl::ProcId(static_cast<uint32_t>(i)));
    for (uint32_t n = 0; n < cfg.num_nodes(); ++n) {
      for (const Edge& e : cfg.succs(EventId(n))) {
        bool mirrored = false;
        for (const Edge& back : cfg.preds(e.to))
          if (back.to == EventId(n) && back.kind == e.kind) mirrored = true;
        EXPECT_TRUE(mirrored) << "succ edge without matching pred";
      }
    }
  }
}

TEST_P(CfgInvariants, EntryHasNoPredsExitNoSuccs) {
  Program p = parse_ok(GetParam().source);
  for (size_t i = 0; i < p.num_procs(); ++i) {
    Cfg cfg = build_cfg(p, synl::ProcId(static_cast<uint32_t>(i)));
    EXPECT_TRUE(cfg.preds(cfg.entry()).empty());
    EXPECT_TRUE(cfg.succs(cfg.exit()).empty());
  }
}

TEST_P(CfgInvariants, BackEdgeSourcesAreLoopMembers) {
  Program p = parse_ok(GetParam().source);
  for (size_t i = 0; i < p.num_procs(); ++i) {
    Cfg cfg = build_cfg(p, synl::ProcId(static_cast<uint32_t>(i)));
    for (const LoopInfo& loop : cfg.loops()) {
      for (EventId src : loop.back_sources) {
        EXPECT_TRUE(cfg.in_loop(src, loop.stmt));
      }
    }
  }
}

TEST_P(CfgInvariants, ActionsHaveValidPathsWhereExpected) {
  Program p = parse_ok(GetParam().source);
  for (size_t i = 0; i < p.num_procs(); ++i) {
    Cfg cfg = build_cfg(p, synl::ProcId(static_cast<uint32_t>(i)));
    for (uint32_t n = 0; n < cfg.num_nodes(); ++n) {
      const Event& ev = cfg.node(EventId(n));
      switch (ev.kind) {
        case EventKind::Read:
        case EventKind::Write:
        case EventKind::LL:
        case EventKind::VL:
        case EventKind::SC:
        case EventKind::CAS:
          EXPECT_TRUE(ev.path.root.valid())
              << "action without location in " << cfg.dump(p);
          break;
        default:
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CfgInvariants,
                         ::testing::ValuesIn(corpus::all()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// --- targeted shape checks -------------------------------------------------

TEST(Cfg, StraightLineOrder) {
  Program p = parse_ok(R"(
    global int X;
    proc F() {
      local a := X in {
        X := a + 1;
      }
    }
  )");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  // entry -> Read(X) -> Write(a) -> Read(a) -> Write(X) -> exit
  std::vector<EventKind> kinds;
  EventId cur = cfg.entry();
  while (cur != cfg.exit()) {
    ASSERT_EQ(cfg.succs(cur).size(), 1u);
    cur = cfg.succs(cur)[0].to;
    kinds.push_back(cfg.node(cur).kind);
  }
  std::vector<EventKind> expect = {EventKind::Read, EventKind::Write,
                                   EventKind::Read, EventKind::Write,
                                   EventKind::Exit};
  EXPECT_EQ(kinds, expect);
}

TEST(Cfg, IfProducesTrueFalseEdges) {
  Program p = parse_ok("proc F(int a) { if (a > 0) { return; } }");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  int true_edges = 0, false_edges = 0;
  for (uint32_t n = 0; n < cfg.num_nodes(); ++n) {
    for (const Edge& e : cfg.succs(EventId(n))) {
      if (e.kind == EdgeKind::True) ++true_edges;
      if (e.kind == EdgeKind::False) ++false_edges;
    }
  }
  EXPECT_EQ(true_edges, 1);
  EXPECT_EQ(false_edges, 1);
}

TEST(Cfg, LoopHasBackEdge) {
  Program p = parse_ok("global int X; proc F() { loop { X := X + 1; } }");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  ASSERT_EQ(cfg.loops().size(), 1u);
  EXPECT_FALSE(cfg.loops()[0].back_sources.empty());
}

TEST(Cfg, BreakLeavesLoop) {
  Program p = parse_ok("proc F() { loop { break; } return; }");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  // The exit must be reachable from entry.
  auto reach = cfg.reachable(cfg.entry(), [](EventId) { return true; });
  EXPECT_TRUE(reach.count(cfg.exit()));
}

TEST(Cfg, SynchronizedEmitsAcquireRelease) {
  Program p = parse_ok(R"(
    class L { int d; }
    global L M;
    global int C;
    proc F() { synchronized (M) { C := 1; } }
  )");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  int acq = 0, rel = 0;
  for (uint32_t n = 0; n < cfg.num_nodes(); ++n) {
    if (cfg.node(EventId(n)).kind == EventKind::Acquire) ++acq;
    if (cfg.node(EventId(n)).kind == EventKind::Release) ++rel;
  }
  EXPECT_EQ(acq, 1);
  EXPECT_EQ(rel, 1);
}

TEST(Cfg, ReturnInsideSynchronizedReleasesLock) {
  Program p = parse_ok(R"(
    class L { int d; }
    global L M;
    proc F() { synchronized (M) { return; } }
  )");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  // Two releases: one on the return path, one structural at block end
  // (the structural one is unreachable but present).
  int rel = 0;
  for (uint32_t n = 0; n < cfg.num_nodes(); ++n)
    if (cfg.node(EventId(n)).kind == EventKind::Release) ++rel;
  EXPECT_EQ(rel, 2);
  // On every path from entry to exit, #acquire == #release; the single
  // reachable path here is acquire then the jump-release.
  EventId cur = cfg.entry();
  int depth = 0;
  while (cur != cfg.exit()) {
    ASSERT_FALSE(cfg.succs(cur).empty());
    cur = cfg.succs(cur)[0].to;
    if (cfg.node(cur).kind == EventKind::Acquire) ++depth;
    if (cfg.node(cur).kind == EventKind::Release) --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(Cfg, BaseReadsAreFlagged) {
  Program p = parse_ok(R"(
    class Node { int v; }
    global Node N;
    proc F() {
      local x := N.v in { skip; }
    }
  )");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  bool base_read_n = false, value_read_nv = false;
  for (uint32_t n = 0; n < cfg.num_nodes(); ++n) {
    const Event& ev = cfg.node(EventId(n));
    if (ev.kind != EventKind::Read) continue;
    if (ev.path.is_plain_var() && ev.is_base) base_read_n = true;
    if (!ev.path.is_plain_var() && !ev.is_base) value_read_nv = true;
  }
  EXPECT_TRUE(base_read_n);
  EXPECT_TRUE(value_read_nv);
}

TEST(Cfg, AssumeFalseIsDeadEnd) {
  Program p = parse_ok("global int X; proc F() { TRUE(false); X := 1; }");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  // The write after TRUE(false) must be unreachable from entry.
  auto reach = cfg.reachable(cfg.entry(), [](EventId) { return true; });
  for (uint32_t n = 0; n < cfg.num_nodes(); ++n) {
    const Event& ev = cfg.node(EventId(n));
    if (ev.kind == EventKind::Write) {
      EXPECT_FALSE(reach.count(EventId(n)));
    }
  }
}

TEST(Cfg, MustSucceedPolarity) {
  Program p = parse_ok(R"(
    global int X;
    proc F() {
      local a := LL(X) in {
        TRUE(SC(X, a));        // positive: must succeed
        TRUE(!SC(X, a));       // negated: may not
        TRUE(VL(X) && a > 0);  // conjunction keeps polarity
      }
    }
  )");
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  std::vector<bool> sc_flags;
  bool vl_flag = false;
  for (uint32_t n = 0; n < cfg.num_nodes(); ++n) {
    const Event& ev = cfg.node(EventId(n));
    if (ev.kind == EventKind::SC) sc_flags.push_back(ev.must_succeed);
    if (ev.kind == EventKind::VL) vl_flag = ev.must_succeed;
  }
  ASSERT_EQ(sc_flags.size(), 2u);
  EXPECT_TRUE(sc_flags[0]);
  EXPECT_FALSE(sc_flags[1]);
  EXPECT_TRUE(vl_flag);
}

}  // namespace
}  // namespace synat::cfg
