#include <gtest/gtest.h>

#include "synat/analysis/proc_analysis.h"
#include "synat/corpus/corpus.h"
#include "synat/synl/parser.h"

namespace synat::analysis {
namespace {

using synl::Program;

struct Fixture {
  DiagEngine diags;
  Program prog;
  std::unique_ptr<ProcAnalysis> pa;

  explicit Fixture(std::string_view src, std::string_view proc)
      : prog(synl::parse_and_check(src, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
    pa = std::make_unique<ProcAnalysis>(prog, prog.find_proc(proc));
  }

  synl::VarId var(std::string_view name) const {
    Symbol s = prog.syms().lookup(name);
    for (size_t i = 0; i < prog.num_vars(); ++i) {
      synl::VarId v(static_cast<uint32_t>(i));
      if (prog.var(v).name == s) return v;
    }
    return {};
  }
};

TEST(Unique, HerlihyWorkingCopyRecognized) {
  Fixture s(corpus::get("herlihy_small").source, "Apply");
  EXPECT_TRUE(s.pa->unique().is_working_copy(s.var("prv")));
}

TEST(Unique, GaoHesselinkWorkingCopyRecognized) {
  Fixture s(corpus::get("gh_large_v3").source, "Apply");
  EXPECT_TRUE(s.pa->unique().is_working_copy(s.var("prvObj")));
}

TEST(Unique, DerefBeforeRetirementDisqualifies) {
  Fixture s(R"(
    class Node { int data; }
    global Node Q;
    threadlocal Node prv;
    proc Apply() {
      loop {
        local m := LL(Q) in {
          if (SC(Q, prv)) {
            prv.data := 1;   // deref of the now-shared object
            prv := m;
            return;
          }
        }
      }
    }
  )", "Apply");
  EXPECT_FALSE(s.pa->unique().is_working_copy(s.var("prv")));
}

TEST(Unique, MissingRetirementDisqualifies) {
  Fixture s(R"(
    class Node { int data; }
    global Node Q;
    threadlocal Node prv;
    proc Apply() {
      loop {
        local m := LL(Q) in {
          if (SC(Q, prv)) {
            return;   // prv still points at the published object
          }
        }
      }
    }
  )", "Apply");
  EXPECT_FALSE(s.pa->unique().is_working_copy(s.var("prv")));
}

TEST(Unique, FailurePathNeedsNoRetirement) {
  // GH's `else prvObj.version[g] := 0` executes after a FAILED SC; that is
  // a deref of the still-private object and must be allowed.
  Fixture s(R"(
    class Obj { int[] version; }
    global Obj SharedObj;
    threadlocal Obj prvObj;
    proc Apply(int g) {
      loop {
        local m := LL(SharedObj) in {
          prvObj.version[g] := 1;
          if (SC(SharedObj, prvObj)) {
            prvObj := m;
            return;
          } else {
            prvObj.version[g] := 0;
          }
        }
      }
    }
  )", "Apply");
  EXPECT_TRUE(s.pa->unique().is_working_copy(s.var("prvObj")));
}

TEST(Unique, PlainStoreToGlobalDisqualifies) {
  Fixture s(R"(
    class Node { int data; }
    global Node Q;
    threadlocal Node prv;
    proc Apply() {
      Q := prv;
      prv := new Node;
    }
  )", "Apply");
  EXPECT_FALSE(s.pa->unique().is_working_copy(s.var("prv")));
}

TEST(Unique, ReturningTheReferenceDisqualifies) {
  Fixture s(R"(
    class Node { int data; }
    threadlocal Node prv;
    proc Node Apply() {
      return prv;
    }
  )", "Apply");
  EXPECT_FALSE(s.pa->unique().is_working_copy(s.var("prv")));
}

TEST(Unique, NonRefVarsIgnored) {
  Fixture s(R"(
    threadlocal int counter;
    proc Apply() {
      counter := counter + 1;
    }
  )", "Apply");
  EXPECT_FALSE(s.pa->unique().is_working_copy(s.var("counter")));
}

}  // namespace
}  // namespace synat::analysis
