#include <gtest/gtest.h>

#include "synat/cfg/liveness.h"
#include "synat/synl/parser.h"

namespace synat::cfg {
namespace {

using synl::Program;

struct Fixture {
  Program prog;
  Cfg cfg;
};

Fixture make(std::string_view src) {
  DiagEngine diags;
  Program p = synl::parse_and_check(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.dump();
  Cfg cfg = build_cfg(p, synl::ProcId(0));
  return {std::move(p), std::move(cfg)};
}

AccessPath var_path(const Program& p, std::string_view name) {
  AccessPath path;
  Symbol s = p.syms().lookup(name);
  for (size_t i = 0; i < p.num_vars(); ++i) {
    if (p.var(synl::VarId(static_cast<uint32_t>(i))).name == s)
      path.root = synl::VarId(static_cast<uint32_t>(i));
  }
  return path;
}

EventId loop_head(const Cfg& cfg, size_t index = 0) {
  return cfg.loops().at(index).head;
}

TEST(Liveness, DeadWhenRewrittenEachIteration) {
  auto s = make(R"(
    global int X;
    proc F() {
      loop {
        local t := X in {
          if (t > 0) { return; }
        }
      }
    }
  )");
  // `t` is rewritten at the top of every iteration: dead at the loop head.
  EXPECT_FALSE(live_after(s.prog, s.cfg, loop_head(s.cfg), var_path(s.prog, "t")));
}

TEST(Liveness, LiveWhenReadNextIteration) {
  auto s = make(R"(
    global int X;
    proc F() {
      local i := 0 in {
        loop {
          if (i > 3) { return; }
          i := i + 1;
        }
      }
    }
  )");
  // `i` is read at the top of the next iteration before being written.
  EXPECT_TRUE(live_after(s.prog, s.cfg, loop_head(s.cfg), var_path(s.prog, "i")));
}

TEST(Liveness, ThreadLocalLiveAtExit) {
  auto s = make(R"(
    threadlocal int T;
    global int X;
    proc F() {
      loop {
        if (X > 0) { T := 1; }
        return;
      }
    }
  )");
  // The False branch reaches Exit without touching T; since T survives the
  // call (thread-local), that path counts as a use.
  EXPECT_TRUE(live_after(s.prog, s.cfg, loop_head(s.cfg), var_path(s.prog, "T")));
}

TEST(Liveness, ThreadLocalDeadWhenWriteDominatesExit) {
  auto s = make(R"(
    threadlocal int T;
    proc F() {
      loop {
        T := 1;
        return;
      }
    }
  )");
  // Every path from the loop head rewrites T first: dead even though T is
  // thread-local.
  EXPECT_FALSE(live_after(s.prog, s.cfg, loop_head(s.cfg), var_path(s.prog, "T")));
}

TEST(Liveness, ProcLocalDeadAtExit) {
  auto s = make(R"(
    proc F() {
      local t := 0 in {
        loop {
          t := 1;
          return;
        }
      }
    }
  )");
  EXPECT_FALSE(live_after(s.prog, s.cfg, loop_head(s.cfg), var_path(s.prog, "t")));
}

TEST(Liveness, FieldPathThroughUniquePointer) {
  auto s = make(R"(
    class Node { int data; }
    global Node Q;
    threadlocal Node prv;
    proc F() {
      loop {
        local m := LL(Q) in {
          prv.data := m.data;
          if (!VL(Q)) { continue; }
          if (SC(Q, prv)) { prv := m; return; }
        }
      }
    }
  )");
  AccessPath prv_data = var_path(s.prog, "prv");
  prv_data.sels.push_back({Selector::Field, s.prog.syms().lookup("data")});
  // prv.data is rewritten by the copy at the top of every path from the
  // loop head before any value read: dead (this is what makes the Herlihy
  // loop pure).
  EXPECT_FALSE(live_after(s.prog, s.cfg, loop_head(s.cfg), prv_data));
}

TEST(Liveness, ValueReadOfPrefixIsUse) {
  auto s = make(R"(
    class Node { int data; }
    global Node Q;
    threadlocal Node prv;
    proc F() {
      loop {
        SC(Q, prv);          // value-read of prv: lets prv.data escape
        prv.data := 0;
        return;
      }
    }
  )");
  AccessPath prv_data = var_path(s.prog, "prv");
  prv_data.sels.push_back({Selector::Field, s.prog.syms().lookup("data")});
  EXPECT_TRUE(live_after(s.prog, s.cfg, loop_head(s.cfg), prv_data));
}

TEST(AccessEffect, BaseReadIsNotUse) {
  Event ev;
  ev.kind = EventKind::Read;
  ev.is_base = true;
  ev.path.root = synl::VarId(3);
  AccessPath q;
  q.root = synl::VarId(3);
  EXPECT_EQ(access_effect(ev, q), AccessEffect::None);
  ev.is_base = false;
  EXPECT_EQ(access_effect(ev, q), AccessEffect::Use);
}

TEST(AccessEffect, WriteToPrefixKills) {
  Event ev;
  ev.kind = EventKind::Write;
  ev.path.root = synl::VarId(3);  // write of the pointer itself
  AccessPath q;
  q.root = synl::VarId(3);
  q.sels.push_back({Selector::Field, {}});
  EXPECT_EQ(access_effect(ev, q), AccessEffect::Kill);
}

TEST(AccessEffect, ScIsUseNotKill) {
  Event ev;
  ev.kind = EventKind::SC;
  ev.path.root = synl::VarId(3);
  AccessPath q;
  q.root = synl::VarId(3);
  EXPECT_EQ(access_effect(ev, q), AccessEffect::Use);
}

TEST(AccessEffect, DifferentRootsIgnored) {
  Event ev;
  ev.kind = EventKind::Write;
  ev.path.root = synl::VarId(3);
  AccessPath q;
  q.root = synl::VarId(4);
  EXPECT_EQ(access_effect(ev, q), AccessEffect::None);
}

}  // namespace
}  // namespace synat::cfg
