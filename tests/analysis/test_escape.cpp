#include <gtest/gtest.h>

#include "synat/analysis/proc_analysis.h"
#include "synat/synl/parser.h"

namespace synat::analysis {
namespace {

using synl::Program;

struct Fixture {
  DiagEngine diags;
  Program prog;
  std::unique_ptr<ProcAnalysis> pa;

  explicit Fixture(std::string_view src, std::string_view proc = "F")
      : prog(synl::parse_and_check(src, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
    pa = std::make_unique<ProcAnalysis>(prog, prog.find_proc(proc));
  }

  synl::VarId var(std::string_view name) const {
    Symbol s = prog.syms().lookup(name);
    for (size_t i = 0; i < prog.num_vars(); ++i) {
      synl::VarId v(static_cast<uint32_t>(i));
      if (prog.var(v).name == s) return v;
    }
    return {};
  }

  /// First event of the given kind that dereferences `root` (plain-variable
  /// accesses like the declaration's own write do not count).
  cfg::EventId event_on(cfg::EventKind kind, synl::VarId root) const {
    const cfg::Cfg& cfg = pa->cfg();
    for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
      const cfg::Event& ev = cfg.node(cfg::EventId(i));
      if (ev.kind == kind && ev.path.root == root && !ev.path.is_plain_var())
        return cfg::EventId(i);
    }
    return {};
  }
};

TEST(Escape, FreshLocalUnescapedBeforePublication) {
  Fixture s(R"(
    class Node { int v; Node next; }
    global Node G;
    proc F() {
      local n := new Node in {
        n.v := 1;
        G := n;
        n.v := 2;
      }
    }
  )");
  synl::VarId n = s.var("n");
  EXPECT_TRUE(s.pa->escape().is_fresh_var(n));

  // Find the two writes to n.v: first is unescaped, second escaped.
  const cfg::Cfg& cfg = s.pa->cfg();
  std::vector<cfg::EventId> writes;
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    const cfg::Event& ev = cfg.node(cfg::EventId(i));
    if (ev.kind == cfg::EventKind::Write && ev.path.root == n &&
        !ev.path.is_plain_var())
      writes.push_back(cfg::EventId(i));
  }
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_TRUE(s.pa->escape().unescaped_at(writes[0], n));
  EXPECT_FALSE(s.pa->escape().unescaped_at(writes[1], n));
}

TEST(Escape, NonFreshVarNeverUnescaped) {
  Fixture s(R"(
    class Node { int v; }
    global Node G;
    proc F() {
      local n := G in {
        n.v := 1;
      }
    }
  )");
  synl::VarId n = s.var("n");
  EXPECT_FALSE(s.pa->escape().is_fresh_var(n));
}

TEST(Escape, CopyToAnotherVariableLeaks) {
  Fixture s(R"(
    class Node { int v; }
    proc F() {
      local n := new Node in {
        local m := n in {
          n.v := 1;
        }
      }
    }
  )");
  synl::VarId n = s.var("n");
  cfg::EventId w = s.event_on(cfg::EventKind::Write, n);
  // The only deref-write to n.v happens after the alias was created.
  ASSERT_TRUE(w.valid());
  EXPECT_FALSE(s.pa->escape().unescaped_at(w, n));
}

TEST(Escape, FailedCasDoesNotPublish) {
  Fixture s(R"(
    class Node { int v; Node next; }
    global Node Top;
    proc F(int v) {
      local n := new Node in {
        n.v := v;
        loop {
          local top := Top in {
            n.next := top;
            if (CAS(Top, top, n)) { return; }
          }
        }
      }
    }
  )");
  synl::VarId n = s.var("n");
  // The write n.next := top executes again after a FAILED CAS; since
  // failure does not publish, it must still be considered unescaped.
  const cfg::Cfg& cfg = s.pa->cfg();
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    const cfg::Event& ev = cfg.node(cfg::EventId(i));
    if (ev.kind == cfg::EventKind::Write && ev.path.root == n &&
        !ev.path.is_plain_var() &&
        ev.path.last_field() == s.prog.syms().lookup("next")) {
      EXPECT_TRUE(s.pa->escape().unescaped_at(cfg::EventId(i), n));
    }
  }
}

TEST(Escape, SuccessfulScPublishes) {
  Fixture s(R"(
    class Node { int v; Node next; }
    global Node Tail;
    proc F() {
      local n := new Node in {
        TRUE(SC(Tail, n));
        n.v := 1;
      }
    }
  )");
  synl::VarId n = s.var("n");
  cfg::EventId w = s.event_on(cfg::EventKind::Write, n);
  ASSERT_TRUE(w.valid());
  EXPECT_FALSE(s.pa->escape().unescaped_at(w, n));
}

TEST(Escape, ReturnedReferenceLeaks) {
  Fixture s(R"(
    class Node { int v; }
    proc Node F() {
      local n := new Node in {
        return n;
      }
    }
  )");
  // Freshness holds, but after the return-read the object has escaped; the
  // variable is still fresh overall.
  EXPECT_TRUE(s.pa->escape().is_fresh_var(s.var("n")));
}

TEST(Escape, ParamsAreNotFresh) {
  Fixture s(R"(
    class Node { int v; }
    proc F(Node p) {
      p.v := 1;
    }
  )");
  EXPECT_FALSE(s.pa->escape().is_fresh_var(s.var("p")));
}

}  // namespace
}  // namespace synat::analysis
