#include <gtest/gtest.h>

#include "synat/analysis/proc_analysis.h"
#include "synat/corpus/corpus.h"
#include "synat/synl/parser.h"

namespace synat::analysis {
namespace {

using synl::Program;

struct Fixture {
  DiagEngine diags;
  Program prog;
  std::unique_ptr<ProcAnalysis> pa;

  explicit Fixture(std::string_view src, std::string_view proc)
      : prog(synl::parse_and_check(src, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
    pa = std::make_unique<ProcAnalysis>(prog, prog.find_proc(proc));
  }

  /// Purity of the `index`-th loop (in CFG construction order).
  bool loop_pure(size_t index = 0) const {
    const auto& loops = pa->cfg().loops();
    EXPECT_LT(index, loops.size());
    return pa->purity().is_pure(loops[index].stmt);
  }
  const LoopPurity* loop_result(size_t index = 0) const {
    return pa->purity().result(pa->cfg().loops()[index].stmt);
  }
};

TEST(Purity, SemaphoreDownIsPure) {
  Fixture s(corpus::get("semaphore_down").source, "Down");
  EXPECT_TRUE(s.loop_pure());
}

TEST(Purity, NfqPrimeLoopsArePure) {
  for (const char* proc : {"AddNode", "UpdateTail", "Deq"}) {
    Fixture s(corpus::get("nfq_prime").source, proc);
    EXPECT_TRUE(s.loop_pure()) << proc << ": "
        << (s.loop_result() ? s.loop_result()->reasons.size() : 0u);
  }
}

TEST(Purity, OriginalNfqLoopsAreImpure) {
  // The paper's motivation for NFQ': Enq and Deq update Tail in normally
  // terminating iterations.
  for (const char* proc : {"Enq", "Deq"}) {
    Fixture s(corpus::get("nfq").source, proc);
    EXPECT_FALSE(s.loop_pure()) << proc;
    ASSERT_FALSE(s.loop_result()->reasons.empty());
  }
}

TEST(Purity, HerlihyLoopIsPure) {
  Fixture s(corpus::get("herlihy_small").source, "Apply");
  EXPECT_TRUE(s.loop_pure());
}

TEST(Purity, GhV1OuterPureInnerImpure) {
  Fixture s(corpus::get("gh_large_v1").source, "Apply");
  const auto& loops = s.pa->cfg().loops();
  ASSERT_EQ(loops.size(), 2u);
  // Loop 0 is the outer (built first), loop 1 the inner copy loop.
  EXPECT_TRUE(s.pa->purity().is_pure(loops[0].stmt));
  EXPECT_FALSE(s.pa->purity().is_pure(loops[1].stmt));
}

TEST(Purity, GhV2OuterImpure) {
  Fixture s(corpus::get("gh_large_v2").source, "Apply");
  EXPECT_FALSE(s.loop_pure(0));
}

TEST(Purity, GlobalWriteInNormalIterationIsImpure) {
  Fixture s(R"(
    global int X;
    global int Hits;
    proc F() {
      loop {
        Hits := Hits + 1;    // visible side effect every iteration
        local a := LL(X) in {
          if (SC(X, a + 1)) { return; }
        }
      }
    }
  )", "F");
  EXPECT_FALSE(s.loop_pure());
}

TEST(Purity, LocalUpdateLiveAcrossIterationsIsImpure) {
  Fixture s(R"(
    global int X;
    proc F() {
      local tries := 0 in {
        loop {
          tries := tries + 1;   // read next iteration: live
          if (tries > 10) { return; }
          local a := LL(X) in {
            if (SC(X, a + 1)) { return; }
          }
        }
      }
    }
  )", "F");
  EXPECT_FALSE(s.loop_pure());
}

TEST(Purity, ScAsIfConditionTreatedAsRead) {
  Fixture s(R"(
    global int X;
    proc F() {
      loop {
        local a := LL(X) in {
          if (SC(X, a + 1)) { return; }
        }
      }
    }
  )", "F");
  EXPECT_TRUE(s.loop_pure());
  // The SC event is flagged as read under normal termination.
  const cfg::Cfg& cfg = s.pa->cfg();
  for (uint32_t i = 0; i < cfg.num_nodes(); ++i) {
    if (cfg.node(cfg::EventId(i)).kind == cfg::EventKind::SC) {
      EXPECT_TRUE(s.pa->purity().treated_as_read(cfg::EventId(i)));
    }
  }
}

TEST(Purity, ScSuccessContinuingNormallyIsImpure) {
  Fixture s(R"(
    global int X;
    global int Y;
    proc F() {
      loop {
        local a := LL(X) in {
          if (SC(X, a + 1)) { continue; }   // success stays in the loop
          if (Y > 0) { return; }
        }
      }
    }
  )", "F");
  EXPECT_FALSE(s.loop_pure());
}

TEST(Purity, MatchingScOutsideLoopViolatesConditionIii) {
  Fixture s(R"(
    global int X;
    proc F() {
      local a := 0 in {
        loop {
          a := LL(X);
          if (a > 0) { break; }
        }
        TRUE(SC(X, a + 1));   // matching SC outside the loop
        return;
      }
    }
  )", "F");
  EXPECT_FALSE(s.loop_pure());
}

TEST(Purity, LockPairsAllowedInNormalIterations) {
  Fixture s(R"(
    class L { int d; }
    global L M;
    global int X;
    proc F() {
      loop {
        local seen := 0 in {
          synchronized (M) {
            seen := X;
          }
          if (seen > 0) { return; }
        }
      }
    }
  )", "F");
  EXPECT_TRUE(s.loop_pure());
}

TEST(Purity, AllocationInNormalIterationIsPure) {
  Fixture s(R"(
    class Node { int v; }
    global int X;
    proc F() {
      loop {
        local n := new Node in {
          local a := LL(X) in {
            if (SC(X, a + 1)) { return; }
          }
        }
      }
    }
  )", "F");
  EXPECT_TRUE(s.loop_pure());
}

TEST(Purity, CasLoopsInAllocatorArePure) {
  Fixture s(corpus::get("michael_malloc").source, "MallocFromActive");
  const auto& loops = s.pa->cfg().loops();
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_TRUE(s.pa->purity().is_pure(loops[0].stmt));
  EXPECT_TRUE(s.pa->purity().is_pure(loops[1].stmt));
}

}  // namespace
}  // namespace synat::analysis
