#include <gtest/gtest.h>

#include "synat/analysis/proc_analysis.h"
#include "synat/corpus/corpus.h"
#include "synat/synl/parser.h"

namespace synat::analysis {
namespace {

using synl::Program;

struct Fixture {
  DiagEngine diags;
  Program prog;
  std::unique_ptr<ProcAnalysis> pa;

  explicit Fixture(std::string_view src, std::string_view proc)
      : prog(synl::parse_and_check(src, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
    pa = std::make_unique<ProcAnalysis>(prog, prog.find_proc(proc));
  }

  std::vector<cfg::EventId> events(cfg::EventKind kind) const {
    std::vector<cfg::EventId> out;
    const cfg::Cfg& cfg = pa->cfg();
    for (uint32_t i = 0; i < cfg.num_nodes(); ++i)
      if (cfg.node(cfg::EventId(i)).kind == kind) out.push_back(cfg::EventId(i));
    return out;
  }
};

TEST(Matching, StraightLineScFindsItsLl) {
  Fixture s(R"(
    global int X;
    proc F() {
      local a := LL(X) in {
        TRUE(SC(X, a + 1));
      }
    }
  )", "F");
  auto scs = s.events(cfg::EventKind::SC);
  auto lls = s.events(cfg::EventKind::LL);
  ASSERT_EQ(scs.size(), 1u);
  ASSERT_EQ(lls.size(), 1u);
  const MatchInfo* mi = s.pa->matching().info(scs[0]);
  ASSERT_NE(mi, nullptr);
  EXPECT_TRUE(mi->complete);
  ASSERT_EQ(mi->matches.size(), 1u);
  EXPECT_EQ(mi->matches[0], lls[0]);
}

TEST(Matching, BothBranchesCanMatch) {
  Fixture s(R"(
    global int X;
    proc F(int c) {
      local a := 0 in {
        if (c > 0) { a := LL(X); } else { a := LL(X); }
        TRUE(SC(X, a));
      }
    }
  )", "F");
  auto scs = s.events(cfg::EventKind::SC);
  ASSERT_EQ(scs.size(), 1u);
  const MatchInfo* mi = s.pa->matching().info(scs[0]);
  ASSERT_NE(mi, nullptr);
  EXPECT_TRUE(mi->complete);
  EXPECT_EQ(mi->matches.size(), 2u);
}

TEST(Matching, NewerLlShadowsOlder) {
  Fixture s(R"(
    global int X;
    proc F() {
      local a := LL(X) in {
        local b := LL(X) in {
          TRUE(SC(X, b));
        }
      }
    }
  )", "F");
  auto scs = s.events(cfg::EventKind::SC);
  const MatchInfo* mi = s.pa->matching().info(scs[0]);
  ASSERT_NE(mi, nullptr);
  // Only the most recent LL(X) matches; the search stops at it.
  EXPECT_EQ(mi->matches.size(), 1u);
}

TEST(Matching, ScWithNoLlIsIncomplete) {
  Fixture s(R"(
    global int X;
    proc F() {
      SC(X, 1);
    }
  )", "F");
  auto scs = s.events(cfg::EventKind::SC);
  const MatchInfo* mi = s.pa->matching().info(scs[0]);
  ASSERT_NE(mi, nullptr);
  EXPECT_FALSE(mi->complete);
  EXPECT_TRUE(mi->matches.empty());
}

TEST(Matching, DifferentVariableDoesNotMatch) {
  Fixture s(R"(
    global int X;
    global int Y;
    proc F() {
      local a := LL(Y) in {
        TRUE(SC(X, a));
      }
    }
  )", "F");
  auto scs = s.events(cfg::EventKind::SC);
  const MatchInfo* mi = s.pa->matching().info(scs[0]);
  ASSERT_NE(mi, nullptr);
  EXPECT_TRUE(mi->matches.empty());
}

TEST(Matching, LoopLlMatchesAcrossBackEdge) {
  Fixture s(corpus::get("nfq_prime").source, "AddNode");
  // In AddNode, the SC(t.Next, node) matches the LL(t.Next).
  auto scs = s.events(cfg::EventKind::SC);
  ASSERT_EQ(scs.size(), 1u);
  const MatchInfo* mi = s.pa->matching().info(scs[0]);
  ASSERT_NE(mi, nullptr);
  EXPECT_TRUE(mi->complete);
  ASSERT_EQ(mi->matches.size(), 1u);
  EXPECT_EQ(s.pa->cfg().node(mi->matches[0]).kind, cfg::EventKind::LL);
}

TEST(Matching, VlHasMatchingLl) {
  Fixture s(corpus::get("nfq_prime").source, "UpdateTail");
  auto vls = s.events(cfg::EventKind::VL);
  ASSERT_EQ(vls.size(), 1u);
  const MatchInfo* mi = s.pa->matching().info(vls[0]);
  ASSERT_NE(mi, nullptr);
  EXPECT_TRUE(mi->complete);
  EXPECT_EQ(mi->matches.size(), 1u);
}

TEST(Matching, CasMatchingRead) {
  Fixture s(R"(
    global int X;
    proc F() {
      local old := X in {
        TRUE(CAS(X, old, old + 1));
      }
    }
  )", "F");
  auto cass = s.events(cfg::EventKind::CAS);
  ASSERT_EQ(cass.size(), 1u);
  const MatchInfo* mi = s.pa->matching().info(cass[0]);
  ASSERT_NE(mi, nullptr);
  EXPECT_TRUE(mi->complete);
  ASSERT_EQ(mi->matches.size(), 1u);
  const cfg::Event& read = s.pa->cfg().node(mi->matches[0]);
  EXPECT_EQ(read.kind, cfg::EventKind::Read);
  EXPECT_TRUE(read.path.is_plain_var());
}

TEST(Matching, CasExpectedFromElsewhereIncomplete) {
  Fixture s(R"(
    global int X;
    proc F(int guess) {
      TRUE(CAS(X, guess, guess + 1));
    }
  )", "F");
  auto cass = s.events(cfg::EventKind::CAS);
  const MatchInfo* mi = s.pa->matching().info(cass[0]);
  ASSERT_NE(mi, nullptr);
  EXPECT_FALSE(mi->complete);
}

TEST(Matching, MatchedByInverseLookup) {
  Fixture s(R"(
    global int X;
    proc F() {
      local a := LL(X) in {
        if (VL(X)) {
          TRUE(SC(X, a));
        }
      }
    }
  )", "F");
  auto lls = s.events(cfg::EventKind::LL);
  ASSERT_EQ(lls.size(), 1u);
  // The LL matches both the VL and the SC.
  EXPECT_EQ(s.pa->matching().matched_by(lls[0]).size(), 2u);
}

}  // namespace
}  // namespace synat::analysis
