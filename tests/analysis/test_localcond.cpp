#include <gtest/gtest.h>

#include "synat/analysis/proc_analysis.h"
#include "synat/atomicity/variants.h"
#include "synat/corpus/corpus.h"
#include "synat/synl/parser.h"

namespace synat::analysis {
namespace {

using synl::Program;

// Local conditions are meaningful on exceptional variants (where the
// branch decisions are TRUE statements), so these tests generate variants
// first and analyze those.
struct VariantSetup {
  DiagEngine diags;
  Program prog;
  std::vector<std::unique_ptr<ProcAnalysis>> variants;

  explicit VariantSetup(std::string_view src, std::string_view proc)
      : prog(synl::parse_and_check(src, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
    synl::ProcId pid = prog.find_proc(proc);
    ProcAnalysis pa(prog, pid);
    auto set = atomicity::generate_variants(prog, pid, pa, diags);
    for (synl::ProcId v : set.variants)
      variants.push_back(std::make_unique<ProcAnalysis>(prog, v));
  }
};

TEST(LocalCond, AddNodeBlockIsLlScWithEqNull) {
  VariantSetup s(corpus::get("nfq_prime").source, "AddNode");
  ASSERT_EQ(s.variants.size(), 1u);
  const auto& blocks = s.variants[0]->localcond().blocks();
  // Expect one LL-SC block (on t.Next) with condition next == null.
  const LocalBlock* llsc = nullptr;
  for (const auto& b : blocks)
    if (b.is_llsc_block()) llsc = &b;
  ASSERT_NE(llsc, nullptr);
  EXPECT_EQ(llsc->cond, Pred::EqNull);
  ASSERT_EQ(llsc->svar.sels.size(), 1u);
  EXPECT_EQ(llsc->svar.last_field(), s.prog.syms().lookup("Next"));
}

TEST(LocalCond, UpdateTailBlockIsPlainWithNeNull) {
  VariantSetup s(corpus::get("nfq_prime").source, "UpdateTail");
  ASSERT_EQ(s.variants.size(), 1u);
  const LocalBlock* plain = nullptr;
  for (const auto& b : s.variants[0]->localcond().blocks()) {
    if (b.is_plain_local_block() && !b.svar.sels.empty()) plain = &b;
  }
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(plain->cond, Pred::NeNull);
}

TEST(LocalCond, DeqVariantsHaveOppositeConditions) {
  VariantSetup s(corpus::get("nfq_prime").source, "Deq");
  ASSERT_EQ(s.variants.size(), 2u);
  std::vector<Pred> conds;
  for (const auto& pa : s.variants) {
    for (const auto& b : pa->localcond().blocks()) {
      if (!b.svar.sels.empty() && b.cond != Pred::True)
        conds.push_back(b.cond);
    }
  }
  ASSERT_EQ(conds.size(), 2u);
  EXPECT_EQ(conds[0], negate(conds[1]));
}

TEST(LocalCond, UpdatedLvarDisablesBlock) {
  VariantSetup s(R"(
    class Node { Node Next; }
    global Node Tail;
    proc F() {
      local t := LL(Tail) in {
        TRUE(t != null);
        t := null;          // lvar updated: condition unusable
        TRUE(SC(Tail, t));
      }
    }
  )", "F");
  ASSERT_EQ(s.variants.size(), 1u);
  for (const auto& b : s.variants[0]->localcond().blocks()) {
    EXPECT_TRUE(b.lvar_updated);
    EXPECT_FALSE(b.is_llsc_block());
  }
}

TEST(LocalCond, NonNullPredicatesYieldTrue) {
  VariantSetup s(R"(
    global int X;
    proc F() {
      local a := LL(X) in {
        TRUE(a > 0);                 // not a null-ness test
        TRUE(SC(X, a - 1));
      }
    }
  )", "F");
  ASSERT_EQ(s.variants.size(), 1u);
  for (const auto& b : s.variants[0]->localcond().blocks())
    EXPECT_EQ(b.cond, Pred::True);
}

TEST(LocalCond, NegatedEqualityCanonicalizes) {
  EXPECT_EQ(negate(Pred::EqNull), Pred::NeNull);
  EXPECT_EQ(negate(Pred::NeNull), Pred::EqNull);
  EXPECT_EQ(negate(Pred::True), Pred::True);
}

TEST(LocalCond, BlockEventsCoverInitializerAndBody) {
  VariantSetup s(corpus::get("nfq_prime").source, "AddNode");
  const LocalBlock* llsc = nullptr;
  for (const auto& b : s.variants[0]->localcond().blocks())
    if (b.is_llsc_block()) llsc = &b;
  ASSERT_NE(llsc, nullptr);
  // Must contain at least the LL, the VL, the SC and the guards' reads.
  int lls = 0, scs = 0, vls = 0;
  const cfg::Cfg& cfg = s.variants[0]->cfg();
  for (cfg::EventId e : llsc->events) {
    if (cfg.node(e).kind == cfg::EventKind::LL) ++lls;
    if (cfg.node(e).kind == cfg::EventKind::SC) ++scs;
    if (cfg.node(e).kind == cfg::EventKind::VL) ++vls;
  }
  EXPECT_EQ(lls, 1);
  EXPECT_EQ(scs, 1);
  EXPECT_EQ(vls, 1);
}

}  // namespace
}  // namespace synat::analysis
