#include <gtest/gtest.h>

#include "synat/corpus/corpus.h"
#include "synat/interp/interp.h"
#include "synat/synl/parser.h"

namespace synat::interp {
namespace {

using synl::Program;

struct Fixture {
  DiagEngine diags;
  Program prog;
  CompiledProgram cp;
  std::unique_ptr<Interp> in;

  explicit Fixture(std::string_view src, int array_size = 3)
      : prog(synl::parse_and_check(src, diags)) {
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
    cp = compile_program(prog, diags);
    EXPECT_FALSE(diags.has_errors()) << diags.dump();
    in = std::make_unique<Interp>(cp, array_size);
  }

  int proc(std::string_view name) const {
    int idx = cp.find_index(name);
    EXPECT_GE(idx, 0) << name;
    return idx;
  }

  /// Runs a single thread to completion and returns its value.
  Value run1(std::string_view name, std::vector<Value> args = {}) {
    State s = in->initial_state({{proc(name), std::move(args)}});
    std::string err;
    StepResult r = in->run_thread(s, 0, &err);
    EXPECT_EQ(r, StepResult::Done) << err;
    return s.threads[0].ret;
  }
};

TEST(Interp, ArithmeticAndReturn) {
  Fixture f("proc int F(int a, int b) { return a * 10 + b % 3; }");
  EXPECT_EQ(f.run1("F", {Value::of_int(4), Value::of_int(5)}).i, 42);
}

TEST(Interp, DivisionByZeroYieldsZero) {
  Fixture f("proc int F(int a) { return a / 0; }");
  EXPECT_EQ(f.run1("F", {Value::of_int(7)}).i, 0);
}

TEST(Interp, LocalsAndGlobals) {
  Fixture f(R"(
    global int G;
    proc int F() {
      G := 5;
      local x := G + 1 in {
        G := x * 2;
        return G;
      }
    }
  )");
  EXPECT_EQ(f.run1("F").i, 12);
}

TEST(Interp, WhileLoopViaDesugaring) {
  Fixture f(R"(
    proc int F(int n) {
      local acc := 0 in
      local i := 0 in {
        while (i < n) {
          acc := acc + i;
          i := i + 1;
        }
        return acc;
      }
    }
  )");
  EXPECT_EQ(f.run1("F", {Value::of_int(5)}).i, 10);
}

TEST(Interp, ObjectsAndFields) {
  Fixture f(R"(
    class Node { int v; Node next; }
    proc int F() {
      local a := new Node in
      local b := new Node in {
        a.v := 1;
        b.v := 2;
        a.next := b;
        return a.v + a.next.v;
      }
    }
  )");
  EXPECT_EQ(f.run1("F").i, 3);
}

TEST(Interp, ArraysAutoAllocated) {
  Fixture f(R"(
    class Obj { int[] data; }
    proc int F() {
      local o := new Obj in {
        o.data[0] := 7;
        o.data[2] := 9;
        return o.data[0] + o.data[1] + o.data[2];
      }
    }
  )", /*array_size=*/3);
  EXPECT_EQ(f.run1("F").i, 16);
}

TEST(Interp, ArrayBoundsError) {
  Fixture f(R"(
    class Obj { int[] data; }
    proc F() {
      local o := new Obj in {
        o.data[5] := 1;
      }
    }
  )", /*array_size=*/3);
  State s = f.in->initial_state({{f.proc("F"), {}}});
  std::string err;
  EXPECT_EQ(f.in->run_thread(s, 0, &err), StepResult::Error);
  EXPECT_NE(err.find("bounds"), std::string::npos);
}

TEST(Interp, NullDereferenceError) {
  Fixture f(R"(
    class Node { int v; }
    global Node N;
    proc F() { N.v := 1; }
  )");
  State s = f.in->initial_state({{f.proc("F"), {}}});
  std::string err;
  EXPECT_EQ(f.in->run_thread(s, 0, &err), StepResult::Error);
}

TEST(Interp, LlScSingleThreadSucceeds) {
  Fixture f(R"(
    global int X;
    proc bool F() {
      local a := LL(X) in {
        return SC(X, a + 1);
      }
    }
  )");
  EXPECT_TRUE(f.run1("F").truthy());
}

TEST(Interp, ScWithoutLlFails) {
  Fixture f(R"(
    global int X;
    proc bool F() {
      return SC(X, 1);
    }
  )");
  EXPECT_FALSE(f.run1("F").truthy());
}

TEST(Interp, InterferingScBreaksLink) {
  Fixture f(R"(
    global int X;
    proc bool Inc() {
      local a := LL(X) in {
        return SC(X, a + 1);
      }
    }
  )");
  // Two threads: t0 LLs, then t1 runs completely (LL+SC), then t0's SC
  // must fail.
  State s = f.in->initial_state({{f.proc("Inc"), {}}, {f.proc("Inc"), {}}});
  std::string err;
  // Step t0 until its LL has executed (ll.glob is instruction index 0).
  ASSERT_EQ(f.in->step(s, 0, &err), StepResult::Ok);  // LL
  ASSERT_EQ(f.in->run_thread(s, 1, &err), StepResult::Done) << err;
  EXPECT_TRUE(s.threads[1].ret.truthy());
  ASSERT_EQ(f.in->run_thread(s, 0, &err), StepResult::Done) << err;
  EXPECT_FALSE(s.threads[0].ret.truthy());
  EXPECT_EQ(s.globals[0].i, 1);  // only one increment took effect
}

TEST(Interp, VlDetectsInterference) {
  Fixture f(R"(
    global int X;
    proc bool Check() {
      local a := LL(X) in {
        return VL(X);
      }
    }
    proc Bump() {
      local a := LL(X) in {
        SC(X, a + 1);
      }
    }
  )");
  State s = f.in->initial_state({{f.proc("Check"), {}}, {f.proc("Bump"), {}}});
  std::string err;
  ASSERT_EQ(f.in->step(s, 0, &err), StepResult::Ok);  // t0's LL
  ASSERT_EQ(f.in->run_thread(s, 1, &err), StepResult::Done);
  ASSERT_EQ(f.in->run_thread(s, 0, &err), StepResult::Done);
  EXPECT_FALSE(s.threads[0].ret.truthy());
}

TEST(Interp, PlainWriteDoesNotBreakLink) {
  // Paper Section 3.1: only successful SCs invalidate links.
  Fixture f(R"(
    global int X;
    proc bool Check() {
      local a := LL(X) in {
        return SC(X, a + 1);
      }
    }
    proc Write() {
      X := 42;
    }
  )");
  State s = f.in->initial_state({{f.proc("Check"), {}}, {f.proc("Write"), {}}});
  std::string err;
  ASSERT_EQ(f.in->step(s, 0, &err), StepResult::Ok);  // LL
  ASSERT_EQ(f.in->run_thread(s, 1, &err), StepResult::Done);
  ASSERT_EQ(f.in->run_thread(s, 0, &err), StepResult::Done);
  EXPECT_TRUE(s.threads[0].ret.truthy());
}

TEST(Interp, CasSemantics) {
  Fixture f(R"(
    global int X;
    proc bool F(int expected, int desired) {
      return CAS(X, expected, desired);
    }
  )");
  State s = f.in->initial_state(
      {{f.proc("F"), {Value::of_int(0), Value::of_int(5)}}});
  std::string err;
  ASSERT_EQ(f.in->run_thread(s, 0, &err), StepResult::Done);
  EXPECT_TRUE(s.threads[0].ret.truthy());
  EXPECT_EQ(s.globals[0].i, 5);

  State s2 = f.in->initial_state(
      {{f.proc("F"), {Value::of_int(3), Value::of_int(7)}}});
  ASSERT_EQ(f.in->run_thread(s2, 0, &err), StepResult::Done);
  EXPECT_FALSE(s2.threads[0].ret.truthy());
  EXPECT_EQ(s2.globals[0].i, 0);
}

TEST(Interp, LocksBlockOtherThreads) {
  Fixture f(R"(
    class L { int d; }
    global L M;
    global int C;
    proc Setup() { M := new L; }
    proc F() {
      synchronized (M) {
        C := C + 1;
      }
    }
  )");
  State s = f.in->initial_state({{f.proc("F"), {}}, {f.proc("F"), {}}});
  std::string err;
  // Allocate the lock object first via a setup run on thread 0.
  // (Run Setup by borrowing thread 0's slot.)
  State setup = f.in->initial_state({{f.proc("Setup"), {}}});
  ASSERT_EQ(f.in->run_thread(setup, 0, &err), StepResult::Done);
  s.globals = setup.globals;
  s.heap = setup.heap;

  // Drive t0 just past the acquire (expr eval + acquire).
  while (f.in->next_insn(s, 0).op != Op::Acquire)
    ASSERT_EQ(f.in->step(s, 0, &err), StepResult::Ok);
  ASSERT_EQ(f.in->step(s, 0, &err), StepResult::Ok);  // acquire
  // t1 now blocks at its acquire.
  while (f.in->next_insn(s, 1).op != Op::Acquire)
    ASSERT_EQ(f.in->step(s, 1, &err), StepResult::Ok);
  EXPECT_EQ(f.in->step(s, 1, &err), StepResult::Blocked);
  EXPECT_FALSE(f.in->runnable(s, 1));
  // Finish t0; t1 unblocks.
  ASSERT_EQ(f.in->run_thread(s, 0, &err), StepResult::Done) << err;
  EXPECT_TRUE(f.in->runnable(s, 1));
  ASSERT_EQ(f.in->run_thread(s, 1, &err), StepResult::Done) << err;
  EXPECT_EQ(s.globals[1].i, 2);  // slot 0 = M, slot 1 = C
}

TEST(Interp, AssertFailureReported) {
  Fixture f("proc F() { assert(1 == 2); }");
  State s = f.in->initial_state({{f.proc("F"), {}}});
  std::string err;
  EXPECT_EQ(f.in->run_thread(s, 0, &err), StepResult::Error);
  EXPECT_NE(err.find("assertion"), std::string::npos);
}

TEST(Interp, AssumeFalseSticksThread) {
  Fixture f("proc F() { TRUE(false); }");
  State s = f.in->initial_state({{f.proc("F"), {}}});
  std::string err;
  EXPECT_EQ(f.in->run_thread(s, 0, &err), StepResult::Stuck);
  EXPECT_EQ(s.threads[0].status, ThreadStatus::Stuck);
}

TEST(Interp, DeterministicReplay) {
  // Same schedule => identical final state (paper Section 3.2).
  Fixture f(corpus::get("semaphore_down").source);
  for (int round = 0; round < 2; ++round) {
    State s = f.in->initial_state({{f.proc("Up"), {}}, {f.proc("Up"), {}}});
    std::string err;
    // Fixed round-robin schedule.
    int tid = 0;
    for (int i = 0; i < 200; ++i) {
      f.in->step(s, tid, &err);
      tid = 1 - tid;
    }
    EXPECT_EQ(s.globals[0].i, 2);
  }
}

TEST(Interp, SemaphoreUpDown) {
  Fixture f(corpus::get("semaphore_down").source);
  State s = f.in->initial_state({{f.proc("Up"), {}}});
  std::string err;
  ASSERT_EQ(f.in->run_thread(s, 0, &err), StepResult::Done);
  EXPECT_EQ(s.globals[0].i, 1);
}

TEST(Interp, Disassemble) {
  Fixture f("global int X; proc F() { X := X + 1; }");
  std::string d = disassemble(f.cp.procs[0]);
  EXPECT_NE(d.find("ld.glob"), std::string::npos);
  EXPECT_NE(d.find("st.glob"), std::string::npos);
  EXPECT_NE(d.find("ret"), std::string::npos);
}

TEST(Interp, VariantsSkippedByDefault) {
  Fixture f(corpus::get("nfq_prime").source);
  EXPECT_EQ(f.cp.procs.size(), 3u);  // AddNode, UpdateTail, Deq only
}

class CompileAll : public ::testing::TestWithParam<corpus::Entry> {};

TEST_P(CompileAll, CorpusCompiles) {
  DiagEngine diags;
  Program prog = synl::parse_and_check(GetParam().source, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.dump();
  CompiledProgram cp = compile_program(prog, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.dump();
  for (const CompiledProc& p : cp.procs) {
    EXPECT_FALSE(p.code.empty());
    // Jump targets must be in range.
    for (const Insn& insn : p.code) {
      if (insn.op == Op::Jump || insn.op == Op::JumpIfFalse) {
        EXPECT_LE(static_cast<size_t>(insn.a), p.code.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CompileAll, ::testing::ValuesIn(corpus::all()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace synat::interp
