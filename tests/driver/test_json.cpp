#include "synat/driver/json.h"

#include <gtest/gtest.h>

namespace synat::driver {
namespace {

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(std::move(w).str(), "{}");
}

TEST(JsonWriter, NestedStructure) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("x");
  w.key("n").value(3);
  w.key("ok").value(true);
  w.key("items").begin_array();
  w.value(uint64_t{1});
  w.begin_object();
  w.key("inner").value("y");
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\n"
            "  \"name\": \"x\",\n"
            "  \"n\": 3,\n"
            "  \"ok\": true,\n"
            "  \"items\": [\n"
            "    1,\n"
            "    {\n"
            "      \"inner\": \"y\"\n"
            "    }\n"
            "  ]\n"
            "}");
}

TEST(JsonWriter, EmptyArrayStaysOnOneLine) {
  JsonWriter w;
  w.begin_object();
  w.key("xs").begin_array().end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).str(), "{\n  \"xs\": []\n}");
}

TEST(JsonWriter, RawReindentsFragment) {
  JsonWriter inner;
  inner.begin_object();
  inner.key("a").value(1);
  inner.end_object();
  JsonWriter w;
  w.begin_object();
  w.key("frag").raw(inner.str());
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\n  \"frag\": {\n    \"a\": 1\n  }\n}");
}

}  // namespace
}  // namespace synat::driver
