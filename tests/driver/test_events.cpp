// Wide-event log tests (DESIGN.md §3i): the renderer's fixed key order,
// EventLog sequencing, recorder mirroring, size-based rotation, and the
// completion-time stamp. The cross-mode byte-identity contract (identical
// logs under --jobs 1 / --jobs N / --isolate with the virtual clock) is
// pinned at the CLI level by the cli_events_identity ctest and the CI
// events job, because the virtual clock is a process-wide, checked-once
// environment switch.
#include "synat/obs/events.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "synat/obs/obs.h"
#include "synat/obs/recorder.h"

namespace synat {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tmp_path(const char* tag) {
  return "/tmp/synat_events_" + std::string(tag) + "_" +
         std::to_string(getpid()) + ".jsonl";
}

TEST(Events, RenderedLineHasTheFixedKeyOrder) {
  obs::Event e;
  e.seq = 7;
  e.ts_ns = 7;
  e.name = "corpus:nfq";
  e.fingerprint = "ba19dc849407c4b3";
  e.status = "degraded";
  e.atomic = false;
  e.exit_code = 1;
  e.procs = 2;
  e.procs_not_atomic = 1;
  e.variants = 3;
  e.dur_ns = 1000;
  e.parse_ns = 100;
  e.analyze_ns = 800;
  e.report_ns = 100;
  e.cache_hits = 4;
  e.cache_misses = 5;
  e.retries = 1;
  e.deaths_crash = 1;
  e.quarantined = true;
  e.error_code = -32004;
  e.error_kind = "quarantined";
  // The exact byte pin: tools/events_schema.json, the validator, and log
  // pipelines all depend on this order never shifting.
  EXPECT_EQ(
      obs::render_event(e),
      "{\"schema\":\"synat-event\",\"v\":1,\"seq\":7,\"ts_ns\":7,"
      "\"name\":\"corpus:nfq\",\"fingerprint\":\"ba19dc849407c4b3\","
      "\"status\":\"degraded\",\"atomic\":false,\"exit_code\":1,"
      "\"procs\":2,\"procs_not_atomic\":1,\"variants\":3,\"dur_ns\":1000,"
      "\"parse_ns\":100,\"analyze_ns\":800,\"report_ns\":100,"
      "\"cache_hits\":4,\"cache_misses\":5,\"retries\":1,"
      "\"deaths_crash\":1,\"deaths_timeout\":0,\"deaths_oom\":0,"
      "\"quarantined\":true,\"error_code\":-32004,"
      "\"error_kind\":\"quarantined\"}");
}

TEST(Events, RendererEscapesHostileStrings) {
  obs::Event e;
  e.name = "a\"b\\c\nd";
  std::string line = obs::render_event(e);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << line;
}

TEST(Events, AppendAssignsSequenceAndStampsCompletionTime) {
  std::string path = tmp_path("seq");
  {
    obs::EventLogOptions opts;
    opts.path = path;
    opts.mirror_recorder = false;
    obs::EventLog log(opts);
    obs::Event a;
    a.name = "first";
    obs::Event b;
    b.name = "second";
    log.append(std::move(a));
    log.append(std::move(b));
    EXPECT_EQ(log.lines(), 2u);
  }
  std::string text = slurp(path);
  EXPECT_NE(text.find("\"seq\":0,"), std::string::npos);
  EXPECT_NE(text.find("\"seq\":1,"), std::string::npos);
  if (!obs::virtual_clock()) {
    // Outside canonical mode a zero ts is replaced by the completion time.
    EXPECT_EQ(text.find("\"ts_ns\":0,"), std::string::npos) << text;
  }
  std::remove(path.c_str());
}

TEST(Events, SizeBasedRotationKeepsTheLastTwoFiles) {
  std::string path = tmp_path("rot");
  std::string rotated = path + ".1";
  {
    obs::EventLogOptions opts;
    opts.path = path;
    opts.max_bytes = 600;  // ~2 rendered lines per file
    opts.mirror_recorder = false;
    obs::EventLog log(opts);
    for (int i = 0; i < 6; ++i) {
      obs::Event e;
      e.name = "program_" + std::to_string(i);
      log.append(std::move(e));
    }
    EXPECT_EQ(log.lines(), 6u);
  }
  std::string current = slurp(path);
  std::string previous = slurp(rotated);
  EXPECT_FALSE(current.empty());
  EXPECT_FALSE(previous.empty());
  // The newest line is always in the live file; rotation renamed the rest
  // away at most one generation deep.
  EXPECT_NE(current.find("program_5"), std::string::npos);
  EXPECT_EQ(current.find("program_0"), std::string::npos);
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

TEST(Events, RingOnlyLogMirrorsIntoTheRecorder) {
  obs::recorder().reset();
  uint64_t before = obs::recorder().captured();
  obs::EventLogOptions opts;  // empty path: no disk, ring only
  obs::EventLog log(opts);
  obs::Event e;
  e.name = "ring_only";
  log.append(std::move(e));
  EXPECT_EQ(obs::recorder().captured(), before + 1);
  EXPECT_EQ(log.lines(), 1u);
}

}  // namespace
}  // namespace synat
