// Unit tests for the execution-guard substrate: ExecBudget cancellation
// points and the Watchdog deadline thread (DESIGN.md §3c).
#include <gtest/gtest.h>

#include <stdexcept>

#include "synat/driver/watchdog.h"
#include "synat/support/budget.h"

namespace synat::driver {
namespace {

TEST(ExecBudget, HealthyCheckIsANoOp) {
  ExecBudget budget;
  for (int i = 0; i < 10000; ++i) budget.check("loop");
  EXPECT_FALSE(budget.cancelled());
}

TEST(ExecBudget, CancelTripsNextCheck) {
  ExecBudget budget;
  budget.cancel("deadline");
  EXPECT_TRUE(budget.cancelled());
  try {
    budget.check("mover classification");
    FAIL() << "check() did not throw";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), "deadline");
    EXPECT_NE(std::string(e.what()).find("mover classification"),
              std::string::npos);
  }
}

TEST(ExecBudget, FirstCancelReasonWins) {
  ExecBudget budget;
  budget.cancel("deadline");
  budget.cancel("other");
  try {
    budget.check("x");
    FAIL() << "check() did not throw";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), "deadline");
  }
}

TEST(ExecBudget, SelfCheckedDeadlineTripsWithoutWatchdog) {
  ExecBudget budget;
  budget.arm_deadline_ms(1);
  uint64_t give_up = steady_now_ns() + 5ull * 1000 * 1000 * 1000;
  EXPECT_THROW(
      {
        while (steady_now_ns() < give_up) budget.check("variant expansion");
      },
      BudgetExceeded);
}

TEST(Watchdog, CancelsBudgetAfterDeadline) {
  Watchdog dog;
  ExecBudget budget;
  Watchdog::Scope scope(&dog, budget, /*delay_ms=*/10);
  uint64_t give_up = steady_now_ns() + 5ull * 1000 * 1000 * 1000;
  while (!budget.cancelled() && steady_now_ns() < give_up) {
  }
  EXPECT_TRUE(budget.cancelled());
}

TEST(Watchdog, ZeroDelayNeverArms) {
  Watchdog dog;
  ExecBudget budget;
  Watchdog::Scope scope(&dog, budget, /*delay_ms=*/0);
  EXPECT_EQ(budget.deadline_ns(), 0u);
  EXPECT_FALSE(budget.cancelled());
}

TEST(Watchdog, ScopeDestructorDeregisters) {
  Watchdog dog;
  ExecBudget budget;
  { Watchdog::Scope scope(&dog, budget, /*delay_ms=*/60000); }
  // The scope is gone; destroying the watchdog must not touch the budget.
}

TEST(Watchdog, NullWatchdogStillArmsSelfCheckedDeadline) {
  ExecBudget budget;
  Watchdog::Scope scope(nullptr, budget, /*delay_ms=*/30000);
  EXPECT_GT(budget.deadline_ns(), 0u);
  EXPECT_FALSE(budget.cancelled());
}

TEST(Watchdog, StopIsIdempotent) {
  Watchdog dog;
  dog.stop();
  dog.stop();
  dog.stop();
  // The destructor calls stop() a fourth time; none of these may hang or
  // touch a joined thread.
}

TEST(Watchdog, StopCancelsStillRegisteredBudgets) {
  ExecBudget budget;
  Watchdog dog;
  Watchdog::Scope scope(&dog, budget, /*delay_ms=*/60000);
  dog.stop();
  EXPECT_TRUE(budget.cancelled());
  try {
    budget.check("post-shutdown work");
    FAIL() << "check() did not throw";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), "shutdown");
  }
}

TEST(Watchdog, StopThenScopeDestructionIsSafe) {
  ExecBudget budget;
  Watchdog dog;
  {
    Watchdog::Scope scope(&dog, budget, /*delay_ms=*/60000);
    dog.stop();
  }  // deregistering against a stopped watchdog must not deadlock
}

TEST(Watchdog, DestructorJoinsDuringExceptionUnwind) {
  // Mirrors BatchDriver::run throwing mid-batch: the Watchdog is destroyed
  // while an exception is in flight, with scopes still registered an
  // instant earlier. Under TSan this catches a detached-thread shutdown
  // race; everywhere it catches a hang.
  ExecBudget budget;
  bool caught = false;
  try {
    Watchdog dog;
    Watchdog::Scope scope(&dog, budget, /*delay_ms=*/60000);
    throw std::runtime_error("batch failed");
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace synat::driver
