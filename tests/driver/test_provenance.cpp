// Tests for verdict provenance (DESIGN.md §3f): the codec round-trip for
// the wire provenance sections, rejection of truncated/mismatched
// payloads, byte-identity of `synat explain` output across in-process,
// --jobs N and --isolate runs, the rendered derivation tree itself, the
// SARIF relatedLocations carried by conflict witnesses, and the
// volume-counter naming scheme.
#include "synat/driver/codec.h"
#include "synat/driver/driver.h"
#include "synat/driver/report.h"
#include "synat/obs/provenance.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "synat/corpus/corpus.h"

namespace synat::driver {
namespace {

obs::ProvenanceRecord sample_record() {
  obs::ProvenanceRecord r;
  r.step = 4;
  r.theorem = "3.3";
  r.rule = "conflict";
  r.subject = "read Slot";
  r.line = 27;
  r.column = 16;
  r.atom = "A";
  r.detail = "a conflicting access from another thread";
  r.witness = "SC Slot in Publish'2";
  r.witness_line = 19;
  r.witness_column = 13;
  return r;
}

// ---------------------------------------------------------------------------
// Codec round-trips and corruption rejection

TEST(ProvCodec, RecordsRoundTripIncludingEmptyFields) {
  std::vector<obs::ProvenanceRecord> recs;
  recs.push_back(sample_record());
  obs::ProvenanceRecord empty;  // informational record: no witness, no atom
  empty.step = 0;
  empty.rule = "pure-loop";
  recs.push_back(empty);

  std::string wire;
  codec::put_prov_records(wire, recs);
  codec::Reader in(wire);
  std::vector<obs::ProvenanceRecord> back;
  ASSERT_TRUE(codec::get_prov_records(in, back));
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(back, recs);
}

TEST(ProvCodec, EveryTruncationOfAValidPayloadFailsDecode) {
  std::string wire;
  codec::put_prov_records(wire, {sample_record()});
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    codec::Reader in(std::string_view(wire).substr(0, cut));
    std::vector<obs::ProvenanceRecord> back;
    // A truncated payload either fails outright or (when the cut lands on
    // the count prefix of an empty tail) cannot decode the full record.
    if (codec::get_prov_records(in, back))
      EXPECT_NE(back, std::vector<obs::ProvenanceRecord>{sample_record()})
          << "cut at " << cut << " decoded the full payload";
  }
}

TEST(ProvCodec, OversizedRecordCountIsRejectedBeforeAllocation) {
  std::string wire;
  codec::put_u64(wire, codec::kMaxProvRecords + 1);
  codec::Reader in(wire);
  std::vector<obs::ProvenanceRecord> back;
  EXPECT_FALSE(codec::get_prov_records(in, back));
}

TEST(ProvCodec, ProcProvenanceRejectsVariantCountMismatch) {
  ProcReport p;
  p.prov.push_back(sample_record());
  p.variants.resize(2);
  p.variants[0].prov.push_back(sample_record());
  std::string wire;
  codec::put_proc_provenance(wire, p);

  ProcReport same;
  same.variants.resize(2);
  codec::Reader ok(wire);
  ASSERT_TRUE(codec::get_proc_provenance(ok, same));
  EXPECT_TRUE(ok.at_end());
  EXPECT_EQ(same.prov, p.prov);
  EXPECT_EQ(same.variants[0].prov, p.variants[0].prov);

  ProcReport fewer;  // decoded report has 1 variant, payload says 2
  fewer.variants.resize(1);
  codec::Reader bad(wire);
  EXPECT_FALSE(codec::get_proc_provenance(bad, fewer));
}

TEST(ProvCodec, ProgramProvenanceRejectsNullFlagMismatch) {
  ProgramReport r;
  auto proc = std::make_shared<ProcReport>();
  proc->prov.push_back(sample_record());
  r.procs.push_back(proc);
  std::string wire;
  codec::put_program_provenance(wire, r);

  ProgramReport missing;  // the report decoded without this proc slot filled
  missing.procs.push_back(nullptr);
  codec::Reader bad(wire);
  EXPECT_FALSE(codec::get_program_provenance(bad, missing));

  ProgramReport same;
  same.procs.push_back(std::make_shared<ProcReport>());
  codec::Reader ok(wire);
  ASSERT_TRUE(codec::get_program_provenance(ok, same));
  EXPECT_TRUE(ok.at_end());
  EXPECT_EQ(same.procs[0]->prov, proc->prov);
}

// ---------------------------------------------------------------------------
// Determinism: explain output is byte-identical across execution modes

std::vector<ProgramInput> corpus_inputs_with_provenance() {
  std::vector<ProgramInput> inputs;
  for (const corpus::Entry& e : corpus::all()) {
    ProgramInput in;
    in.name = "corpus:" + std::string(e.name);
    in.source = std::string(e.source);
    for (auto c : e.counted_cas) in.opts.counted_cas.emplace_back(c);
    in.opts.provenance = true;
    inputs.push_back(std::move(in));
  }
  return inputs;
}

std::string run_explain(DriverOptions opts) {
  BatchDriver drv(opts);
  return to_explain(drv.run(corpus_inputs_with_provenance()));
}

TEST(ProvDeterminism, ExplainByteIdenticalAcrossJobsAndIsolate) {
  DriverOptions serial;
  std::string baseline = run_explain(serial);
  EXPECT_FALSE(baseline.empty());

  DriverOptions jobs;
  jobs.jobs = 8;
  EXPECT_EQ(run_explain(jobs), baseline) << "--jobs 8 diverged";

  DriverOptions iso;
  iso.isolate = true;
  iso.jobs = 4;
  EXPECT_EQ(run_explain(iso), baseline) << "--isolate diverged";
}

TEST(ProvDeterminism, JsonProvenanceSectionsSurviveIsolation) {
  RenderOptions ropts;
  ropts.provenance = true;
  DriverOptions serial;
  BatchDriver a(serial);
  std::string in_process = to_json(a.run(corpus_inputs_with_provenance()), ropts);
  ASSERT_NE(in_process.find("\"provenance\""), std::string::npos);

  DriverOptions iso;
  iso.isolate = true;
  iso.jobs = 4;
  BatchDriver b(iso);
  std::string isolated = to_json(b.run(corpus_inputs_with_provenance()), ropts);
  // Everything before the metrics block (which holds wall-clock values)
  // must match, provenance arrays included.
  EXPECT_EQ(in_process.substr(0, in_process.find("\"metrics\"")),
            isolated.substr(0, isolated.find("\"metrics\"")));
}

// ---------------------------------------------------------------------------
// Rendering: the explain tree and the SARIF witness locations

BatchReport analyze_one(const char* spec_name, bool provenance = true) {
  const corpus::Entry& entry = corpus::get(spec_name);
  ProgramInput in;
  in.name = std::string("corpus:") + spec_name;
  in.source = std::string(entry.source);
  for (auto c : entry.counted_cas) in.opts.counted_cas.emplace_back(c);
  in.opts.provenance = provenance;
  DriverOptions opts;
  BatchDriver drv(opts);
  std::vector<ProgramInput> inputs;
  inputs.push_back(std::move(in));
  return drv.run(inputs);
}

TEST(ProvExplain, NotAtomicVerdictNamesBlockingActionAndWitness) {
  std::string text = to_explain(analyze_one("racy_counter"));
  EXPECT_NE(text.find("NOT atomic"), std::string::npos);
  EXPECT_NE(text.find("conflict"), std::string::npos);
  EXPECT_NE(text.find("witness:"), std::string::npos);
  EXPECT_NE(text.find("step 7 [verdict]"), std::string::npos);
}

TEST(ProvExplain, AtomicDerivationCitesDisciplineTheorems) {
  std::string text = to_explain(analyze_one("nfq_prime"));
  EXPECT_NE(text.find("[Thm 5.3]"), std::string::npos);
  EXPECT_NE(text.find("[Thm 5.4]"), std::string::npos);
  EXPECT_NE(text.find("[Thm 5.5]"), std::string::npos);
  EXPECT_NE(text.find("pure-loop"), std::string::npos);
}

TEST(ProvExplain, ProcFilterSelectsAndReportsUnknownNames) {
  BatchReport r = analyze_one("nfq_prime");
  std::string only = to_explain(r, "Deq");
  EXPECT_NE(only.find("procedure Deq"), std::string::npos);
  EXPECT_EQ(only.find("procedure AddNode"), std::string::npos);
  std::string missing = to_explain(r, "NoSuchProc");
  EXPECT_NE(missing.find("not found"), std::string::npos);
}

TEST(ProvExplain, RunWithoutProvenanceSaysSo) {
  std::string text = to_explain(analyze_one("nfq_prime", false));
  EXPECT_NE(text.find("did not collect provenance"), std::string::npos);
}

TEST(ProvSarif, ConflictWitnessBecomesRelatedLocations) {
  std::string sarif = to_sarif(analyze_one("racy_counter"));
  EXPECT_NE(sarif.find("\"relatedLocations\""), std::string::npos);
  EXPECT_NE(sarif.find("conflicts with"), std::string::npos);
}

TEST(ProvSarif, NoProvenanceNoRelatedLocations) {
  std::string sarif = to_sarif(analyze_one("racy_counter", false));
  EXPECT_EQ(sarif.find("\"relatedLocations\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Volume counters

TEST(ProvCounters, NameCarriesStepAndTheoremLabels) {
  obs::ProvenanceRecord r = sample_record();
  EXPECT_EQ(obs::provenance_counter_name(r),
            "synat_provenance_records{step=\"4\",theorem=\"3.3\"}");
  r.theorem.clear();
  EXPECT_EQ(obs::provenance_counter_name(r),
            "synat_provenance_records{step=\"4\",theorem=\"none\"}");
}

TEST(ProvCounters, StepTitlesCoverAllStepsAndClampUnknown) {
  for (uint32_t step = 0; step <= 7; ++step)
    EXPECT_FALSE(obs::provenance_step_title(step).empty()) << step;
  EXPECT_EQ(obs::provenance_step_title(8), obs::provenance_step_title(99));
}

}  // namespace
}  // namespace synat::driver
