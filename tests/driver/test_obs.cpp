// Tests for the observability layer (DESIGN.md §3e): span tracer ring
// semantics, metrics registry snapshot/delta/merge algebra, the Chrome
// trace / Prometheus exporters, the Telemetry frame codec, and the
// cross-mode determinism contract (identical deterministic counters under
// --jobs 1, --jobs 4, and --isolate).
#include "synat/obs/export.h"
#include "synat/obs/metrics.h"
#include "synat/obs/obs.h"
#include "synat/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "synat/corpus/corpus.h"
#include "synat/driver/codec.h"
#include "synat/driver/driver.h"

namespace synat {
namespace {

using obs::MetricsSnapshot;
using obs::SpanRecord;

/// Every obs test leaves the process-global flags, tracer, and registry
/// the way it found them (off and empty); the registry's *values* are
/// zeroed but its registered names and metric addresses survive reset().
struct ObsTest : ::testing::Test {
  void SetUp() override {
    obs::set_flags(0);
    obs::Tracer::instance().reset();
  }
  void TearDown() override {
    obs::set_flags(0);
    obs::Tracer::instance().reset();
    obs::registry().reset();
  }
};

const obs::CounterSample* find_counter(const MetricsSnapshot& s,
                                       std::string_view name) {
  for (const obs::CounterSample& c : s.counters)
    if (c.name == name) return &c;
  return nullptr;
}

const obs::HistogramSample* find_hist(const MetricsSnapshot& s,
                                      std::string_view name) {
  for (const obs::HistogramSample& h : s.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Tracer

TEST_F(ObsTest, SpanScopeIsInertWhenDisabled) {
  uint64_t before = obs::registry().stage_histogram(obs::StageId::Parse).count();
  { obs::SpanScope span(obs::StageId::Parse); }
  EXPECT_TRUE(obs::Tracer::instance().drain().empty());
  EXPECT_EQ(obs::registry().stage_histogram(obs::StageId::Parse).count(),
            before);
}

TEST_F(ObsTest, TraceFlagRecordsOneSpanPerScope) {
  obs::set_flags(obs::kTraceFlag);
  { obs::SpanScope span(obs::StageId::Purity); }
  { obs::SpanScope span(obs::StageId::Blocks); }
  std::vector<SpanRecord> spans = obs::Tracer::instance().drain();
  ASSERT_EQ(spans.size(), 2u);
  // Same thread, sorted by start time: Purity opened first.
  EXPECT_EQ(spans[0].stage, static_cast<uint32_t>(obs::StageId::Purity));
  EXPECT_EQ(spans[1].stage, static_cast<uint32_t>(obs::StageId::Blocks));
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_EQ(spans[0].lane, 0u);
}

TEST_F(ObsTest, MetricsFlagFeedsStageHistogramWithoutTracing) {
  obs::set_flags(obs::kMetricsFlag);
  uint64_t before = obs::registry().stage_histogram(obs::StageId::Infer).count();
  { obs::SpanScope span(obs::StageId::Infer); }
  EXPECT_EQ(obs::registry().stage_histogram(obs::StageId::Infer).count(),
            before + 1);
  EXPECT_TRUE(obs::Tracer::instance().drain().empty());
}

TEST_F(ObsTest, DrainMovesSpansOutExactlyOnce) {
  obs::set_flags(obs::kTraceFlag);
  { obs::SpanScope span(obs::StageId::Parse); }
  EXPECT_EQ(obs::Tracer::instance().drain().size(), 1u);
  EXPECT_TRUE(obs::Tracer::instance().drain().empty());
}

TEST_F(ObsTest, InjectedSpansSortUnderTheirLane) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.inject(2, {{/*stage=*/0, /*lane=*/0, /*tid=*/1, 500, 10}});
  tracer.inject(1, {{/*stage=*/1, /*lane=*/0, /*tid=*/0, 900, 10},
                    {/*stage=*/2, /*lane=*/0, /*tid=*/0, 100, 10}});
  std::vector<SpanRecord> spans = tracer.drain();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].lane, 1u);
  EXPECT_EQ(spans[0].start_ns, 100u);  // within a lane+tid, by start
  EXPECT_EQ(spans[1].lane, 1u);
  EXPECT_EQ(spans[1].start_ns, 900u);
  EXPECT_EQ(spans[2].lane, 2u);
  EXPECT_EQ(spans[2].tid, 1u) << "inject preserves worker thread ordinals";
}

TEST_F(ObsTest, LaneNamesSurviveUntilReset) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_lane_name(0, "supervisor");
  tracer.set_lane_name(3, "worker corpus:nfq_prime");
  auto lanes = tracer.lane_names();
  ASSERT_EQ(lanes.size(), 2u);
  tracer.reset();
  EXPECT_TRUE(tracer.lane_names().empty());
}

// ---------------------------------------------------------------------------
// Registry

TEST_F(ObsTest, SnapshotIsSortedByName) {
  obs::registry().counter("synat_test_zzz_total").inc();
  obs::registry().counter("synat_test_aaa_total").inc();
  MetricsSnapshot s = obs::registry().snapshot();
  EXPECT_TRUE(std::is_sorted(
      s.counters.begin(), s.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  EXPECT_TRUE(std::is_sorted(
      s.histograms.begin(), s.histograms.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
}

TEST_F(ObsTest, DeltaSubtractsPerName) {
  obs::Counter& c = obs::registry().counter("synat_test_delta_total");
  c.inc(5);
  MetricsSnapshot base = obs::registry().snapshot();
  c.inc(3);
  MetricsSnapshot delta = obs::registry().snapshot().delta_from(base);
  const obs::CounterSample* s = find_counter(delta, "synat_test_delta_total");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 3u);
}

TEST_F(ObsTest, MergeAddsCountersAndHistogramsButNotGauges) {
  MetricsSnapshot delta;
  delta.counters.push_back({"synat_test_merge_total", 7, true});
  obs::HistogramSample h;
  h.name = "synat_test_merge_duration_ns";
  h.buckets[0] = 2;
  h.buckets[8] = 1;
  h.sum_ns = 123;
  delta.histograms.push_back(h);
  delta.gauges.push_back({"synat_jobs", 99});

  obs::registry().merge(delta);
  EXPECT_EQ(obs::registry().counter("synat_test_merge_total").value(), 7u);
  obs::Histogram& hist =
      obs::registry().histogram("synat_test_merge_duration_ns");
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum_ns(), 123u);
  EXPECT_NE(obs::registry().gauge("synat_jobs").value(), 99u)
      << "a gauge is a level, not an increment; merge must skip it";
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsAddresses) {
  obs::Counter& c = obs::registry().counter("synat_test_reset_total");
  c.inc(4);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0u) << "cached reference must still be live";
  c.inc();
  EXPECT_EQ(obs::registry().counter("synat_test_reset_total").value(), 1u);
  EXPECT_EQ(&c, &obs::registry().counter("synat_test_reset_total"));
}

TEST_F(ObsTest, DeterministicFlagIsFixedAtCreation) {
  obs::registry().counter("synat_test_det_total", false);
  obs::registry().counter("synat_test_det_total", true);  // ignored
  MetricsSnapshot s = obs::registry().snapshot();
  const obs::CounterSample* c = find_counter(s, "synat_test_det_total");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->deterministic);
}

TEST_F(ObsTest, DeltaOfIdenticalSnapshotsIsAllZero) {
  obs::registry().counter("synat_test_idem_total").inc(9);
  obs::Histogram& h = obs::registry().histogram("synat_test_idem_duration_seconds");
  h.observe(123);
  MetricsSnapshot snap = obs::registry().snapshot();
  MetricsSnapshot delta = snap.delta_from(snap);
  // Every name survives (consumers can rely on the shape), every value is 0.
  ASSERT_EQ(delta.counters.size(), snap.counters.size());
  for (const obs::CounterSample& c : delta.counters) EXPECT_EQ(c.value, 0u);
  ASSERT_EQ(delta.histograms.size(), snap.histograms.size());
  for (const obs::HistogramSample& hs : delta.histograms) {
    EXPECT_EQ(hs.count(), 0u) << hs.name;
    EXPECT_EQ(hs.sum_ns, 0u) << hs.name;
  }
}

TEST_F(ObsTest, ResetBetweenSnapshotsClampsInsteadOfUnderflowing) {
  obs::Counter& c = obs::registry().counter("synat_test_clamp_total");
  c.inc(5);
  MetricsSnapshot base = obs::registry().snapshot();
  obs::registry().reset();  // a forked worker shedding inherited counts
  c.inc(2);
  MetricsSnapshot delta = obs::registry().snapshot().delta_from(base);
  const obs::CounterSample* s = find_counter(delta, "synat_test_clamp_total");
  ASSERT_NE(s, nullptr);
  // 2 − 5 would underflow to ~2^64; the delta clamps to zero so one reset
  // never fabricates astronomically large counter increments downstream.
  EXPECT_EQ(s->value, 0u);
}

TEST_F(ObsTest, MergeOfDisjointHistogramSetsCreatesWithoutDisturbing) {
  obs::Histogram& mine =
      obs::registry().histogram("synat_test_disjoint_a_duration_seconds");
  mine.observe(50);
  MetricsSnapshot delta;
  obs::HistogramSample h;
  h.name = "synat_test_disjoint_b_duration_seconds";
  h.buckets[3] = 4;
  h.sum_ns = 999;
  delta.histograms.push_back(h);
  obs::registry().merge(delta);
  // The unknown name is created with exactly the delta's contents; the
  // pre-existing disjoint histogram is untouched.
  obs::Histogram& theirs =
      obs::registry().histogram("synat_test_disjoint_b_duration_seconds");
  EXPECT_EQ(theirs.count(), 4u);
  EXPECT_EQ(theirs.sum_ns(), 999u);
  EXPECT_EQ(mine.count(), 1u);
  EXPECT_EQ(mine.sum_ns(), 50u);
}

TEST_F(ObsTest, MergeOfEmptyDeltaIsANoOp) {
  obs::registry().counter("synat_test_noop_total").inc(3);
  MetricsSnapshot before = obs::registry().snapshot();
  obs::registry().merge(MetricsSnapshot{});
  MetricsSnapshot after = obs::registry().snapshot();
  EXPECT_EQ(before.counters.size(), after.counters.size());
  EXPECT_EQ(find_counter(after, "synat_test_noop_total")->value, 3u);
  // Zero-valued counters in a delta must not register phantom names either.
  MetricsSnapshot zeros;
  zeros.counters.push_back({"synat_test_phantom_total", 0, true});
  obs::registry().merge(zeros);
  EXPECT_EQ(find_counter(obs::registry().snapshot(),
                         "synat_test_phantom_total"),
            nullptr);
}

TEST_F(ObsTest, LabeledCounterFamiliesShareOnePrometheusHeader) {
  MetricsSnapshot s;
  // Name-sorted, as Registry::snapshot() guarantees: labeled variants of
  // one family are adjacent.
  s.counters.push_back({"synat_test_rule{rule=\"reduce\"}", 2, true});
  s.counters.push_back({"synat_test_rule{rule=\"window\"}", 5, true});
  std::string prom = obs::to_prometheus(s);
  // The `_total` suffix lands on the base name, before the labels, and the
  // HELP/TYPE header appears once for the family.
  EXPECT_NE(prom.find("synat_test_rule_total{rule=\"reduce\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("synat_test_rule_total{rule=\"window\"} 5"),
            std::string::npos);
  size_t first = prom.find("# TYPE synat_test_rule_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find("# TYPE synat_test_rule_total counter", first + 1),
            std::string::npos)
      << "one TYPE header per family, not per labeled variant";
}

TEST_F(ObsTest, StageHistogramNamesEncodeCategory) {
  MetricsSnapshot s = obs::registry().snapshot();
  EXPECT_NE(find_hist(s, "synat_pipeline_parse_duration_seconds"), nullptr);
  EXPECT_NE(find_hist(s, "synat_driver_dispatch_duration_seconds"), nullptr);
}

// ---------------------------------------------------------------------------
// Exporters

std::vector<SpanRecord> sample_spans(uint64_t base_ns) {
  return {
      {static_cast<uint32_t>(obs::StageId::Parse), 0, 0, base_ns, 1500},
      {static_cast<uint32_t>(obs::StageId::Infer), 0, 0, base_ns + 2000, 500},
      {static_cast<uint32_t>(obs::StageId::Analyze), 1, 0, base_ns + 100, 3000},
  };
}

TEST_F(ObsTest, ChromeTraceHasMetadataAndCompleteEvents) {
  std::string json = obs::to_chrome_trace(
      sample_spans(10'000), {{0, "supervisor"}, {1, "worker x"}});
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"supervisor\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"driver\""), std::string::npos);
  // Re-based: the earliest span starts at ts 0.000 µs; 1500ns dur = 1.500.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceIsInvariantUnderClockBaseShift) {
  auto lanes = std::vector<std::pair<uint32_t, std::string>>{{0, "main"}};
  EXPECT_EQ(obs::to_chrome_trace(sample_spans(5'000), lanes),
            obs::to_chrome_trace(sample_spans(987'654'321), lanes))
      << "timestamps must be re-based to the earliest span";
}

TEST_F(ObsTest, PrometheusExposesCountersGaugesHistograms) {
  MetricsSnapshot s;
  s.counters.push_back({"synat_cache_hits_total", 12, true});
  s.counters.push_back({"synat_watchdog_trips_total", 1, false});
  s.gauges.push_back({"synat_jobs", 4});
  obs::HistogramSample h;
  h.name = "synat_pipeline_parse_duration_seconds";
  h.buckets[0] = 3;  // <= 1µs
  h.buckets[8] = 1;  // +Inf
  h.sum_ns = 42;
  s.histograms.push_back(h);

  std::string prom = obs::to_prometheus(s);
  EXPECT_NE(prom.find("# TYPE synat_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("synat_cache_hits_total 12"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE synat_jobs gauge"), std::string::npos);
  EXPECT_NE(prom.find("synat_jobs 4"), std::string::npos);
  // Nondeterministic counters are flagged in HELP so comparators skip them.
  size_t help = prom.find("# HELP synat_watchdog_trips_total");
  ASSERT_NE(help, std::string::npos);
  EXPECT_NE(prom.find("(nondeterministic)", help), std::string::npos);
  // Cumulative buckets with bounds in seconds: le="0.000001" (the 1µs
  // bucket) sees 3, +Inf sees all 4; the sum is 42ns as exact seconds.
  EXPECT_NE(prom.find("synat_pipeline_parse_duration_seconds_bucket"
                      "{le=\"0.000001\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("synat_pipeline_parse_duration_seconds_bucket"
                      "{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(prom.find("synat_pipeline_parse_duration_seconds_sum "
                      "0.000000042"),
            std::string::npos);
  EXPECT_NE(prom.find("synat_pipeline_parse_duration_seconds_count 4"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Telemetry codec (SYNF frame type 4 payload)

MetricsSnapshot sample_delta() {
  MetricsSnapshot d;
  d.counters.push_back({"synat_procs_analyzed_total", 3, true});
  d.counters.push_back({"synat_worker_heartbeats_total", 2, false});
  obs::HistogramSample h;
  h.name = "synat_pipeline_infer_duration_ns";
  h.buckets[2] = 5;
  h.sum_ns = 777;
  d.histograms.push_back(h);
  return d;
}

TEST_F(ObsTest, TelemetryRoundTripsSpansAndMetrics) {
  std::vector<SpanRecord> spans = sample_spans(1'000);
  std::string wire;
  driver::codec::put_telemetry(wire, spans, sample_delta());

  driver::codec::Reader in(wire);
  std::vector<SpanRecord> spans2;
  MetricsSnapshot delta2;
  ASSERT_TRUE(driver::codec::get_telemetry(in, spans2, delta2));
  EXPECT_TRUE(in.at_end());
  ASSERT_EQ(spans2.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans2[i].stage, spans[i].stage);
    EXPECT_EQ(spans2[i].tid, spans[i].tid);
    EXPECT_EQ(spans2[i].start_ns, spans[i].start_ns);
    EXPECT_EQ(spans2[i].dur_ns, spans[i].dur_ns);
    EXPECT_EQ(spans2[i].lane, 0u) << "lane is assigned by the supervisor";
  }
  ASSERT_EQ(delta2.counters.size(), 2u);
  EXPECT_EQ(delta2.counters[0].name, "synat_procs_analyzed_total");
  EXPECT_EQ(delta2.counters[0].value, 3u);
  EXPECT_TRUE(delta2.counters[0].deterministic);
  EXPECT_FALSE(delta2.counters[1].deterministic);
  ASSERT_EQ(delta2.histograms.size(), 1u);
  EXPECT_EQ(delta2.histograms[0].buckets[2], 5u);
  EXPECT_EQ(delta2.histograms[0].sum_ns, 777u);
}

TEST_F(ObsTest, TelemetryRejectsTruncation) {
  std::string wire;
  driver::codec::put_telemetry(wire, sample_spans(1'000), sample_delta());
  // Every proper prefix must fail decode, never crash or mis-parse.
  for (size_t cut = 0; cut < wire.size(); cut += 7) {
    driver::codec::Reader in(std::string_view(wire).substr(0, cut));
    std::vector<SpanRecord> spans;
    MetricsSnapshot delta;
    EXPECT_FALSE(driver::codec::get_telemetry(in, spans, delta))
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST_F(ObsTest, TelemetryRejectsOversizedSpanCount) {
  std::string wire;
  driver::codec::put_u64(wire, driver::codec::kMaxTelemetrySpans + 1);
  driver::codec::Reader in(wire);
  std::vector<SpanRecord> spans;
  MetricsSnapshot delta;
  EXPECT_FALSE(driver::codec::get_telemetry(in, spans, delta));
}

TEST_F(ObsTest, TelemetryRejectsUnknownStageAndBadBucketCount) {
  std::string wire;
  driver::codec::put_u64(wire, 1);  // one span
  driver::codec::put_u32(wire, static_cast<uint32_t>(obs::kNumStages));
  driver::codec::put_u32(wire, 0);
  driver::codec::put_u64(wire, 0);
  driver::codec::put_u64(wire, 0);
  {
    driver::codec::Reader in(wire);
    std::vector<SpanRecord> spans;
    MetricsSnapshot delta;
    EXPECT_FALSE(driver::codec::get_telemetry(in, spans, delta));
  }
  wire.clear();
  driver::codec::put_u64(wire, 0);  // no spans
  driver::codec::put_u64(wire, 0);  // no counters
  driver::codec::put_u64(wire, 1);  // one histogram...
  driver::codec::put_str(wire, "synat_pipeline_parse_duration_ns");
  driver::codec::put_u32(wire, obs::Histogram::kBuckets + 1);  // ...bad width
  {
    driver::codec::Reader in(wire);
    std::vector<SpanRecord> spans;
    MetricsSnapshot delta;
    EXPECT_FALSE(driver::codec::get_telemetry(in, spans, delta));
  }
}

// ---------------------------------------------------------------------------
// Cross-mode determinism: the ISSUE's contract that deterministic counters
// are identical under --jobs 1, --jobs N, and --isolate. Worker-dispatch
// bookkeeping (synat_worker_*) legitimately differs between the in-process
// and isolated drivers and is excluded, exactly as the CI comparator does.

std::vector<driver::ProgramInput> small_corpus() {
  std::vector<driver::ProgramInput> inputs;
  for (const char* name : {"nfq_prime", "semaphore_down", "michael_malloc"}) {
    const corpus::Entry& e = corpus::get(name);
    driver::ProgramInput in;
    in.name = "corpus:" + std::string(e.name);
    in.source = std::string(e.source);
    for (auto c : e.counted_cas) in.opts.counted_cas.emplace_back(c);
    inputs.push_back(std::move(in));
  }
  return inputs;
}

std::vector<obs::CounterSample> comparable_counters(const MetricsSnapshot& s) {
  std::vector<obs::CounterSample> out;
  for (const obs::CounterSample& c : s.counters)
    if (c.deterministic && c.name.rfind("synat_worker_", 0) != 0)
      out.push_back(c);
  return out;
}

MetricsSnapshot run_mode(unsigned jobs, bool isolate) {
  driver::DriverOptions opts;
  opts.jobs = jobs;
  opts.isolate = isolate;
  driver::BatchDriver drv(opts);
  driver::BatchReport r = drv.run(small_corpus());
  return r.metrics.telemetry;
}

TEST_F(ObsTest, DeterministicCountersAgreeAcrossJobsAndIsolate) {
  std::vector<obs::CounterSample> serial = comparable_counters(run_mode(1, false));
  std::vector<obs::CounterSample> parallel = comparable_counters(run_mode(4, false));
  std::vector<obs::CounterSample> isolated = comparable_counters(run_mode(2, true));

  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), isolated.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].value, parallel[i].value)
        << serial[i].name << " differs between --jobs 1 and --jobs 4";
    EXPECT_EQ(serial[i].name, isolated[i].name);
    EXPECT_EQ(serial[i].value, isolated[i].value)
        << serial[i].name << " differs between --jobs 1 and --isolate";
  }
  // The run actually analyzed something; this is not a vacuous comparison.
  const obs::CounterSample* procs = nullptr;
  for (const obs::CounterSample& c : serial)
    if (c.name == "synat_procs_analyzed_total") procs = &c;
  ASSERT_NE(procs, nullptr);
  EXPECT_GT(procs->value, 0u);
}

TEST_F(ObsTest, PipelineStageCountsAgreeBetweenInProcessAndIsolate) {
  obs::set_flags(obs::kMetricsFlag);
  MetricsSnapshot serial = run_mode(1, false);
  MetricsSnapshot isolated = run_mode(2, true);
  obs::set_flags(0);

  // Only pipeline-category histograms are mode-invariant (each isolated
  // sub-driver runs its own Schedule/Report driver stages).
  for (const obs::HistogramSample& h : serial.histograms) {
    if (h.name.rfind("synat_pipeline_", 0) != 0) continue;
    const obs::HistogramSample* other = find_hist(isolated, h.name);
    ASSERT_NE(other, nullptr) << h.name;
    EXPECT_EQ(h.count(), other->count()) << h.name;
  }
  const obs::HistogramSample* parse =
      find_hist(serial, "synat_pipeline_parse_duration_seconds");
  ASSERT_NE(parse, nullptr);
  EXPECT_GT(parse->count(), 0u);
}

}  // namespace
}  // namespace synat
